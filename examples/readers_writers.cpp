// §2.5.1 readers–writers: a hidden procedure array Read[1..ReadMax] lets up
// to ReadMax readers run concurrently while the manager's WriterLast
// protocol keeps both sides starvation-free.
//
//   $ example_readers_writers
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/readers_writers.h"
#include "support/rng.h"

int main() {
  using namespace alps;

  apps::ReadersWritersDb db({.read_max = 4,
                             .read_time = std::chrono::microseconds(200),
                             .write_time = std::chrono::microseconds(400)});

  std::vector<std::jthread> threads;
  for (int r = 0; r < 6; ++r) {
    threads.emplace_back([&, r] {
      support::Rng rng(static_cast<std::uint64_t>(r));
      for (int i = 0; i < 50; ++i) {
        const std::int64_t key = rng.next_range(0, 9);
        db.read(key);
      }
    });
  }
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      support::Rng rng(static_cast<std::uint64_t>(100 + w));
      for (int i = 0; i < 25; ++i) {
        db.write(rng.next_range(0, 9), w * 1000 + i);
      }
    });
  }
  threads.clear();

  const auto inv = db.invariants();
  std::printf("reads=%llu writes=%llu\n",
              static_cast<unsigned long long>(inv.reads),
              static_cast<unsigned long long>(inv.writes));
  std::printf("max concurrent readers observed: %d (ReadMax=4)\n",
              inv.max_concurrent_readers);
  std::printf("reader/writer exclusion violated: %s\n",
              inv.exclusion_violated ? "YES (BUG)" : "no");
  return inv.exclusion_violated ? 1 : 0;
}
