// Distribution (§1): "calls to the entry procedures of an object are
// implemented as remote procedure calls; a user can further communicate with
// an executing remote procedure using message passing on point-to-point
// channels."
//
// A dictionary object (with its combining manager) lives on a server node of
// a simulated network; clients on other nodes call Search over RPC, and a
// progress-reporting entry streams updates back through a channel the client
// passed as a parameter. A final lossy phase turns on 15% frame drop and
// repeats the searches under a RetryPolicy — every call still completes, and
// the server executes each at most once.
//
//   $ example_distributed_dictionary
#include <cstdio>
#include <vector>

#include "apps/dictionary.h"
#include "core/alps.h"
#include "net/net.h"
#include "support/rng.h"

int main() {
  using namespace alps;

  // A 3-node network with 200±100us link latency.
  net::Network network(net::LinkLatency{std::chrono::microseconds(200),
                                        std::chrono::microseconds(100)},
                       /*seed=*/7);
  net::Node server(network, "server");
  net::Node client_a(network, "client-a");
  net::Node client_b(network, "client-b");

  // The dictionary (manager, hidden array, combining) lives on the server.
  auto words = support::make_word_list(32);
  apps::Dictionary dict(words, {.search_max = 8,
                                .search_time = std::chrono::microseconds(500)});
  server.host(dict.object());

  // A side object demonstrating channels as RPC parameters.
  Object reporter("Reporter");
  EntryRef watch = reporter.define_entry({.name = "Watch", .params = 2, .results = 0});
  reporter.implement(watch, [](BodyCtx& ctx) -> ValueList {
    const auto n = ctx.param(0).as_int();
    const ChannelRef progress = ctx.param(1).as_channel();
    for (std::int64_t i = 1; i <= n; ++i) {
      progress->send(vals(i, n));  // streams across the simulated network
    }
    return {};
  });
  reporter.start();
  server.host(reporter);

  // Clients call by object *name* — host() registered "Dictionary" in the
  // cluster directory, so nobody needs to know which node it lives on
  // (location transparency, DESIGN.md §4.7). Frame batching coalesces the
  // burst of requests/responses on each link.
  client_a.set_batching({});  // defaults: flush at 8 frames or 200 µs
  client_b.set_batching({});
  server.set_batching({});
  auto remote_dict_a = client_a.remote("Dictionary");
  auto remote_dict_b = client_b.remote("Dictionary");

  support::ZipfGenerator zipf(words.size(), 1.1, 3);
  std::vector<net::RpcHandle> calls;
  for (int i = 0; i < 30; ++i) {
    auto& proxy = (i % 2 == 0) ? remote_dict_a : remote_dict_b;
    calls.push_back(proxy.async_call("Search", vals(words[zipf.next()]), {}));
  }
  for (auto& c : calls) {
    auto r = c.result();
    std::printf("remote search -> %s\n",
                r.ok() ? r.value()[0].as_string().c_str() : r.error().what());
  }
  const auto s = dict.stats();
  std::printf("server combined %llu of %llu remote requests\n",
              static_cast<unsigned long long>(s.combined),
              static_cast<unsigned long long>(s.requests));
  const auto ab = client_a.batch_stats();
  std::printf("client-a batching: %llu frames flushed as %llu batches + "
              "%llu singles\n",
              static_cast<unsigned long long>(ab.frames_enqueued),
              static_cast<unsigned long long>(ab.batches_posted),
              static_cast<unsigned long long>(ab.singles_posted));

  // Channel across the network: client passes a reply channel to the
  // executing remote procedure.
  ChannelRef progress = make_channel("progress");
  auto remote_reporter = client_a.remote("Reporter");
  if (!remote_reporter.call("Watch", vals(5, progress), {}).ok()) return 1;
  for (int i = 0; i < 5; ++i) {
    ValueList update = progress->receive();
    std::printf("progress from remote procedure: %lld/%lld\n",
                static_cast<long long>(update[0].as_int()),
                static_cast<long long>(update[1].as_int()));
  }

  // Lossy phase: 15% of frames vanish, but retries + the server's
  // at-most-once table keep every search exactly-once.
  network.set_loss_probability(0.15);
  net::CallOptions reliable;
  reliable.retry = net::RetryPolicy{};
  const auto dict_before = dict.stats().requests;
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    auto r = remote_dict_a.call("Search", vals(words[zipf.next()]), reliable);
    if (r.ok()) ++completed;
  }
  const auto cs = client_a.client_stats();
  const auto ss = server.server_stats();
  std::printf(
      "lossy phase: %d/20 searches completed, %llu retransmits, "
      "%llu dedup hits, server executed %llu (exactly one per call)\n",
      completed, static_cast<unsigned long long>(cs.retransmits),
      static_cast<unsigned long long>(ss.dedup_replayed + ss.dup_in_flight +
                                      ss.dup_acked),
      static_cast<unsigned long long>(dict.stats().requests - dict_before));

  const auto net_stats = network.stats();
  std::printf("network: %llu frames, %llu bytes, %llu lost\n",
              static_cast<unsigned long long>(net_stats.frames_delivered),
              static_cast<unsigned long long>(net_stats.bytes_delivered),
              static_cast<unsigned long long>(net_stats.frames_lost));

  // Multiactive phase (DESIGN.md §4.8): a second dictionary whose Search
  // entries are annotated compatible with each other, so remote searches
  // overlap inside the object without per-call manager turns; Insert is a
  // serial group and runs in exclusion.
  network.set_loss_probability(0.0);
  apps::Dictionary ma_dict(
      words, {.search_time = std::chrono::microseconds(500),
              .multiactive = true,
              .object_name = "MultiactiveDictionary"});
  server.host(ma_dict.object());
  auto remote_ma = client_b.remote("MultiactiveDictionary");
  if (!remote_ma.call("Insert", vals(std::string("alps"),
                                     std::string("a language for processes")),
                      {})
           .ok()) {
    return 1;
  }
  std::vector<net::RpcHandle> ma_calls;
  for (int i = 0; i < 20; ++i) {
    ma_calls.push_back(remote_ma.async_call(
        "Search", vals(i % 4 == 0 ? std::string("alps") : words[zipf.next()]),
        {}));
  }
  int ma_ok = 0;
  for (auto& c : ma_calls) {
    if (c.result().ok()) ++ma_ok;
  }
  std::uint64_t ma_concurrent = 0, ma_blocked = 0;
  for (const auto& e : ma_dict.object().stats().entries) {
    ma_concurrent += e.ma_concurrent_starts;
    ma_blocked += e.ma_conflict_blocks;
  }
  std::printf(
      "multiactive phase: %d/20 remote searches ok, %llu concurrent starts, "
      "%llu conflict blocks\n",
      ma_ok, static_cast<unsigned long long>(ma_concurrent),
      static_cast<unsigned long long>(ma_blocked));

  reporter.stop();
  return 0;
}
