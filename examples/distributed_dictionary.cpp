// Distribution (§1): "calls to the entry procedures of an object are
// implemented as remote procedure calls; a user can further communicate with
// an executing remote procedure using message passing on point-to-point
// channels."
//
// Three modes share this binary:
//
//   $ example_distributed_dictionary
//       The original single-process demo on the *simulated* network: a
//       dictionary object with its combining manager on a server node,
//       clients calling Search over RPC, channels as parameters, a lossy
//       phase under retries, and a multiactive phase.
//
//   $ example_distributed_dictionary driver <n> [--smoke]
//       Real multi-process deployment: spawns <n> dictionary server
//       *processes* (one OS process per node, Unix-domain sockets between
//       them via net::SocketTransport) and drives them by object name. The
//       driver deliberately mis-seeds one route to show a kWrongNode
//       redirect healing a stale directory replica, runs every insert under
//       an aggressive RetryPolicy, and asserts exactly-once execution from
//       the servers' own counters. --smoke shrinks the workload (ctest).
//
//   $ example_distributed_dictionary serve <i> <n> <dir>
//       Internal: server process i of n (started by the driver).
//
//   $ ALPS_SOAK=1 example_distributed_dictionary chaos <n> [--ci]
//       Chaos/soak harness (DESIGN.md §4.11): spawns <n> servers, then
//       kill -9s one mid-burst and restarts it on the same address, adds a
//       brand-new server to the live cluster, and evicts + re-admits a
//       healthy peer — all while a driver pushes inserts under aggressive
//       retries. Each server keeps a durable append-only key log, so the
//       harness can assert exactly-once convergence from the servers' own
//       counters even across the kill. An impostor connection (raw garbage
//       bytes) is thrown at the driver's listener first and must be
//       rejected before any frame is dispatched. Without ALPS_SOAK=1 the
//       mode prints [SKIP-SOAK] and exits 77 (ctest SKIP_RETURN_CODE).
//       --ci shrinks the workload to stay comfortably under a minute.
//
//   $ example_distributed_dictionary chaos-serve <i> <dir>
//       Internal: chaos server process i (started by the chaos driver).
//
//   $ ALPS_SOAK=1 example_distributed_dictionary shard-soak [--ci]
//       Shard-migration soak (DESIGN.md §4.12): four server processes host
//       one *sharded* named object. The driver inserts a keyed stream while
//       the shard map is split live, 2 → 3 → 4 homes, each split installed
//       on the servers mid-burst while the driver's cached map stays stale.
//       Convergence is per-key through shard-precise kWrongNode redirects;
//       the exactly-once audit reads each server's durable key log counters
//       (every key applied on exactly one server, zero re-executions).
//       Without ALPS_SOAK=1 prints [SKIP-SOAK] and exits 77.
//
//   $ example_distributed_dictionary shard-serve <i> <dir>
//       Internal: shard server process i (started by the shard-soak driver).
#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "apps/dictionary.h"
#include "core/alps.h"
#include "net/net.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/sync.h"

namespace {

using namespace alps;

// ---- multi-process cluster plumbing ----------------------------------------

/// NodeId 0 is the driver; servers are 1..n. Every process gets the same
/// static cluster map — the unix socket path of each node's listener.
net::SocketTransportOptions cluster_options(net::NodeId self, int n,
                                            const std::string& dir) {
  net::SocketTransportOptions opts;
  opts.local_node = self;
  opts.local_name = self == 0 ? "driver" : "server-" + std::to_string(self);
  auto path_of = [&dir](net::NodeId id) {
    return dir + "/" + std::to_string(id) + ".sock";
  };
  opts.listen = net::SocketAddress::unix_path(path_of(self));
  for (net::NodeId id = 0; id <= static_cast<net::NodeId>(n); ++id) {
    if (id == self) continue;
    opts.peers.push_back(net::SocketPeer{
        id, id == 0 ? "driver" : "server-" + std::to_string(id),
        net::SocketAddress::unix_path(path_of(id))});
  }
  return opts;
}

std::string dict_name(int i) { return "Dict-" + std::to_string(i); }
std::string ctl_name(int i) { return "Ctl-" + std::to_string(i); }

/// Server process `i` of `n`: hosts one dictionary plus a control object
/// (Stats for the exactly-once audit, Shutdown to exit). Blocks until the
/// driver calls Shutdown.
int run_server(int i, int n, const std::string& dir) {
  net::SocketTransport transport(cluster_options(i, n, dir));
  net::Node node(transport, "server-" + std::to_string(i));

  apps::Dictionary dict(support::make_word_list(16),
                        {.object_name = dict_name(i)});
  node.host(dict.object());

  support::Event quit;
  Object ctl(ctl_name(i));
  auto stats = ctl.define_entry({.name = "Stats", .params = 0, .results = 2});
  ctl.implement(stats, [&dict](BodyCtx&) -> ValueList {
    const auto s = dict.stats();
    return {Value(static_cast<std::int64_t>(s.inserts)),
            Value(static_cast<std::int64_t>(s.requests))};
  });
  auto shutdown =
      ctl.define_entry({.name = "Shutdown", .params = 0, .results = 0});
  ctl.implement(shutdown, [&quit](BodyCtx&) -> ValueList {
    quit.set();
    return {};
  });
  ctl.start();
  node.host(ctl);

  // This process's directory replica: its own objects registered via host();
  // every sibling's placement comes from the same static config the driver
  // uses. (A stale entry here is not fatal — kWrongNode redirects heal it.)
  for (int j = 1; j <= n; ++j) {
    if (j == i) continue;
    transport.directory().add(dict_name(j), static_cast<net::NodeId>(j));
    transport.directory().add(ctl_name(j), static_cast<net::NodeId>(j));
  }

  quit.wait();
  // quit is set from inside the Shutdown body; its response frame is posted
  // only after the body returns. Give the reply a moment to be enqueued,
  // then drain the wire before tearing down.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  transport.wait_quiescent();
  ctl.stop();
  return 0;
}

/// Driver: spawns n server processes, then exercises the cluster over real
/// sockets — name-based calls, a deliberate stale route healed by
/// kWrongNode, aggressive retries, and an exactly-once audit against the
/// servers' own insert counters. Returns nonzero on any failed check.
int run_driver(int n, bool smoke) {
  char dir_template[] = "/tmp/alps-dict-XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string dir = dir_template;

  std::vector<pid_t> children;
  for (int i = 1; i <= n; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      ::execl("/proc/self/exe", "example_distributed_dictionary", "serve",
              std::to_string(i).c_str(), std::to_string(n).c_str(),
              dir.c_str(), static_cast<char*>(nullptr));
      std::perror("execl");
      std::_Exit(127);
    }
    children.push_back(pid);
  }

  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    if (!ok) {
      ++failures;
      std::fprintf(stderr, "FAIL: %s\n", what);
    }
    return ok;
  };

  {
    // Scope the transport so it tears down before waitpid.
    net::SocketTransport transport(cluster_options(0, n, dir));
    net::Node driver(transport, "driver");

    // Static placement knowledge — with one deliberate lie: the last
    // dictionary is claimed to live on node 1. The first call to it will
    // land wrong, earn a kWrongNode redirect from node 1's honest replica,
    // and heal this process's route cache in-band.
    for (int i = 1; i <= n; ++i) {
      const bool lie = n >= 2 && i == n;
      transport.directory().add(dict_name(i),
                                static_cast<net::NodeId>(lie ? 1 : i));
      transport.directory().add(ctl_name(i), static_cast<net::NodeId>(i));
    }

    // Servers are up once their listeners exist.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    for (int i = 1; i <= n; ++i) {
      const auto sock = dir + "/" + std::to_string(i) + ".sock";
      while (!std::filesystem::exists(sock)) {
        if (std::chrono::steady_clock::now() > deadline) {
          std::fprintf(stderr, "server %d never came up\n", i);
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }

    // Aggressive retries: a 10 ms attempt timeout forces retransmissions
    // across connect latency and scheduling noise — which is the point: the
    // per-server insert counters must still show exactly one execution per
    // key (at-most-once dedup over a real transport).
    net::CallOptions reliable;
    net::RetryPolicy policy;
    policy.attempt_timeout = std::chrono::milliseconds(10);
    reliable.retry = policy;
    reliable.deadline = std::chrono::seconds(30);

    const int keys_per_server = smoke ? 24 : 200;
    int insert_failures = 0;
    for (int i = 1; i <= n; ++i) {
      for (int k = 0; k < keys_per_server; ++k) {
        const std::string key =
            "key-" + std::to_string(i) + "-" + std::to_string(k);
        auto r = driver.call(dict_name(i), "Insert",
                             vals(key, "value of " + key), reliable);
        if (!r.ok()) {
          ++insert_failures;
          std::fprintf(stderr, "insert %s: %s\n", key.c_str(),
                       r.error().what());
        }
      }
    }
    check(insert_failures == 0, "every insert completes over the sockets");

    // Redirect audit: the lie about Dict-n must have been corrected by a
    // kWrongNode hop, not by luck.
    if (n >= 2) {
      check(driver.client_stats().redirects >= 1,
            "stale replica heals via kWrongNode redirect");
      check(driver.cached_route(dict_name(n)) ==
                std::optional<net::NodeId>(static_cast<net::NodeId>(n)),
            "route cache learns the true home");
    }

    // Read-back round-trip through each server.
    for (int i = 1; i <= n; ++i) {
      const std::string key = "key-" + std::to_string(i) + "-0";
      auto r = driver.call(dict_name(i), "Search", vals(key), reliable);
      check(r.ok() && r.value()[0].as_string() == "value of " + key,
            "search returns the inserted value");
    }

    // Exactly-once audit: each server's own insert counter must equal the
    // number of distinct keys sent to it, no matter how many retransmits
    // the aggressive policy produced.
    std::uint64_t retransmits = driver.client_stats().retransmits;
    for (int i = 1; i <= n; ++i) {
      auto r = driver.call(ctl_name(i), "Stats", {}, reliable);
      if (!check(r.ok(), "control Stats call completes")) continue;
      const auto inserts = r.value()[0].as_int();
      if (!check(inserts == keys_per_server,
                 "server executed each insert exactly once")) {
        std::fprintf(stderr, "  server %d: %lld inserts for %d keys\n", i,
                     static_cast<long long>(inserts), keys_per_server);
      }
    }
    std::printf(
        "multi-process: %d servers x %d keys, %llu retransmits, "
        "exactly-once %s\n",
        n, keys_per_server, static_cast<unsigned long long>(retransmits),
        failures == 0 ? "held" : "VIOLATED");

    for (int i = 1; i <= n; ++i) {
      // Shutdown responses race process exit; tolerate a lost reply.
      net::CallOptions lenient;
      lenient.deadline = std::chrono::seconds(5);
      lenient.retry = net::RetryPolicy{};
      driver.call(ctl_name(i), "Shutdown", {}, lenient);
    }
  }

  for (pid_t pid : children) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0) {
      std::perror("waitpid");
      ++failures;
    } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "server pid %d exited abnormally (status %d)\n",
                   static_cast<int>(pid), status);
      ++failures;
    }
  }
  std::filesystem::remove_all(dir);
  return failures == 0 ? 0 : 1;
}

// ---- chaos/soak harness (DESIGN.md §4.11) ----------------------------------

constexpr const char* kChaosToken = "alps-chaos-demo";

std::string chaos_obj_name(int i) { return "CDict-" + std::to_string(i); }

std::string chaos_sock(const std::string& dir, int id) {
  return dir + "/" + std::to_string(id) + ".sock";
}

/// Chaos server `i`: hosts one object with Insert/Stats/Shutdown. Applied
/// keys go to a durable O_APPEND log *before* the in-memory seen-set, so a
/// kill -9 between the two replays the key on restart (counted as a
/// re-execution, never a loss). Only the driver (node 0) is a peer.
int run_chaos_server(int i, const std::string& dir) {
  net::SocketTransportOptions opts;
  opts.local_node = static_cast<net::NodeId>(i);
  opts.local_name = "chaos-server-" + std::to_string(i);
  // Listen on a hidden path first and atomically rename to the advertised
  // one only after the object is hosted: a call that races server startup
  // then fails at connect (retried silently by the sender's backoff)
  // instead of reaching a transport with no object behind it (a typed,
  // non-retryable "no such object").
  opts.listen = net::SocketAddress::unix_path(chaos_sock(dir, i) + ".tmp");
  opts.peers.push_back(
      net::SocketPeer{0, "driver", net::SocketAddress::unix_path(
                                       chaos_sock(dir, 0))});
  opts.cluster_token = kChaosToken;
  net::SocketTransport transport(opts);
  net::Node node(transport, opts.local_name);

  // Crash recovery: replay the key log a dead predecessor left behind.
  const std::string log_path = dir + "/keys-" + std::to_string(i) + ".log";
  std::unordered_set<std::string> seen;
  {
    std::ifstream in(log_path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) seen.insert(line);
    }
  }
  const int log_fd =
      ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd < 0) {
    std::perror("open key log");
    return 1;
  }

  // Entry bodies of a manager-less object run concurrently on the pooled
  // executor, so the applied-key state is mutex-guarded.
  std::mutex mu;
  std::uint64_t requests = 0, reexec = 0;
  support::Event quit;
  Object obj(chaos_obj_name(i));
  auto insert = obj.define_entry({.name = "Insert", .params = 1, .results = 1});
  obj.implement(insert, [&](BodyCtx& ctx) -> ValueList {
    const std::string key = ctx.param(0).as_string();
    std::scoped_lock lock(mu);
    ++requests;
    if (seen.count(key) != 0) {
      // A retransmit that outlived the RPC dedup table (it died with the
      // killed incarnation) re-executes the body; the durable log makes
      // that visible-but-idempotent instead of a double insert.
      ++reexec;
      return {Value(std::int64_t(0))};
    }
    const std::string rec = key + "\n";
    if (::write(log_fd, rec.data(), rec.size()) !=
        static_cast<ssize_t>(rec.size())) {
      std::perror("append key log");
    }
    seen.insert(key);
    return {Value(std::int64_t(1))};
  });
  auto stats = obj.define_entry({.name = "Stats", .params = 0, .results = 3});
  obj.implement(stats, [&](BodyCtx&) -> ValueList {
    std::scoped_lock lock(mu);
    return {Value(static_cast<std::int64_t>(seen.size())),
            Value(static_cast<std::int64_t>(requests)),
            Value(static_cast<std::int64_t>(reexec))};
  });
  auto shutdown =
      obj.define_entry({.name = "Shutdown", .params = 0, .results = 0});
  obj.implement(shutdown, [&quit](BodyCtx&) -> ValueList {
    quit.set();
    return {};
  });
  obj.start();
  node.host(obj);
  std::filesystem::rename(chaos_sock(dir, i) + ".tmp", chaos_sock(dir, i));

  quit.wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  transport.wait_quiescent();
  obj.stop();
  ::close(log_fd);
  return 0;
}

/// Chaos driver: the scripted failure sequence from DESIGN.md §4.11 —
/// impostor rejection, kill -9 + same-address restart mid-burst, a server
/// added to the live cluster, a healthy peer evicted and re-admitted —
/// with an exactly-once audit against each server's durable key counters.
int run_chaos(int n, bool ci) {
  if (std::getenv("ALPS_SOAK") == nullptr) {
    std::printf("[SKIP-SOAK] ALPS_SOAK=1 not set; skipping chaos soak\n");
    return 77;  // ctest SKIP_RETURN_CODE
  }
  if (n < 2) {
    std::fprintf(stderr, "chaos needs at least two servers\n");
    return 2;
  }
  char dir_template[] = "/tmp/alps-chaos-XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string dir = dir_template;

  auto spawn = [&dir](int i) -> pid_t {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execl("/proc/self/exe", "example_distributed_dictionary",
              "chaos-serve", std::to_string(i).c_str(), dir.c_str(),
              static_cast<char*>(nullptr));
      std::perror("execl");
      std::_Exit(127);
    }
    return pid;
  };
  std::map<int, pid_t> pids;
  for (int i = 1; i <= n; ++i) pids[i] = spawn(i);

  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    if (!ok) {
      ++failures;
      std::fprintf(stderr, "FAIL: %s\n", what);
    }
    return ok;
  };

  const int victim = 1;    // kill -9'ed mid-burst, restarted on same address
  const int churned = 2;   // evicted from the live cluster, then re-admitted
  const int added = n + 1; // joins the live cluster mid-run
  const int K = ci ? 250 : 1000;  // keys per server

  {
    net::SocketTransportOptions opts;
    opts.local_node = 0;
    opts.local_name = "chaos-driver";
    opts.listen = net::SocketAddress::unix_path(chaos_sock(dir, 0));
    for (int i = 1; i <= n; ++i) {
      opts.peers.push_back(net::SocketPeer{
          static_cast<net::NodeId>(i), "chaos-server-" + std::to_string(i),
          net::SocketAddress::unix_path(chaos_sock(dir, i))});
    }
    opts.cluster_token = kChaosToken;
    net::SocketTransport transport(opts);
    net::Node driver(transport, "chaos-driver");
    for (int i = 1; i <= n; ++i) {
      transport.directory().add(chaos_obj_name(i),
                                static_cast<net::NodeId>(i));
    }
    std::uint64_t peers_added = 0, peers_removed = 0;
    const auto member_token = transport.add_membership_listener(
        [&](net::NodeId, bool was_added) {
          if (was_added) ++peers_added; else ++peers_removed;
        });

    // ---- impostor: raw garbage at the driver's own listener must be
    // rejected by the HELLO gate before any frame is dispatched.
    const auto rejected_before = support::net_health().handshake_rejected.get();
    {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, chaos_sock(dir, 0).c_str(),
                   sizeof(addr.sun_path) - 1);
      if (check(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                "impostor can reach the listener")) {
        const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
        (void)::send(fd, garbage, sizeof(garbage) - 1, MSG_NOSIGNAL);
        timeval tv{2, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        char buf[64];
        while (::recv(fd, buf, sizeof(buf), 0) > 0) {
        }
      }
      ::close(fd);
    }
    check(support::net_health().handshake_rejected.get() > rejected_before,
          "impostor handshake rejected");
    check(transport.transport_stats().frames_delivered == 0,
          "impostor delivered no frames");

    net::CallOptions reliable;
    net::RetryPolicy policy;
    policy.attempt_timeout = std::chrono::milliseconds(15);
    reliable.retry = policy;
    reliable.deadline = std::chrono::seconds(60);

    auto key_of = [](int i, int k) {
      return "k-" + std::to_string(i) + "-" + std::to_string(k);
    };
    std::map<int, int> next;  // next unissued key index per server
    auto insert_upto = [&](int i, int upto) {
      for (; next[i] < upto; ++next[i]) {
        auto r = driver.call(chaos_obj_name(i), "Insert",
                             vals(key_of(i, next[i])), reliable);
        if (!check(r.ok(), "insert completes under chaos")) {
          std::fprintf(stderr, "  %s: %s\n", key_of(i, next[i]).c_str(),
                       r.error().what());
        }
      }
    };

    // Phase A: warm the cluster — 40% of each original server's keys.
    const int warm = (K * 2) / 5;
    for (int i = 1; i <= n; ++i) insert_upto(i, warm);

    // Phase B: kill -9 the victim while a burst of calls is in flight,
    // restart it on the same address. Retries ride the retransmit queue
    // across the blip; the durable key log absorbs any re-executions.
    const int burst_n = ci ? 60 : 200;
    auto proxy = driver.remote(chaos_obj_name(victim));
    std::vector<net::RpcHandle> burst;
    burst.reserve(burst_n);
    for (int b = 0; b < burst_n; ++b) {
      burst.push_back(proxy.async_call(
          "Insert", vals(key_of(victim, next[victim] + b)), reliable));
    }
    ::kill(pids[victim], SIGKILL);
    int status = 0;
    ::waitpid(pids[victim], &status, 0);
    check(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
          "victim died by SIGKILL");
    // A real downtime window so retransmits actually queue against a dead
    // address before the same-address restart.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    pids[victim] = spawn(victim);
    int burst_ok = 0;
    for (auto& h : burst) {
      if (h.result().ok()) ++burst_ok;
    }
    next[victim] += burst_n;
    check(burst_ok == burst_n,
          "every in-flight call completes across the kill");

    // Phase C1: grow the live cluster — admit a brand-new server and give
    // it a full complement of keys while everything else keeps running.
    transport.add_peer(static_cast<net::NodeId>(added),
                       "chaos-server-" + std::to_string(added),
                       "unix:" + chaos_sock(dir, added));
    transport.directory().add(chaos_obj_name(added),
                              static_cast<net::NodeId>(added));
    pids[added] = spawn(added);
    insert_upto(added, K);

    // Phase C2: evict a healthy peer live — calls to it must fail typed
    // (its directory entries are purged), not hang — then re-admit it.
    check(transport.remove_peer(static_cast<net::NodeId>(churned)),
          "live eviction succeeds");
    net::CallOptions fast;
    fast.deadline = std::chrono::seconds(1);
    auto evicted = driver.call(chaos_obj_name(churned), "Insert",
                               vals(std::string("evicted-probe")), fast);
    check(!evicted.ok() &&
              evicted.error().cause() == net::RpcCause::kObjectNotFound,
          "call to an evicted peer fails typed, not by timeout");
    transport.add_peer(static_cast<net::NodeId>(churned),
                       "chaos-server-" + std::to_string(churned),
                       "unix:" + chaos_sock(dir, churned));
    transport.directory().add(chaos_obj_name(churned),
                              static_cast<net::NodeId>(churned));

    // Phase D: drain the remaining keys everywhere, including the
    // restarted victim and the re-admitted peer.
    for (int i = 1; i <= n; ++i) insert_upto(i, K);

    // Exactly-once audit from the servers' own durable counters: every
    // server holds exactly its K distinct keys; servers that were never
    // killed saw zero re-executions (the RPC dedup table alone sufficed).
    std::uint64_t total_distinct = 0;
    for (int i = 1; i <= added; ++i) {
      auto r = driver.call(chaos_obj_name(i), "Stats", {}, reliable);
      if (!check(r.ok(), "Stats call completes")) continue;
      const auto distinct = r.value()[0].as_int();
      const auto reexec = r.value()[2].as_int();
      total_distinct += static_cast<std::uint64_t>(distinct);
      if (!check(distinct == K, "server holds exactly K distinct keys")) {
        std::fprintf(stderr, "  server %d: %lld distinct for %d keys\n", i,
                     static_cast<long long>(distinct), K);
      }
      if (i != victim) {
        check(reexec == 0, "never-killed server saw no re-executions");
      }
    }
    check(total_distinct == static_cast<std::uint64_t>(K) * (n + 1),
          "cluster converged on every issued key exactly once");
    check(peers_added == 2 && peers_removed == 1,
          "membership listener saw the add/evict/re-admit churn");

    const auto ts = transport.transport_stats();
    std::printf(
        "chaos: %d+1 servers x %d keys, kill -9 + restart survived, "
        "%llu retransmits, %llu frames requeued, %llu handshake rejects, "
        "exactly-once %s\n",
        n, K,
        static_cast<unsigned long long>(driver.client_stats().retransmits),
        static_cast<unsigned long long>(ts.frames_requeued),
        static_cast<unsigned long long>(
            support::net_health().handshake_rejected.get()),
        failures == 0 ? "held" : "VIOLATED");

    transport.remove_membership_listener(member_token);
    for (int i = 1; i <= added; ++i) {
      net::CallOptions lenient;
      lenient.deadline = std::chrono::seconds(5);
      lenient.retry = net::RetryPolicy{};
      driver.call(chaos_obj_name(i), "Shutdown", {}, lenient);
    }
  }

  for (const auto& [i, pid] : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0) {
      std::perror("waitpid");
      ++failures;
    } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "chaos server %d exited abnormally (status %d)\n",
                   i, status);
      ++failures;
    }
  }
  std::filesystem::remove_all(dir);
  return failures == 0 ? 0 : 1;
}

// ---- shard-migration soak (DESIGN.md §4.12) --------------------------------

constexpr const char* kShardToken = "alps-shard-soak";
constexpr int kShardInitial = 2;  ///< homes in the seed map
constexpr int kShardMax = 4;      ///< homes after both live splits

std::string shard_ctl_name(int i) { return "SCtl-" + std::to_string(i); }

/// Shard server `i`: hosts its slice of the sharded object "SDict" plus a
/// per-server control object. Applied keys go to a durable O_APPEND log
/// before the in-memory seen-set (same recovery discipline as the chaos
/// server), so the driver can audit exactly-once from the servers' own
/// counters across splits. SetMap(n) installs the n-home map {1..n} in this
/// process's directory replica — the shard-split signal; from then on this
/// server answers shard-precise kWrongNode redirects for keys it no longer
/// owns.
int run_shard_server(int i, const std::string& dir) {
  net::SocketTransportOptions opts;
  opts.local_node = static_cast<net::NodeId>(i);
  opts.local_name = "shard-server-" + std::to_string(i);
  // Hidden listen path, atomically renamed once everything is hosted (see
  // run_chaos_server for why).
  opts.listen = net::SocketAddress::unix_path(chaos_sock(dir, i) + ".tmp");
  opts.peers.push_back(net::SocketPeer{
      0, "driver", net::SocketAddress::unix_path(chaos_sock(dir, 0))});
  opts.cluster_token = kShardToken;
  net::SocketTransport transport(opts);
  net::Node node(transport, opts.local_name);

  const std::string log_path = dir + "/keys-" + std::to_string(i) + ".log";
  std::unordered_set<std::string> seen;
  {
    std::ifstream in(log_path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) seen.insert(line);
    }
  }
  const int log_fd =
      ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd < 0) {
    std::perror("open key log");
    return 1;
  }

  std::mutex mu;
  std::uint64_t requests = 0, reexec = 0;
  support::Event quit;
  Object obj("SDict");
  auto insert = obj.define_entry({.name = "Insert", .params = 1, .results = 1});
  obj.implement(insert, [&](BodyCtx& ctx) -> ValueList {
    const std::string key = ctx.param(0).as_string();
    std::scoped_lock lock(mu);
    ++requests;
    if (seen.count(key) != 0) {
      ++reexec;
      return {Value(std::int64_t(0))};
    }
    const std::string rec = key + "\n";
    if (::write(log_fd, rec.data(), rec.size()) !=
        static_cast<ssize_t>(rec.size())) {
      std::perror("append key log");
    }
    seen.insert(key);
    return {Value(std::int64_t(1))};
  });
  obj.start();
  node.host(obj);

  Object ctl(shard_ctl_name(i));
  auto set_map =
      ctl.define_entry({.name = "SetMap", .params = 1, .results = 0});
  ctl.implement(set_map, [&transport](BodyCtx& ctx) -> ValueList {
    // Install the n-home map {1..n}. New homes receive it before old homes
    // (driver's ordering), so by the time an old home starts redirecting a
    // moved key its new shard already accepts it.
    const auto n = ctx.param(0).as_int();
    std::vector<net::NodeId> homes;
    for (std::int64_t h = 1; h <= n; ++h) {
      homes.push_back(static_cast<net::NodeId>(h));
    }
    transport.directory().add_sharded("SDict", std::move(homes));
    return {};
  });
  auto stats = ctl.define_entry({.name = "Stats", .params = 0, .results = 3});
  ctl.implement(stats, [&](BodyCtx&) -> ValueList {
    std::scoped_lock lock(mu);
    return {Value(static_cast<std::int64_t>(seen.size())),
            Value(static_cast<std::int64_t>(requests)),
            Value(static_cast<std::int64_t>(reexec))};
  });
  auto shutdown =
      ctl.define_entry({.name = "Shutdown", .params = 0, .results = 0});
  ctl.implement(shutdown, [&quit](BodyCtx&) -> ValueList {
    quit.set();
    return {};
  });
  ctl.start();
  node.host(ctl);

  // Seed this replica's shard map after host() (which registered "SDict"
  // single-homed here): the initial truth is kShardInitial homes, whether or
  // not this server is among them yet.
  {
    std::vector<net::NodeId> homes;
    for (int h = 1; h <= kShardInitial; ++h) {
      homes.push_back(static_cast<net::NodeId>(h));
    }
    transport.directory().add_sharded("SDict", std::move(homes));
  }
  std::filesystem::rename(chaos_sock(dir, i) + ".tmp", chaos_sock(dir, i));

  quit.wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  transport.wait_quiescent();
  ctl.stop();
  obj.stop();
  ::close(log_fd);
  return 0;
}

/// Shard-soak driver: inserts a keyed stream against the sharded name while
/// the map is split live 2 → 3 → 4 homes under in-flight traffic, then
/// audits exactly-once convergence from the servers' durable counters. The
/// driver's own map stays deliberately stale across both splits — every
/// moved key's first call earns a shard-precise kWrongNode redirect that
/// patches exactly one slot of its cached map.
int run_shard_soak(bool ci) {
  if (std::getenv("ALPS_SOAK") == nullptr) {
    std::printf("[SKIP-SOAK] ALPS_SOAK=1 not set; skipping shard soak\n");
    return 77;  // ctest SKIP_RETURN_CODE
  }
  char dir_template[] = "/tmp/alps-shard-XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string dir = dir_template;

  std::map<int, pid_t> pids;
  for (int i = 1; i <= kShardMax; ++i) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execl("/proc/self/exe", "example_distributed_dictionary",
              "shard-serve", std::to_string(i).c_str(), dir.c_str(),
              static_cast<char*>(nullptr));
      std::perror("execl");
      std::_Exit(127);
    }
    pids[i] = pid;
  }

  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    if (!ok) {
      ++failures;
      std::fprintf(stderr, "FAIL: %s\n", what);
    }
    return ok;
  };

  const int K = ci ? 600 : 2400;        // total keys
  const int burst_n = ci ? 80 : 240;    // in-flight calls across each split

  {
    net::SocketTransportOptions opts;
    opts.local_node = 0;
    opts.local_name = "shard-driver";
    opts.listen = net::SocketAddress::unix_path(chaos_sock(dir, 0));
    for (int i = 1; i <= kShardMax; ++i) {
      opts.peers.push_back(net::SocketPeer{
          static_cast<net::NodeId>(i), "shard-server-" + std::to_string(i),
          net::SocketAddress::unix_path(chaos_sock(dir, i))});
    }
    opts.cluster_token = kShardToken;
    net::SocketTransport transport(opts);
    net::Node driver(transport, "shard-driver");
    {
      std::vector<net::NodeId> homes;
      for (int h = 1; h <= kShardInitial; ++h) {
        homes.push_back(static_cast<net::NodeId>(h));
      }
      transport.directory().add_sharded("SDict", std::move(homes));
    }
    for (int i = 1; i <= kShardMax; ++i) {
      transport.directory().add(shard_ctl_name(i),
                                static_cast<net::NodeId>(i));
    }

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    for (int i = 1; i <= kShardMax; ++i) {
      while (!std::filesystem::exists(chaos_sock(dir, i))) {
        if (std::chrono::steady_clock::now() > deadline) {
          std::fprintf(stderr, "shard server %d never came up\n", i);
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }

    net::CallOptions reliable;
    net::RetryPolicy policy;
    policy.attempt_timeout = std::chrono::milliseconds(15);
    reliable.retry = policy;
    reliable.deadline = std::chrono::seconds(60);

    auto key_of = [](int k) { return "sk-" + std::to_string(k); };
    int issued = 0;
    auto insert_upto = [&](int upto) {
      for (; issued < upto; ++issued) {
        auto r =
            driver.call("SDict", "Insert", vals(key_of(issued)), reliable);
        if (!check(r.ok(), "insert completes across the soak")) {
          std::fprintf(stderr, "  %s: %s\n", key_of(issued).c_str(),
                       r.error().what());
        }
      }
    };
    // Installs the n-home map on every server, newest first: a new home
    // accepts its shard before any old home starts redirecting into it.
    auto install_map = [&](int n) {
      for (int i = kShardMax; i >= 1; --i) {
        auto r = driver.call(shard_ctl_name(i), "SetMap",
                             vals(static_cast<std::int64_t>(n)), reliable);
        check(r.ok(), "SetMap reaches every server");
      }
    };
    // The live-split pattern: a burst of async inserts goes up against the
    // old map, the new map is installed while they are in flight, and every
    // call must still complete — moved keys through a redirect hop.
    auto split_under_burst = [&](int new_n) {
      auto proxy = driver.remote("SDict");
      std::vector<net::RpcHandle> burst;
      burst.reserve(burst_n);
      for (int b = 0; b < burst_n; ++b) {
        burst.push_back(
            proxy.async_call("Insert", vals(key_of(issued + b)), reliable));
      }
      install_map(new_n);
      int ok = 0;
      for (auto& h : burst) {
        if (h.result().ok()) ++ok;
      }
      issued += burst_n;
      check(ok == burst_n,
            "every in-flight insert completes across the split");
    };

    insert_upto((K * 2) / 5);     // warm: cached 2-home map established
    split_under_burst(3);         // live split 2 -> 3 mid-burst
    insert_upto((K * 7) / 10);    // stale slots heal one redirect per slot
    split_under_burst(4);         // live split 3 -> 4 mid-burst
    insert_upto(K);               // drain on the 4-home map

    check(driver.client_stats().redirects >= 1,
          "moved keys healed via shard-precise kWrongNode redirects");

    // Exactly-once audit from the servers' durable counters: the union of
    // per-server key logs is exactly the issued key set (each key applied on
    // one server), and no server ever re-executed an applied key.
    std::uint64_t total_distinct = 0, total_reexec = 0;
    for (int i = 1; i <= kShardMax; ++i) {
      auto r = driver.call(shard_ctl_name(i), "Stats", {}, reliable);
      if (!check(r.ok(), "Stats call completes")) continue;
      total_distinct += static_cast<std::uint64_t>(r.value()[0].as_int());
      total_reexec += static_cast<std::uint64_t>(r.value()[2].as_int());
      check(r.value()[0].as_int() > 0,
            "every home serves a non-empty shard after the splits");
    }
    check(total_distinct == static_cast<std::uint64_t>(issued),
          "union of shard key logs is exactly the issued key set");
    check(total_reexec == 0, "zero re-executions across both live splits");

    std::printf(
        "shard-soak: %d keys over 2->3->4 homes, %llu redirects, "
        "%llu retransmits, exactly-once %s\n",
        issued,
        static_cast<unsigned long long>(driver.client_stats().redirects),
        static_cast<unsigned long long>(driver.client_stats().retransmits),
        failures == 0 ? "held" : "VIOLATED");

    for (int i = 1; i <= kShardMax; ++i) {
      net::CallOptions lenient;
      lenient.deadline = std::chrono::seconds(5);
      lenient.retry = net::RetryPolicy{};
      driver.call(shard_ctl_name(i), "Shutdown", {}, lenient);
    }
  }

  for (const auto& [i, pid] : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0) {
      std::perror("waitpid");
      ++failures;
    } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "shard server %d exited abnormally (status %d)\n",
                   i, status);
      ++failures;
    }
  }
  std::filesystem::remove_all(dir);
  return failures == 0 ? 0 : 1;
}

// ---- original single-process demo on the simulated network -----------------

int run_sim_demo() {
  // A 3-node network with 200±100us link latency.
  net::Network network(net::LinkLatency{std::chrono::microseconds(200),
                                        std::chrono::microseconds(100)},
                       /*seed=*/7);
  net::Node server(network, "server");
  net::Node client_a(network, "client-a");
  net::Node client_b(network, "client-b");

  // The dictionary (manager, hidden array, combining) lives on the server.
  auto words = support::make_word_list(32);
  apps::Dictionary dict(words, {.search_max = 8,
                                .search_time = std::chrono::microseconds(500)});
  server.host(dict.object());

  // A side object demonstrating channels as RPC parameters.
  Object reporter("Reporter");
  EntryRef watch = reporter.define_entry({.name = "Watch", .params = 2, .results = 0});
  reporter.implement(watch, [](BodyCtx& ctx) -> ValueList {
    const auto n = ctx.param(0).as_int();
    const ChannelRef progress = ctx.param(1).as_channel();
    for (std::int64_t i = 1; i <= n; ++i) {
      progress->send(vals(i, n));  // streams across the simulated network
    }
    return {};
  });
  reporter.start();
  server.host(reporter);

  // Clients call by object *name* — host() registered "Dictionary" in the
  // cluster directory, so nobody needs to know which node it lives on
  // (location transparency, DESIGN.md §4.7). Frame batching coalesces the
  // burst of requests/responses on each link.
  client_a.set_batching({});  // defaults: flush at 8 frames or 200 µs
  client_b.set_batching({});
  server.set_batching({});
  auto remote_dict_a = client_a.remote("Dictionary");
  auto remote_dict_b = client_b.remote("Dictionary");

  support::ZipfGenerator zipf(words.size(), 1.1, 3);
  std::vector<net::RpcHandle> calls;
  for (int i = 0; i < 30; ++i) {
    auto& proxy = (i % 2 == 0) ? remote_dict_a : remote_dict_b;
    calls.push_back(proxy.async_call("Search", vals(words[zipf.next()]), {}));
  }
  for (auto& c : calls) {
    auto r = c.result();
    std::printf("remote search -> %s\n",
                r.ok() ? r.value()[0].as_string().c_str() : r.error().what());
  }
  const auto s = dict.stats();
  std::printf("server combined %llu of %llu remote requests\n",
              static_cast<unsigned long long>(s.combined),
              static_cast<unsigned long long>(s.requests));
  const auto ab = client_a.batch_stats();
  std::printf("client-a batching: %llu frames flushed as %llu batches + "
              "%llu singles\n",
              static_cast<unsigned long long>(ab.frames_enqueued),
              static_cast<unsigned long long>(ab.batches_posted),
              static_cast<unsigned long long>(ab.singles_posted));

  // Channel across the network: client passes a reply channel to the
  // executing remote procedure.
  ChannelRef progress = make_channel("progress");
  auto remote_reporter = client_a.remote("Reporter");
  if (!remote_reporter.call("Watch", vals(5, progress), {}).ok()) return 1;
  for (int i = 0; i < 5; ++i) {
    ValueList update = progress->receive();
    std::printf("progress from remote procedure: %lld/%lld\n",
                static_cast<long long>(update[0].as_int()),
                static_cast<long long>(update[1].as_int()));
  }

  // Lossy phase: 15% of frames vanish, but retries + the server's
  // at-most-once table keep every search exactly-once.
  network.set_loss_probability(0.15);
  net::CallOptions reliable;
  reliable.retry = net::RetryPolicy{};
  const auto dict_before = dict.stats().requests;
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    auto r = remote_dict_a.call("Search", vals(words[zipf.next()]), reliable);
    if (r.ok()) ++completed;
  }
  const auto cs = client_a.client_stats();
  const auto ss = server.server_stats();
  std::printf(
      "lossy phase: %d/20 searches completed, %llu retransmits, "
      "%llu dedup hits, server executed %llu (exactly one per call)\n",
      completed, static_cast<unsigned long long>(cs.retransmits),
      static_cast<unsigned long long>(ss.dedup_replayed + ss.dup_in_flight +
                                      ss.dup_acked),
      static_cast<unsigned long long>(dict.stats().requests - dict_before));

  const auto net_stats = network.transport_stats();
  std::printf("network: %llu frames, %llu bytes, %llu lost\n",
              static_cast<unsigned long long>(net_stats.frames_delivered),
              static_cast<unsigned long long>(net_stats.bytes_delivered),
              static_cast<unsigned long long>(net_stats.frames_lost));

  // Multiactive phase (DESIGN.md §4.8): a second dictionary whose Search
  // entries are annotated compatible with each other, so remote searches
  // overlap inside the object without per-call manager turns; Insert is a
  // serial group and runs in exclusion.
  network.set_loss_probability(0.0);
  apps::Dictionary ma_dict(
      words, {.search_time = std::chrono::microseconds(500),
              .multiactive = true,
              .object_name = "MultiactiveDictionary"});
  server.host(ma_dict.object());
  auto remote_ma = client_b.remote("MultiactiveDictionary");
  if (!remote_ma.call("Insert", vals(std::string("alps"),
                                     std::string("a language for processes")),
                      {})
           .ok()) {
    return 1;
  }
  std::vector<net::RpcHandle> ma_calls;
  for (int i = 0; i < 20; ++i) {
    ma_calls.push_back(remote_ma.async_call(
        "Search", vals(i % 4 == 0 ? std::string("alps") : words[zipf.next()]),
        {}));
  }
  int ma_ok = 0;
  for (auto& c : ma_calls) {
    if (c.result().ok()) ++ma_ok;
  }
  std::uint64_t ma_concurrent = 0, ma_blocked = 0;
  for (const auto& e : ma_dict.object().stats().entries) {
    ma_concurrent += e.ma_concurrent_starts;
    ma_blocked += e.ma_conflict_blocks;
  }
  std::printf(
      "multiactive phase: %d/20 remote searches ok, %llu concurrent starts, "
      "%llu conflict blocks\n",
      ma_ok, static_cast<unsigned long long>(ma_concurrent),
      static_cast<unsigned long long>(ma_blocked));

  reporter.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    if (argc != 5) {
      std::fprintf(stderr, "usage: %s serve <i> <n> <dir>\n", argv[0]);
      return 2;
    }
    return run_server(std::atoi(argv[2]), std::atoi(argv[3]), argv[4]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "chaos-serve") == 0) {
    if (argc != 4) {
      std::fprintf(stderr, "usage: %s chaos-serve <i> <dir>\n", argv[0]);
      return 2;
    }
    return run_chaos_server(std::atoi(argv[2]), argv[3]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "shard-serve") == 0) {
    if (argc != 4) {
      std::fprintf(stderr, "usage: %s shard-serve <i> <dir>\n", argv[0]);
      return 2;
    }
    return run_shard_server(std::atoi(argv[2]), argv[3]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "shard-soak") == 0) {
    const bool ci = argc >= 3 && std::strcmp(argv[2], "--ci") == 0;
    return run_shard_soak(ci);
  }
  if (argc >= 2 && std::strcmp(argv[1], "chaos") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s chaos <n> [--ci]\n", argv[0]);
      return 2;
    }
    const int n = std::atoi(argv[2]);
    const bool ci = argc >= 4 && std::strcmp(argv[3], "--ci") == 0;
    return run_chaos(n, ci);
  }
  if (argc >= 2 && std::strcmp(argv[1], "driver") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s driver <n> [--smoke]\n", argv[0]);
      return 2;
    }
    const int n = std::atoi(argv[2]);
    const bool smoke = argc >= 4 && std::strcmp(argv[3], "--smoke") == 0;
    if (n < 1) {
      std::fprintf(stderr, "driver needs at least one server\n");
      return 2;
    }
    return run_driver(n, smoke);
  }
  return run_sim_demo();
}
