// Monitoring an object (§2.3): "the manager provides a facility for pre-
// and post-processing of entry calls which can be used not only to implement
// scheduling but also to monitor the object."
//
// A TraceCollector watches every call-lifecycle transition of a printer
// spooler under load and prints the latency decomposition: where did each
// Print call spend its time — waiting for an array slot, waiting for the
// manager to accept (i.e. for a free printer), printing, or waiting for the
// manager to endorse termination?
//
//   $ example_monitoring
#include <cstdio>

#include "core/alps.h"
#include "support/rng.h"

int main() {
  using namespace alps;

  constexpr std::size_t kPrinters = 2;

  TraceCollector collector;
  Object spooler("Spooler");
  EntryRef print = spooler.define_entry({.name = "Print", .params = 2, .results = 0});
  spooler.implement(
      print, ImplDecl{.array = 6, .hidden_params = 1, .hidden_results = 1},
      [](BodyCtx& ctx) -> ValueList {
        const auto pages = ctx.param(1).as_int();
        std::this_thread::sleep_for(std::chrono::microseconds(400) *
                                    static_cast<int>(pages));
        return {ctx.param(2)};  // hand the printer back as a hidden result
      });
  spooler.set_manager({intercept(print)}, [&](Manager& m) {
    std::deque<std::int64_t> free_printers;
    for (std::size_t p = 0; p < kPrinters; ++p) {
      free_printers.push_back(static_cast<std::int64_t>(p));
    }
    Select()
        .on(accept_guard(print)
                .when([&](const ValueList&) { return !free_printers.empty(); })
                .always_reeval()  // reads the manager-local printer pool
                .then([&](Accepted a) {
                  const auto printer = free_printers.front();
                  free_printers.pop_front();
                  m.start(a, vals(printer));
                }))
        .on(await_guard(print).then([&](Awaited w) {
          free_printers.push_back(w.results[0].as_int());
          m.finish(w);
        }))
        .loop(m);
  });
  spooler.set_tracer(&collector);
  spooler.start();

  // 40 jobs of 1-4 pages from 4 submitters.
  support::Rng rng(3);
  std::vector<CallHandle> jobs;
  for (int j = 0; j < 40; ++j) {
    jobs.push_back(
        spooler.async_call(print, vals("doc" + std::to_string(j),
                                       rng.next_range(1, 4))));
  }
  for (auto& j : jobs) j.get();
  spooler.stop();

  const auto report = collector.report("Print");
  std::printf("Print: %llu arrived, %llu finished, %llu failed\n",
              (unsigned long long)report.arrived,
              (unsigned long long)report.finished,
              (unsigned long long)report.failed);
  std::printf("  attach wait   (array contention) %s\n",
              report.attach_wait.summary().c_str());
  std::printf("  accept wait   (printer scarcity) %s\n",
              report.accept_wait.summary().c_str());
  std::printf("  start delay   (manager handoff)  %s\n",
              report.start_delay.summary().c_str());
  std::printf("  service time  (printing)         %s\n",
              report.service_time.summary().c_str());
  std::printf("  finish delay  (manager endorse)  %s\n",
              report.finish_delay.summary().c_str());
  std::printf("  total latency                    %s\n",
              report.total_latency.summary().c_str());
  return 0;
}
