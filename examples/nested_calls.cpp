// §2.3 nested calls: "two objects X and Y can be programmed without deadlock
// such that an entry procedure P in X calls a procedure Q in Y which in turn
// calls another entry R in X [...] Note that DP, Ada and SR suffer from the
// nested calls problem."
//
// This example runs the X.P → Y.Q → X.R cycle twice:
//   1. on ALPS objects — completes, because X's manager starts P
//      asynchronously and is immediately ready to accept R;
//   2. on Ada-style rendezvous tasks — deadlocks (detected by timeout),
//      because X's server is synchronously stuck inside P.
//
//   $ example_nested_calls
#include <cstdio>

#include "baselines/rendezvous.h"
#include "core/alps.h"

namespace {

bool run_alps() {
  using namespace alps;

  Object x("X", ObjectOptions{.model = sched::ProcessModel::kDynamic});
  Object y("Y", ObjectOptions{.model = sched::ProcessModel::kDynamic});

  EntryRef p = x.define_entry({.name = "P", .params = 0, .results = 1});
  EntryRef r = x.define_entry({.name = "R", .params = 0, .results = 1});
  EntryRef q = y.define_entry({.name = "Q", .params = 0, .results = 1});

  x.implement(p, [&](BodyCtx&) -> ValueList {
    // P calls out to Y.Q while X's manager keeps accepting.
    return {Value(y.call(q, {})[0].as_int() + 1)};
  });
  x.implement(r, [&](BodyCtx&) -> ValueList { return {Value(100)}; });
  y.implement(q, [&](BodyCtx&) -> ValueList {
    // Q calls back into X.R — the re-entrant call of the deadlock pattern.
    return {Value(x.call(r, {})[0].as_int() + 10)};
  });

  // Both managers start bodies asynchronously and return to their loops.
  x.set_manager({intercept(p), intercept(r)}, [&](Manager& m) {
    Select()
        .on(accept_guard(p).then([&](Accepted a) { m.start(a); }))
        .on(await_guard(p).then([&](Awaited w) { m.finish(w); }))
        .on(accept_guard(r).then([&](Accepted a) { m.start(a); }))
        .on(await_guard(r).then([&](Awaited w) { m.finish(w); }))
        .loop(m);
  });
  y.set_manager({intercept(q)}, [&](Manager& m) {
    Select()
        .on(accept_guard(q).then([&](Accepted a) { m.start(a); }))
        .on(await_guard(q).then([&](Awaited w) { m.finish(w); }))
        .loop(m);
  });
  x.start();
  y.start();

  auto handle = x.async_call(p, {});
  const bool completed = handle.wait_for(std::chrono::seconds(5));
  long long result = 0;
  if (completed) result = handle.get()[0].as_int();
  std::printf("ALPS managers:       X.P -> Y.Q -> X.R %s (result=%lld)\n",
              completed ? "completed" : "DEADLOCKED", result);
  x.stop();
  y.stop();
  return completed && result == 111;
}

bool run_rendezvous() {
  using alps::baselines::RendezvousTask;
  RendezvousTask x("X"), y("Y");
  auto p = x.add_entry("P");
  auto r = x.add_entry("R");
  auto q = y.add_entry("Q");
  bool deadlocked = false;

  y.start([&, q](RendezvousTask& t) {
    while (t.accept(q, [&](const RendezvousTask::Params&) {
      auto back = x.call_for(r, {}, std::chrono::milliseconds(500));
      if (!back) {
        deadlocked = true;
        return RendezvousTask::Results{0};
      }
      return RendezvousTask::Results{(*back)[0] + 10};
    })) {
    }
  });
  x.start([&, p, r](RendezvousTask& t) {
    while (t.select_accept({p, r},
                           [&](std::size_t which, const RendezvousTask::Params&) {
                             if (which == p) {
                               auto out = y.call(q, {});
                               return RendezvousTask::Results{out[0] + 1};
                             }
                             return RendezvousTask::Results{100};
                           })
               .has_value()) {
    }
  });

  x.call(p, {});
  std::printf("Ada-style rendezvous: X.P -> Y.Q -> X.R %s\n",
              deadlocked ? "DEADLOCKED (as the paper predicts)" : "completed");
  x.stop();
  y.stop();
  return deadlocked;
}

}  // namespace

int main() {
  const bool alps_ok = run_alps();
  const bool rendezvous_deadlocks = run_rendezvous();
  return (alps_ok && rendezvous_deadlocks) ? 0 : 1;
}
