// The ALPS surface language end-to-end: the paper's §2.4.1 bounded buffer
// and §2.5.1 readers–writers database written in the paper's own notation,
// parsed and executed on the kernel by the interpreter (src/lang).
//
//   $ example_alps_language
#include <cstdio>
#include <thread>

#include "lang/interp.h"

static const char* kProgram = R"(
  -- ===================================================================
  -- Paper section 2.4.1: the bounded buffer.
  -- ===================================================================
  object Buffer defines
    proc Deposit(string);
    proc Remove returns (string);
  end Buffer;

  object Buffer implements
    var Buf: array 4 of string;
    var Inptr, Outptr: int;

    proc Deposit(M: string);
    begin
      Buf[Inptr] := M;
      Inptr := (Inptr + 1) mod 4;
    end Deposit;

    proc Remove returns (string);
    var M: string;
    begin
      M := Buf[Outptr];
      Outptr := (Outptr + 1) mod 4;
      return (M);
    end Remove;

    manager intercepts Deposit, Remove;
    var Count: int;
    begin
      Count := 0;
      loop
        accept Deposit[i] when Count < 4 =>
          execute Deposit[i];
          Count := Count + 1;
      or
        accept Remove[i] when Count > 0 =>
          execute Remove[i];
          Count := Count - 1;
      end loop
    end;
  end Buffer;

  -- ===================================================================
  -- Paper section 2.5.1: readers-writers with the WriterLast protocol.
  -- Read is exported as one procedure, implemented as Read[1..4].
  -- ===================================================================
  object Database defines
    proc Read(int) returns (int);
    proc Write(int, int);
  end Database;

  object Database implements
    var Data: array 16 of int;

    proc Read[4](Key: int) returns (int);
    begin
      return (Data[Key]);
    end Read;

    proc Write(Key: int; Val: int);
    begin
      Data[Key] := Val;
    end Write;

    manager intercepts Read, Write;
    var ReadCount: int; WriterLast: bool;
    begin
      ReadCount := 0;
      WriterLast := false;
      loop
        accept Read[i] when (#Write = 0 or WriterLast) and ReadCount < 4 =>
          start Read[i];
          ReadCount := ReadCount + 1;
          WriterLast := false;
      or
        await Read[i] =>
          finish Read[i];
          ReadCount := ReadCount - 1;
      or
        accept Write[j] when ReadCount = 0 and ((#Read = 0) or (not WriterLast)) =>
          execute Write[j];
          WriterLast := true;
      end loop
    end;
  end Database;
)";

int main() {
  using namespace alps;

  lang::Machine machine(kProgram);

  std::printf("-- Buffer (paper 2.4.1) --\n");
  std::jthread producer([&] {
    for (int i = 0; i < 6; ++i) {
      machine.call("Buffer", "Deposit", vals("message " + std::to_string(i)));
    }
  });
  for (int i = 0; i < 6; ++i) {
    std::printf("Remove -> %s\n",
                machine.call("Buffer", "Remove")[0].as_string().c_str());
  }
  producer.join();

  std::printf("-- Database (paper 2.5.1) --\n");
  machine.call("Database", "Write", vals(7, 777));
  std::jthread readers[3];
  for (int r = 0; r < 3; ++r) {
    readers[r] = std::jthread([&, r] {
      const auto v = machine.call("Database", "Read", vals(7))[0].as_int();
      std::printf("reader %d sees Data[7] = %lld\n", r,
                  static_cast<long long>(v));
    });
  }
  for (auto& t : readers) t.join();

  const auto stats = machine.object("Database").stats();
  for (const auto& e : stats.entries) {
    std::printf("%s: calls=%llu accepts=%llu finishes=%llu\n", e.name.c_str(),
                static_cast<unsigned long long>(e.calls),
                static_cast<unsigned long long>(e.accepts),
                static_cast<unsigned long long>(e.finishes));
  }
  return 0;
}
