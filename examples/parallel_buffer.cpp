// §2.8.2 parallel bounded buffer: the manager hands each Deposit/Remove a
// buffer-slot index as a hidden parameter, so the (long) message copies run
// in parallel instead of in the manager's critical path.
//
//   $ example_parallel_buffer
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/bounded_buffer.h"
#include "apps/parallel_buffer.h"
#include "support/stats.h"

int main() {
  using namespace alps;

  const std::string message(1 << 16, 'x');  // a "potentially long message"
  constexpr int kPerProducer = 100;
  constexpr int kThreads = 4;

  auto drive = [&](auto& buffer) {
    support::Stopwatch watch;
    std::vector<std::jthread> workers;
    for (int p = 0; p < kThreads; ++p) {
      workers.emplace_back([&] {
        for (int i = 0; i < kPerProducer; ++i) buffer.deposit(Value(message));
      });
    }
    for (int c = 0; c < kThreads; ++c) {
      workers.emplace_back([&] {
        for (int i = 0; i < kPerProducer; ++i) buffer.remove();
      });
    }
    workers.clear();
    return watch.elapsed_seconds();
  };

  apps::BoundedBuffer serial({.capacity = 16});
  const double serial_secs = drive(serial);

  apps::ParallelBoundedBuffer parallel(
      {.capacity = 16, .producer_max = 4, .consumer_max = 4});
  const double parallel_secs = drive(parallel);

  const auto s = parallel.stats();
  std::printf("serial buffer   (§2.4.1): %.3fs for %d msgs of %zu bytes\n",
              serial_secs, kThreads * kPerProducer, message.size());
  std::printf("parallel buffer (§2.8.2): %.3fs, peak concurrent copies = %d\n",
              parallel_secs, s.max_concurrent_copies);
  return 0;
}
