// §2.7.1 dictionary with request combining: duplicate in-flight searches are
// answered by a single body execution ("a software adaptation of the memory
// combining used in the NYU Ultracomputer").
//
//   $ example_dictionary_combining
#include <cstdio>
#include <vector>

#include "apps/dictionary.h"
#include "support/rng.h"

int main() {
  using namespace alps;

  auto words = support::make_word_list(64);

  auto run = [&](bool combining) {
    apps::Dictionary dict(words,
                          {.search_max = 16,
                           .search_time = std::chrono::milliseconds(1),
                           .combining = combining});
    // Zipf-skewed client load: a few hot words dominate (the case the paper
    // says makes multiple identical searches "wasteful").
    support::ZipfGenerator zipf(words.size(), 1.1, 42);
    std::vector<CallHandle> handles;
    for (int i = 0; i < 400; ++i) {
      handles.push_back(dict.async_search(words[zipf.next()]));
    }
    for (auto& h : handles) h.get();
    return dict.stats();
  };

  const auto off = run(false);
  const auto on = run(true);

  std::printf("combining OFF: requests=%llu bodies-executed=%llu\n",
              static_cast<unsigned long long>(off.requests),
              static_cast<unsigned long long>(off.executed));
  std::printf("combining ON : requests=%llu bodies-executed=%llu combined=%llu\n",
              static_cast<unsigned long long>(on.requests),
              static_cast<unsigned long long>(on.executed),
              static_cast<unsigned long long>(on.combined));
  std::printf("work saved by combining: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(on.executed) /
                                 static_cast<double>(off.executed)));
  return 0;
}
