// §2.8.1 printer spooler: the manager assigns a free printer as a *hidden
// parameter* at start; the Print body returns the printer number as a
// *hidden result*, sparing the manager all allocation bookkeeping.
//
//   $ example_printer_spooler
#include <cstdio>
#include <vector>

#include "apps/spooler.h"
#include "support/rng.h"

int main() {
  using namespace alps;

  apps::PrinterSpooler spooler({.printers = 3,
                                .print_max = 12,
                                .page_time = std::chrono::microseconds(500)});

  support::Rng rng(7);
  std::vector<CallHandle> jobs;
  for (int j = 0; j < 40; ++j) {
    jobs.push_back(spooler.async_print("doc" + std::to_string(j) + ".ps",
                                       rng.next_range(1, 5)));
  }
  for (auto& j : jobs) j.get();

  const auto s = spooler.stats();
  std::printf("%llu jobs printed on %zu printers\n",
              static_cast<unsigned long long>(s.jobs),
              s.jobs_per_printer.size());
  for (std::size_t p = 0; p < s.jobs_per_printer.size(); ++p) {
    std::printf("  printer %zu: %llu jobs\n", p,
                static_cast<unsigned long long>(s.jobs_per_printer[p]));
  }
  std::printf("printer ran two jobs at once: %s\n",
              s.printer_overlap ? "YES (BUG)" : "no");
  return s.printer_overlap ? 1 : 0;
}
