// Run-time guard priorities (§2.4): a disk-arm scheduler whose manager
// serves the pending request with the smallest seek distance (`pri` =
// |cylinder - head|), compared with plain FIFO acceptance.
//
//   $ example_disk_scheduler
#include <cstdio>
#include <vector>

#include "apps/disk_scheduler.h"
#include "support/rng.h"

int main() {
  using namespace alps;

  support::Rng rng(2026);
  std::vector<std::int64_t> workload;
  for (int i = 0; i < 200; ++i) workload.push_back(rng.next_range(0, 199));

  auto run = [&](apps::DiskScheduler::Policy policy) {
    apps::DiskScheduler disk({.cylinders = 200,
                              .queue_depth = 16,
                              .policy = policy});
    std::vector<CallHandle> handles;
    for (std::size_t i = 0; i < workload.size(); ++i) {
      handles.push_back(disk.async_access(workload[i]));
      if ((i + 1) % 16 == 0) {  // issue in bursts so the queue fills
        for (auto& h : handles) h.get();
        handles.clear();
      }
    }
    for (auto& h : handles) h.get();
    return disk.stats();
  };

  const auto fifo = run(apps::DiskScheduler::Policy::kFifo);
  const auto sstf = run(apps::DiskScheduler::Policy::kShortestSeekFirst);

  std::printf("FIFO accept order : total seek distance = %llu cylinders\n",
              static_cast<unsigned long long>(fifo.total_seek_distance));
  std::printf("SSTF via pri guard: total seek distance = %llu cylinders\n",
              static_cast<unsigned long long>(sstf.total_seek_distance));
  std::printf("pri-guard scheduling cuts seek travel by %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(sstf.total_seek_distance) /
                                 static_cast<double>(fifo.total_seek_distance)));
  return 0;
}
