// Quickstart: the paper's §2.4.1 bounded buffer, built directly against the
// public API so every concept is visible — definition part, implementation
// part, manager with an intercepts clause, and a select/loop with acceptance
// conditions.
//
//   $ example_quickstart
#include <cstdio>
#include <thread>

#include "core/alps.h"

int main() {
  using namespace alps;

  constexpr std::size_t kCapacity = 4;

  Object buffer("Buffer");

  // --- definition part: what users of the object see ---
  EntryRef deposit =
      buffer.define_entry({.name = "Deposit", .params = 1, .results = 0});
  EntryRef remove =
      buffer.define_entry({.name = "Remove", .params = 0, .results = 1});

  // --- implementation part: shared data + procedure bodies ---
  // Note there is no mutex anywhere: the manager's scheduling provides all
  // of the synchronization.
  std::vector<Value> slots(kCapacity);
  std::size_t inptr = 0, outptr = 0;

  buffer.implement(deposit, [&](BodyCtx& ctx) -> ValueList {
    slots[inptr] = ctx.param(0);
    inptr = (inptr + 1) % kCapacity;
    return {};
  });
  buffer.implement(remove, [&](BodyCtx&) -> ValueList {
    Value m = slots[outptr];
    outptr = (outptr + 1) % kCapacity;
    return {m};
  });

  // --- the manager: intercepts Deposit and Remove, accepts a Deposit only
  // while the buffer has room and a Remove only while it has content ---
  buffer.set_manager({intercept(deposit), intercept(remove)}, [&](Manager& m) {
    std::size_t count = 0;
    Select()
        .on(accept_guard(deposit)
                .when([&](const ValueList&) { return count < kCapacity; })
                .always_reeval()  // reads manager-local `count`
                .then([&](Accepted a) {
                  m.execute(a);  // start; await; finish — in exclusion
                  ++count;
                }))
        .on(accept_guard(remove)
                .when([&](const ValueList&) { return count > 0; })
                .always_reeval()
                .then([&](Accepted a) {
                  m.execute(a);
                  --count;
                }))
        .loop(m);
  });

  buffer.start();

  // A producer and a consumer exchange 10 messages through the object.
  std::jthread producer([&] {
    for (int i = 0; i < 10; ++i) {
      buffer.call(deposit, vals("message " + std::to_string(i)));
      std::printf("producer: deposited %d\n", i);
    }
  });
  for (int i = 0; i < 10; ++i) {
    ValueList out = buffer.call(remove, {});
    std::printf("consumer: got \"%s\"\n", out[0].as_string().c_str());
  }
  producer.join();

  buffer.stop();
  std::printf("done.\n");
  return 0;
}
