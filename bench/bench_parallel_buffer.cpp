// E5 (§2.8.2): the parallel bounded buffer vs the serial (§2.4.1) buffer.
//
// Sweep the message length. Expected shape: for short messages the simpler
// serial buffer wins (the parallel design pays extra manager transitions per
// call); as messages grow, copy time dominates and the parallel buffer's
// overlapped copies win — the crossover is the paper's "more useful in
// parallel processing ... potentially long messages" claim. Reported
// throughput is MB/s through the buffer.
#include <benchmark/benchmark.h>

#include "apps/bounded_buffer.h"
#include "apps/parallel_buffer.h"
#include "bench_util.h"

namespace {

using namespace alps;

constexpr int kWorkers = 4;       // producers == consumers == 4
constexpr int kMsgsPerWorker = 40;

template <class Buffer>
void drive(Buffer& buffer, const std::string& payload) {
  benchutil::run_threads(2 * kWorkers, [&](int t) {
    if (t < kWorkers) {
      for (int i = 0; i < kMsgsPerWorker; ++i) buffer.deposit(Value(payload));
    } else {
      for (int i = 0; i < kMsgsPerWorker; ++i) buffer.remove();
    }
  });
}

void set_mb_per_s(benchmark::State& state, std::size_t msg_bytes) {
  const auto total_bytes = static_cast<std::int64_t>(msg_bytes) * kWorkers *
                           kMsgsPerWorker * static_cast<std::int64_t>(state.iterations());
  state.SetBytesProcessed(total_bytes);
  state.SetItemsProcessed(state.iterations() * kWorkers * kMsgsPerWorker);
}

void BM_SerialBuffer_MsgSize(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const std::string payload(bytes, 'x');
  apps::BoundedBuffer buffer({.capacity = 16, .pool_workers = 2});
  for (auto _ : state) {
    drive(buffer, payload);
  }
  set_mb_per_s(state, bytes);
}

void BM_ParallelBuffer_MsgSize(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const std::string payload(bytes, 'x');
  apps::ParallelBoundedBuffer buffer({.capacity = 16,
                                      .producer_max = kWorkers,
                                      .consumer_max = kWorkers,
                                      .pool_workers = 2 * kWorkers});
  for (auto _ : state) {
    drive(buffer, payload);
  }
  set_mb_per_s(state, bytes);
  state.counters["peak_parallel_copies"] =
      static_cast<double>(buffer.stats().max_concurrent_copies);
}

#define SIZE_ARGS \
  ->Arg(64)->Arg(4 << 10)->Arg(64 << 10)->Arg(512 << 10) \
  ->Unit(benchmark::kMillisecond)->UseRealTime()

BENCHMARK(BM_SerialBuffer_MsgSize) SIZE_ARGS;
BENCHMARK(BM_ParallelBuffer_MsgSize) SIZE_ARGS;

}  // namespace

ALPS_BENCH_MAIN()
