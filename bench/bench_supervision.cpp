// E14: cost of supervision & failure containment on the healthy path.
//
// Robustness machinery is only free if the fault-free path stays lean. Two
// sweeps quantify that:
//
//   * BM_SupervisionUncontended — single caller, trivial entry, manager
//     executing in a tight loop; configurations arm progressively more of
//     the machinery without ever triggering it: 0 = plain object (the
//     pre-supervision hot path, the A/B baseline), 1 = a far-future
//     per-call deadline (supervisor thread + deadline heap on every call),
//     2 = restart policy armed (supervisor running, nothing crashes),
//     3 = watchdog polling (1 s threshold, never stalls). The acceptance
//     bar: configurations 1-3 within a few percent of 0.
//
//   * BM_DeadlineByPolicy — deadline sweep × supervision policy. Callers
//     attach real deadlines (some tight enough to occasionally fire) while
//     the policy machinery is armed, measuring the combined bookkeeping
//     cost under deadline-bearing traffic.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/alps.h"

namespace {

using namespace alps;
using namespace std::chrono_literals;

constexpr int kOps = 200;

ObjectOptions options_for(int cfg) {
  ObjectOptions opts;
  if (cfg == 2) {
    opts.supervision = {.mode = SupervisionMode::kRestart,
                        .max_restarts = 3,
                        .initial_backoff = 1ms};
  } else if (cfg == 3) {
    opts.watchdog = {.enabled = true, .stall_threshold = 1000ms};
  }
  return opts;
}

void BM_SupervisionUncontended(benchmark::State& state) {
  const int cfg = static_cast<int>(state.range(0));
  Object obj("Sup", options_for(cfg));
  auto e = obj.define_entry({.name = "Op", .params = 0, .results = 0});
  obj.implement(e, [](BodyCtx&) -> ValueList { return {}; });
  obj.set_manager({intercept(e)}, [&](Manager& m) {
    while (!m.stop_requested()) m.execute(m.accept(e));
  });
  obj.start();

  CallOptions with_deadline{.deadline = 10000ms};  // armed, never fires
  for (auto _ : state) {
    for (int i = 0; i < kOps; ++i) {
      if (cfg == 1) {
        obj.call(e, {}, with_deadline);
      } else {
        obj.call(e, {});
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kOps);
  obj.stop();
}

BENCHMARK(BM_SupervisionUncontended)
    ->Arg(0)   // baseline: no supervision machinery touched
    ->Arg(1)   // per-call deadline armed
    ->Arg(2)   // restart policy armed
    ->Arg(3)   // watchdog polling
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DeadlineByPolicy(benchmark::State& state) {
  const auto deadline = std::chrono::milliseconds(state.range(0));
  const int cfg = static_cast<int>(state.range(1));
  Object obj("Sweep", options_for(cfg));
  auto e = obj.define_entry({.name = "Op", .params = 0, .results = 0});
  obj.implement(e, [](BodyCtx&) -> ValueList { return {}; });
  obj.set_manager({intercept(e)}, [&](Manager& m) {
    while (!m.stop_requested()) m.execute(m.accept(e));
  });
  obj.start();

  const CallOptions opts{.deadline = deadline};
  std::int64_t expired = 0;
  constexpr int kClients = 2;
  for (auto _ : state) {
    std::atomic<std::int64_t> round_expired{0};
    benchutil::run_threads(kClients, [&](int) {
      for (int i = 0; i < kOps; ++i) {
        try {
          obj.call(e, {}, opts);
        } catch (const Error&) {
          ++round_expired;  // tight deadlines may legitimately fire
        }
      }
    });
    expired += round_expired.load();
  }
  state.SetItemsProcessed(state.iterations() * kClients * kOps);
  state.counters["expired"] =
      benchmark::Counter(static_cast<double>(expired));
  obj.stop();
}

BENCHMARK(BM_DeadlineByPolicy)
    ->ArgsProduct({{1, 20, 1000},  // deadline ms: tight → loose
                   {0, 2, 3}})     // policy: fail-fast / restart / watchdog
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
