// E9 (§3): "it is wasteful to implement a guarded command of the form
// (i:1..N) accept P[i] [by polling]" — a hidden procedure array may have
// only a few requests attached on average, so eligibility checks must not
// scan all N slots.
//
// Sweep the array size N with exactly one call in flight at a time. The
// kernel's default select uses indexed ready lists (O(ready) per wake-up);
// `use_naive_polling` switches to the O(N) slot scan. Expected shape: the
// naive rows degrade linearly with N while the indexed rows stay flat.
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "core/alps.h"

namespace {

using namespace alps;

void bench_scan(benchmark::State& state, bool naive) {
  const auto array = static_cast<std::size_t>(state.range(0));
  Object obj("Scan", ObjectOptions{.pool_workers = 2});
  auto e = obj.define_entry({.name = "Op", .params = 0, .results = 0});
  obj.implement(e, ImplDecl{.array = array},
                [](BodyCtx&) -> ValueList { return {}; });
  obj.set_manager({intercept(e)}, [&](Manager& m) {
    Select sel;
    sel.use_naive_polling(naive)
        .on(accept_guard(e).then([&m](Accepted a) { m.start(a); }))
        .on(await_guard(e).then([&m](Awaited w) { m.finish(w); }));
    sel.loop(m);
  });
  obj.start();

  for (auto _ : state) {
    obj.call(e, {});  // low occupancy: one pending call at a time
  }
  state.SetItemsProcessed(state.iterations());
  obj.stop();
}

// High occupancy: keep `inflight` calls attached at once so the select
// engine faces a long candidate list on every pass. The delta-driven select
// keeps a persistent priority index over those candidates (per-select work
// O(log K)); the naive strawman — and the pre-index engine — rebuild and
// rescan the whole list each pass (O(N) resp. O(K)).
void bench_scan_loaded(benchmark::State& state, bool naive) {
  const auto array = static_cast<std::size_t>(state.range(0));
  const auto inflight = static_cast<std::size_t>(state.range(1));
  Object obj("ScanLoaded", ObjectOptions{.pool_workers = 2});
  auto e = obj.define_entry({.name = "Op", .params = 0, .results = 0});
  obj.implement(e, ImplDecl{.array = array},
                [](BodyCtx&) -> ValueList { return {}; });
  obj.set_manager({intercept(e)}, [&](Manager& m) {
    Select sel;
    sel.use_naive_polling(naive)
        .on(accept_guard(e).then([&m](Accepted a) { m.start(a); }))
        .on(await_guard(e).then([&m](Awaited w) { m.finish(w); }));
    sel.loop(m);
  });
  obj.start();

  std::vector<CallHandle> handles;
  handles.reserve(inflight);
  for (auto _ : state) {
    for (std::size_t i = 0; i < inflight; ++i) {
      handles.push_back(obj.async_call(e, {}));
    }
    for (auto& h : handles) h.get();
    handles.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inflight));
  obj.stop();
}

void BM_IndexedReadyLists(benchmark::State& state) { bench_scan(state, false); }
void BM_NaiveSlotPolling(benchmark::State& state) { bench_scan(state, true); }
void BM_IndexedHighOccupancy(benchmark::State& state) {
  bench_scan_loaded(state, false);
}
void BM_NaiveHighOccupancy(benchmark::State& state) {
  bench_scan_loaded(state, true);
}

#define N_ARGS ->Arg(16)->Arg(256)->Arg(4096)->Arg(32768)->Unit(benchmark::kMicrosecond)->UseRealTime()
// {array, inflight}: long attached/ready lists, the delta-driven engine's
// target regime.  The largest config is the ISSUE acceptance config.
#define LOAD_ARGS                                                    \
  ->Args({256, 128})->Args({4096, 512})->Args({32768, 2048})         \
      ->Unit(benchmark::kMicrosecond)->UseRealTime()

BENCHMARK(BM_IndexedReadyLists) N_ARGS;
BENCHMARK(BM_NaiveSlotPolling) N_ARGS;
BENCHMARK(BM_IndexedHighOccupancy) LOAD_ARGS;
BENCHMARK(BM_NaiveHighOccupancy) LOAD_ARGS;

}  // namespace

ALPS_BENCH_MAIN()
