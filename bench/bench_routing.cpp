// E15 (§4): location-transparent routing and frame batching — frames/call
// and throughput vs batch size × fan-in, A/B against direct addressing.
//
// Two benches:
//
//  * BM_BatchedThroughput sweeps fan_in ∈ {1, 4} client nodes × batch size
//    ∈ {0 (batching off), 8, 32}. Each iteration every client issues a
//    window of 32 pipelined name-based async calls and waits for them all.
//    The headline counter is frames_per_call — total Network frames posted
//    (requests, responses, acks, batch envelopes) divided by completed
//    calls. Expected shape: ~2 frames/call with batching off (one request
//    + one response), dropping under 0.5 once size-8 coalescing engages on
//    both directions of every link, and a little further at 32.
//
//  * BM_CallLatency A/Bs one synchronous call per iteration: direct
//    addressing (explicit target node, no batcher) vs name-based routing
//    with batching off / batch size 1 / batch size 8. Name resolution is a
//    local directory lookup and a batch of one is flushed raw on the
//    enqueuing thread, so the named batch-1 row must sit within ~10% of
//    the direct row; batch 8 shows the price of waiting for company on an
//    idle link (the flush-interval bound, not the size bound, fires).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "bench_util.h"

#include "core/alps.h"
#include "net/net.h"

namespace {

using namespace alps;

struct Service {
  Object obj{"Svc"};
  Service() {
    auto echo = obj.define_entry({.name = "Echo", .params = 1, .results = 1});
    obj.implement(echo, [](BodyCtx& ctx) -> ValueList { return {ctx.param(0)}; });
    obj.start();
  }
  ~Service() { obj.stop(); }
};

net::BatchOptions batch_options(std::int64_t max_frames) {
  net::BatchOptions options;
  options.max_frames = static_cast<std::size_t>(max_frames);
  return options;  // default byte bound and 200 µs flush interval
}

void BM_BatchedThroughput(benchmark::State& state) {
  const auto fan_in = static_cast<std::size_t>(state.range(0));
  const std::int64_t batch = state.range(1);
  constexpr int kWindow = 32;  // pipelined calls per client per iteration

  net::Network network(net::LinkLatency{std::chrono::microseconds(20), {}},
                       /*seed=*/20260806);
  net::Node server(network, "server");
  Service svc;
  server.host(svc.obj);
  if (batch > 0) server.set_batching(batch_options(batch));

  std::vector<std::unique_ptr<net::Node>> clients;
  for (std::size_t i = 0; i < fan_in; ++i) {
    clients.push_back(std::make_unique<net::Node>(
        network, "client" + std::to_string(i)));
    if (batch > 0) clients.back()->set_batching(batch_options(batch));
  }

  const auto frames_before = network.transport_stats().frames_posted;
  std::int64_t calls = 0;
  std::vector<net::RpcHandle> handles;
  handles.reserve(fan_in * kWindow);
  for (auto _ : state) {
    handles.clear();
    for (auto& client : clients) {
      for (int k = 0; k < kWindow; ++k) {
        handles.push_back(client->async_call("Svc", "Echo", vals(1)));
      }
    }
    for (auto& h : handles) {
      benchmark::DoNotOptimize(h.result().ok());
    }
    calls += static_cast<std::int64_t>(handles.size());
  }
  const auto frames = network.transport_stats().frames_posted - frames_before;

  state.counters["frames_per_call"] = benchmark::Counter(
      static_cast<double>(frames) /
      static_cast<double>(std::max<std::int64_t>(calls, 1)));
  if (batch > 0) {
    net::FrameBatcher::Stats agg = server.batch_stats();
    for (auto& client : clients) {
      const auto s = client->batch_stats();
      agg.frames_coalesced += s.frames_coalesced;
      agg.batches_posted += s.batches_posted;
      agg.frames_enqueued += s.frames_enqueued;
    }
    state.counters["coalesced_fraction"] = benchmark::Counter(
        static_cast<double>(agg.frames_coalesced) /
        static_cast<double>(std::max<std::uint64_t>(agg.frames_enqueued, 1)));
    state.counters["members_per_batch"] = benchmark::Counter(
        static_cast<double>(agg.frames_coalesced) /
        static_cast<double>(std::max<std::uint64_t>(agg.batches_posted, 1)));
  }
  state.SetItemsProcessed(calls);
}

// 30 iterations × fan_in × 32 calls per row: up to ~3.8k calls on the widest
// row, enough for the coalescing ratios to dominate edge effects (route
// warm-up, trailing idle acks).
BENCHMARK(BM_BatchedThroughput)
    ->ArgNames({"fan_in", "batch"})
    ->Args({1, 0})
    ->Args({1, 8})
    ->Args({1, 32})
    ->Args({4, 0})
    ->Args({4, 8})
    ->Args({4, 32})
    ->Iterations(30)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_CallLatency(benchmark::State& state) {
  const bool named = state.range(0) != 0;
  const std::int64_t batch = state.range(1);

  net::Network network(net::LinkLatency{std::chrono::microseconds(100), {}},
                       /*seed=*/20260806);
  net::Node client(network, "client");
  net::Node server(network, "server");
  Service svc;
  server.host(svc.obj);
  if (batch > 0) {
    client.set_batching(batch_options(batch));
    server.set_batching(batch_options(batch));
  }
  auto direct = client.remote(server.id(), "Svc");
  auto by_name = client.remote("Svc");

  std::vector<double> latency_us;
  std::int64_t completed = 0;
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    auto r = named ? by_name.call("Echo", vals(1), net::CallOptions{})
                   : direct.call("Echo", vals(1), net::CallOptions{});
    const auto elapsed = std::chrono::steady_clock::now() - begin;
    latency_us.push_back(
        std::chrono::duration<double, std::micro>(elapsed).count());
    if (r.ok()) ++completed;
  }

  std::sort(latency_us.begin(), latency_us.end());
  const auto pct = [&](double q) {
    if (latency_us.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latency_us.size() - 1));
    return latency_us[idx];
  };
  state.counters["p50_us"] = benchmark::Counter(pct(0.50));
  state.counters["p99_us"] = benchmark::Counter(pct(0.99));
  state.SetItemsProcessed(completed);
}

BENCHMARK(BM_CallLatency)
    ->ArgNames({"named", "batch"})
    ->Args({0, 0})   // direct addressing, no batcher — the baseline
    ->Args({1, 0})   // name-based, no batcher
    ->Args({1, 1})   // name-based, batch size 1: flushed raw, ≈ baseline
    ->Args({1, 8})   // name-based, batch 8: idle link pays the interval bound
    ->Iterations(1000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
