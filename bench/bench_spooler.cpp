// E4 (§2.8.1): printer spooler with hidden params/results.
//
// Sweep the printer-pool size under a fixed job load. Expected shape: job
// throughput scales with the pool until the pool exceeds the offered load;
// the `printer_utilization_pct` counter shows the manager keeps printers
// busy (allocation via hidden params costs it nothing but a deque op), and
// `balance` shows jobs spread across the pool.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "apps/spooler.h"
#include "bench_util.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using namespace alps;

void BM_Spooler_PrinterSweep(benchmark::State& state) {
  const auto printers = static_cast<std::size_t>(state.range(0));
  constexpr int kJobs = 120;
  constexpr auto kPageTime = std::chrono::microseconds(300);
  apps::PrinterSpooler spooler({.printers = printers,
                                .print_max = 16,
                                .page_time = kPageTime,
                                .pool_workers = printers + 2});
  double utilization = 0.0;
  for (auto _ : state) {
    support::Rng rng(11);
    support::Stopwatch watch;
    std::vector<CallHandle> handles;
    std::int64_t total_pages = 0;
    for (int j = 0; j < kJobs; ++j) {
      const std::int64_t pages = rng.next_range(1, 4);
      total_pages += pages;
      handles.push_back(spooler.async_print("doc", pages));
    }
    for (auto& h : handles) h.get();
    const double busy_secs =
        std::chrono::duration<double>(kPageTime).count() *
        static_cast<double>(total_pages);
    utilization = 100.0 * busy_secs /
                  (watch.elapsed_seconds() * static_cast<double>(printers));
  }
  const auto s = spooler.stats();
  state.SetItemsProcessed(static_cast<std::int64_t>(s.jobs));
  state.counters["printer_utilization_pct"] = utilization;
  const auto minmax = std::minmax_element(s.jobs_per_printer.begin(),
                                          s.jobs_per_printer.end());
  state.counters["balance_min_jobs"] = static_cast<double>(*minmax.first);
  state.counters["balance_max_jobs"] = static_cast<double>(*minmax.second);
  state.counters["overlap_violation"] = s.printer_overlap ? 1.0 : 0.0;
}

BENCHMARK(BM_Spooler_PrinterSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
