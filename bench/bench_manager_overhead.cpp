// E8 (§1, §3): "contention can be reduced by programming the manager to do
// only minimal processing".
//
// The manager is a single process; every cycle it spends per event is serial
// across the whole object. The sweep injects D microseconds of bookkeeping
// into the manager's accept handler and measures object throughput with 4
// concurrent clients. Expected shape: throughput ≈ 1 / (D + c) — collapsing
// as the manager fattens, which is the quantitative form of the paper's
// design advice (and its argument against the concurrent-mediator design:
// keep the serial scheduler lean instead).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/alps.h"

namespace {

using namespace alps;

void BM_ManagerServiceDemand(benchmark::State& state) {
  const auto demand = std::chrono::microseconds(state.range(0));
  Object obj("Lean", ObjectOptions{.pool_workers = 4});
  auto e = obj.define_entry({.name = "Op", .params = 0, .results = 0});
  obj.implement(e, ImplDecl{.array = 8}, [](BodyCtx&) -> ValueList {
    return {};
  });
  obj.set_manager({intercept(e)}, [&](Manager& m) {
    Select()
        .on(accept_guard(e).then([&, demand](Accepted a) {
          if (demand.count() > 0) benchutil::busy_spin(demand);  // fat manager
          m.start(a);
        }))
        .on(await_guard(e).then([&m](Awaited w) { m.finish(w); }))
        .loop(m);
  });
  obj.start();

  constexpr int kClients = 4, kOps = 100;
  for (auto _ : state) {
    benchutil::run_threads(kClients, [&](int) {
      for (int i = 0; i < kOps; ++i) obj.call(e, {});
    });
  }
  state.SetItemsProcessed(state.iterations() * kClients * kOps);
  obj.stop();
}

BENCHMARK(BM_ManagerServiceDemand)
    ->Arg(0)
    ->Arg(10)
    ->Arg(50)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
