// E1 (§2.4.1, §1): the manager generalizes the monitor.
//
// The same bounded-buffer workload runs over (a) the ALPS object whose
// manager `execute`s every call, (b) a classical monitor, and (c) raw
// mutex+cv code. Expected shape: the monitor and raw variants are faster in
// absolute terms (no manager handoff, no process-per-call), while the ALPS
// version pays a constant per-call scheduling overhead — the cost the paper
// accepts in exchange for centralized, modifiable scheduling. Rows sweep the
// producer/consumer count.
#include <benchmark/benchmark.h>

#include <condition_variable>
#include <mutex>

#include "apps/bounded_buffer.h"
#include "baselines/monitor.h"
#include "bench_util.h"

namespace {

using namespace alps;

constexpr int kMessagesPerThreadPair = 400;

/// Raw mutex+cv buffer: the semaphore-flavored style the paper says scatters
/// scheduling logic across the procedures.
class RawBuffer {
 public:
  explicit RawBuffer(std::size_t capacity) : capacity_(capacity) {}

  void deposit(long long v) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_; });
    items_.push_back(v);
    not_empty_.notify_one();
  }

  long long remove() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty(); });
    long long v = items_.front();
    items_.pop_front();
    not_full_.notify_one();
    return v;
  }

 private:
  std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<long long> items_;
  std::size_t capacity_;
};

template <class DepositFn, class RemoveFn>
void drive(int producers, int consumers, DepositFn deposit, RemoveFn remove) {
  const int total = kMessagesPerThreadPair * producers;
  const int per_consumer = total / consumers;
  benchutil::run_threads(producers + consumers, [&](int t) {
    if (t < producers) {
      for (int i = 0; i < kMessagesPerThreadPair; ++i) deposit(i);
    } else {
      for (int i = 0; i < per_consumer; ++i) remove();
    }
  });
}

void BM_AlpsManagerBuffer(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const int c = static_cast<int>(state.range(1));
  apps::BoundedBuffer buffer({.capacity = 16});
  for (auto _ : state) {
    drive(p, c, [&](int i) { buffer.deposit(Value(i)); },
          [&] { return buffer.remove(); });
  }
  state.SetItemsProcessed(state.iterations() * kMessagesPerThreadPair * p);
}

void BM_MonitorBuffer(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const int c = static_cast<int>(state.range(1));
  baselines::MonitorBoundedBuffer buffer(16);
  for (auto _ : state) {
    drive(p, c, [&](int i) { buffer.deposit(i); }, [&] { return buffer.remove(); });
  }
  state.SetItemsProcessed(state.iterations() * kMessagesPerThreadPair * p);
}

void BM_RawMutexCvBuffer(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const int c = static_cast<int>(state.range(1));
  RawBuffer buffer(16);
  for (auto _ : state) {
    drive(p, c, [&](int i) { buffer.deposit(i); }, [&] { return buffer.remove(); });
  }
  state.SetItemsProcessed(state.iterations() * kMessagesPerThreadPair * p);
}

#define PC_ARGS ->Args({1, 1})->Args({2, 2})->Args({4, 4})->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime()

BENCHMARK(BM_AlpsManagerBuffer) PC_ARGS;
BENCHMARK(BM_MonitorBuffer) PC_ARGS;
BENCHMARK(BM_RawMutexCvBuffer) PC_ARGS;

}  // namespace

ALPS_BENCH_MAIN()
