// E20 (§4): sharded named objects — throughput scaling vs shard count under
// a Zipf-skewed key workload, and live shard splits converging exactly-once
// through kWrongNode redirects.
//
// Two benches:
//
//  * BM_ShardedThroughput sweeps shards ∈ {1, 2, 4, 8}. One ShardedDictionary
//    registers N single-slot dictionaries (search_max = 1, combining off,
//    search_time = 200 µs) under one name; each iteration the client issues a
//    window of 64 pipelined name-based Search calls with Zipf(theta = 0.99)
//    words and waits for them all. With one home every search serializes
//    behind the single slot; with N shards the serialized sleeps overlap
//    across shard objects, so throughput scales with 1/(hottest shard's
//    share) — blocking structure, not core count (this repo benches on a
//    single hardware thread). Expected shape: ≥3× items/s at 8 shards vs 1.
//
//  * BM_ShardSplitUnderLoad runs the same workload against 2 shards and
//    splits the map live (2 → 3 → 4 homes) while a window is in flight. The
//    stale client map converges key by key through shard-precise kWrongNode
//    redirects: `redirects` goes positive, and `reexecutions` — server
//    bodies run minus client calls completed — must stay exactly 0.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

#include "apps/dictionary.h"
#include "core/alps.h"
#include "net/net.h"
#include "support/rng.h"

namespace {

using namespace alps;

constexpr std::size_t kWords = 4096;
constexpr double kTheta = 0.99;
constexpr int kWindow = 64;  // pipelined calls per iteration

apps::Dictionary::Options shard_options() {
  apps::Dictionary::Options options;
  options.search_max = 1;  // one slot: the shard is a serial resource
  options.search_time = std::chrono::microseconds(200);
  options.combining = false;  // every request pays its own search
  options.object_name = "Dict";
  return options;
}

void BM_ShardedThroughput(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));

  net::Network network(net::LinkLatency{std::chrono::microseconds(20), {}},
                       /*seed=*/20260808);
  net::Node client(network, "client");
  std::vector<std::unique_ptr<net::Node>> servers;
  std::vector<net::Node*> homes;
  for (std::size_t i = 0; i < shards; ++i) {
    servers.push_back(
        std::make_unique<net::Node>(network, "shard" + std::to_string(i)));
    homes.push_back(servers.back().get());
  }
  const auto words = support::make_word_list(kWords);
  apps::ShardedDictionary dict(words, shard_options(), network, homes);

  support::ZipfGenerator zipf(kWords, kTheta, /*seed=*/7);
  std::int64_t completed = 0;
  std::vector<net::RpcHandle> handles;
  handles.reserve(kWindow);
  for (auto _ : state) {
    handles.clear();
    for (int k = 0; k < kWindow; ++k) {
      handles.push_back(
          client.async_call("Dict", "Search", vals(words[zipf.next()])));
    }
    for (auto& h : handles) {
      benchmark::DoNotOptimize(h.result().ok());
    }
    completed += kWindow;
  }

  const auto stats = dict.stats();
  state.counters["executed"] =
      benchmark::Counter(static_cast<double>(stats.executed));
  state.counters["redirects"] = benchmark::Counter(
      static_cast<double>(client.client_stats().redirects));
  state.SetItemsProcessed(completed);
}

// items_per_second across the rows is the E20 scaling curve: the 8-shard row
// must clear 3× the 1-home row (the Zipf head caps it below the ideal 8×).
BENCHMARK(BM_ShardedThroughput)
    ->ArgNames({"shards"})
    ->Args({1})
    ->Args({2})
    ->Args({4})
    ->Args({8})
    ->Iterations(25)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ShardSplitUnderLoad(benchmark::State& state) {
  net::Network network(net::LinkLatency{std::chrono::microseconds(20), {}},
                       /*seed=*/20260808);
  net::Node client(network, "client");
  std::vector<std::unique_ptr<net::Node>> servers;
  std::vector<net::Node*> homes;
  for (std::size_t i = 0; i < 4; ++i) {
    servers.push_back(
        std::make_unique<net::Node>(network, "shard" + std::to_string(i)));
    if (i < 2) homes.push_back(servers[i].get());
  }
  const auto words = support::make_word_list(kWords);
  apps::ShardedDictionary dict(words, shard_options(), network, homes);

  support::ZipfGenerator zipf(kWords, kTheta, /*seed=*/7);
  const auto max_iters = static_cast<std::int64_t>(state.max_iterations);
  std::int64_t iter = 0;
  std::int64_t completed = 0;
  std::vector<net::RpcHandle> handles;
  handles.reserve(kWindow);
  for (auto _ : state) {
    handles.clear();
    for (int k = 0; k < kWindow; ++k) {
      handles.push_back(
          client.async_call("Dict", "Search", vals(words[zipf.next()])));
    }
    // Split mid-burst: the window above is in flight against the old map;
    // moved keys land on their old shard, earn a shard-precise redirect and
    // complete on the new home — no barrier, no re-execution.
    if (iter == max_iters / 3 && dict.shards() == 2) {
      dict.split_to(*servers[2]);
    }
    if (iter == (2 * max_iters) / 3 && dict.shards() == 3) {
      dict.split_to(*servers[3]);
    }
    for (auto& h : handles) {
      benchmark::DoNotOptimize(h.result().ok());
    }
    ++iter;
    completed += kWindow;
  }

  const auto stats = dict.stats();
  state.counters["redirects"] = benchmark::Counter(
      static_cast<double>(client.client_stats().redirects));
  // Exactly-once across both splits: every body run maps to one completed
  // call (combining is off, so there is no legitimate sharing to subtract).
  state.counters["reexecutions"] = benchmark::Counter(
      static_cast<double>(stats.executed) - static_cast<double>(completed));
  state.SetItemsProcessed(completed);
}

BENCHMARK(BM_ShardSplitUnderLoad)
    ->Iterations(30)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
