// E6 (§2.3): nested calls across objects.
//
// ALPS rows: latency/throughput of the X.P → Y.Q → X.R round trip, which the
// asynchronous `start` makes deadlock-free. Baseline row: the same structure
// on Ada-style rendezvous tasks deadlocks — reported as the
// `deadlocked` counter (1.0) measured once with a timeout, as the paper's
// "DP, Ada and SR suffer from the nested calls problem".
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "baselines/rendezvous.h"
#include "core/alps.h"

namespace {

using namespace alps;

struct CrossCallingObjects {
  Object x{"X", ObjectOptions{.model = sched::ProcessModel::kDynamic}};
  Object y{"Y", ObjectOptions{.model = sched::ProcessModel::kDynamic}};
  EntryRef p, r, q;

  CrossCallingObjects() {
    p = x.define_entry({.name = "P", .params = 0, .results = 1});
    r = x.define_entry({.name = "R", .params = 0, .results = 1});
    q = y.define_entry({.name = "Q", .params = 0, .results = 1});
    x.implement(p, [this](BodyCtx&) -> ValueList {
      return {Value(y.call(q, {})[0].as_int() + 1)};
    });
    x.implement(r, [](BodyCtx&) -> ValueList { return {Value(100)}; });
    y.implement(q, [this](BodyCtx&) -> ValueList {
      return {Value(x.call(r, {})[0].as_int() + 10)};
    });
    auto serve = [](EntryRef a, EntryRef b) {
      return [a, b](Manager& m) {
        Select()
            .on(accept_guard(a).then([&m](Accepted acc) { m.start(acc); }))
            .on(await_guard(a).then([&m](Awaited w) { m.finish(w); }))
            .on(accept_guard(b).then([&m](Accepted acc) { m.start(acc); }))
            .on(await_guard(b).then([&m](Awaited w) { m.finish(w); }))
            .loop(m);
      };
    };
    x.set_manager({intercept(p), intercept(r)}, serve(p, r));
    y.set_manager({intercept(q)},
                  [this](Manager& m) {
                    Select()
                        .on(accept_guard(q).then([&m](Accepted a) { m.start(a); }))
                        .on(await_guard(q).then([&m](Awaited w) { m.finish(w); }))
                        .loop(m);
                  });
    x.start();
    y.start();
  }
  ~CrossCallingObjects() {
    x.stop();
    y.stop();
  }
};

void BM_AlpsNestedCall_Latency(benchmark::State& state) {
  CrossCallingObjects objs;
  for (auto _ : state) {
    const ValueList out = objs.x.call(objs.p, {});
    if (out[0].as_int() != 111) state.SkipWithError("wrong result");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["deadlocked"] = 0.0;
}

void BM_AlpsNestedCall_Concurrent(benchmark::State& state) {
  CrossCallingObjects objs;
  constexpr int kInflight = 8;
  for (auto _ : state) {
    std::vector<CallHandle> handles;
    for (int i = 0; i < kInflight; ++i) {
      handles.push_back(objs.x.async_call(objs.p, {}));
    }
    for (auto& h : handles) h.get();
  }
  state.SetItemsProcessed(state.iterations() * kInflight);
  state.counters["deadlocked"] = 0.0;
}

void BM_RendezvousNestedCall_Deadlocks(benchmark::State& state) {
  using baselines::RendezvousTask;
  double deadlocked = 0.0;
  for (auto _ : state) {
    RendezvousTask x("X"), y("Y");
    auto p = x.add_entry("P");
    auto r = x.add_entry("R");
    auto q = y.add_entry("Q");
    std::atomic<bool> saw_deadlock{false};
    y.start([&, q](RendezvousTask& t) {
      while (t.accept(q, [&](const RendezvousTask::Params&) {
        if (!x.call_for(r, {}, std::chrono::milliseconds(100)).has_value()) {
          saw_deadlock = true;
        }
        return RendezvousTask::Results{};
      })) {
      }
    });
    x.start([&, p, r](RendezvousTask& t) {
      while (t.select_accept({p, r},
                             [&](std::size_t which, const RendezvousTask::Params&) {
                               if (which == p) y.call(q, {});
                               return RendezvousTask::Results{};
                             })
                 .has_value()) {
      }
    });
    x.call(p, {});
    deadlocked = saw_deadlock.load() ? 1.0 : 0.0;
    x.stop();
    y.stop();
  }
  state.counters["deadlocked"] = deadlocked;
}

BENCHMARK(BM_AlpsNestedCall_Latency)->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK(BM_AlpsNestedCall_Concurrent)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_RendezvousNestedCall_Deadlocks)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
