// E3 (§2.7.1): request combining in the dictionary.
//
// A Zipf-skewed client population searches the dictionary; the sweep is the
// skew θ. Reported counters:
//   bodies_per_request — executed searches / requests (1.0 with combining
//                        off; drops well below 1.0 as skew rises)
//   combined_pct       — % of requests answered by piggybacking
// Expected shape: combining saves nothing on uniform traffic (θ≈0) and an
// increasing fraction of the work as the workload concentrates — while
// throughput rises correspondingly, since each saved body is a saved
// search_time.
#include <benchmark/benchmark.h>

#include "apps/dictionary.h"
#include "bench_util.h"
#include "support/rng.h"

namespace {

using namespace alps;

constexpr int kClients = 8;
constexpr int kRequestsPerClient = 60;

void run_workload(apps::Dictionary& dict, const std::vector<std::string>& words,
                  double theta) {
  benchutil::run_threads(kClients, [&](int t) {
    support::ZipfGenerator zipf(words.size(), theta,
                                static_cast<std::uint64_t>(t) + 1);
    std::vector<CallHandle> inflight;
    for (int i = 0; i < kRequestsPerClient; ++i) {
      inflight.push_back(dict.async_search(words[zipf.next()]));
      if (inflight.size() >= 4) {  // keep a few requests open per client
        for (auto& h : inflight) h.get();
        inflight.clear();
      }
    }
    for (auto& h : inflight) h.get();
  });
}

void bench_dictionary(benchmark::State& state, bool combining) {
  const double theta = static_cast<double>(state.range(0)) / 100.0;
  auto words = support::make_word_list(256);
  apps::Dictionary dict(words,
                        {.search_max = 16,
                         .search_time = std::chrono::microseconds(500),
                         .combining = combining});
  for (auto _ : state) {
    run_workload(dict, words, theta);
  }
  const auto s = dict.stats();
  state.SetItemsProcessed(static_cast<std::int64_t>(s.requests));
  state.counters["bodies_per_request"] =
      s.requests ? static_cast<double>(s.executed) / static_cast<double>(s.requests)
                 : 0.0;
  state.counters["combined_pct"] =
      s.requests ? 100.0 * static_cast<double>(s.combined) /
                       static_cast<double>(s.requests)
                 : 0.0;
}

void BM_Dictionary_Combining(benchmark::State& state) {
  bench_dictionary(state, /*combining=*/true);
}

void BM_Dictionary_NoCombining(benchmark::State& state) {
  bench_dictionary(state, /*combining=*/false);
}

// θ = 0.00, 0.80, 1.10, 1.40 (×100 in the arg)
#define THETA_ARGS ->Arg(0)->Arg(80)->Arg(110)->Arg(140)->Unit(benchmark::kMillisecond)->UseRealTime()

BENCHMARK(BM_Dictionary_Combining) THETA_ARGS;
BENCHMARK(BM_Dictionary_NoCombining) THETA_ARGS;

}  // namespace

ALPS_BENCH_MAIN()
