// E16 (DESIGN.md §4.8): multiactive objects — compatibility-group scheduling
// for intra-object parallelism.
//
// Two workloads, each swept over client-thread counts with the annotated
// (multiactive) and unannotated (the paper's serial manager protocol)
// schedulers registered adjacently for a like-for-like A/B:
//
//  1. Readers–writers, read-heavy (1 write per 100 ops). The serial manager
//     spends four manager turns per read (select-accept, start, select-await,
//     finish); the multiactive manager batches accept+start through the
//     compat gate and the kernel completes callers directly, so the
//     per-call manager cost collapses to ~1 amortized turn.
//  2. Dictionary, search-heavy with occasional Insert (1 per 128 ops);
//     searches are mutually compatible, inserts are a serial group.
//
// Counters: ma_concurrent_starts (realized intra-object parallelism) and
// ma_conflict_blocks (calls parked behind an incompatible group).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/dictionary.h"
#include "apps/readers_writers.h"
#include "bench_util.h"
#include "support/rng.h"

namespace {

using namespace alps;

void set_ma_counters(benchmark::State& state, Object& obj) {
  double concurrent = 0, blocked = 0;
  for (const auto& e : obj.stats().entries) {
    concurrent += static_cast<double>(e.ma_concurrent_starts);
    blocked += static_cast<double>(e.ma_conflict_blocks);
  }
  state.counters["ma_concurrent_starts"] = concurrent;
  state.counters["ma_conflict_blocks"] = blocked;
}

// ---- 1. readers–writers throughput, annotated vs serial manager ----

void BM_RwMultiactiveSweep(benchmark::State& state) {
  const bool multiactive = state.range(0) != 0;
  const int threads = static_cast<int>(state.range(1));
  // Pipelined clients: each round issues a window of 20 async reads (every
  // fifth round swaps the last read for a write), then drains it. Both
  // schedulers get the identical stream; the window is what lets batched
  // accept+start and kernel-side completion show up as throughput instead of
  // being hidden behind one-call-at-a-time round-trip latency. read_max is
  // sized past the maximum outstanding window so admission control never
  // detours calls through the overflow queue mid-measurement.
  constexpr int kWindow = 20;
  constexpr int kTotalOps = 4096;
  const int rounds = std::max(1, kTotalOps / (kWindow * threads));
  apps::ReadersWritersDb db({.read_max = 768,
                             .pool_workers = 16,
                             .multiactive = multiactive});
  for (auto _ : state) {
    benchutil::run_threads(threads, [&](int t) {
      for (int r = 0; r < rounds; ++r) {
        std::vector<CallHandle> window;
        window.reserve(kWindow);
        for (int i = 0; i < kWindow - (r % 5 == 4 ? 1 : 0); ++i) {
          window.push_back(db.async_read((t + i) % 8));
        }
        if (r % 5 == 4) window.push_back(db.async_write(t % 8, r));
        for (auto& h : window) h.get();
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * threads * rounds * kWindow);
  const auto inv = db.invariants();
  if (inv.exclusion_violated) state.SkipWithError("exclusion violated");
  state.counters["max_concurrent_readers"] =
      static_cast<double>(inv.max_concurrent_readers);
  set_ma_counters(state, db.object());
}

// mode fast / threads slow: for every thread count the serial (ma:0) and
// multiactive (ma:1) rows run back-to-back, so the ratio reads off directly
// and the A/B shares the same machine state.
BENCHMARK(BM_RwMultiactiveSweep)
    ->ArgNames({"ma", "threads"})
    ->ArgsProduct({{0, 1}, {1, 2, 4, 8, 16, 32}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- 2. dictionary search throughput with occasional inserts ----

void BM_DictMultiactiveSweep(benchmark::State& state) {
  const bool multiactive = state.range(0) != 0;
  const int threads = static_cast<int>(state.range(1));
  constexpr int kWindow = 32;
  constexpr int kTotalOps = 4096;
  const int rounds = std::max(1, kTotalOps / (kWindow * threads));
  auto words = support::make_word_list(64);
  apps::Dictionary dict(words, {.search_max = 768,
                                .multiactive = multiactive,
                                .pool_workers = 16});
  for (auto _ : state) {
    benchutil::run_threads(threads, [&](int t) {
      for (int r = 0; r < rounds; ++r) {
        std::vector<CallHandle> window;
        window.reserve(kWindow);
        const bool insert_round = r % 4 == 3;
        for (int i = 0; i < kWindow - (insert_round ? 1 : 0); ++i) {
          const auto w = static_cast<std::size_t>(
                             (t * 131 + r * kWindow + i) * 2654435761u) %
                         words.size();
          window.push_back(dict.async_search(words[w]));
        }
        if (insert_round) {
          window.push_back(dict.async_insert(
              words[static_cast<std::size_t>(t) % words.size()],
              "updated meaning"));
        }
        for (auto& h : window) h.get();
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * threads * rounds * kWindow);
  const auto s = dict.stats();
  state.counters["combined"] = static_cast<double>(s.combined);
  state.counters["inserts"] = static_cast<double>(s.inserts);
  set_ma_counters(state, dict.object());
}

BENCHMARK(BM_DictMultiactiveSweep)
    ->ArgNames({"ma", "threads"})
    ->ArgsProduct({{0, 1}, {1, 2, 4, 8, 16, 32}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return alps::benchutil::bench_main(argc, argv);
}
