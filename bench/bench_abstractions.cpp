// E12 (§1): "the object/manager facility in ALPS is a generalization of the
// well-known synchronization abstractions monitor, serializer and path
// expressions".
//
// The same readers–writers workload (4 readers / 1 writer, 200µs reads,
// 100µs writes) runs over four implementations of the same policy:
//   - the ALPS manager (§2.5.1 program),
//   - an Atkinson/Hewitt serializer,
//   - the path-expression runtime (`path 1:({read} | write) end` plus a
//     ReadMax restriction path),
//   - a fair mutex/cv rw-lock (hand-rolled, scattered-logic style).
// All enforce the invariant; the rows show the relative overhead of each
// abstraction, with ALPS paying its manager handoffs.
#include <benchmark/benchmark.h>

#include "apps/readers_writers.h"
#include "baselines/pathexpr.h"
#include "baselines/rw_locks.h"
#include "baselines/serializer.h"
#include "bench_util.h"

namespace {

using namespace alps;

constexpr int kReaders = 4;
constexpr int kOpsPerReader = 60;
constexpr int kWriterOps = 20;
constexpr auto kReadTime = std::chrono::microseconds(200);
constexpr auto kWriteTime = std::chrono::microseconds(100);
constexpr std::size_t kReadMax = 4;

template <class ReadFn, class WriteFn>
void drive(ReadFn do_read, WriteFn do_write) {
  benchutil::run_threads(kReaders + 1, [&](int t) {
    if (t < kReaders) {
      for (int i = 0; i < kOpsPerReader; ++i) do_read();
    } else {
      for (int i = 0; i < kWriterOps; ++i) do_write();
    }
  });
}

void BM_AlpsManagerRw(benchmark::State& state) {
  apps::ReadersWritersDb db({.read_max = kReadMax,
                             .read_time = kReadTime,
                             .write_time = kWriteTime,
                             .multiactive = false});
  for (auto _ : state) {
    drive([&] { db.read(0); }, [&] { db.write(0, 1); });
  }
  state.SetItemsProcessed(state.iterations() *
                          (kReaders * kOpsPerReader + kWriterOps));
  state.counters["violation"] = db.invariants().exclusion_violated ? 1 : 0;
}

void BM_SerializerRw(benchmark::State& state) {
  baselines::SerializerRwResource res(kReadMax);
  for (auto _ : state) {
    drive([&] { res.read([] { std::this_thread::sleep_for(kReadTime); }); },
          [&] { res.write([] { std::this_thread::sleep_for(kWriteTime); }); });
  }
  state.SetItemsProcessed(state.iterations() *
                          (kReaders * kOpsPerReader + kWriterOps));
}

void BM_PathExpressionRw(benchmark::State& state) {
  // Readers crowd inside the exclusion bracket; a second path bounds the
  // crowd at ReadMax.
  baselines::PathRuntime paths({"path 1:({read} | write) end",
                                "path 4:(read) end"});
  for (auto _ : state) {
    drive([&] { paths.perform("read", [] { std::this_thread::sleep_for(kReadTime); }); },
          [&] { paths.perform("write", [] { std::this_thread::sleep_for(kWriteTime); }); });
  }
  state.SetItemsProcessed(state.iterations() *
                          (kReaders * kOpsPerReader + kWriterOps));
}

void BM_FairRwLock(benchmark::State& state) {
  baselines::FairRwLock lock(kReadMax);
  for (auto _ : state) {
    drive(
        [&] {
          lock.lock_read();
          std::this_thread::sleep_for(kReadTime);
          lock.unlock_read();
        },
        [&] {
          lock.lock_write();
          std::this_thread::sleep_for(kWriteTime);
          lock.unlock_write();
        });
  }
  state.SetItemsProcessed(state.iterations() *
                          (kReaders * kOpsPerReader + kWriterOps));
}

#define RW_OPTS ->Unit(benchmark::kMillisecond)->UseRealTime()

BENCHMARK(BM_AlpsManagerRw) RW_OPTS;
BENCHMARK(BM_SerializerRw) RW_OPTS;
BENCHMARK(BM_PathExpressionRw) RW_OPTS;
BENCHMARK(BM_FairRwLock) RW_OPTS;

}  // namespace

ALPS_BENCH_MAIN()
