// E10 (§2.1): channels and the par construct.
//
// Rows: asynchronous send cost (never blocks), buffered receive, a
// 2-thread ping-pong (rendezvous-by-channel latency), select-guard receive
// through a manager, and par fan-out overhead per branch.
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include <thread>

#include "core/alps.h"

namespace {

using namespace alps;

void BM_ChannelSend(benchmark::State& state) {
  ChannelRef ch = make_channel();
  std::int64_t n = 0;
  for (auto _ : state) {
    ch->send(vals(n++));
    if (n % 4096 == 0) {
      while (ch->try_receive()) {  // drain so memory stays bounded
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ChannelSendReceive(benchmark::State& state) {
  ChannelRef ch = make_channel();
  for (auto _ : state) {
    ch->send(vals(1));
    benchmark::DoNotOptimize(ch->receive());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ChannelPingPong(benchmark::State& state) {
  ChannelRef ping = make_channel("ping");
  ChannelRef pong = make_channel("pong");
  std::jthread echo([&] {
    while (true) {
      auto msg = ping->receive_for(std::chrono::seconds(5));
      if (!msg || (*msg)[0].as_int() < 0) return;
      pong->send(std::move(*msg));
    }
  });
  for (auto _ : state) {
    ping->send(vals(1));
    benchmark::DoNotOptimize(pong->receive());
  }
  ping->send(vals(-1));
  state.SetItemsProcessed(state.iterations());
}

void BM_GuardedReceiveThroughManager(benchmark::State& state) {
  // A manager multiplexing a control channel; measures the full
  // send → guard wake-up → handler → reply path.
  Object obj("Mux");
  auto noop = obj.define_entry({.name = "Noop", .params = 0, .results = 0});
  obj.implement(noop, [](BodyCtx&) -> ValueList { return {}; });
  ChannelRef request = make_channel("req");
  ChannelRef reply = make_channel("rep");
  obj.set_manager({intercept(noop)}, [&](Manager& m) {
    Select()
        .on(receive_guard(request).then([&](ValueList msg) {
          reply->send(std::move(msg));
        }))
        .on(accept_guard(noop).then([&](Accepted a) { m.execute(a); }))
        .loop(m);
  });
  obj.start();
  for (auto _ : state) {
    request->send(vals(1));
    benchmark::DoNotOptimize(reply->receive());
  }
  state.SetItemsProcessed(state.iterations());
  obj.stop();
}

void BM_ParFanout(benchmark::State& state) {
  const auto branches = state.range(0);
  for (auto _ : state) {
    par_for(1, branches, [](long long) {});
  }
  state.SetItemsProcessed(state.iterations() * branches);
}

BENCHMARK(BM_ChannelSend)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_ChannelSendReceive)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_ChannelPingPong)->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK(BM_GuardedReceiveThroughManager)->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK(BM_ParFanout)->Arg(1)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
