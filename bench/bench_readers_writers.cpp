// E2 (§2.5.1): readers–writers.
//
// Two questions, two benchmark families:
//
//  1. Throughput vs ReadMax (ALPS manager): admitting more concurrent
//     readers raises read throughput until ReadMax exceeds the useful
//     parallelism.
//  2. Starvation: under a continuous reader stream, the paper's WriterLast
//     protocol bounds writer waiting; a reader-preference lock does not.
//     Reported as the `writer_max_wait_ms` counter — the ALPS row stays
//     bounded, the reader-preference row grows with the measured duration.
#include <benchmark/benchmark.h>

#include <atomic>

#include "apps/readers_writers.h"
#include "baselines/rw_locks.h"
#include "bench_util.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using namespace alps;

// ---- 1. throughput vs ReadMax ----

void BM_AlpsRw_ReadMaxSweep(benchmark::State& state) {
  const auto read_max = static_cast<std::size_t>(state.range(0));
  apps::ReadersWritersDb db({.read_max = read_max,
                             .read_time = std::chrono::microseconds(100),
                             .write_time = std::chrono::microseconds(100),
                             .pool_workers = read_max + 1,
                             .multiactive = false});
  constexpr int kReaders = 8, kOpsPerReader = 50;
  for (auto _ : state) {
    benchutil::run_threads(kReaders + 1, [&](int t) {
      if (t < kReaders) {
        for (int i = 0; i < kOpsPerReader; ++i) db.read(i % 16);
      } else {
        for (int i = 0; i < kOpsPerReader / 5; ++i) db.write(i % 16, i);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() *
                          (kReaders * kOpsPerReader + kOpsPerReader / 5));
  state.counters["max_concurrent_readers"] =
      static_cast<double>(db.invariants().max_concurrent_readers);
}

BENCHMARK(BM_AlpsRw_ReadMaxSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- 2. writer wait under sustained read load ----

template <class Submit>
double writer_max_wait_ms(Submit submit_write, const std::function<void()>& do_read,
                          std::chrono::milliseconds duration) {
  std::atomic<bool> stop{false};
  support::Histogram wait_hist;
  std::vector<std::jthread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) do_read();
    });
  }
  std::jthread writer([&] {
    while (!stop.load()) {
      const auto begin = std::chrono::steady_clock::now();
      submit_write();
      wait_hist.record_duration(std::chrono::steady_clock::now() - begin);
    }
  });
  std::this_thread::sleep_for(duration);
  stop = true;
  writer.join();
  readers.clear();
  return static_cast<double>(wait_hist.max()) / 1e6;
}

void BM_AlpsRw_WriterWait(benchmark::State& state) {
  apps::ReadersWritersDb db({.read_max = 4,
                             .read_time = std::chrono::microseconds(200),
                             .multiactive = false});
  double max_wait = 0;
  for (auto _ : state) {
    max_wait = writer_max_wait_ms([&] { db.write(0, 1); },
                                  [&] { db.read(0); },
                                  std::chrono::milliseconds(300));
  }
  state.counters["writer_max_wait_ms"] = max_wait;
}

void BM_ReaderPreference_WriterWait(benchmark::State& state) {
  baselines::ReaderPreferenceRwLock lock;
  double max_wait = 0;
  for (auto _ : state) {
    max_wait = writer_max_wait_ms(
        [&] {
          lock.lock_write();
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          lock.unlock_write();
        },
        [&] {
          lock.lock_read();
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          lock.unlock_read();
        },
        std::chrono::milliseconds(300));
  }
  state.counters["writer_max_wait_ms"] = max_wait;
}

void BM_FairLock_WriterWait(benchmark::State& state) {
  baselines::FairRwLock lock;
  double max_wait = 0;
  for (auto _ : state) {
    max_wait = writer_max_wait_ms(
        [&] {
          lock.lock_write();
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          lock.unlock_write();
        },
        [&] {
          lock.lock_read();
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          lock.unlock_read();
        },
        std::chrono::milliseconds(300));
  }
  state.counters["writer_max_wait_ms"] = max_wait;
}

BENCHMARK(BM_AlpsRw_WriterWait)->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ReaderPreference_WriterWait)->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_FairLock_WriterWait)->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
