// E18 (DESIGN.md §4.10): real sockets vs the simulated transport — the same
// echo RPC measured over the in-process Network, a Unix-domain-socket pair,
// and a TCP loopback pair, at payload sizes from 64 B to 1 MB.
//
// Rows report p50/p99 call latency (sorted-sample idiom; the mean hides the
// connect and scheduling tail that only real sockets have), frames_per_call
// from client-side transport-stats deltas (posts + deliveries; the sim's
// shared Network sees both endpoints, so its rows read ~2× the socket rows
// where each process counts only its own side), and
// assembled_per_call from the process-wide data-plane accounting: the socket
// send path consumes FrameBuilder's scatter-gather slices via writev, so
// payloads ≥ the 256 B slice threshold must show ~0 bytes gathered per call
// on the socket rows, exactly like the simulated rows.
//
// The second sweep holds the payload at 64 KB and grows the batch window:
// coalescing collapses frames_per_call below 2 on the wire while the batch
// envelope itself still rides the writev path (assembled_per_call stays
// ~flat as the window grows).
#include <benchmark/benchmark.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

#include "core/alps.h"
#include "net/net.h"
#include "support/stats.h"

namespace {

using namespace alps;

Blob pattern(std::size_t n) {
  Blob b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i * 31);
  return b;
}

struct Service {
  Object obj{"Svc"};
  EntryRef echo;
  Service() {
    echo = obj.define_entry({.name = "Echo", .params = 1, .results = 1});
    obj.implement(echo,
                  [](BodyCtx& ctx) -> ValueList { return {ctx.param(0)}; });
    obj.start();
  }
  ~Service() { obj.stop(); }
};

/// Reserves an ephemeral TCP port: bind to 127.0.0.1:0, read it back, close.
/// (Tiny reuse race, irrelevant at bench scale.)
std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

enum Backend : std::int64_t { kSim = 0, kUnix = 1, kTcp = 2 };

/// One client node (1) + one server node (2) over the chosen backend, with
/// the echo service hosted and the client's route seeded.
struct Rig {
  // Engaged for the sim row:
  std::unique_ptr<net::Network> network;
  // Engaged for the socket rows:
  std::unique_ptr<net::SocketTransport> client_t, server_t;
  std::string socket_dir;

  std::unique_ptr<net::Node> client, server;
  Service svc;

  explicit Rig(Backend backend) {
    if (backend == kSim) {
      network = std::make_unique<net::Network>();  // zero simulated latency
      client = std::make_unique<net::Node>(*network, "client");
      server = std::make_unique<net::Node>(*network, "server");
    } else {
      net::SocketAddress addr1, addr2;
      if (backend == kUnix) {
        static std::atomic<int> counter{0};
        socket_dir = (std::filesystem::temp_directory_path() /
                      ("alps-bench-" + std::to_string(::getpid()) + "-" +
                       std::to_string(counter.fetch_add(1))))
                         .string();
        std::filesystem::create_directories(socket_dir);
        addr1 = net::SocketAddress::unix_path(socket_dir + "/1.sock");
        addr2 = net::SocketAddress::unix_path(socket_dir + "/2.sock");
      } else {
        // Both listen ports must be known before either transport exists
        // (the peer map is fixed at construction), so reserve them first.
        addr1 = net::SocketAddress::tcp("127.0.0.1", pick_free_port());
        addr2 = net::SocketAddress::tcp("127.0.0.1", pick_free_port());
      }
      auto options = [&](net::NodeId self) {
        net::SocketTransportOptions o;
        o.local_node = self;
        o.local_name = self == 1 ? "client" : "server";
        o.listen = self == 1 ? addr1 : addr2;
        o.peers.push_back(self == 1 ? net::SocketPeer{2, "server", addr2}
                                    : net::SocketPeer{1, "client", addr1});
        return o;
      };
      client_t = std::make_unique<net::SocketTransport>(options(1));
      server_t = std::make_unique<net::SocketTransport>(options(2));
      client = std::make_unique<net::Node>(*client_t, "client");
      server = std::make_unique<net::Node>(*server_t, "server");
      client_t->directory().add("Svc", server->id());
    }
    server->host(svc.obj);
  }

  ~Rig() {
    client.reset();
    server.reset();
    client_t.reset();
    server_t.reset();
    network.reset();
    if (!socket_dir.empty()) std::filesystem::remove_all(socket_dir);
  }

  /// The client-side view of the wire (requests posted, responses delivered).
  net::TransportStats client_stats() const {
    return network ? network->transport_stats() : client_t->transport_stats();
  }
};

void report_row(benchmark::State& state, std::vector<double>& latency_us,
                const net::TransportStats& before,
                const net::TransportStats& after, std::int64_t calls,
                std::uint64_t assembled_before) {
  std::sort(latency_us.begin(), latency_us.end());
  const auto pct = [&](double q) {
    if (latency_us.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latency_us.size() - 1));
    return latency_us[idx];
  };
  const auto denom = static_cast<double>(std::max<std::int64_t>(calls, 1));
  state.counters["p50_us"] = benchmark::Counter(pct(0.50));
  state.counters["p99_us"] = benchmark::Counter(pct(0.99));
  state.counters["frames_per_call"] = benchmark::Counter(
      static_cast<double>((after.frames_posted - before.frames_posted) +
                          (after.frames_delivered - before.frames_delivered)) /
      denom);
  state.counters["assembled_per_call"] = benchmark::Counter(
      static_cast<double>(support::data_plane().bytes_assembled.get() -
                          assembled_before) /
      denom);
}

// ---- sequential echo: sim vs unix vs tcp -----------------------------------

void BM_TransportEcho(benchmark::State& state) {
  const auto backend = static_cast<Backend>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));
  Rig rig(backend);
  const Value payload(pattern(bytes));
  auto remote = rig.client->remote("Svc");
  // Warm the route cache and, on the socket rows, the TCP/UDS connections
  // in both directions — connection setup is a separate phenomenon from
  // steady-state framing cost.
  remote.call("Echo", {payload}, {}).value();

  const auto before = rig.client_stats();
  const auto assembled_before = support::data_plane().bytes_assembled.get();
  std::vector<double> latency_us;
  std::int64_t calls = 0;
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(remote.call("Echo", {payload}, {}));
    const auto elapsed = std::chrono::steady_clock::now() - begin;
    latency_us.push_back(
        std::chrono::duration<double, std::micro>(elapsed).count());
    ++calls;
  }
  report_row(state, latency_us, before, rig.client_stats(), calls,
             assembled_before);
  state.SetItemsProcessed(calls);
  state.SetBytesProcessed(calls * static_cast<std::int64_t>(bytes));
}

// ---- batch-window sweep at 64 KB over each backend -------------------------

void BM_TransportBatched(benchmark::State& state) {
  const auto backend = static_cast<Backend>(state.range(0));
  const auto window = static_cast<int>(state.range(1));
  Rig rig(backend);
  if (window > 1) {
    net::BatchOptions options;
    options.max_frames = static_cast<std::size_t>(window);
    options.max_bytes = std::size_t{1} << 30;  // frame bound decides flushes
    options.flush_interval = std::chrono::microseconds(50);
    rig.client->set_batching(options);
    rig.server->set_batching(options);
  }
  const Value payload(pattern(64 * 1024));
  auto remote = rig.client->remote("Svc");
  remote.call("Echo", {payload}, {}).value();

  const auto before = rig.client_stats();
  const auto assembled_before = support::data_plane().bytes_assembled.get();
  std::vector<double> latency_us;
  std::int64_t calls = 0;
  std::vector<net::RpcHandle> handles;
  handles.reserve(static_cast<std::size_t>(window));
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    handles.clear();
    for (int k = 0; k < window; ++k) {
      handles.push_back(remote.async_call("Echo", {payload}, {}));
    }
    for (auto& h : handles) benchmark::DoNotOptimize(h.result().ok());
    const auto elapsed = std::chrono::steady_clock::now() - begin;
    // One sample per window: the window is the unit a caller waits on.
    latency_us.push_back(
        std::chrono::duration<double, std::micro>(elapsed).count());
    calls += window;
  }
  report_row(state, latency_us, before, rig.client_stats(), calls,
             assembled_before);
  state.SetItemsProcessed(calls);
  state.SetBytesProcessed(calls * static_cast<std::int64_t>(64 * 1024));
}

// ---- chaos: echo through a server that dies and comes back (E19) -----------

// E19 (DESIGN.md §4.11): the cost of riding out a server blip. Halfway
// through the run the server's transport+node are destroyed and rebuilt on
// the same unix address after `downtime_ms`; every call runs under an
// aggressive RetryPolicy. completion_rate must hold at 1.0 — the price of
// the blip shows up in retransmits_per_call and the p99 tail instead.
void BM_TransportChaos(benchmark::State& state) {
  const auto downtime = std::chrono::milliseconds(state.range(0));

  static std::atomic<int> counter{0};
  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("alps-bench-chaos-" + std::to_string(::getpid()) +
                            "-" + std::to_string(counter.fetch_add(1))))
                              .string();
  std::filesystem::create_directories(dir);
  const auto addr1 = net::SocketAddress::unix_path(dir + "/1.sock");
  const auto addr2 = net::SocketAddress::unix_path(dir + "/2.sock");
  auto options = [&](net::NodeId self) {
    net::SocketTransportOptions o;
    o.local_node = self;
    o.local_name = self == 1 ? "client" : "server";
    o.listen = self == 1 ? addr1 : addr2;
    o.peers.push_back(self == 1 ? net::SocketPeer{2, "server", addr2}
                                : net::SocketPeer{1, "client", addr1});
    return o;
  };

  // The server side is bundled so one reset() is the kill and one
  // make_unique is the same-address restart.
  struct ServerSide {
    net::SocketTransport transport;
    net::Node node;
    Service svc;
    explicit ServerSide(const net::SocketTransportOptions& o)
        : transport(o), node(transport, "server") {
      node.host(svc.obj);
    }
  };
  {
  auto server = std::make_unique<ServerSide>(options(2));
  net::SocketTransport client_t(options(1));
  net::Node client(client_t, "client");
  client_t.directory().add("Svc", 2);

  net::CallOptions reliable;
  net::RetryPolicy policy;
  policy.attempt_timeout = std::chrono::milliseconds(5);
  reliable.retry = policy;
  reliable.deadline = std::chrono::seconds(10);

  const Value payload(pattern(1024));
  auto remote = client.remote("Svc");
  remote.call("Echo", {payload}, reliable).value();  // warm connections

  const auto retransmits_before = client.client_stats().retransmits;
  std::vector<double> latency_us;
  std::int64_t calls = 0, ok = 0;
  const auto blip_at = state.max_iterations / 2;
  for (auto _ : state) {
    if (calls == blip_at) {
      server.reset();
      if (downtime.count() > 0) std::this_thread::sleep_for(downtime);
      server = std::make_unique<ServerSide>(options(2));
    }
    const auto begin = std::chrono::steady_clock::now();
    if (remote.call("Echo", {payload}, reliable).ok()) ++ok;
    const auto elapsed = std::chrono::steady_clock::now() - begin;
    latency_us.push_back(
        std::chrono::duration<double, std::micro>(elapsed).count());
    ++calls;
  }
  std::sort(latency_us.begin(), latency_us.end());
  const auto pct = [&](double q) {
    if (latency_us.empty()) return 0.0;
    return latency_us[static_cast<std::size_t>(
        q * static_cast<double>(latency_us.size() - 1))];
  };
  const auto denom = static_cast<double>(std::max<std::int64_t>(calls, 1));
  state.counters["p50_us"] = benchmark::Counter(pct(0.50));
  state.counters["p99_us"] = benchmark::Counter(pct(0.99));
  state.counters["completion_rate"] =
      benchmark::Counter(static_cast<double>(ok) / denom);
  state.counters["retransmits_per_call"] = benchmark::Counter(
      static_cast<double>(client.client_stats().retransmits -
                          retransmits_before) /
      denom);
  state.SetItemsProcessed(calls);
  }
  std::filesystem::remove_all(dir);
}

void EchoSweep(benchmark::internal::Benchmark* b) {
  // Backend alternates fastest so each payload size is measured across all
  // three back-to-back (keeps allocator/thermal drift out of the contrast).
  for (std::int64_t bytes : {64, 4096, 65536, 1 << 20}) {
    for (std::int64_t backend : {kSim, kUnix, kTcp}) b->Args({backend, bytes});
  }
}

void BatchSweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t window : {1, 8, 32}) {
    for (std::int64_t backend : {kSim, kUnix, kTcp}) {
      b->Args({backend, window});
    }
  }
}

// Fixed iteration counts: enough samples for a stable p99 while bounding the
// 1 MB rows (600 MB through a socket per row is ~a second on loopback).
BENCHMARK(BM_TransportEcho)
    ->ArgNames({"backend", "bytes"})
    ->Apply(EchoSweep)
    ->Iterations(600)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(BM_TransportBatched)
    ->ArgNames({"backend", "window"})
    ->Apply(BatchSweep)
    ->Iterations(100)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
// Chaos rows: enough calls on each side of the mid-run blip for a stable
// p99; downtime 0 is a pure connection drop, 50 ms adds a real dead window.
BENCHMARK(BM_TransportChaos)
    ->ArgName("downtime_ms")
    ->Arg(0)
    ->Arg(50)
    ->Iterations(400)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
