// Ablation: the ALPS surface-language interpreter vs the same object
// programmed directly against the C++ kernel API.
//
// Both run the §2.4.1 bounded buffer with one producer and one consumer;
// the difference is pure interpretation overhead (tree-walking the bodies
// and the manager's guarded loop). Expected shape: same semantics, a
// constant factor of a few on the per-message cost — i.e. the kernel, not
// the notation, carries the synchronization semantics.
#include <benchmark/benchmark.h>

#include <thread>

#include "apps/bounded_buffer.h"
#include "bench_util.h"
#include "lang/interp.h"

namespace {

using namespace alps;

constexpr int kMessages = 200;

const char* kBufferProgram = R"(
  object Buffer defines
    proc Deposit(string);
    proc Remove returns (string);
  end Buffer;
  object Buffer implements
    var Buf: array 8 of string;
    var Inptr, Outptr: int;
    proc Deposit(M: string);
    begin
      Buf[Inptr] := M;
      Inptr := (Inptr + 1) mod 8;
    end Deposit;
    proc Remove returns (string);
    var M: string;
    begin
      M := Buf[Outptr];
      Outptr := (Outptr + 1) mod 8;
      return (M);
    end Remove;
    manager intercepts Deposit, Remove;
    var Count: int;
    begin
      Count := 0;
      loop
        accept Deposit[i] when Count < 8 =>
          execute Deposit[i];
          Count := Count + 1;
      or
        accept Remove[i] when Count > 0 =>
          execute Remove[i];
          Count := Count - 1;
      end loop
    end;
  end Buffer;
)";

void BM_NativeKernelBuffer(benchmark::State& state) {
  apps::BoundedBuffer buffer({.capacity = 8});
  for (auto _ : state) {
    std::jthread producer([&] {
      for (int i = 0; i < kMessages; ++i) buffer.deposit(Value("m"));
    });
    for (int i = 0; i < kMessages; ++i) buffer.remove();
  }
  state.SetItemsProcessed(state.iterations() * kMessages);
}

void BM_InterpretedAlpsBuffer(benchmark::State& state) {
  lang::Machine machine(kBufferProgram);
  for (auto _ : state) {
    std::jthread producer([&] {
      for (int i = 0; i < kMessages; ++i) {
        machine.call("Buffer", "Deposit", vals("m"));
      }
    });
    for (int i = 0; i < kMessages; ++i) machine.call("Buffer", "Remove");
  }
  state.SetItemsProcessed(state.iterations() * kMessages);
}

BENCHMARK(BM_NativeKernelBuffer)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_InterpretedAlpsBuffer)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
