// E7 (§3): process models for hidden procedure arrays.
//
// A bursty load hits an object whose entry is implemented as P[1..64]. Rows
// compare the three §3 strategies:
//   slot-bound — 64 threads created eagerly at object creation (the paper's
//                "the operating system may be burdened with too many
//                processes of which only a few might be active");
//   pooled(M)  — M << 64 workers, assigned at start time ("helps to
//                minimize the number of processes required");
//   dynamic    — a thread created per call (the expensive option the paper
//                warns about: "in many operating systems dynamic process
//                creation is expensive").
// Counter `threads_created` is the §3 cost metric; time is the burst
// completion latency.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/alps.h"

namespace {

using namespace alps;

constexpr std::size_t kArray = 64;
constexpr int kBurst = 48;       // concurrent calls per burst
constexpr int kBursts = 4;

void bench_model(benchmark::State& state, sched::ProcessModel model,
                 std::size_t pool_workers) {
  Object obj("Burst", ObjectOptions{.model = model, .pool_workers = pool_workers});
  auto e = obj.define_entry({.name = "Work", .params = 1, .results = 1});
  obj.implement(e, ImplDecl{.array = kArray}, [](BodyCtx& ctx) -> ValueList {
    benchutil::busy_spin(std::chrono::microseconds(20));
    return {ctx.param(0)};
  });
  obj.set_manager({intercept(e)}, [&](Manager& m) {
    Select()
        .on(accept_guard(e).then([&m](Accepted a) { m.start(a); }))
        .on(await_guard(e).then([&m](Awaited w) { m.finish(w); }))
        .loop(m);
  });
  obj.start();

  for (auto _ : state) {
    for (int b = 0; b < kBursts; ++b) {
      std::vector<CallHandle> handles;
      handles.reserve(kBurst);
      for (int i = 0; i < kBurst; ++i) {
        handles.push_back(obj.async_call(e, vals(i)));
      }
      for (auto& h : handles) h.get();
    }
  }
  state.SetItemsProcessed(state.iterations() * kBurst * kBursts);
  state.counters["threads_created"] =
      static_cast<double>(obj.stats().threads_created);
  obj.stop();
}

void BM_SlotBound(benchmark::State& state) {
  bench_model(state, sched::ProcessModel::kSlotBound, 0);
}
void BM_Pooled(benchmark::State& state) {
  bench_model(state, sched::ProcessModel::kPooled,
              static_cast<std::size_t>(state.range(0)));
}
void BM_Dynamic(benchmark::State& state) {
  bench_model(state, sched::ProcessModel::kDynamic, 0);
}

BENCHMARK(BM_SlotBound)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Pooled)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Dynamic)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
