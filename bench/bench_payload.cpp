// E17 (§2.8.2, DESIGN.md §4.9): the zero-copy data plane — payload-size
// sweep with interleaved A/B against the seed's copying data plane.
//
// Rows: local in-process echo (the floor — the kernel never serializes),
// sequential RPC, and batched pipelined RPC, each at payload sizes from
// 64 B to 1 MB and in both modes (zc=1 shared/sliced payloads, zc=0 the
// seed's copy-everything behavior via set_zero_copy_data_plane(false)). A
// second sweep holds the payload at 64 KB and grows the batch window.
//
// Counters (from the process-wide support::data_plane() accounting, reset
// per row): copied_per_call / referenced_per_call are end-to-end payload
// bytes memcpy'd vs carried by reference across BOTH nodes — request
// encode, server decode, response encode, client decode, plus any batch
// envelope splices. Expected shape: with zc=1 copied_per_call stays flat
// (headers only) as payload and batch size grow and the large-payload
// throughput gap vs zc=0 exceeds 2×; at 64 B the two modes are within
// noise (below kZeroCopySliceThreshold both copy into the arena).
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "core/alps.h"
#include "net/net.h"
#include "support/stats.h"

namespace {

using namespace alps;

Blob pattern(std::size_t n) {
  Blob b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i * 31);
  return b;
}

struct Service {
  Object obj{"Svc"};
  EntryRef echo;
  Service() {
    echo = obj.define_entry({.name = "Echo", .params = 1, .results = 1});
    obj.implement(echo,
                  [](BodyCtx& ctx) -> ValueList { return {ctx.param(0)}; });
    obj.start();
  }
  ~Service() { obj.stop(); }
};

/// Applies the A/B mode for a row and restores the default on scope exit.
struct ModeGuard {
  explicit ModeGuard(bool zero_copy) {
    net::set_zero_copy_data_plane(zero_copy);
    support::data_plane().reset();
  }
  ~ModeGuard() { net::set_zero_copy_data_plane(true); }
};

void report_data_plane(benchmark::State& state, std::int64_t calls) {
  const auto& dp = support::data_plane();
  const auto denom = static_cast<double>(std::max<std::int64_t>(calls, 1));
  state.counters["copied_per_call"] =
      benchmark::Counter(static_cast<double>(dp.bytes_copied.get()) / denom);
  state.counters["referenced_per_call"] = benchmark::Counter(
      static_cast<double>(dp.bytes_referenced.get()) / denom);
}

// ---- local echo (no serialization; the Value-copy cost itself) -------------

void BM_LocalEchoPayload(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const bool zc = state.range(1) != 0;
  Service svc;
  const Blob raw = pattern(bytes);
  const Value shared{Blob(raw)};  // one shared payload for the zc rows
  for (auto _ : state) {
    // zc=0 models the seed's by-value data plane, where every call handed
    // the kernel a fresh O(bytes) payload; zc=1 hands out refcounted shares
    // of one immutable payload, which is all the kernel copies ever touch.
    ValueList out = zc ? svc.obj.call(svc.echo, {shared})
                       : svc.obj.call(svc.echo, {Value(Blob(raw))});
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}

// ---- sequential RPC --------------------------------------------------------

void BM_RpcEchoPayload(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const bool zc = state.range(1) != 0;
  ModeGuard mode(zc);
  net::Network network;  // zero simulated latency: marshalling dominates
  net::Node client(network, "client");
  net::Node server(network, "server");
  Service svc;
  server.host(svc.obj);
  auto remote = client.remote(server.id(), "Svc");
  const Value payload(pattern(bytes));
  std::int64_t calls = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(remote.call("Echo", {payload}, {}));
    ++calls;
  }
  report_data_plane(state, calls);
  state.SetItemsProcessed(calls);
  state.SetBytesProcessed(calls * static_cast<std::int64_t>(bytes));
}

// ---- batched pipelined RPC -------------------------------------------------

void BM_RpcBatchedPayload(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const auto window = static_cast<int>(state.range(1));
  const bool zc = state.range(2) != 0;
  ModeGuard mode(zc);
  net::Network network;
  net::Node client(network, "client");
  net::Node server(network, "server");
  Service svc;
  server.host(svc.obj);
  if (window > 1) {
    net::BatchOptions options;
    options.max_frames = static_cast<std::size_t>(window);
    // The byte bound exists to cap link burstiness; here it must never
    // pre-empt the frame bound or the batch-size sweep measures flushes.
    options.max_bytes = std::size_t{1} << 30;
    options.flush_interval = std::chrono::microseconds(50);
    client.set_batching(options);
    server.set_batching(options);
  }
  auto remote = client.remote(server.id(), "Svc");
  const Value payload(pattern(bytes));
  std::int64_t calls = 0;
  std::vector<net::RpcHandle> handles;
  handles.reserve(static_cast<std::size_t>(window));
  for (auto _ : state) {
    handles.clear();
    for (int k = 0; k < window; ++k) {
      handles.push_back(remote.async_call("Echo", {payload}, {}));
    }
    for (auto& h : handles) benchmark::DoNotOptimize(h.result().ok());
    calls += window;
  }
  report_data_plane(state, calls);
  state.SetItemsProcessed(calls);
  state.SetBytesProcessed(calls * static_cast<std::int64_t>(bytes));
}

// zc alternates fastest so every size is measured A/B back-to-back — the
// interleaving keeps thermal / allocator drift out of the comparison.
void PayloadSweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t bytes : {64, 4096, 65536, 1 << 20}) {
    for (std::int64_t zc : {0, 1}) b->Args({bytes, zc});
  }
}

void BatchedSweep(benchmark::internal::Benchmark* b) {
  // Payload sweep at a fixed window of 16...
  for (std::int64_t bytes : {64, 4096, 65536, 1 << 20}) {
    for (std::int64_t zc : {0, 1}) b->Args({bytes, 16, zc});
  }
  // ...and a batch-size sweep at a fixed 64 KB payload: copied_per_call
  // must stay flat as the window grows (envelope splices re-reference
  // slices; only zc=0 re-copies members into the envelope).
  for (std::int64_t window : {1, 4, 32}) {
    for (std::int64_t zc : {0, 1}) b->Args({65536, window, zc});
  }
}

BENCHMARK(BM_LocalEchoPayload)
    ->ArgNames({"bytes", "zc"})
    ->Apply(PayloadSweep)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(BM_RpcEchoPayload)
    ->ArgNames({"bytes", "zc"})
    ->Apply(PayloadSweep)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(BM_RpcBatchedPayload)
    ->ArgNames({"bytes", "window", "zc"})
    ->Apply(BatchedSweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
