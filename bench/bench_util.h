// Shared helpers for the experiment benches (see DESIGN.md §3 for the E*
// mapping and EXPERIMENTS.md for recorded results).
//
// Environment note: this reproduction typically runs on a small container
// (often a single hardware thread). Absolute throughput numbers are
// time-sliced; the *shapes* — who wins, how ratios move along a sweep —
// are the reproduction targets, because they are driven by blocking
// structure, work savings and thread-count economics rather than core count.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

namespace alps::benchutil {

/// Runs `worker(thread_index)` on `n` threads and joins them all.
inline void run_threads(int n, const std::function<void(int)>& worker) {
  std::vector<std::jthread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&worker, i] { worker(i); });
  }
}

/// Spins for roughly `us` microseconds of CPU work (not a sleep) — models
/// service demand in the manager or a body.
inline void busy_spin(std::chrono::microseconds us) {
  const auto deadline = std::chrono::steady_clock::now() + us;
  while (std::chrono::steady_clock::now() < deadline) {
    benchmark::DoNotOptimize(deadline);
  }
}

}  // namespace alps::benchutil
