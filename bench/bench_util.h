// Shared helpers for the experiment benches (see DESIGN.md §3 for the E*
// mapping and EXPERIMENTS.md for recorded results).
//
// Environment note: this reproduction typically runs on a small container
// (often a single hardware thread). Absolute throughput numbers are
// time-sliced; the *shapes* — who wins, how ratios move along a sweep —
// are the reproduction targets, because they are driven by blocking
// structure, work savings and thread-count economics rather than core count.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

namespace alps::benchutil {

/// Drop-in replacement for BENCHMARK_MAIN()'s body that adds machine-
/// readable output: when the ALPS_BENCH_JSON environment variable names a
/// file, results are written there as google-benchmark JSON *in addition to*
/// the normal console table. The `bench_all` CMake target uses this to
/// collect every kernel bench into BENCH_kernel.json at the repo root.
inline int bench_main(int argc, char** argv) {
  // Route the JSON through google-benchmark's own --benchmark_out flags
  // (injected into argv) rather than a hand-constructed JSONReporter: the
  // library refuses a custom file reporter unless the flag is also set, and
  // the flag path gives the same console-plus-file behavior for free.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag;
  const char* json_path = std::getenv("ALPS_BENCH_JSON");
  if (json_path != nullptr && *json_path != '\0') {
    out_flag = std::string("--benchmark_out=") + json_path;
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// Runs `worker(thread_index)` on `n` threads and joins them all.
inline void run_threads(int n, const std::function<void(int)>& worker) {
  std::vector<std::jthread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&worker, i] { worker(i); });
  }
}

/// Spins for roughly `us` microseconds of CPU work (not a sleep) — models
/// service demand in the manager or a body.
inline void busy_spin(std::chrono::microseconds us) {
  const auto deadline = std::chrono::steady_clock::now() + us;
  while (std::chrono::steady_clock::now() < deadline) {
    benchmark::DoNotOptimize(deadline);
  }
}

}  // namespace alps::benchutil

/// Use in place of BENCHMARK_MAIN() to get the JSON-capable entry point.
#define ALPS_BENCH_MAIN()                             \
  int main(int argc, char** argv) {                   \
    return ::alps::benchutil::bench_main(argc, argv); \
  }
