// E13 (§4): RPC under frame loss — completion rate and tail latency vs drop
// rate, with and without the retry/at-most-once machinery.
//
// Rows sweep drop ∈ {0, 1%, 5%, 20%} × {no retry, default-ish retry}. Each
// iteration is one synchronous remote call; per-row counters report the
// fraction of calls that completed, the p99 call latency, and the retransmit
// cost the retry layer paid. Expected shape: without retries the completion
// rate tracks (1-p)^2 and failed calls pin the tail at the deadline; with
// retries completion stays at 1.0 and the tail grows only by the backoff of
// the unlucky calls.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "bench_util.h"

#include "core/alps.h"
#include "net/net.h"

namespace {

using namespace alps;

struct Service {
  Object obj{"Svc"};
  Service() {
    auto echo = obj.define_entry({.name = "Echo", .params = 1, .results = 1});
    obj.implement(echo, [](BodyCtx& ctx) -> ValueList { return {ctx.param(0)}; });
    obj.start();
  }
  ~Service() { obj.stop(); }
};

void BM_RpcUnderLoss(benchmark::State& state) {
  const double drop = static_cast<double>(state.range(0)) / 100.0;
  const bool with_retry = state.range(1) != 0;

  net::Network network(net::LinkLatency{std::chrono::microseconds(100), {}},
                       /*seed=*/20260806);
  net::Node client(network, "client");
  net::Node server(network, "server");
  Service svc;
  server.host(svc.obj);
  auto remote = client.remote(server.id(), "Svc");
  network.set_loss_probability(drop);

  net::CallOptions opts;
  if (with_retry) {
    net::RetryPolicy retry;  // unlimited attempts, scaled for a fast link
    retry.attempt_timeout = std::chrono::milliseconds(5);
    retry.initial_backoff = std::chrono::milliseconds(1);
    retry.max_backoff = std::chrono::milliseconds(10);
    opts.retry = retry;
  } else {
    // A bare deadline: lost frames burn the full 20 ms and fail the call.
    opts.deadline = std::chrono::milliseconds(20);
  }

  std::vector<double> latency_us;
  std::int64_t completed = 0, failed = 0;
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    auto r = remote.call("Echo", vals(1), opts);
    const auto elapsed = std::chrono::steady_clock::now() - begin;
    latency_us.push_back(
        std::chrono::duration<double, std::micro>(elapsed).count());
    if (r.ok()) {
      ++completed;
    } else {
      ++failed;
    }
  }

  std::sort(latency_us.begin(), latency_us.end());
  const auto pct = [&](double q) {
    if (latency_us.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latency_us.size() - 1));
    return latency_us[idx];
  };
  state.counters["completion_rate"] = benchmark::Counter(
      static_cast<double>(completed) /
      static_cast<double>(std::max<std::int64_t>(completed + failed, 1)));
  state.counters["p50_us"] = benchmark::Counter(pct(0.50));
  state.counters["p99_us"] = benchmark::Counter(pct(0.99));
  state.counters["retransmits_per_call"] = benchmark::Counter(
      static_cast<double>(client.client_stats().retransmits) /
      static_cast<double>(std::max<std::int64_t>(completed + failed, 1)));
  state.SetItemsProcessed(completed);
}

// 400 fixed iterations per row: enough samples for a stable p99 while keeping
// the worst row (20% drop, no retries, 20 ms deadline burns) bounded.
BENCHMARK(BM_RpcUnderLoss)
    ->ArgNames({"drop_pct", "retry"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({5, 0})
    ->Args({20, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({5, 1})
    ->Args({20, 1})
    ->Iterations(400)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
