// E11 (§1, §4): entry calls as remote procedure calls on a simulated
// multi-node network (substitute for the paper's 16-node transputer grid).
//
// Rows: local in-process call as the floor; RPC at zero simulated latency
// (pure marshalling + delivery-thread cost); RPC at transputer-ish link
// latencies; pipelined concurrent RPC showing latency hiding; and remote
// channel messaging. Expected shape: RPC ≈ local + 2×link latency for
// sequential calls, and pipelining recovers throughput despite latency.
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "core/alps.h"
#include "net/net.h"

namespace {

using namespace alps;

struct Service {
  Object obj{"Svc"};
  EntryRef echo;
  Service() {
    echo = obj.define_entry({.name = "Echo", .params = 1, .results = 1});
    obj.implement(echo, [](BodyCtx& ctx) -> ValueList { return {ctx.param(0)}; });
    obj.start();
  }
  ~Service() { obj.stop(); }
};

void BM_LocalCall(benchmark::State& state) {
  Service svc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.obj.call(svc.echo, vals(1)));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RpcSequential(benchmark::State& state) {
  const auto latency_us = state.range(0);
  net::Network network(
      net::LinkLatency{std::chrono::microseconds(latency_us), {}});
  net::Node client(network, "client");
  net::Node server(network, "server");
  Service svc;
  server.host(svc.obj);
  auto remote = client.remote(server.id(), "Svc");
  for (auto _ : state) {
    benchmark::DoNotOptimize(remote.call("Echo", vals(1), {}));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RpcPipelined(benchmark::State& state) {
  const auto latency_us = state.range(0);
  constexpr int kInflight = 32;
  net::Network network(
      net::LinkLatency{std::chrono::microseconds(latency_us), {}});
  net::Node client(network, "client");
  net::Node server(network, "server");
  Service svc;
  server.host(svc.obj);
  auto remote = client.remote(server.id(), "Svc");
  for (auto _ : state) {
    std::vector<net::RpcHandle> handles;
    handles.reserve(kInflight);
    for (int i = 0; i < kInflight; ++i) {
      handles.push_back(remote.async_call("Echo", vals(i), {}));
    }
    for (auto& h : handles) benchmark::DoNotOptimize(h.result());
  }
  state.SetItemsProcessed(state.iterations() * kInflight);
}

void BM_RemoteChannelSend(benchmark::State& state) {
  net::Network network;
  net::Node client(network, "client");
  net::Node server(network, "server");

  Object pump("Pump");
  auto fill = pump.define_entry({.name = "Fill", .params = 2, .results = 0});
  pump.implement(fill, [](BodyCtx& ctx) -> ValueList {
    const auto n = ctx.param(0).as_int();
    const ChannelRef out = ctx.param(1).as_channel();
    for (std::int64_t i = 0; i < n; ++i) out->send(vals(i));
    return {};
  });
  pump.start();
  server.host(pump);
  auto remote = client.remote(server.id(), "Pump");

  constexpr std::int64_t kBatch = 64;
  for (auto _ : state) {
    ChannelRef reply = make_channel();
    remote.call("Fill", vals(kBatch, reply), {});
    for (std::int64_t i = 0; i < kBatch; ++i) {
      benchmark::DoNotOptimize(reply->receive());
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  pump.stop();
}

BENCHMARK(BM_LocalCall)->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK(BM_RpcSequential)
    ->Arg(0)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(BM_RpcPipelined)
    ->Arg(0)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_RemoteChannelSend)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
