// Queueing behaviour of a managed object under open-loop load.
//
// Closed-loop benches (E1/E8) measure capacity; operators also need the
// latency-vs-offered-load curve: an open-loop arrival process (exponential
// interarrivals) posts calls regardless of completions, and the per-call
// latency histogram shows the classic hockey stick as the offered rate
// approaches the object's service capacity. This is the operational face of
// the paper's "the manager should do only minimal processing": the knee sits
// wherever the manager's serial work says it sits.
//
// Rows sweep the offered rate (calls/second); counters report p50/p99
// latency in microseconds.
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include <thread>

#include "core/alps.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using namespace alps;

void BM_OpenLoopLatency(benchmark::State& state) {
  const double offered_rate = static_cast<double>(state.range(0));  // calls/s
  constexpr auto kService = std::chrono::microseconds(100);
  constexpr int kCalls = 300;

  Object obj("Server", ObjectOptions{.pool_workers = 4});
  auto e = obj.define_entry({.name = "Op", .params = 0, .results = 0});
  obj.implement(e, ImplDecl{.array = 4}, [&](BodyCtx&) -> ValueList {
    std::this_thread::sleep_for(kService);
    return {};
  });
  obj.set_manager({intercept(e)}, [&](Manager& m) {
    Select()
        .on(accept_guard(e).then([&m](Accepted a) { m.start(a); }))
        .on(await_guard(e).then([&m](Awaited w) { m.finish(w); }))
        .loop(m);
  });
  obj.start();

  support::Histogram latency;
  for (auto _ : state) {
    latency.reset();
    support::Rng rng(42);
    std::vector<CallHandle> inflight;
    inflight.reserve(kCalls);
    auto next_arrival = std::chrono::steady_clock::now();
    for (int i = 0; i < kCalls; ++i) {
      next_arrival += std::chrono::nanoseconds(static_cast<std::int64_t>(
          rng.next_exponential(1e9 / offered_rate)));
      std::this_thread::sleep_until(next_arrival);
      CallHandle handle = obj.async_call(e, {});
      const auto begin = std::chrono::steady_clock::now();
      // Record at completion time (on the completing thread), not when this
      // open-loop driver eventually gets around to looking.
      handle.state()->on_complete([begin, &latency](CallState&) {
        latency.record_duration(std::chrono::steady_clock::now() - begin);
      });
      inflight.push_back(std::move(handle));
    }
    for (auto& handle : inflight) handle.wait();
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
  state.counters["p50_us"] =
      static_cast<double>(latency.percentile(0.50)) / 1e3;
  state.counters["p99_us"] =
      static_cast<double>(latency.percentile(0.99)) / 1e3;
  obj.stop();
}

// Capacity: 4 overlapped 100us services ≈ 40k/s, manager handoffs permitting.
// The sweep straddles it so the latency knee is visible; the low-rate row
// additionally shows cold-wakeup jitter (threads sleep between arrivals).
BENCHMARK(BM_OpenLoopLatency)
    ->Arg(2000)
    ->Arg(16000)
    ->Arg(64000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

ALPS_BENCH_MAIN()
