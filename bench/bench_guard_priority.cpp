// Ablation for run-time guard priorities (§2.4 `pri E`): the disk-arm
// scheduler under FIFO acceptance vs shortest-seek-first selection.
//
// Requests are issued in bursts of `queue_depth` so the manager has a queue
// to reorder. Counters report the total seek distance; with seek time
// proportional to distance, SSTF also finishes the workload faster. The
// `seek_per_request` shape (SSTF well below FIFO) is the reason the paper
// includes run-time-evaluable priorities instead of compile-time ones.
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "apps/disk_scheduler.h"
#include "core/alps.h"
#include "support/rng.h"

namespace {

using namespace alps;

void bench_policy(benchmark::State& state, apps::DiskScheduler::Policy policy) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  support::Rng rng(17);
  std::vector<std::int64_t> workload;
  for (int i = 0; i < 240; ++i) workload.push_back(rng.next_range(0, 199));

  std::uint64_t seek = 0;
  std::uint64_t requests = 0;
  for (auto _ : state) {
    apps::DiskScheduler disk(
        {.cylinders = 200,
         .queue_depth = depth,
         .policy = policy,
         .seek_time_per_cylinder = std::chrono::nanoseconds(500)});
    std::vector<CallHandle> handles;
    for (std::size_t i = 0; i < workload.size(); ++i) {
      handles.push_back(disk.async_access(workload[i]));
      if (handles.size() == depth) {
        for (auto& h : handles) h.get();
        handles.clear();
      }
    }
    for (auto& h : handles) h.get();
    const auto s = disk.stats();
    seek = s.total_seek_distance;
    requests = s.requests;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
  state.counters["total_seek_cylinders"] = static_cast<double>(seek);
  state.counters["seek_per_request"] =
      requests ? static_cast<double>(seek) / static_cast<double>(requests) : 0;
}

void BM_DiskFifo(benchmark::State& state) {
  bench_policy(state, apps::DiskScheduler::Policy::kFifo);
}
void BM_DiskSstfPriGuard(benchmark::State& state) {
  bench_policy(state, apps::DiskScheduler::Policy::kShortestSeekFirst);
}

// Pure guard-evaluation cost, no simulated seek time: G accept guards with
// when/pri closures partition a backlog of calls by `tag % G` and drain it
// smallest-tag-first. Every select pass confronts G guards x K pending
// candidates; the delta-driven engine evaluates each (guard, call) closure
// pair once and serves later passes from the priority index, while the
// naive strawman re-runs all of them every pass.
void bench_many_guards(benchmark::State& state, bool naive) {
  const auto n_guards = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBacklog = 128;
  Object obj("PriSelect", ObjectOptions{.pool_workers = 2});
  auto e = obj.define_entry({.name = "Op", .params = 1, .results = 0});
  obj.implement(e, ImplDecl{.array = kBacklog},
                [](BodyCtx&) -> ValueList { return {}; });
  obj.set_manager({intercept(e).params(1)}, [&](Manager& m) {
    Select sel;
    sel.use_naive_polling(naive);
    for (std::size_t g = 0; g < n_guards; ++g) {
      const auto mod = static_cast<std::int64_t>(g);
      const auto div = static_cast<std::int64_t>(n_guards);
      sel.on(accept_guard(e)
                 .when([mod, div](const ValueList& p) {
                   return p[0].as_int() % div == mod;
                 })
                 .pri([](const ValueList& p) { return p[0].as_int(); })
                 .cacheable()  // pure in the call's params: enable caching
                 .then([&m](Accepted a) { m.execute(a); }));
    }
    sel.loop(m);
  });
  obj.start();

  std::vector<CallHandle> handles;
  handles.reserve(kBacklog);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBacklog; ++i) {
      handles.push_back(
          obj.async_call(e, vals(static_cast<std::int64_t>(i))));
    }
    for (auto& h : handles) h.get();
    handles.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBacklog));
  obj.stop();
}

void BM_ManyGuardPriSelect(benchmark::State& state) {
  bench_many_guards(state, false);
}
void BM_ManyGuardPriNaive(benchmark::State& state) {
  bench_many_guards(state, true);
}

#define DEPTH_ARGS ->Arg(4)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond)->UseRealTime()
// Guard-count sweep; the largest config is the ISSUE acceptance config.
#define GUARD_ARGS ->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond)->UseRealTime()

BENCHMARK(BM_DiskFifo) DEPTH_ARGS;
BENCHMARK(BM_DiskSstfPriGuard) DEPTH_ARGS;
BENCHMARK(BM_ManyGuardPriSelect) GUARD_ARGS;
BENCHMARK(BM_ManyGuardPriNaive) GUARD_ARGS;

}  // namespace

ALPS_BENCH_MAIN()
