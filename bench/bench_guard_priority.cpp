// Ablation for run-time guard priorities (§2.4 `pri E`): the disk-arm
// scheduler under FIFO acceptance vs shortest-seek-first selection.
//
// Requests are issued in bursts of `queue_depth` so the manager has a queue
// to reorder. Counters report the total seek distance; with seek time
// proportional to distance, SSTF also finishes the workload faster. The
// `seek_per_request` shape (SSTF well below FIFO) is the reason the paper
// includes run-time-evaluable priorities instead of compile-time ones.
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "apps/disk_scheduler.h"
#include "support/rng.h"

namespace {

using namespace alps;

void bench_policy(benchmark::State& state, apps::DiskScheduler::Policy policy) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  support::Rng rng(17);
  std::vector<std::int64_t> workload;
  for (int i = 0; i < 240; ++i) workload.push_back(rng.next_range(0, 199));

  std::uint64_t seek = 0;
  std::uint64_t requests = 0;
  for (auto _ : state) {
    apps::DiskScheduler disk(
        {.cylinders = 200,
         .queue_depth = depth,
         .policy = policy,
         .seek_time_per_cylinder = std::chrono::nanoseconds(500)});
    std::vector<CallHandle> handles;
    for (std::size_t i = 0; i < workload.size(); ++i) {
      handles.push_back(disk.async_access(workload[i]));
      if (handles.size() == depth) {
        for (auto& h : handles) h.get();
        handles.clear();
      }
    }
    for (auto& h : handles) h.get();
    const auto s = disk.stats();
    seek = s.total_seek_distance;
    requests = s.requests;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.size()));
  state.counters["total_seek_cylinders"] = static_cast<double>(seek);
  state.counters["seek_per_request"] =
      requests ? static_cast<double>(seek) / static_cast<double>(requests) : 0;
}

void BM_DiskFifo(benchmark::State& state) {
  bench_policy(state, apps::DiskScheduler::Policy::kFifo);
}
void BM_DiskSstfPriGuard(benchmark::State& state) {
  bench_policy(state, apps::DiskScheduler::Policy::kShortestSeekFirst);
}

#define DEPTH_ARGS ->Arg(4)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond)->UseRealTime()

BENCHMARK(BM_DiskFifo) DEPTH_ARGS;
BENCHMARK(BM_DiskSstfPriGuard) DEPTH_ARGS;

}  // namespace

ALPS_BENCH_MAIN()
