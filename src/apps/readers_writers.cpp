#include "apps/readers_writers.h"

#include <thread>

namespace alps::apps {

ReadersWritersDb::ReadersWritersDb(Options options)
    : options_(options),
      obj_("Database", ObjectOptions{.model = options.model,
                                     .pool_workers = options.pool_workers}) {
  // --- definition part: Read and Write appear as single procedures ---
  if (options_.multiactive) {
    // Compatibility annotations (DESIGN.md §4.8): reads overlap each other,
    // writes conflict with everything (including other writes).
    read_ = obj_.define_entry(
        EntryDecl{.name = "Read", .params = 1, .results = 1}.compatible_with(
            {"Read"}));
    write_ = obj_.define_entry(
        EntryDecl{.name = "Write", .params = 2, .results = 0}.serial_group());
  } else {
    read_ = obj_.define_entry({.name = "Read", .params = 1, .results = 1});
    write_ = obj_.define_entry({.name = "Write", .params = 2, .results = 0});
  }

  // --- implementation part: Read is a hidden array Read[1..ReadMax] ---
  obj_.implement(read_, ImplDecl{.array = options_.read_max},
                 [this](BodyCtx& ctx) -> ValueList {
                   const int now = ++readers_active_;
                   int prev = max_readers_.load();
                   while (now > prev &&
                          !max_readers_.compare_exchange_weak(prev, now)) {
                   }
                   if (writers_active_.load() > 0) violated_ = true;
                   if (options_.read_time.count() > 0) {
                     std::this_thread::sleep_for(options_.read_time);
                   }
                   auto it = table_.find(ctx.param(0).as_int());
                   const std::int64_t data =
                       it == table_.end() ? 0 : it->second;
                   ++reads_;
                   --readers_active_;
                   return {Value(data)};
                 });
  obj_.implement(write_, [this](BodyCtx& ctx) -> ValueList {
    if (++writers_active_ > 1 || readers_active_.load() > 0) violated_ = true;
    if (options_.write_time.count() > 0) {
      std::this_thread::sleep_for(options_.write_time);
    }
    table_[ctx.param(0).as_int()] = ctx.param(1).as_int();
    ++writes_;
    --writers_active_;
    return {};
  });

  if (options_.multiactive) {
    // --- manager: compat-gated dispatch. The kernel's compatibility gate
    // subsumes the paper's ReadCount/WriterLast bookkeeping: the gate opens
    // only when the call is compatible with every in-flight group AND no
    // older incompatible call is waiting (arrival-order fairness), and
    // ReadMax is still enforced by the hidden array's slot count. Bodies
    // complete their callers directly — no await/finish turns.
    obj_.set_manager({intercept(read_), intercept(write_)}, [this](Manager& m) {
      Select()
          .on(accept_guard(read_).compatible().then([&](Accepted a) {
            m.start_compatible(a);
            // Drain any reads that piled up while we slept — one batch,
            // one lock, one executor wakeup.
            m.start_compatible_pending(read_);
          }))
          .on(accept_guard(write_).compatible().then([&](Accepted a) {
            m.start_compatible(a);
          }))
          .loop(m);
    });
    obj_.start();
    return;
  }

  // --- manager: the paper's protocol, verbatim ---
  obj_.set_manager(
      {intercept(read_), intercept(write_)}, [this](Manager& m) {
        std::size_t read_count = 0;  // active readers
        bool writer_last = false;    // a writer has just used the database
        Select()
            .on(accept_guard(read_)
                    .when([this, &read_count, &writer_last](const ValueList&) {
                      return (obj_.pending(write_) == 0 || writer_last) &&
                             read_count < options_.read_max;
                    })
                    .always_reeval()  // reads #P and manager-local state
                    .then([&](Accepted a) {
                      m.start(a);
                      ++read_count;
                      writer_last = false;
                    }))
            .on(await_guard(read_).then([&](Awaited w) {
              m.finish(w);
              --read_count;
            }))
            .on(accept_guard(write_)
                    .when([this, &read_count, &writer_last](const ValueList&) {
                      return read_count == 0 &&
                             (obj_.pending(read_) == 0 || !writer_last);
                    })
                    .always_reeval()  // reads #P and manager-local state
                    .then([&](Accepted a) {
                      m.execute(a);  // writers run in exclusion
                      writer_last = true;
                    }))
            .loop(m);
      });
  obj_.start();
}

ReadersWritersDb::~ReadersWritersDb() { obj_.stop(); }

std::int64_t ReadersWritersDb::read(std::int64_t key) {
  return obj_.call(read_, vals(key))[0].as_int();
}

void ReadersWritersDb::write(std::int64_t key, std::int64_t data) {
  obj_.call(write_, vals(key, data));
}

CallHandle ReadersWritersDb::async_read(std::int64_t key) {
  return obj_.async_call(read_, vals(key));
}

CallHandle ReadersWritersDb::async_write(std::int64_t key, std::int64_t data) {
  return obj_.async_call(write_, vals(key, data));
}

ReadersWritersDb::Invariants ReadersWritersDb::invariants() const {
  return Invariants{max_readers_.load(), violated_.load(), reads_.load(),
                    writes_.load()};
}

}  // namespace alps::apps
