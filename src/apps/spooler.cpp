#include "apps/spooler.h"

#include <deque>
#include <thread>

namespace alps::apps {

PrinterSpooler::PrinterSpooler(Options options)
    : options_(options),
      obj_("Spooler", ObjectOptions{.model = options.model,
                                    .pool_workers = options.pool_workers}) {
  for (std::size_t p = 0; p < options_.printers; ++p) {
    busy_.push_back(std::make_unique<std::atomic<int>>(0));
    jobs_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }

  // --- definition: proc Print(file, pages) ---
  print_ = obj_.define_entry({.name = "Print", .params = 2, .results = 0});

  // --- implementation: Print[1..PrintMax] with a hidden printer-number
  // parameter and a hidden printer-number result ---
  obj_.implement(
      print_, ImplDecl{.array = options_.print_max, .hidden_params = 1,
                       .hidden_results = 1},
      [this](BodyCtx& ctx) -> ValueList {
        const std::int64_t pages = ctx.param(1).as_int();
        const auto printer = static_cast<std::size_t>(ctx.param(2).as_int());
        if (busy_[printer]->fetch_add(1) != 0) overlap_ = true;
        std::this_thread::sleep_for(options_.page_time *
                                    static_cast<int>(pages));
        busy_[printer]->fetch_sub(1);
        jobs_[printer]->fetch_add(1);
        ++total_jobs_;
        // "the Print procedure also returns the printer number as a hidden
        // result back to the manager".
        return {Value(static_cast<std::int64_t>(printer))};
      });

  // --- manager ---
  obj_.set_manager(
      {intercept(print_)}, [this](Manager& m) {
        std::deque<std::int64_t> free_printers;
        for (std::size_t p = 0; p < options_.printers; ++p) {
          free_printers.push_back(static_cast<std::int64_t>(p));
        }
        Select()
            .on(accept_guard(print_)
                    .when([&free_printers](const ValueList&) {
                      return !free_printers.empty();
                    })
                    .always_reeval()  // reads manager-local printer pool
                    .then([&](Accepted a) {
                      const std::int64_t printer = free_printers.front();
                      free_printers.pop_front();
                      m.start(a, vals(printer));  // hidden parameter
                    }))
            .on(await_guard(print_).then([&](Awaited w) {
              // The hidden result is the printer to recycle.
              free_printers.push_back(w.results[0].as_int());
              m.finish(w);
            }))
            .loop(m);
      });
  obj_.start();
}

PrinterSpooler::~PrinterSpooler() { obj_.stop(); }

void PrinterSpooler::print(const std::string& file, std::int64_t pages) {
  obj_.call(print_, vals(file, pages));
}

CallHandle PrinterSpooler::async_print(const std::string& file,
                                       std::int64_t pages) {
  return obj_.async_call(print_, vals(file, pages));
}

PrinterSpooler::Stats PrinterSpooler::stats() const {
  Stats s;
  for (const auto& j : jobs_) s.jobs_per_printer.push_back(j->load());
  s.printer_overlap = overlap_.load();
  s.jobs = total_jobs_.load();
  return s;
}

}  // namespace alps::apps
