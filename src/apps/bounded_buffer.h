// §2.4.1 — the paper's bounded buffer: Deposit/Remove intercepted by a
// manager that accepts Deposit only while not full and Remove only while not
// empty, executing each call in exclusion (`execute`). This is the
// monitor-equivalent use of a manager (experiment E1).
#pragma once

#include <cstddef>
#include <vector>

#include "core/alps.h"

namespace alps::apps {

class BoundedBuffer {
 public:
  struct Options {
    std::size_t capacity = 8;
    sched::ProcessModel model = sched::ProcessModel::kPooled;
    std::size_t pool_workers = 2;
  };

  BoundedBuffer() : BoundedBuffer(Options()) {}
  explicit BoundedBuffer(Options options);
  ~BoundedBuffer();

  /// Blocks while the buffer is full.
  void deposit(Value message);

  /// Blocks while the buffer is empty.
  Value remove();

  CallHandle async_deposit(Value message);
  CallHandle async_remove();

  std::size_t capacity() const { return options_.capacity; }
  Object& object() { return obj_; }
  EntryRef deposit_entry() const { return deposit_; }
  EntryRef remove_entry() const { return remove_; }

 private:
  Options options_;
  Object obj_;
  EntryRef deposit_, remove_;
  std::vector<Value> buf_;
  std::size_t inptr_ = 0, outptr_ = 0;
};

}  // namespace alps::apps
