#include "apps/disk_scheduler.h"

#include <cstdlib>
#include <thread>

namespace alps::apps {

DiskScheduler::DiskScheduler(Options options)
    : options_(options),
      obj_("Disk", ObjectOptions{.model = options.model,
                                 .pool_workers = options.pool_workers}) {
  // --- definition: proc Access(cylinder) ---
  access_ = obj_.define_entry({.name = "Access", .params = 1, .results = 0});

  // --- implementation: the hidden parameter is the head position at start,
  // from which the body derives its seek time ---
  obj_.implement(
      access_, ImplDecl{.array = options_.queue_depth, .hidden_params = 1},
      [this](BodyCtx& ctx) -> ValueList {
        const std::int64_t cylinder = ctx.param(0).as_int();
        const std::int64_t head = ctx.param(1).as_int();
        const std::uint64_t distance =
            static_cast<std::uint64_t>(std::llabs(cylinder - head));
        total_seek_ += distance;
        ++requests_;
        if (options_.seek_time_per_cylinder.count() > 0) {
          std::this_thread::sleep_for(options_.seek_time_per_cylinder *
                                      static_cast<int>(distance));
        }
        return {};
      });

  // --- manager ---
  obj_.set_manager(
      {intercept(access_).params(1)}, [this](Manager& m) {
        std::int64_t head = 0;
        if (options_.policy == Policy::kShortestSeekFirst) {
          // `pri` = seek distance of the candidate request: among all
          // pending Access[i] the smallest moves first (the paper's
          // "smallest pri value will be selected").
          Select()
              .on(accept_guard(access_)
                      .pri([&head](const ValueList& p) {
                        return std::llabs(p[0].as_int() - head);
                      })
                      .always_reeval()  // `pri` reads the moving `head`
                      .then([&](Accepted a) {
                        const std::int64_t cylinder = a.params[0].as_int();
                        m.execute(a, vals(head));  // disk is serial
                        head = cylinder;
                      }))
              .loop(m);
        } else {
          // FIFO baseline: the plain accept takes requests in arrival order.
          while (!m.stop_requested()) {
            Accepted a = m.accept(access_);
            const std::int64_t cylinder = a.params[0].as_int();
            m.execute(a, vals(head));
            head = cylinder;
          }
        }
      });
  obj_.start();
}

DiskScheduler::~DiskScheduler() { obj_.stop(); }

void DiskScheduler::access(std::int64_t cylinder) {
  obj_.call(access_, vals(cylinder));
}

CallHandle DiskScheduler::async_access(std::int64_t cylinder) {
  return obj_.async_call(access_, vals(cylinder));
}

DiskScheduler::Stats DiskScheduler::stats() const {
  return Stats{requests_.load(), total_seek_.load()};
}

}  // namespace alps::apps
