#include "apps/bounded_buffer.h"

namespace alps::apps {

BoundedBuffer::BoundedBuffer(Options options)
    : options_(options),
      obj_("Buffer", ObjectOptions{.model = options.model,
                                   .pool_workers = options.pool_workers}) {
  buf_.resize(options_.capacity);

  // --- definition part ---
  deposit_ = obj_.define_entry({.name = "Deposit", .params = 1, .results = 0});
  remove_ = obj_.define_entry({.name = "Remove", .params = 0, .results = 1});

  // --- implementation part ---
  // The procedures manipulate Inptr/Outptr without any locking of their own;
  // the manager's scheduling provides the exclusion (the paper's point).
  obj_.implement(deposit_, [this](BodyCtx& ctx) -> ValueList {
    buf_[inptr_] = ctx.param(0);
    inptr_ = (inptr_ + 1) % options_.capacity;
    return {};
  });
  obj_.implement(remove_, [this](BodyCtx&) -> ValueList {
    Value m = buf_[outptr_];
    outptr_ = (outptr_ + 1) % options_.capacity;
    return {m};
  });

  // --- manager ---
  obj_.set_manager(
      {intercept(deposit_), intercept(remove_)}, [this](Manager& m) {
        std::size_t count = 0;  // manager-local buffer occupancy
        Select()
            .on(accept_guard(deposit_)
                    .when([this, &count](const ValueList&) {
                      return count < options_.capacity;
                    })
                    .always_reeval()  // reads manager-local `count`
                    .then([&m, &count](Accepted a) {
                      m.execute(a);
                      ++count;
                    }))
            .on(accept_guard(remove_)
                    .when([&count](const ValueList&) { return count > 0; })
                    .always_reeval()  // reads manager-local `count`
                    .then([&m, &count](Accepted a) {
                      m.execute(a);
                      --count;
                    }))
            .loop(m);
      });
  obj_.start();
}

BoundedBuffer::~BoundedBuffer() { obj_.stop(); }

void BoundedBuffer::deposit(Value message) {
  obj_.call(deposit_, {std::move(message)});
}

Value BoundedBuffer::remove() { return obj_.call(remove_, {})[0]; }

CallHandle BoundedBuffer::async_deposit(Value message) {
  return obj_.async_call(deposit_, {std::move(message)});
}

CallHandle BoundedBuffer::async_remove() { return obj_.async_call(remove_, {}); }

}  // namespace alps::apps
