#include "apps/dictionary.h"

#include <thread>

#include "net/directory.h"
#include "net/rpc.h"

namespace alps::apps {

Dictionary::Dictionary(std::vector<std::string> words, Options options)
    : options_(options),
      obj_(options.object_name,
           ObjectOptions{.model = options.model,
                         .pool_workers = options.pool_workers}) {
  for (auto& w : words) db_.emplace(w, "meaning of " + w);

  // --- definition: proc Search(String) returns (String),
  //                 proc Insert(String, String) ---
  if (options_.multiactive) {
    // Compatibility annotations (DESIGN.md §4.8): searches overlap each
    // other, inserts conflict with everything (including other inserts).
    search_ = obj_.define_entry(
        EntryDecl{.name = "Search", .params = 1, .results = 1}.compatible_with(
            {"Search"}));
    insert_ = obj_.define_entry(
        EntryDecl{.name = "Insert", .params = 2, .results = 0}.serial_group());
  } else {
    search_ = obj_.define_entry({.name = "Search", .params = 1, .results = 1});
    insert_ = obj_.define_entry({.name = "Insert", .params = 2, .results = 0});
  }

  // --- implementation: Search[1..SearchMax] ---
  obj_.implement(search_, ImplDecl{.array = options_.search_max},
                 [this](BodyCtx& ctx) -> ValueList {
                   ++executed_;
                   if (options_.search_time.count() > 0) {
                     std::this_thread::sleep_for(options_.search_time);
                   }
                   auto it = db_.find(ctx.param(0).as_string());
                   return {Value(it == db_.end() ? std::string("?")
                                                 : it->second)};
                 });
  obj_.implement(insert_, [this](BodyCtx& ctx) -> ValueList {
    db_[ctx.param(0).as_string()] = ctx.param(1).as_string();
    ++inserts_;
    return {};
  });

  if (options_.multiactive) {
    // --- manager: compat-gated dispatch. The annotations carry the whole
    // exclusion protocol; no combining (searches launch without the await
    // turn combining hooks into).
    obj_.set_manager(
        {intercept(search_), intercept(insert_)}, [this](Manager& m) {
          Select()
              .on(accept_guard(search_).compatible().then([&, this](
                                                              Accepted a) {
                ++requests_;
                m.start_compatible(a);
                requests_ += m.start_compatible_pending(search_);
              }))
              .on(accept_guard(insert_).compatible().then([&](Accepted a) {
                m.start_compatible(a);
              }))
              .loop(m);
        });
    obj_.start();
    return;
  }

  // --- manager: intercepts Search(String; String) ---
  obj_.set_manager(
      {intercept(search_).params(1).results(1), intercept(insert_)},
      [this](Manager& m) {
        // Which word each running slot is searching, and the accepted
        // requests waiting to be combined with it.
        std::unordered_map<std::size_t, std::string> slot_word;
        std::unordered_map<std::string, std::vector<Accepted>> piggybacked;
        // Inserts mutate db_ so they must run with no search body in
        // flight. Accepted inserts queue here; searches arriving behind a
        // queued insert stall so the running searches drain.
        std::vector<Accepted> queued_inserts;
        std::vector<Accepted> stalled_searches;
        auto word_in_flight = [&](const std::string& w) {
          for (const auto& [slot, word] : slot_word) {
            if (word == w) return true;
          }
          return false;
        };
        auto dispatch_search = [&, this](Accepted a) {
          const std::string word = a.params[0].as_string();
          if (options_.combining && word_in_flight(word)) {
            // "record that Word is now being searched on behalf of
            // Search[i]" — no start.
            piggybacked[word].push_back(std::move(a));
          } else {
            slot_word[a.slot] = word;
            m.start(a);
          }
        };
        auto maybe_drain_inserts = [&](Manager& mgr) {
          if (queued_inserts.empty() || !slot_word.empty()) return;
          for (Accepted& ins : queued_inserts) mgr.execute(ins);
          queued_inserts.clear();
          for (Accepted& a : stalled_searches) dispatch_search(std::move(a));
          stalled_searches.clear();
        };

        Select()
            .on(accept_guard(search_).then([&, this](Accepted a) {
              ++requests_;
              if (!queued_inserts.empty()) {
                stalled_searches.push_back(std::move(a));
              } else {
                dispatch_search(std::move(a));
              }
            }))
            .on(accept_guard(insert_).then([&](Accepted a) {
              queued_inserts.push_back(std::move(a));
              maybe_drain_inserts(m);
            }))
            .on(await_guard(search_).then([&, this](Awaited w) {
              const std::string word = slot_word[w.slot];
              slot_word.erase(w.slot);
              const ValueList meaning = w.results;  // intercepted result
              m.finish(w);
              // Answer everyone who piggybacked on this search.
              auto it = piggybacked.find(word);
              if (it != piggybacked.end()) {
                for (Accepted& rider : it->second) {
                  ++combined_;
                  m.combine_finish(rider, meaning);
                }
                piggybacked.erase(it);
              }
              maybe_drain_inserts(m);
            }))
            .loop(m);
      });
  obj_.start();
}

Dictionary::~Dictionary() { obj_.stop(); }

std::string Dictionary::search(const std::string& word) {
  return obj_.call(search_, vals(word))[0].as_string();
}

CallHandle Dictionary::async_search(const std::string& word) {
  return obj_.async_call(search_, vals(word));
}

void Dictionary::insert(const std::string& word, const std::string& meaning) {
  obj_.call(insert_, vals(word, meaning));
}

CallHandle Dictionary::async_insert(const std::string& word,
                                    const std::string& meaning) {
  return obj_.async_call(insert_, vals(word, meaning));
}

Dictionary::Stats Dictionary::stats() const {
  return Stats{requests_.load(), executed_.load(), combined_.load(),
               inserts_.load()};
}

// ---- ShardedDictionary -----------------------------------------------------

namespace {

/// Which shard a word routes to under an n-home map — must agree with the
/// client-side router (rpc.cpp), so use the same two hashes.
std::uint32_t shard_of_word(const std::string& word, std::uint32_t n) {
  return net::jump_consistent_hash(net::shard_key_hash(Value(word)), n);
}

}  // namespace

ShardedDictionary::ShardedDictionary(std::vector<std::string> words,
                                     Dictionary::Options options,
                                     net::Transport& transport,
                                     std::vector<net::Node*> homes)
    : name_(options.object_name),
      words_(std::move(words)),
      options_(options),
      transport_(&transport),
      homes_(std::move(homes)) {
  // Partition the initial corpus the way the router will: each shard's
  // Dictionary holds exactly the words that hash to it. Homes must be
  // distinct nodes (one hosted "name_" per node).
  const auto n = static_cast<std::uint32_t>(homes_.size());
  std::vector<std::vector<std::string>> per_shard(homes_.size());
  for (const auto& w : words_) per_shard[shard_of_word(w, n)].push_back(w);

  std::vector<net::NodeId> ids;
  ids.reserve(homes_.size());
  for (std::size_t i = 0; i < homes_.size(); ++i) {
    shards_.push_back(
        std::make_unique<Dictionary>(std::move(per_shard[i]), options_));
    homes_[i]->host(shards_[i]->object());
    ids.push_back(homes_[i]->id());
  }
  // host() above registered the name single-homed (last writer); installing
  // the shard map last makes the whole set authoritative in one epoch bump.
  transport_->directory().add_sharded(name_, std::move(ids));
}

ShardedDictionary::~ShardedDictionary() {
  // Each unhost demotes its node out of the shared entry; the last one
  // erases it.
  for (net::Node* node : homes_) node->unhost(name_);
}

void ShardedDictionary::split_to(net::Node& new_home) {
  const auto new_n = static_cast<std::uint32_t>(homes_.size() + 1);
  // Jump hashing guarantees every key that moves under N → N+1 moves to the
  // NEW bucket, so the new shard's corpus is exactly the words hashing to
  // slot N under the grown map — the survivors keep their slots untouched.
  std::vector<std::string> moved;
  for (const auto& w : words_) {
    if (shard_of_word(w, new_n) == new_n - 1) moved.push_back(w);
  }
  shards_.push_back(std::make_unique<Dictionary>(std::move(moved), options_));
  new_home.host(shards_.back()->object());
  homes_.push_back(&new_home);

  // Flip the map only after the new shard is hosted and loaded: a request
  // redirected mid-split always finds the data already there.
  std::vector<net::NodeId> ids;
  ids.reserve(homes_.size());
  for (net::Node* node : homes_) ids.push_back(node->id());
  transport_->directory().add_sharded(name_, std::move(ids));
}

Dictionary::Stats ShardedDictionary::stats() const {
  Dictionary::Stats sum;
  for (const auto& d : shards_) {
    const auto s = d->stats();
    sum.requests += s.requests;
    sum.executed += s.executed;
    sum.combined += s.combined;
    sum.inserts += s.inserts;
  }
  return sum;
}

}  // namespace alps::apps
