#include "apps/dictionary.h"

#include <thread>

namespace alps::apps {

Dictionary::Dictionary(std::vector<std::string> words, Options options)
    : options_(options),
      obj_(options.object_name,
           ObjectOptions{.model = options.model,
                         .pool_workers = options.pool_workers}) {
  for (auto& w : words) db_.emplace(w, "meaning of " + w);

  // --- definition: proc Search(String) returns (String),
  //                 proc Insert(String, String) ---
  if (options_.multiactive) {
    // Compatibility annotations (DESIGN.md §4.8): searches overlap each
    // other, inserts conflict with everything (including other inserts).
    search_ = obj_.define_entry(
        EntryDecl{.name = "Search", .params = 1, .results = 1}.compatible_with(
            {"Search"}));
    insert_ = obj_.define_entry(
        EntryDecl{.name = "Insert", .params = 2, .results = 0}.serial_group());
  } else {
    search_ = obj_.define_entry({.name = "Search", .params = 1, .results = 1});
    insert_ = obj_.define_entry({.name = "Insert", .params = 2, .results = 0});
  }

  // --- implementation: Search[1..SearchMax] ---
  obj_.implement(search_, ImplDecl{.array = options_.search_max},
                 [this](BodyCtx& ctx) -> ValueList {
                   ++executed_;
                   if (options_.search_time.count() > 0) {
                     std::this_thread::sleep_for(options_.search_time);
                   }
                   auto it = db_.find(ctx.param(0).as_string());
                   return {Value(it == db_.end() ? std::string("?")
                                                 : it->second)};
                 });
  obj_.implement(insert_, [this](BodyCtx& ctx) -> ValueList {
    db_[ctx.param(0).as_string()] = ctx.param(1).as_string();
    ++inserts_;
    return {};
  });

  if (options_.multiactive) {
    // --- manager: compat-gated dispatch. The annotations carry the whole
    // exclusion protocol; no combining (searches launch without the await
    // turn combining hooks into).
    obj_.set_manager(
        {intercept(search_), intercept(insert_)}, [this](Manager& m) {
          Select()
              .on(accept_guard(search_).compatible().then([&, this](
                                                              Accepted a) {
                ++requests_;
                m.start_compatible(a);
                requests_ += m.start_compatible_pending(search_);
              }))
              .on(accept_guard(insert_).compatible().then([&](Accepted a) {
                m.start_compatible(a);
              }))
              .loop(m);
        });
    obj_.start();
    return;
  }

  // --- manager: intercepts Search(String; String) ---
  obj_.set_manager(
      {intercept(search_).params(1).results(1), intercept(insert_)},
      [this](Manager& m) {
        // Which word each running slot is searching, and the accepted
        // requests waiting to be combined with it.
        std::unordered_map<std::size_t, std::string> slot_word;
        std::unordered_map<std::string, std::vector<Accepted>> piggybacked;
        // Inserts mutate db_ so they must run with no search body in
        // flight. Accepted inserts queue here; searches arriving behind a
        // queued insert stall so the running searches drain.
        std::vector<Accepted> queued_inserts;
        std::vector<Accepted> stalled_searches;
        auto word_in_flight = [&](const std::string& w) {
          for (const auto& [slot, word] : slot_word) {
            if (word == w) return true;
          }
          return false;
        };
        auto dispatch_search = [&, this](Accepted a) {
          const std::string word = a.params[0].as_string();
          if (options_.combining && word_in_flight(word)) {
            // "record that Word is now being searched on behalf of
            // Search[i]" — no start.
            piggybacked[word].push_back(std::move(a));
          } else {
            slot_word[a.slot] = word;
            m.start(a);
          }
        };
        auto maybe_drain_inserts = [&](Manager& mgr) {
          if (queued_inserts.empty() || !slot_word.empty()) return;
          for (Accepted& ins : queued_inserts) mgr.execute(ins);
          queued_inserts.clear();
          for (Accepted& a : stalled_searches) dispatch_search(std::move(a));
          stalled_searches.clear();
        };

        Select()
            .on(accept_guard(search_).then([&, this](Accepted a) {
              ++requests_;
              if (!queued_inserts.empty()) {
                stalled_searches.push_back(std::move(a));
              } else {
                dispatch_search(std::move(a));
              }
            }))
            .on(accept_guard(insert_).then([&](Accepted a) {
              queued_inserts.push_back(std::move(a));
              maybe_drain_inserts(m);
            }))
            .on(await_guard(search_).then([&, this](Awaited w) {
              const std::string word = slot_word[w.slot];
              slot_word.erase(w.slot);
              const ValueList meaning = w.results;  // intercepted result
              m.finish(w);
              // Answer everyone who piggybacked on this search.
              auto it = piggybacked.find(word);
              if (it != piggybacked.end()) {
                for (Accepted& rider : it->second) {
                  ++combined_;
                  m.combine_finish(rider, meaning);
                }
                piggybacked.erase(it);
              }
              maybe_drain_inserts(m);
            }))
            .loop(m);
      });
  obj_.start();
}

Dictionary::~Dictionary() { obj_.stop(); }

std::string Dictionary::search(const std::string& word) {
  return obj_.call(search_, vals(word))[0].as_string();
}

CallHandle Dictionary::async_search(const std::string& word) {
  return obj_.async_call(search_, vals(word));
}

void Dictionary::insert(const std::string& word, const std::string& meaning) {
  obj_.call(insert_, vals(word, meaning));
}

CallHandle Dictionary::async_insert(const std::string& word,
                                    const std::string& meaning) {
  return obj_.async_call(insert_, vals(word, meaning));
}

Dictionary::Stats Dictionary::stats() const {
  return Stats{requests_.load(), executed_.load(), combined_.load(),
               inserts_.load()};
}

}  // namespace alps::apps
