#include "apps/dictionary.h"

#include <thread>

namespace alps::apps {

Dictionary::Dictionary(std::vector<std::string> words, Options options)
    : options_(options),
      obj_("Dictionary", ObjectOptions{.model = options.model,
                                       .pool_workers = options.pool_workers}) {
  for (auto& w : words) db_.emplace(w, "meaning of " + w);

  // --- definition: proc Search(String) returns (String) ---
  search_ = obj_.define_entry({.name = "Search", .params = 1, .results = 1});

  // --- implementation: Search[1..SearchMax] ---
  obj_.implement(search_, ImplDecl{.array = options_.search_max},
                 [this](BodyCtx& ctx) -> ValueList {
                   ++executed_;
                   if (options_.search_time.count() > 0) {
                     std::this_thread::sleep_for(options_.search_time);
                   }
                   auto it = db_.find(ctx.param(0).as_string());
                   return {Value(it == db_.end() ? std::string("?")
                                                 : it->second)};
                 });

  // --- manager: intercepts Search(String; String) ---
  obj_.set_manager(
      {intercept(search_).params(1).results(1)}, [this](Manager& m) {
        // Which word each running slot is searching, and the accepted
        // requests waiting to be combined with it.
        std::unordered_map<std::size_t, std::string> slot_word;
        std::unordered_map<std::string, std::vector<Accepted>> piggybacked;
        auto word_in_flight = [&](const std::string& w) {
          for (const auto& [slot, word] : slot_word) {
            if (word == w) return true;
          }
          return false;
        };

        Select()
            .on(accept_guard(search_).then([&, this](Accepted a) {
              ++requests_;
              const std::string word = a.params[0].as_string();
              if (options_.combining && word_in_flight(word)) {
                // "record that Word is now being searched on behalf of
                // Search[i]" — no start.
                piggybacked[word].push_back(std::move(a));
              } else {
                slot_word[a.slot] = word;
                m.start(a);
              }
            }))
            .on(await_guard(search_).then([&, this](Awaited w) {
              const std::string word = slot_word[w.slot];
              slot_word.erase(w.slot);
              const ValueList meaning = w.results;  // intercepted result
              m.finish(w);
              // Answer everyone who piggybacked on this search.
              auto it = piggybacked.find(word);
              if (it != piggybacked.end()) {
                for (Accepted& rider : it->second) {
                  ++combined_;
                  m.combine_finish(rider, meaning);
                }
                piggybacked.erase(it);
              }
            }))
            .loop(m);
      });
  obj_.start();
}

Dictionary::~Dictionary() { obj_.stop(); }

std::string Dictionary::search(const std::string& word) {
  return obj_.call(search_, vals(word))[0].as_string();
}

CallHandle Dictionary::async_search(const std::string& word) {
  return obj_.async_call(search_, vals(word));
}

Dictionary::Stats Dictionary::stats() const {
  return Stats{requests_.load(), executed_.load(), combined_.load()};
}

}  // namespace alps::apps
