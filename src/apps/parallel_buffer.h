// §2.8.2 — the paper's parallel bounded buffer.
//
// Unlike the §2.4.1 buffer (whose manager `execute`s every call in
// exclusion), Deposit and Remove are hidden procedure arrays and the manager
// assigns each accepted call a free/full buffer-slot index as a *hidden
// parameter*. Once started, the body copies its (potentially long) message
// into/out of its private slot with no further synchronization — so message
// copies proceed in parallel, which is the whole point ("more useful in
// parallel processing"). Each body hands its slot index back as a *hidden
// result*, which the manager files into the Full or Free list; the manager
// itself never tracks which slot went to which call. Experiment E5 compares
// this against the serial buffer as the message length grows.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/alps.h"

namespace alps::apps {

class ParallelBoundedBuffer {
 public:
  struct Options {
    std::size_t capacity = 16;       ///< N buffer slots
    std::size_t producer_max = 4;    ///< Deposit[1..ProducerMax]
    std::size_t consumer_max = 4;    ///< Remove[1..ConsumerMax]
    sched::ProcessModel model = sched::ProcessModel::kPooled;
    std::size_t pool_workers = 8;
  };

  struct Stats {
    /// Peak number of concurrently executing Deposit/Remove bodies — >1
    /// demonstrates the parallel service the serial buffer cannot provide.
    int max_concurrent_copies = 0;
    std::uint64_t deposits = 0;
    std::uint64_t removes = 0;
  };

  ParallelBoundedBuffer() : ParallelBoundedBuffer(Options()) {}
  explicit ParallelBoundedBuffer(Options options);
  ~ParallelBoundedBuffer();

  void deposit(Value message);
  Value remove();
  CallHandle async_deposit(Value message);
  CallHandle async_remove();

  Stats stats() const;
  Object& object() { return obj_; }

 private:
  Options options_;
  Object obj_;
  EntryRef deposit_, remove_;
  std::vector<Value> buf_;  // slots are disjoint; no lock needed

  std::atomic<int> copies_active_{0};
  std::atomic<int> max_copies_{0};
  std::atomic<std::uint64_t> deposits_{0}, removes_{0};
};

}  // namespace alps::apps
