// A disk-arm scheduler built on run-time guard priorities (§2.4).
//
// The paper adds `pri E` to guards precisely for schedulers like this one:
// among pending Access requests the manager serves the one with the
// smallest seek distance from the current head position (SSTF). The FIFO
// policy uses the plain blocking accept (arrival order) as the baseline;
// the ablation bench (E10/guard-priority) compares total seek distance.
//
// This is the classic example used by the SR and Ada literature the paper
// cites for run-time-evaluable priorities.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "core/alps.h"

namespace alps::apps {

class DiskScheduler {
 public:
  enum class Policy { kFifo, kShortestSeekFirst };

  struct Options {
    std::int64_t cylinders = 200;
    std::size_t queue_depth = 16;  ///< hidden array size
    Policy policy = Policy::kShortestSeekFirst;
    /// Simulated seek time per cylinder of travel.
    std::chrono::nanoseconds seek_time_per_cylinder{0};
    sched::ProcessModel model = sched::ProcessModel::kPooled;
    std::size_t pool_workers = 2;
  };

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t total_seek_distance = 0;
  };

  DiskScheduler() : DiskScheduler(Options()) {}
  explicit DiskScheduler(Options options);
  ~DiskScheduler();

  /// Performs one disk access at `cylinder`; blocks until served.
  void access(std::int64_t cylinder);
  CallHandle async_access(std::int64_t cylinder);

  Stats stats() const;
  Object& object() { return obj_; }

 private:
  Options options_;
  Object obj_;
  EntryRef access_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> total_seek_{0};
};

}  // namespace alps::apps
