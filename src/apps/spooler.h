// §2.8.1 — the paper's printer spooler: hidden parameters and results.
//
// Print(file) is exported with one parameter. The implementation declares a
// hidden parameter (the printer number the manager assigns from its free
// pool) and a hidden result (the same number handed back at termination, so
// the manager needs no bookkeeping about which printer went to which call —
// exactly the simplification §2.8.1 highlights).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/alps.h"

namespace alps::apps {

class PrinterSpooler {
 public:
  struct Options {
    std::size_t printers = 3;
    std::size_t print_max = 8;  ///< hidden array size (queued+active jobs)
    /// Simulated time to print one page.
    std::chrono::microseconds page_time{50};
    sched::ProcessModel model = sched::ProcessModel::kPooled;
    std::size_t pool_workers = 8;
  };

  struct Stats {
    std::vector<std::uint64_t> jobs_per_printer;
    bool printer_overlap = false;  ///< true if one printer ran 2 jobs at once
    std::uint64_t jobs = 0;
  };

  PrinterSpooler() : PrinterSpooler(Options()) {}
  explicit PrinterSpooler(Options options);
  ~PrinterSpooler();

  /// Prints `pages` pages of `file`; blocks until done.
  void print(const std::string& file, std::int64_t pages);
  CallHandle async_print(const std::string& file, std::int64_t pages);

  Stats stats() const;
  Object& object() { return obj_; }

 private:
  Options options_;
  Object obj_;
  EntryRef print_;
  std::vector<std::unique_ptr<std::atomic<int>>> busy_;   // per printer
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> jobs_;
  std::atomic<bool> overlap_{false};
  std::atomic<std::uint64_t> total_jobs_{0};
};

}  // namespace alps::apps
