// §2.7.1 — the paper's dictionary database with request combining.
//
// Search is exported as one procedure, implemented as Search[1..SearchMax].
// The manager intercepts both the parameter (the word) and the result (the
// meaning). When a search for a word is already in flight, the manager does
// NOT start another body; it records the request and, when the in-flight
// search finishes, answers every combined request with `combine_finish` —
// "a software adaptation of the memory combining used in the NYU
// Ultracomputer" (§2.7). Experiment E3 measures the executed-searches
// saving under a Zipf workload.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/alps.h"

namespace alps::net {
class Node;
class Transport;
}  // namespace alps::net

namespace alps::apps {

class Dictionary {
 public:
  struct Options {
    std::size_t search_max = 8;  ///< hidden array size (max parallel searches)
    /// Simulated time for one dictionary search.
    std::chrono::microseconds search_time{0};
    /// Combining on/off (off = every request runs its own body; used as the
    /// E3 baseline). Ignored when `multiactive` is set: multiactive dispatch
    /// launches searches without the await turn combining hooks into.
    bool combining = true;
    /// Multiactive scheduling (DESIGN.md §4.8): Search is annotated
    /// compatible with itself, Insert conflicts with everything, and the
    /// manager dispatches through compat-gated guards + start_compatible.
    /// false = the paper's serial manager with request combining.
    bool multiactive = false;
    /// Name the kernel object registers under (distinguishes multiple
    /// dictionaries hosted in one cluster directory).
    std::string object_name = "Dictionary";
    sched::ProcessModel model = sched::ProcessModel::kPooled;
    std::size_t pool_workers = 8;
  };

  struct Stats {
    std::uint64_t requests = 0;   ///< Search calls accepted
    std::uint64_t executed = 0;   ///< bodies actually run
    std::uint64_t combined = 0;   ///< requests answered by combining
    std::uint64_t inserts = 0;    ///< Insert bodies run
  };

  /// The dictionary maps each of `words` to "meaning of <word>".
  explicit Dictionary(std::vector<std::string> words)
      : Dictionary(std::move(words), Options()) {}
  Dictionary(std::vector<std::string> words, Options options);
  ~Dictionary();

  std::string search(const std::string& word);
  CallHandle async_search(const std::string& word);

  /// Defines (or overwrites) `word` -> `meaning`. Runs in exclusion with
  /// searches — via compat annotations when multiactive, via the manager's
  /// drain protocol otherwise.
  void insert(const std::string& word, const std::string& meaning);
  CallHandle async_insert(const std::string& word, const std::string& meaning);

  Stats stats() const;
  Object& object() { return obj_; }

 private:
  Options options_;
  Object obj_;
  EntryRef search_, insert_;
  std::unordered_map<std::string, std::string> db_;
  std::atomic<std::uint64_t> requests_{0}, executed_{0}, combined_{0},
      inserts_{0};
};

/// Sharded mode (DESIGN.md §4.12): one Dictionary instance per shard home,
/// all registered under a single name. Callers keep using
/// `node.call(name, "Search", {word})` — the router on each node hashes the
/// word (the call's first parameter) and picks the shard, so intra-object
/// parallelism scales across nodes with zero caller changes.
///
/// Each shard's words are the subset of `words` the shard map routes to it,
/// so every word resolves on exactly one shard. split_to() performs a live
/// shard split: the new shard's Dictionary is hosted and the N+1-home map
/// installed while traffic is in flight — stale clients converge key by key
/// through shard-precise kWrongNode redirects.
class ShardedDictionary {
 public:
  ShardedDictionary(std::vector<std::string> words,
                    Dictionary::Options options, net::Transport& transport,
                    std::vector<net::Node*> homes);
  ~ShardedDictionary();

  ShardedDictionary(const ShardedDictionary&) = delete;
  ShardedDictionary& operator=(const ShardedDictionary&) = delete;

  std::size_t shards() const { return shards_.size(); }
  Dictionary& shard(std::size_t i) { return *shards_[i]; }

  /// Grow the map N → N+1 with `new_home` serving the new shard; jump
  /// hashing moves only ~1/(N+1) of the keys. Words that re-route to the
  /// new shard are re-inserted there before the map flips.
  void split_to(net::Node& new_home);

  /// Stats summed across shards.
  Dictionary::Stats stats() const;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<std::string> words_;
  Dictionary::Options options_;
  net::Transport* transport_;
  std::vector<net::Node*> homes_;
  std::vector<std::unique_ptr<Dictionary>> shards_;
};

}  // namespace alps::apps
