// §2.7.1 — the paper's dictionary database with request combining.
//
// Search is exported as one procedure, implemented as Search[1..SearchMax].
// The manager intercepts both the parameter (the word) and the result (the
// meaning). When a search for a word is already in flight, the manager does
// NOT start another body; it records the request and, when the in-flight
// search finishes, answers every combined request with `combine_finish` —
// "a software adaptation of the memory combining used in the NYU
// Ultracomputer" (§2.7). Experiment E3 measures the executed-searches
// saving under a Zipf workload.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/alps.h"

namespace alps::apps {

class Dictionary {
 public:
  struct Options {
    std::size_t search_max = 8;  ///< hidden array size (max parallel searches)
    /// Simulated time for one dictionary search.
    std::chrono::microseconds search_time{0};
    /// Combining on/off (off = every request runs its own body; used as the
    /// E3 baseline). Ignored when `multiactive` is set: multiactive dispatch
    /// launches searches without the await turn combining hooks into.
    bool combining = true;
    /// Multiactive scheduling (DESIGN.md §4.8): Search is annotated
    /// compatible with itself, Insert conflicts with everything, and the
    /// manager dispatches through compat-gated guards + start_compatible.
    /// false = the paper's serial manager with request combining.
    bool multiactive = false;
    /// Name the kernel object registers under (distinguishes multiple
    /// dictionaries hosted in one cluster directory).
    std::string object_name = "Dictionary";
    sched::ProcessModel model = sched::ProcessModel::kPooled;
    std::size_t pool_workers = 8;
  };

  struct Stats {
    std::uint64_t requests = 0;   ///< Search calls accepted
    std::uint64_t executed = 0;   ///< bodies actually run
    std::uint64_t combined = 0;   ///< requests answered by combining
    std::uint64_t inserts = 0;    ///< Insert bodies run
  };

  /// The dictionary maps each of `words` to "meaning of <word>".
  explicit Dictionary(std::vector<std::string> words)
      : Dictionary(std::move(words), Options()) {}
  Dictionary(std::vector<std::string> words, Options options);
  ~Dictionary();

  std::string search(const std::string& word);
  CallHandle async_search(const std::string& word);

  /// Defines (or overwrites) `word` -> `meaning`. Runs in exclusion with
  /// searches — via compat annotations when multiactive, via the manager's
  /// drain protocol otherwise.
  void insert(const std::string& word, const std::string& meaning);
  CallHandle async_insert(const std::string& word, const std::string& meaning);

  Stats stats() const;
  Object& object() { return obj_; }

 private:
  Options options_;
  Object obj_;
  EntryRef search_, insert_;
  std::unordered_map<std::string, std::string> db_;
  std::atomic<std::uint64_t> requests_{0}, executed_{0}, combined_{0},
      inserts_{0};
};

}  // namespace alps::apps
