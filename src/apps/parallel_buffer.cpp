#include "apps/parallel_buffer.h"

namespace alps::apps {

namespace {

/// §2.8.2's long-message copy, materialized on purpose. Value assignment is
/// O(1) since the zero-copy data plane (string/blob payloads are shared,
/// DESIGN.md §4.9), so a buffer that wants an *independent* copy of the
/// message bytes — the workload whose parallelism the paper's design
/// exploits — must now ask for one explicitly.
Value deep_copy(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kString: return Value(std::string(v.as_string()));
    case ValueKind::kBlob: return Value(v.as_blob().to_blob());
    default: return v;
  }
}

}  // namespace

ParallelBoundedBuffer::ParallelBoundedBuffer(Options options)
    : options_(options),
      obj_("ParBuffer", ObjectOptions{.model = options.model,
                                      .pool_workers = options.pool_workers}) {
  buf_.resize(options_.capacity);

  // --- definition ---
  deposit_ = obj_.define_entry({.name = "Deposit", .params = 1, .results = 0});
  remove_ = obj_.define_entry({.name = "Remove", .params = 0, .results = 1});

  // --- implementation: hidden arrays + hidden Place param/result ---
  auto track = [this](auto&& work) {
    const int now = ++copies_active_;
    int prev = max_copies_.load();
    while (now > prev && !max_copies_.compare_exchange_weak(prev, now)) {
    }
    auto result = work();
    --copies_active_;
    return result;
  };

  obj_.implement(
      deposit_,
      ImplDecl{.array = options_.producer_max, .hidden_params = 1,
               .hidden_results = 1},
      [this, track](BodyCtx& ctx) -> ValueList {
        return track([&]() -> ValueList {
          const auto place = static_cast<std::size_t>(ctx.param(1).as_int());
          buf_[place] = deep_copy(ctx.param(0));  // the parallel copy
          ++deposits_;
          return {Value(static_cast<std::int64_t>(place))};  // hidden result
        });
      });
  obj_.implement(
      remove_,
      ImplDecl{.array = options_.consumer_max, .hidden_params = 1,
               .hidden_results = 1},
      [this, track](BodyCtx& ctx) -> ValueList {
        return track([&]() -> ValueList {
          const auto place = static_cast<std::size_t>(ctx.param(0).as_int());
          Value m = deep_copy(buf_[place]);  // the parallel copy
          ++removes_;
          return {std::move(m), Value(static_cast<std::int64_t>(place))};
        });
      });

  // --- manager: the paper's Free/Full index lists ---
  obj_.set_manager(
      {intercept(deposit_), intercept(remove_)}, [this](Manager& m) {
        std::deque<std::int64_t> free_slots, full_slots;
        for (std::size_t i = 0; i < options_.capacity; ++i) {
          free_slots.push_back(static_cast<std::int64_t>(i));
        }
        Select()
            .on(accept_guard(deposit_)
                    .when([&free_slots](const ValueList&) {
                      return !free_slots.empty();
                    })
                    .always_reeval()  // reads manager-local free list
                    .then([&](Accepted a) {
                      const std::int64_t place = free_slots.front();
                      free_slots.pop_front();
                      m.start(a, vals(place));  // hidden Place parameter
                    }))
            .on(await_guard(deposit_).then([&](Awaited w) {
              full_slots.push_back(w.results[0].as_int());
              m.finish(w);
            }))
            .on(accept_guard(remove_)
                    .when([&full_slots](const ValueList&) {
                      return !full_slots.empty();
                    })
                    .always_reeval()  // reads manager-local full list
                    .then([&](Accepted a) {
                      const std::int64_t place = full_slots.front();
                      full_slots.pop_front();
                      m.start(a, vals(place));
                    }))
            .on(await_guard(remove_).then([&](Awaited w) {
              // Remove returns (Message, hidden Place); the manager sees
              // only the hidden result here (results are not intercepted).
              free_slots.push_back(w.results[0].as_int());
              m.finish(w);
            }))
            .loop(m);
      });
  obj_.start();
}

ParallelBoundedBuffer::~ParallelBoundedBuffer() { obj_.stop(); }

void ParallelBoundedBuffer::deposit(Value message) {
  obj_.call(deposit_, {std::move(message)});
}

Value ParallelBoundedBuffer::remove() { return obj_.call(remove_, {})[0]; }

CallHandle ParallelBoundedBuffer::async_deposit(Value message) {
  return obj_.async_call(deposit_, {std::move(message)});
}

CallHandle ParallelBoundedBuffer::async_remove() {
  return obj_.async_call(remove_, {});
}

ParallelBoundedBuffer::Stats ParallelBoundedBuffer::stats() const {
  return Stats{max_copies_.load(), deposits_.load(), removes_.load()};
}

}  // namespace alps::apps
