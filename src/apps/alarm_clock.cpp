#include "apps/alarm_clock.h"

namespace alps::apps {

AlarmClock::AlarmClock(Options options)
    : options_(options),
      obj_("AlarmClock", ObjectOptions{.model = options.model,
                                       .pool_workers = options.pool_workers}) {
  wake_ = obj_.define_entry({.name = "WakeMe", .params = 1, .results = 1});
  tick_ = obj_.define_entry({.name = "Tick", .params = 0, .results = 0});

  obj_.implement(wake_, ImplDecl{.array = options_.sleeper_max},
                 [this](BodyCtx&) -> ValueList {
                   // By the time the body runs the deadline has passed; the
                   // manager did all the waiting.
                   return {Value(now_.load(std::memory_order_relaxed))};
                 });
  obj_.implement(tick_, [](BodyCtx&) -> ValueList { return {}; });

  obj_.set_manager(
      {intercept(wake_).params(1), intercept(tick_)}, [this](Manager& m) {
        std::int64_t clock = 0;
        Select()
            // A sleeper is eligible only once its deadline is due
            // (acceptance condition on the intercepted parameter), and the
            // earliest deadline is released first (pri).
            .on(accept_guard(wake_)
                    .when([&clock](const ValueList& p) {
                      return p[0].as_int() <= clock;
                    })
                    .pri([](const ValueList& p) { return p[0].as_int(); })
                    .always_reeval()  // `when` reads manager-local `clock`
                    .then([&](Accepted a) { m.start(a); }))
            .on(await_guard(wake_).then([&](Awaited w) { m.finish(w); }))
            .on(accept_guard(tick_).then([&](Accepted a) {
              ++clock;
              now_.store(clock, std::memory_order_relaxed);
              m.execute(a);
            }))
            .loop(m);
      });
  obj_.start();
}

AlarmClock::~AlarmClock() { obj_.stop(); }

std::int64_t AlarmClock::wake_me(std::int64_t deadline) {
  return obj_.call(wake_, vals(deadline))[0].as_int();
}

CallHandle AlarmClock::async_wake_me(std::int64_t deadline) {
  return obj_.async_call(wake_, vals(deadline));
}

void AlarmClock::tick() { obj_.call(tick_, {}); }

std::size_t AlarmClock::sleepers() const { return obj_.pending(wake_); }

}  // namespace alps::apps
