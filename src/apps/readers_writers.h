// §2.5.1 — the paper's readers–writers database.
//
// Read is exported as a single procedure but implemented as a hidden
// procedure array Read[1..ReadMax], so up to ReadMax readers execute
// concurrently. The manager's acceptance conditions implement the paper's
// starvation-freedom protocol:
//
//   - a read is accepted iff (#Write = 0 or a writer has just finished) and
//     ReadCount < ReadMax;
//   - a write is accepted iff ReadCount = 0 and (#Read = 0 or it is the
//     writer's turn even though reads are pending).
//
// The WriterLast flag alternates the preference, so neither side starves.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <unordered_map>

#include "core/alps.h"

namespace alps::apps {

class ReadersWritersDb {
 public:
  struct Options {
    std::size_t read_max = 4;
    /// Simulated service time inside the body (0 = none).
    std::chrono::microseconds read_time{0};
    std::chrono::microseconds write_time{0};
    sched::ProcessModel model = sched::ProcessModel::kPooled;
    std::size_t pool_workers = 8;
    /// Multiactive scheduling (DESIGN.md §4.8): Read is annotated compatible
    /// with itself, Write conflicts with everything, and the manager
    /// dispatches through compat-gated guards + start_compatible — reads
    /// overlap without per-read await/finish manager turns, writes keep
    /// exclusion and arrival-order fairness. false = the paper's fully
    /// serial ReadCount/WriterLast protocol.
    bool multiactive = true;
  };

  struct Invariants {
    /// Highest number of concurrently executing readers observed.
    int max_concurrent_readers = 0;
    /// True if a writer ever overlapped a reader or another writer.
    bool exclusion_violated = false;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
  };

  ReadersWritersDb() : ReadersWritersDb(Options()) {}
  explicit ReadersWritersDb(Options options);
  ~ReadersWritersDb();

  /// Returns the value stored at `key` (0 if never written).
  std::int64_t read(std::int64_t key);
  void write(std::int64_t key, std::int64_t data);

  CallHandle async_read(std::int64_t key);
  CallHandle async_write(std::int64_t key, std::int64_t data);

  Invariants invariants() const;
  Object& object() { return obj_; }
  EntryRef read_entry() const { return read_; }
  EntryRef write_entry() const { return write_; }

 private:
  Options options_;
  Object obj_;
  EntryRef read_, write_;

  // The database: readers access it concurrently (safe: reads don't mutate),
  // writers exclusively — guaranteed by the manager, not by a lock.
  std::unordered_map<std::int64_t, std::int64_t> table_;

  // Invariant instrumentation (atomics: they are read from test threads).
  std::atomic<int> readers_active_{0};
  std::atomic<int> writers_active_{0};
  std::atomic<int> max_readers_{0};
  std::atomic<bool> violated_{false};
  std::atomic<std::uint64_t> reads_{0}, writes_{0};
};

}  // namespace alps::apps
