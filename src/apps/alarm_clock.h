// An alarm-clock object — the classic scheduling exercise, solved the ALPS
// way: WakeMe(t) is accepted only when the clock has reached t (an
// acceptance condition over the intercepted parameter), and among due
// requests the earliest deadline fires first (`pri` = t). Tick() advances
// the clock; because ticking and waking flow through one manager, no
// condition-variable dance is needed — the §2.4 guard machinery *is* the
// scheduler.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/alps.h"

namespace alps::apps {

class AlarmClock {
 public:
  struct Options {
    std::size_t sleeper_max = 16;  ///< hidden array size for WakeMe
    sched::ProcessModel model = sched::ProcessModel::kPooled;
    std::size_t pool_workers = 4;
  };

  AlarmClock() : AlarmClock(Options()) {}
  explicit AlarmClock(Options options);
  ~AlarmClock();

  /// Blocks the caller until the clock reaches `deadline`; returns the
  /// clock value at wake-up (>= deadline).
  std::int64_t wake_me(std::int64_t deadline);
  CallHandle async_wake_me(std::int64_t deadline);

  /// Advances the clock by one tick and releases every due sleeper.
  void tick();

  std::int64_t now() const { return now_.load(std::memory_order_relaxed); }
  std::size_t sleepers() const;
  Object& object() { return obj_; }

 private:
  Options options_;
  Object obj_;
  EntryRef wake_, tick_;
  std::atomic<std::int64_t> now_{0};
};

}  // namespace alps::apps
