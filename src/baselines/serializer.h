// Serializer baseline (Atkinson & Hewitt [3]).
//
// The paper positions the ALPS object/manager as subsuming the serializer:
// "The manager can be programmed to allow multiple users to access the
// resource simultaneously — a facility sought in the design of the
// serializer mechanism."
//
// A serializer is a monitor-like construct whose possession can be released
// while a process is in a *crowd* executing a long operation, and reacquired
// afterwards. Operations have the shape:
//
//   enqueue(q, guarantee); join_crowd(c) { body } ; leave
//
// - enqueue: wait (in FIFO queue q) until the guarantee predicate holds,
//   holding the serializer lock only while testing.
// - join_crowd: enter crowd c, release the serializer, run body, reacquire,
//   leave the crowd.
//
// Experiment E12 runs readers–writers over this, the ALPS manager, and the
// path-expression runtime to show all three enforce the same invariant.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

namespace alps::baselines {

class Serializer {
 public:
  /// A FIFO queue inside the serializer. Waiters block in arrival order;
  /// the head waiter proceeds only when its guarantee holds.
  class Queue {
   public:
    explicit Queue(Serializer& owner) : owner_(&owner) {}

   private:
    friend class Serializer;
    Serializer* owner_;
    std::deque<std::uint64_t> waiters_;  // ticket numbers, FIFO
  };

  /// A crowd: a set of processes currently executing a (possibly long)
  /// operation outside serializer possession.
  class Crowd {
   public:
    explicit Crowd(Serializer& owner) : owner_(&owner) {}

    /// Lock-free read: exact when evaluated inside a guarantee (the
    /// serializer lock is held there), a snapshot otherwise.
    std::size_t size() const { return count_.load(std::memory_order_acquire); }

   private:
    friend class Serializer;
    Serializer* owner_;
    std::atomic<std::size_t> count_{0};
  };

  /// Blocks in `q` until `guarantee()` holds with this waiter at the head.
  /// The guarantee is evaluated with the serializer lock held.
  void enqueue(Queue& q, const std::function<bool()>& guarantee);

  /// Number of waiters currently blocked in `q`.
  std::size_t queue_length(const Queue& q) const {
    std::scoped_lock lock(mu_);
    return q.waiters_.size();
  }

  /// Joins `crowd`, releases the serializer while running `body`, rejoins
  /// and leaves the crowd. State changes are re-broadcast so queued waiters
  /// re-test their guarantees.
  void join_crowd(Crowd& crowd, const std::function<void()>& body);

  /// Atomic enqueue + crowd join: the crowd membership is established in
  /// the same serializer-possession interval in which the guarantee passed,
  /// so a guarantee like `crowd.size() < max` cannot be over-admitted by
  /// waiters racing through between the two steps.
  void enqueue_then_join(Queue& q, const std::function<bool()>& guarantee,
                         Crowd& crowd, const std::function<void()>& body);

  /// Runs `fn` holding the serializer (for state updates between phases).
  template <class F>
  auto with(F fn) -> decltype(fn()) {
    std::scoped_lock lock(mu_);
    auto result = fn();
    cv_.notify_all();
    return result;
  }

  void with_void(const std::function<void()>& fn) {
    {
      std::scoped_lock lock(mu_);
      fn();
    }
    cv_.notify_all();
  }

 private:
  friend class Crowd;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_ticket_ = 0;
};

/// Readers–writers over a serializer, as in Atkinson & Hewitt's motivating
/// example: readers join a crowd (concurrent), writers require an empty
/// crowd and exclusive access.
class SerializerRwResource {
 public:
  explicit SerializerRwResource(std::size_t read_max)
      : read_max_(read_max), readq_(s_), writeq_(s_), readers_(s_),
        writers_(s_) {}

  /// `body` runs concurrently with other readers (up to read_max).
  void read(const std::function<void()>& body);

  /// `body` runs exclusively.
  void write(const std::function<void()>& body);

 private:
  std::size_t read_max_;
  Serializer s_;
  Serializer::Queue readq_;
  Serializer::Queue writeq_;
  Serializer::Crowd readers_;
  Serializer::Crowd writers_;
};

}  // namespace alps::baselines
