#include "baselines/pathexpr.h"

#include <cctype>
#include <mutex>
#include <set>

#include "support/sync.h"

namespace alps::baselines {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

namespace {

struct Token {
  enum class Kind {
    kPath,
    kEnd,
    kIdent,
    kNumber,
    kColon,
    kSemi,
    kPipe,
    kLParen,
    kRParen,
    kLBrace,
    kRBrace,
    kEof,
  };
  Kind kind;
  std::string text;
  std::size_t number = 0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token next() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    const std::size_t start = pos_;
    if (pos_ >= text_.size()) return {Token::Kind::kEof, "", 0, start};
    const char c = text_[pos_];
    switch (c) {
      case ':': ++pos_; return {Token::Kind::kColon, ":", 0, start};
      case ';':
      case ',': ++pos_; return {Token::Kind::kSemi, ";", 0, start};
      case '|': ++pos_; return {Token::Kind::kPipe, "|", 0, start};
      case '(': ++pos_; return {Token::Kind::kLParen, "(", 0, start};
      case ')': ++pos_; return {Token::Kind::kRParen, ")", 0, start};
      case '{': ++pos_; return {Token::Kind::kLBrace, "{", 0, start};
      case '}': ++pos_; return {Token::Kind::kRBrace, "}", 0, start};
      default: break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        n = n * 10 + static_cast<std::size_t>(text_[pos_] - '0');
        ++pos_;
      }
      return {Token::Kind::kNumber, text_.substr(start, pos_ - start), n, start};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      std::string word = text_.substr(start, pos_ - start);
      if (word == "path") return {Token::Kind::kPath, word, 0, start};
      if (word == "end") return {Token::Kind::kEnd, word, 0, start};
      return {Token::Kind::kIdent, word, 0, start};
    }
    throw PathSyntaxError(std::string("unexpected character '") + c + "'", start);
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) { advance(); }

  std::unique_ptr<PathNode> parse() {
    expect(Token::Kind::kPath, "expected 'path'");
    auto expr = parse_seq();
    expect(Token::Kind::kEnd, "expected 'end'");
    if (cur_.kind != Token::Kind::kEof) {
      throw PathSyntaxError("trailing input after 'end'", cur_.pos);
    }
    return expr;
  }

 private:
  void advance() { cur_ = lexer_.next(); }

  void expect(Token::Kind kind, const char* what) {
    if (cur_.kind != kind) throw PathSyntaxError(what, cur_.pos);
    advance();
  }

  std::unique_ptr<PathNode> parse_seq() {
    auto first = parse_alt();
    if (cur_.kind != Token::Kind::kSemi) return first;
    auto node = std::make_unique<PathNode>();
    node->kind = PathNode::Kind::kSeq;
    node->children.push_back(std::move(first));
    while (cur_.kind == Token::Kind::kSemi) {
      advance();
      node->children.push_back(parse_alt());
    }
    return node;
  }

  std::unique_ptr<PathNode> parse_alt() {
    auto first = parse_factor();
    if (cur_.kind != Token::Kind::kPipe) return first;
    auto node = std::make_unique<PathNode>();
    node->kind = PathNode::Kind::kAlt;
    node->children.push_back(std::move(first));
    while (cur_.kind == Token::Kind::kPipe) {
      advance();
      node->children.push_back(parse_factor());
    }
    return node;
  }

  std::unique_ptr<PathNode> parse_factor() {
    switch (cur_.kind) {
      case Token::Kind::kNumber: {
        auto node = std::make_unique<PathNode>();
        node->kind = PathNode::Kind::kRestrict;
        node->bound = cur_.number;
        if (node->bound == 0) {
          throw PathSyntaxError("restriction bound must be >= 1", cur_.pos);
        }
        advance();
        expect(Token::Kind::kColon, "expected ':' after restriction bound");
        expect(Token::Kind::kLParen, "expected '(' after ':'");
        node->child = parse_seq();
        expect(Token::Kind::kRParen, "expected ')'");
        return node;
      }
      case Token::Kind::kLBrace: {
        advance();
        auto node = std::make_unique<PathNode>();
        node->kind = PathNode::Kind::kBurst;
        node->child = parse_seq();
        expect(Token::Kind::kRBrace, "expected '}'");
        return node;
      }
      case Token::Kind::kLParen: {
        advance();
        auto inner = parse_seq();
        expect(Token::Kind::kRParen, "expected ')'");
        return inner;
      }
      case Token::Kind::kIdent: {
        auto node = std::make_unique<PathNode>();
        node->kind = PathNode::Kind::kName;
        node->name = cur_.text;
        advance();
        return node;
      }
      default:
        throw PathSyntaxError("expected an operation, restriction, burst or group",
                              cur_.pos);
    }
  }

  Lexer lexer_;
  Token cur_;
};

}  // namespace

std::unique_ptr<PathNode> parse_path(const std::string& text) {
  return Parser(text).parse();
}

std::string to_string(const PathNode& node) {
  switch (node.kind) {
    case PathNode::Kind::kName: return node.name;
    case PathNode::Kind::kSeq: {
      std::string out;
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i) out += "; ";
        out += to_string(*node.children[i]);
      }
      return out;
    }
    case PathNode::Kind::kAlt: {
      std::string out = "(";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i) out += " | ";
        out += to_string(*node.children[i]);
      }
      return out + ")";
    }
    case PathNode::Kind::kRestrict:
      return std::to_string(node.bound) + ":(" + to_string(*node.child) + ")";
    case PathNode::Kind::kBurst:
      return "{" + to_string(*node.child) + "}";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Compilation to prologue/epilogue action lists
// ---------------------------------------------------------------------------

namespace {

using Action = std::function<void()>;
using Actions = std::vector<Action>;

struct Crowd {
  std::mutex mu;
  std::size_t count = 0;
};

struct OpCode {
  Actions prologue;
  Actions epilogue;
};

struct CompileState {
  std::unordered_map<std::string, OpCode>* ops;
  std::vector<std::unique_ptr<support::Semaphore>>* sems;
  std::vector<std::unique_ptr<Crowd>>* crowds;
  std::set<std::string> seen;  // per-path uniqueness
};

void run_all(const Actions& actions) {
  for (const auto& a : actions) a();
}

// Translates `node`, bracketing it with (pro, epi).
void compile(const PathNode& node, Actions pro, Actions epi, CompileState& st) {
  switch (node.kind) {
    case PathNode::Kind::kName: {
      if (!st.seen.insert(node.name).second) {
        throw std::logic_error("operation '" + node.name +
                               "' appears more than once in one path");
      }
      OpCode& op = (*st.ops)[node.name];
      for (auto& a : pro) op.prologue.push_back(std::move(a));
      for (auto& a : epi) op.epilogue.push_back(std::move(a));
      return;
    }
    case PathNode::Kind::kSeq: {
      // e1 ; e2 ; ... ; ek with connecting semaphores s1..s(k-1), all 0.
      const std::size_t k = node.children.size();
      std::vector<support::Semaphore*> links;
      for (std::size_t i = 0; i + 1 < k; ++i) {
        st.sems->push_back(std::make_unique<support::Semaphore>(0));
        links.push_back(st.sems->back().get());
      }
      for (std::size_t i = 0; i < k; ++i) {
        Actions child_pro;
        Actions child_epi;
        if (i == 0) {
          child_pro = pro;  // outer bracket opens at the first element
        } else {
          support::Semaphore* s = links[i - 1];
          child_pro.push_back([s] { s->acquire(); });
        }
        if (i + 1 == k) {
          child_epi = epi;  // and closes at the last
        } else {
          support::Semaphore* s = links[i];
          child_epi.push_back([s] { s->release(); });
        }
        compile(*node.children[i], std::move(child_pro), std::move(child_epi),
                st);
      }
      return;
    }
    case PathNode::Kind::kAlt: {
      // Each alternative inherits the full outer bracket.
      for (const auto& child : node.children) {
        compile(*child, pro, epi, st);
      }
      return;
    }
    case PathNode::Kind::kRestrict: {
      st.sems->push_back(std::make_unique<support::Semaphore>(
          static_cast<std::int64_t>(node.bound)));
      support::Semaphore* s = st.sems->back().get();
      Actions child_pro = std::move(pro);
      child_pro.push_back([s] { s->acquire(); });
      Actions child_epi;
      child_epi.push_back([s] { s->release(); });
      for (auto& a : epi) child_epi.push_back(std::move(a));
      compile(*node.child, std::move(child_pro), std::move(child_epi), st);
      return;
    }
    case PathNode::Kind::kBurst: {
      // First activation in performs the outer prologue; last one out
      // performs the outer epilogue (readers-crowd semantics).
      st.crowds->push_back(std::make_unique<Crowd>());
      Crowd* crowd = st.crowds->back().get();
      auto outer_pro = std::make_shared<Actions>(std::move(pro));
      auto outer_epi = std::make_shared<Actions>(std::move(epi));
      Actions child_pro;
      child_pro.push_back([crowd, outer_pro] {
        std::scoped_lock lock(crowd->mu);
        if (crowd->count++ == 0) run_all(*outer_pro);
      });
      Actions child_epi;
      child_epi.push_back([crowd, outer_epi] {
        std::scoped_lock lock(crowd->mu);
        if (--crowd->count == 0) run_all(*outer_epi);
      });
      compile(*node.child, std::move(child_pro), std::move(child_epi), st);
      return;
    }
  }
}

}  // namespace

struct PathRuntime::Impl {
  std::unordered_map<std::string, OpCode> ops;
  std::vector<std::unique_ptr<support::Semaphore>> sems;
  std::vector<std::unique_ptr<Crowd>> crowds;
};

PathRuntime::PathRuntime(const std::vector<std::string>& paths)
    : impl_(std::make_unique<Impl>()) {
  for (const auto& text : paths) {
    auto ast = parse_path(text);
    CompileState st{&impl_->ops, &impl_->sems, &impl_->crowds, {}};
    compile(*ast, {}, {}, st);
  }
}

PathRuntime::~PathRuntime() = default;

void PathRuntime::enter(const std::string& op) {
  auto it = impl_->ops.find(op);
  if (it == impl_->ops.end()) {
    throw std::logic_error("unknown path operation '" + op + "'");
  }
  run_all(it->second.prologue);
}

void PathRuntime::exit(const std::string& op) {
  auto it = impl_->ops.find(op);
  if (it == impl_->ops.end()) {
    throw std::logic_error("unknown path operation '" + op + "'");
  }
  run_all(it->second.epilogue);
}

void PathRuntime::perform(const std::string& op,
                          const std::function<void()>& fn) {
  enter(op);
  try {
    fn();
  } catch (...) {
    exit(op);
    throw;
  }
  exit(op);
}

std::vector<std::string> PathRuntime::operations() const {
  std::vector<std::string> out;
  out.reserve(impl_->ops.size());
  for (const auto& [name, code] : impl_->ops) out.push_back(name);
  return out;
}

bool PathRuntime::has_operation(const std::string& op) const {
  return impl_->ops.count(op) > 0;
}

}  // namespace alps::baselines
