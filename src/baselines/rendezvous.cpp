#include "baselines/rendezvous.h"

#include <stdexcept>

namespace alps::baselines {

std::size_t RendezvousTask::add_entry(std::string entry_name) {
  std::scoped_lock lock(mu_);
  if (started_) throw std::logic_error("add_entry after start");
  entry_names_.push_back(std::move(entry_name));
  queues_.emplace_back();
  return queues_.size() - 1;
}

void RendezvousTask::start(ServerFn server) {
  {
    std::scoped_lock lock(mu_);
    if (started_) throw std::logic_error("task already started");
    started_ = true;
  }
  server_ = std::jthread([this, server = std::move(server)] { server(*this); });
}

void RendezvousTask::stop() {
  std::vector<PendingCall> orphans;
  {
    std::scoped_lock lock(mu_);
    if (!started_ || stopping_) {
      // Either never started or another stop already ran; the jthread dtor
      // joins in any case.
      stopping_ = true;
    } else {
      stopping_ = true;
      for (auto& q : queues_) {
        for (auto& call : q) orphans.push_back(std::move(call));
        q.clear();
      }
    }
  }
  accept_cv_.notify_all();
  for (auto& call : orphans) {
    std::scoped_lock lock(call.state->mu);
    call.state->failed = true;
    call.state->done = true;
    call.state->cv.notify_all();
  }
  if (server_.joinable() && server_.get_id() != std::this_thread::get_id()) {
    server_.join();
  }
}

RendezvousTask::Results RendezvousTask::call(std::size_t entry, Params params) {
  auto result = call_for(entry, std::move(params), std::chrono::hours(24));
  if (!result) throw std::runtime_error("rendezvous call failed: " + name_);
  return *result;
}

std::optional<RendezvousTask::Results> RendezvousTask::call_for(
    std::size_t entry, Params params, std::chrono::milliseconds timeout) {
  auto state = std::make_shared<PendingCall::State>();
  {
    std::scoped_lock lock(mu_);
    if (stopping_) return std::nullopt;
    queues_[entry].push_back(PendingCall{std::move(params), state});
  }
  accept_cv_.notify_all();

  std::unique_lock lock(state->mu);
  if (!state->cv.wait_for(lock, timeout, [&] { return state->done; })) {
    return std::nullopt;  // timed out (possible deadlock upstream)
  }
  if (state->failed) return std::nullopt;
  return state->results;
}

bool RendezvousTask::accept(std::size_t entry, const Body& body) {
  PendingCall call;
  {
    std::unique_lock lock(mu_);
    accept_cv_.wait(lock, [&] { return !queues_[entry].empty() || stopping_; });
    if (stopping_ && queues_[entry].empty()) return false;
    call = std::move(queues_[entry].front());
    queues_[entry].pop_front();
  }
  // The rendezvous: the body runs on the server thread; the caller stays
  // blocked until it completes. This is the synchronous coupling that
  // causes the nested-call deadlock.
  Results results = body(call.params);
  {
    std::scoped_lock lock(call.state->mu);
    call.state->results = std::move(results);
    call.state->done = true;
  }
  call.state->cv.notify_all();
  return true;
}

std::optional<std::size_t> RendezvousTask::select_accept(
    const std::vector<std::size_t>& entries,
    const std::function<Results(std::size_t, const Params&)>& body) {
  PendingCall call;
  std::size_t which = 0;
  {
    std::unique_lock lock(mu_);
    accept_cv_.wait(lock, [&] {
      if (stopping_) return true;
      for (std::size_t e : entries) {
        if (!queues_[e].empty()) return true;
      }
      return false;
    });
    bool found = false;
    for (std::size_t e : entries) {
      if (!queues_[e].empty()) {
        which = e;
        call = std::move(queues_[e].front());
        queues_[e].pop_front();
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;  // stopping with nothing pending
  }
  Results results = body(which, call.params);
  {
    std::scoped_lock lock(call.state->mu);
    call.state->results = std::move(results);
    call.state->done = true;
  }
  call.state->cv.notify_all();
  return which;
}

std::size_t RendezvousTask::pending(std::size_t entry) const {
  std::scoped_lock lock(mu_);
  return queues_[entry].size();
}

}  // namespace alps::baselines
