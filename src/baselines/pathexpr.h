// Open path expressions (Campbell & Habermann [4,5]) — baseline for E12.
//
// The paper: "In ALPS it is possible to design objects such that all entry
// procedures of the object are sequential procedures and all scheduling is
// implemented separately [...] first used in path expressions." To compare,
// this module implements a small path-expression language and its classical
// translation onto counting semaphores.
//
// Grammar (both ';' and ',' sequence; names must be unique within a path):
//
//   path      := "path" expr "end"
//   expr      := term ((";" | ",") term)*          sequencing
//   term      := alt
//   alt       := factor ("|" factor)*              selection
//   factor    := NUMBER ":" "(" expr ")"           restriction (≤ N active)
//              | "{" expr "}"                      burst (crowd; first-in
//                                                  runs the outer prologue,
//                                                  last-out the epilogue)
//              | "(" expr ")"
//              | IDENT                             an operation name
//
// Semantics (the standard open-path translation):
//   - sequencing e1 ; e2:  starts(e2) ≤ finishes(e1), via a 0-initialised
//     semaphore V'd by e1's epilogue and P'd by e2's prologue;
//   - restriction n:(e):   at most n activations of e concurrently, via an
//     n-initialised semaphore bracketing e;
//   - selection e1 | e2:   either alternative; both inherit the outer
//     bracket;
//   - burst {e}:           any number of concurrent activations; the first
//     to enter performs the outer prologue, the last to leave performs the
//     outer epilogue (this is how `path 1:({read} | write) end` yields
//     readers–writers exclusion).
//
// Several paths can govern the same operations; an operation's prologue is
// the concatenation of its prologues from every path that names it.
//
//   PathRuntime rt({"path 1:({read} | write) end"});
//   rt.perform("read", [&] { ...read... });
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace alps::baselines {

class PathSyntaxError : public std::runtime_error {
 public:
  PathSyntaxError(const std::string& what, std::size_t pos)
      : std::runtime_error(what + " (at offset " + std::to_string(pos) + ")"),
        pos_(pos) {}
  std::size_t position() const { return pos_; }

 private:
  std::size_t pos_;
};

// ---- AST (exposed for tests) ----

struct PathNode {
  enum class Kind { kName, kSeq, kAlt, kRestrict, kBurst };
  Kind kind;
  std::string name;                                  // kName
  std::vector<std::unique_ptr<PathNode>> children;   // kSeq/kAlt
  std::unique_ptr<PathNode> child;                   // kRestrict/kBurst
  std::size_t bound = 0;                             // kRestrict
};

/// Parses "path ... end"; throws PathSyntaxError.
std::unique_ptr<PathNode> parse_path(const std::string& text);

/// Renders the AST back to text (for tests and diagnostics).
std::string to_string(const PathNode& node);

// ---- runtime ----

class PathRuntime {
 public:
  /// Compiles one or more path expressions over a shared operation
  /// namespace. Throws PathSyntaxError on bad syntax and std::logic_error if
  /// a name repeats within a single path.
  explicit PathRuntime(const std::vector<std::string>& paths);
  ~PathRuntime();

  PathRuntime(const PathRuntime&) = delete;
  PathRuntime& operator=(const PathRuntime&) = delete;

  /// Runs the operation's prologue (may block until the path constraints
  /// admit it).
  void enter(const std::string& op);

  /// Runs the operation's epilogue (never blocks).
  void exit(const std::string& op);

  /// enter(op); fn(); exit(op) — exception-safe.
  void perform(const std::string& op, const std::function<void()>& fn);

  /// All operation names mentioned by any path.
  std::vector<std::string> operations() const;

  bool has_operation(const std::string& op) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace alps::baselines
