#include "baselines/rw_locks.h"

namespace alps::baselines {
static_assert(sizeof(FairRwLock) > 0);
}  // namespace alps::baselines
