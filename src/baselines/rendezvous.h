// Ada-83-style rendezvous tasks (baseline for experiment E6).
//
// In Ada, DP and SR, a call to a task entry is *synchronous with the
// server*: the caller blocks until the server accepts the entry AND executes
// the rendezvous body to completion; while the body runs, the server can
// accept nothing else. The paper (§2.3) points out the consequence: if an
// entry body of X calls Y and Y calls back into another entry of X, the
// system deadlocks ("Note that DP, Ada and SR suffer from the nested calls
// problem"). The ALPS manager avoids this because `start` is asynchronous —
// after starting P, the manager is free to accept R.
//
// This class reproduces exactly that synchronous semantics so the deadlock
// is demonstrable (with timeouts, so the demonstration terminates).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace alps::baselines {

class RendezvousTask {
 public:
  using Params = std::vector<long long>;
  using Results = std::vector<long long>;
  /// Rendezvous body: runs on the *server* thread while the caller waits.
  using Body = std::function<Results(const Params&)>;
  /// The task's server procedure (the sequence of accept statements).
  using ServerFn = std::function<void(RendezvousTask&)>;

  explicit RendezvousTask(std::string name) : name_(std::move(name)) {}
  ~RendezvousTask() { stop(); }

  /// Declares an entry; returns its index. Must precede start().
  std::size_t add_entry(std::string entry_name);

  void start(ServerFn server);

  /// Stops the server: wakes blocked accepts (which return false) and fails
  /// outstanding calls.
  void stop();

  // ---- caller side ----

  /// Blocking entry call with rendezvous semantics. Throws on stop.
  Results call(std::size_t entry, Params params);

  /// Entry call with a timeout (Ada's timed entry call). nullopt on timeout
  /// — which is how E6 detects the deadlock.
  std::optional<Results> call_for(std::size_t entry, Params params,
                                  std::chrono::milliseconds timeout);

  // ---- server side (only from the server thread) ----

  /// Blocks for a call to `entry`, runs `body` as the rendezvous, releases
  /// the caller. Returns false when the task is stopping.
  bool accept(std::size_t entry, const Body& body);

  /// Ada selective wait: blocks until any listed entry has a pending call,
  /// then rendezvouses with it. Returns the entry index, or nullopt on stop.
  std::optional<std::size_t> select_accept(
      const std::vector<std::size_t>& entries,
      const std::function<Results(std::size_t, const Params&)>& body);

  const std::string& name() const { return name_; }
  std::size_t pending(std::size_t entry) const;

 private:
  struct PendingCall {
    Params params;
    // Completion state shared with the (possibly timed-out) caller.
    struct State {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
      bool failed = false;
      Results results;
    };
    std::shared_ptr<State> state;
  };

  mutable std::mutex mu_;
  std::condition_variable accept_cv_;
  std::vector<std::deque<PendingCall>> queues_;
  std::vector<std::string> entry_names_;
  std::string name_;
  std::jthread server_;
  bool started_ = false;
  bool stopping_ = false;
};

}  // namespace alps::baselines
