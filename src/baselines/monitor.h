// Monitor baseline (Hoare [1] / Mesa-style), the abstraction the paper says
// managers generalize (§1): mutual exclusion plus named condition (queue)
// variables. Used by experiments E1 (bounded buffer) and E12, and by the
// nested-call deadlock demonstration E6 (a monitor procedure calling out to
// another monitor that calls back deadlocks; the ALPS manager does not).
//
// Semantics are Mesa ("signal-and-continue"): waiters re-check their
// predicate on wakeup. This matches what practical monitor implementations
// (and the paper's contemporaries) provide.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace alps::baselines {

class Monitor {
 public:
  /// A named condition queue bound to its monitor's lock.
  class Condition {
   public:
    explicit Condition(Monitor& owner) : owner_(&owner) {}

    /// Must be called while inside the monitor; atomically releases the
    /// monitor and blocks until signalled, then re-enters.
    void wait(std::unique_lock<std::mutex>& lock) { cv_.wait(lock); }

    template <class Pred>
    void wait(std::unique_lock<std::mutex>& lock, Pred pred) {
      cv_.wait(lock, std::move(pred));
    }

    void signal() { cv_.notify_one(); }
    void broadcast() { cv_.notify_all(); }

   private:
    Monitor* owner_;
    std::condition_variable cv_;
  };

  /// Enters the monitor (RAII).
  std::unique_lock<std::mutex> enter() { return std::unique_lock(mu_); }

  /// Runs `body` inside the monitor.
  template <class F>
  auto with(F body) -> decltype(body()) {
    std::unique_lock lock(mu_);
    return body();
  }

  std::mutex& mutex() { return mu_; }

 private:
  std::mutex mu_;
};

/// Classic monitor-based bounded buffer (E1 baseline).
class MonitorBoundedBuffer {
 public:
  explicit MonitorBoundedBuffer(std::size_t capacity)
      : capacity_(capacity), not_full_(monitor_), not_empty_(monitor_) {
    buf_.resize(capacity);
  }

  void deposit(long long v) {
    auto lock = monitor_.enter();
    not_full_.wait(lock, [&] { return count_ < capacity_; });
    buf_[in_] = v;
    in_ = (in_ + 1) % capacity_;
    ++count_;
    not_empty_.signal();
  }

  long long remove() {
    auto lock = monitor_.enter();
    not_empty_.wait(lock, [&] { return count_ > 0; });
    long long v = buf_[out_];
    out_ = (out_ + 1) % capacity_;
    --count_;
    not_full_.signal();
    return v;
  }

  std::size_t size() {
    auto lock = monitor_.enter();
    return count_;
  }

 private:
  Monitor monitor_;
  std::size_t capacity_;
  Monitor::Condition not_full_;
  Monitor::Condition not_empty_;
  std::vector<long long> buf_;
  std::size_t in_ = 0, out_ = 0, count_ = 0;
};

/// A monitor whose procedures may call out to user code *while holding the
/// monitor lock* — the nested-monitor-call structure of [18] that the
/// paper's asynchronous `start` avoids. Used by E6.
class CalloutMonitor {
 public:
  /// Runs `body` inside the monitor; anything `body` calls runs with the
  /// monitor held (the hazard).
  void invoke(const std::function<void()>& body) {
    std::scoped_lock lock(mu_);
    body();
  }

  /// try_invoke with a deadline, so the deadlock demonstration can detect
  /// rather than hang.
  bool try_invoke_for(const std::function<void()>& body,
                      std::chrono::milliseconds timeout) {
    std::unique_lock lock(mu_, std::defer_lock);
    if (!lock.try_lock()) {
      const auto deadline = std::chrono::steady_clock::now() + timeout;
      while (!lock.try_lock()) {
        if (std::chrono::steady_clock::now() > deadline) return false;
        std::this_thread::yield();
      }
    }
    body();
    return true;
  }

 private:
  std::mutex mu_;
};

}  // namespace alps::baselines
