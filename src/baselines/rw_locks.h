// Readers–writers lock baselines for experiment E2 (§2.5.1).
//
// The paper's manager-based solution admits up to ReadMax concurrent readers
// and is starvation-free ("No reader or writer should be delayed
// indefinitely"). To show what its WriterLast/#Read bookkeeping buys, we
// compare against:
//   - ReaderPreferenceRwLock: classic reader-preference; writers starve
//     under sustained read load (the failure mode the ALPS program avoids).
//   - FairRwLock: queue-fair (ticketed phases), no starvation; the behaviour
//     the manager program achieves, expressed with raw mutex/cv instead — at
//     the cost the paper complains about (the scheduling policy smeared
//     across procedures instead of centralized in one manager).
// Both support a ReadMax bound so the comparison is like-for-like.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>

namespace alps::baselines {

class ReaderPreferenceRwLock {
 public:
  explicit ReaderPreferenceRwLock(
      std::size_t read_max = std::numeric_limits<std::size_t>::max())
      : read_max_(read_max) {}

  void lock_read() {
    std::unique_lock lock(mu_);
    // Readers barge ahead of waiting writers — that is the point.
    read_ok_.wait(lock, [&] { return !writer_active_ && readers_ < read_max_; });
    ++readers_;
  }

  void unlock_read() {
    std::unique_lock lock(mu_);
    if (--readers_ == 0) write_ok_.notify_one();
    read_ok_.notify_all();
  }

  void lock_write() {
    std::unique_lock lock(mu_);
    write_ok_.wait(lock, [&] { return !writer_active_ && readers_ == 0; });
    writer_active_ = true;
  }

  void unlock_write() {
    std::unique_lock lock(mu_);
    writer_active_ = false;
    // Readers first — hence starvation.
    read_ok_.notify_all();
    write_ok_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable read_ok_, write_ok_;
  std::size_t readers_ = 0;
  std::size_t read_max_;
  bool writer_active_ = false;
};

/// Ticketed fair lock: requests are served in arrival order (consecutive
/// reads coalesce into a batch bounded by read_max).
class FairRwLock {
 public:
  explicit FairRwLock(
      std::size_t read_max = std::numeric_limits<std::size_t>::max())
      : read_max_(read_max) {}

  void lock_read() {
    std::unique_lock lock(mu_);
    const std::uint64_t my_ticket = next_ticket_++;
    cv_.wait(lock, [&] {
      // Earlier readers coalesce with us; an earlier *waiting writer*
      // blocks us (that is what makes the lock fair).
      return !writer_active_ && readers_ < read_max_ &&
             (waiting_writers_.empty() || waiting_writers_.front() > my_ticket);
    });
    ++readers_;
  }

  void unlock_read() {
    std::unique_lock lock(mu_);
    --readers_;
    cv_.notify_all();
  }

  void lock_write() {
    std::unique_lock lock(mu_);
    const std::uint64_t my_ticket = next_ticket_++;
    waiting_writers_.push_back(my_ticket);  // tickets increase: stays sorted
    cv_.wait(lock, [&] {
      return !writer_active_ && readers_ == 0 &&
             waiting_writers_.front() == my_ticket;
    });
    waiting_writers_.pop_front();
    writer_active_ = true;
  }

  void unlock_write() {
    std::unique_lock lock(mu_);
    writer_active_ = false;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_ticket_ = 0;
  std::deque<std::uint64_t> waiting_writers_;
  std::size_t readers_ = 0;
  std::size_t read_max_;
  bool writer_active_ = false;
};

}  // namespace alps::baselines
