#include "baselines/serializer.h"

namespace alps::baselines {

void Serializer::enqueue(Queue& q, const std::function<bool()>& guarantee) {
  std::unique_lock lock(mu_);
  const std::uint64_t ticket = next_ticket_++;
  q.waiters_.push_back(ticket);
  cv_.wait(lock, [&] {
    return !q.waiters_.empty() && q.waiters_.front() == ticket && guarantee();
  });
  q.waiters_.pop_front();
  // Head changed: successors re-test their guarantees.
  cv_.notify_all();
}

void Serializer::join_crowd(Crowd& crowd, const std::function<void()>& body) {
  {
    std::scoped_lock lock(mu_);
    crowd.count_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
  body();  // serializer released while in the crowd
  {
    std::scoped_lock lock(mu_);
    crowd.count_.fetch_sub(1, std::memory_order_release);
  }
  cv_.notify_all();
}

void Serializer::enqueue_then_join(Queue& q,
                                   const std::function<bool()>& guarantee,
                                   Crowd& crowd,
                                   const std::function<void()>& body) {
  {
    std::unique_lock lock(mu_);
    const std::uint64_t ticket = next_ticket_++;
    q.waiters_.push_back(ticket);
    cv_.wait(lock, [&] {
      return !q.waiters_.empty() && q.waiters_.front() == ticket && guarantee();
    });
    q.waiters_.pop_front();
    crowd.count_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
  body();  // serializer released while in the crowd
  {
    std::scoped_lock lock(mu_);
    crowd.count_.fetch_sub(1, std::memory_order_release);
  }
  cv_.notify_all();
}

void SerializerRwResource::read(const std::function<void()>& body) {
  s_.enqueue_then_join(
      readq_,
      [&] { return writers_.size() == 0 && readers_.size() < read_max_; },
      readers_, body);
}

void SerializerRwResource::write(const std::function<void()>& body) {
  s_.enqueue_then_join(
      writeq_,
      [&] { return writers_.size() == 0 && readers_.size() == 0; },
      writers_, body);
}

}  // namespace alps::baselines
