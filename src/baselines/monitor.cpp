#include "baselines/monitor.h"

// Monitor is header-only; this translation unit exists to give the library a
// home for the type and to catch ODR/include breakage early.
namespace alps::baselines {
static_assert(sizeof(Monitor) > 0);
}  // namespace alps::baselines
