#include "support/rng.h"

#include <cmath>
#include <cstdio>

namespace alps::support {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // A zero state would be a fixed point; splitmix64 of any seed avoids it,
  // but be defensive anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<unsigned __int128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

double Rng::next_exponential(double mean) {
  double u = next_double();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

ZipfGenerator::ZipfGenerator(std::size_t n, double theta, std::uint64_t seed)
    : rng_(seed), theta_(theta) {
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t ZipfGenerator::next() {
  const double u = rng_.next_double();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

std::vector<std::string> make_word_list(std::size_t n) {
  std::vector<std::string> words;
  words.reserve(n);
  char buf[32];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof buf, "w%06zu", i);
    words.emplace_back(buf);
  }
  return words;
}

}  // namespace alps::support
