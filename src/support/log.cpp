#include "support/log.h"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace alps::support {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_io_mu;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_at(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) return;
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof msg, fmt, ap);
  va_end(ap);

  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const double secs = std::chrono::duration<double>(now).count();

  std::scoped_lock lock(g_io_mu);
  std::fprintf(stderr, "[%12.6f %s] %s\n", secs, level_tag(level), msg);
}

}  // namespace alps::support
