#include "support/thread_util.h"

#include <pthread.h>
#include <sched.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <thread>

namespace alps::support {

void set_current_thread_name(const std::string& name) {
  // Linux limits thread names to 15 chars + NUL.
  std::string trimmed = name.substr(0, 15);
  pthread_setname_np(pthread_self(), trimmed.c_str());
}

bool try_boost_priority() {
  // First attempt: real-time round-robin at minimum RT priority.
  sched_param sp{};
  sp.sched_priority = sched_get_priority_min(SCHED_RR);
  if (pthread_setschedparam(pthread_self(), SCHED_RR, &sp) == 0) return true;
  // Fallback: lower niceness (needs CAP_SYS_NICE for negative values; try a
  // modest step and accept failure silently).
  errno = 0;
  const int cur = getpriority(PRIO_PROCESS, 0);
  if (errno == 0 && setpriority(PRIO_PROCESS, 0, std::max(cur - 5, -20)) == 0) {
    return true;
  }
  return false;
}

unsigned hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace alps::support
