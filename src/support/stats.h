// Measurement utilities for the benchmark harness and the property tests:
// thread-safe latency histograms with percentile queries, simple counters,
// and a wall-clock stopwatch.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "support/sync.h"

namespace alps::support {

/// Log-bucketed latency histogram (ns resolution, ~4% relative error).
/// record() is lock-free-ish (spin lock over a handful of increments) so it
/// can sit on benchmark hot paths without distorting the measurement much.
class Histogram {
 public:
  Histogram();

  /// Copyable (fresh lock, snapshotted contents) so reports embedding
  /// histograms can be returned by value.
  Histogram(const Histogram& other) : Histogram() { merge(other); }
  Histogram& operator=(const Histogram& other) {
    if (this != &other) {
      reset();
      merge(other);
    }
    return *this;
  }

  void record(std::uint64_t value_ns);

  template <class Rep, class Period>
  void record_duration(std::chrono::duration<Rep, Period> d) {
    // Clamp negative deltas to zero: clock-skewed or out-of-order timestamp
    // pairs would otherwise cast to ~2^64 ns and blow out max/mean/p99.
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(d);
    record(ns.count() < 0 ? 0 : static_cast<std::uint64_t>(ns.count()));
  }

  void merge(const Histogram& other);

  std::uint64_t count() const;
  std::uint64_t min() const;
  std::uint64_t max() const;
  double mean() const;
  /// q in [0,1]; returns an approximate value at that quantile.
  std::uint64_t percentile(double q) const;

  /// "count=... mean=...us p50=...us p99=...us max=...us"
  std::string summary() const;

  void reset();

 private:
  static constexpr int kSubBuckets = 16;  // per power of two
  static constexpr int kBuckets = 64 * kSubBuckets;

  static int bucket_for(std::uint64_t v);
  static std::uint64_t bucket_mid(int b);

  mutable SpinLock mu_;
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  std::chrono::nanoseconds elapsed() const { return clock::now() - start_; }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(elapsed()).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// A named atomic counter group for throughput accounting in benches.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Process-wide data-plane accounting (DESIGN.md §4.9). The codec's
/// FrameBuilder flushes one set of adds per assembled frame (never per byte)
/// and the value decoder adds per payload, so the counters are cheap enough
/// to stay always-on. `bytes_copied` counts payload bytes memcpy'd into
/// intermediate storage (frame arenas, decode materialization);
/// `bytes_referenced` counts bytes that crossed the data plane as refcounted
/// slices instead. The single final gather into the wire vector is
/// `bytes_assembled` — every frame pays it exactly once by construction.
struct DataPlaneStats {
  Counter bytes_copied;
  Counter bytes_referenced;
  Counter frames_assembled;
  Counter bytes_assembled;

  void reset() {
    bytes_copied.reset();
    bytes_referenced.reset();
    frames_assembled.reset();
    bytes_assembled.reset();
  }
};

/// The process-wide instance (benches reset() it between A/B phases).
DataPlaneStats& data_plane();

/// Process-wide transport-health accounting (DESIGN.md §4.11). Per-transport
/// TransportStats carries the same counters for tests that own the instance;
/// this aggregate exists so the trace summary footer can report poisoned
/// streams and rejected handshakes process-wide — the codec's reassembler
/// counts poison events even when no transport owns it (fuzz harnesses).
struct NetHealthStats {
  Counter handshake_rejected;    ///< inbound connections refused pre-dispatch
  Counter connections_poisoned;  ///< connections dropped on framing corruption
  Counter streams_poisoned;      ///< StreamReassembler poison events

  void reset() {
    handshake_rejected.reset();
    connections_poisoned.reset();
    streams_poisoned.reset();
  }
};

/// The process-wide instance.
NetHealthStats& net_health();

/// Formats n as ops/s with thousands grouping, e.g. "1,234,567 ops/s".
std::string format_rate(double ops_per_sec);

/// Formats nanoseconds human-readably ("742ns", "12.3us", "4.5ms", "1.2s").
std::string format_ns(double ns);

}  // namespace alps::support
