// Thread naming and priority. The paper (§1, §3) wants the manager executed
// at a higher priority than the worker processes of the object; containers
// usually forbid raising priority, so try_boost_priority() is best-effort and
// reports whether it took effect. The manager additionally always gets a
// dedicated thread, which preserves the intent (receptiveness to entry calls)
// even when priorities are unavailable.
#pragma once

#include <string>

namespace alps::support {

/// Sets the current thread's name (visible in /proc and debuggers).
void set_current_thread_name(const std::string& name);

/// Tries to lower the current thread's niceness / raise its scheduling
/// priority. Returns true if any boost was applied.
bool try_boost_priority();

/// Number of hardware threads (>= 1).
unsigned hardware_threads();

}  // namespace alps::support
