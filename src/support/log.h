// Minimal leveled logger. The runtime logs nothing by default (benchmarks
// must not be perturbed); tests and examples can raise the level.
#pragma once

#include <atomic>
#include <cstdarg>
#include <string>

namespace alps::support {

enum class LogLevel : int { kOff = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style; thread-safe (one line per call, atomically written).
void log_at(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define ALPS_LOG_ERROR(...) ::alps::support::log_at(::alps::support::LogLevel::kError, __VA_ARGS__)
#define ALPS_LOG_WARN(...) ::alps::support::log_at(::alps::support::LogLevel::kWarn, __VA_ARGS__)
#define ALPS_LOG_INFO(...) ::alps::support::log_at(::alps::support::LogLevel::kInfo, __VA_ARGS__)
#define ALPS_LOG_DEBUG(...) ::alps::support::log_at(::alps::support::LogLevel::kDebug, __VA_ARGS__)

}  // namespace alps::support
