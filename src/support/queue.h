// Blocking MPMC queues and the lock-free call-intake queue.
//
// BlockingQueue<T> is the per-slot run queue of the SlotBound process model;
// BoundedBlockingQueue<T> backs flow-controlled benchmark harnesses. Both
// support close(): after close, producers fail and consumers drain the
// residue then observe emptiness, which gives clean shutdown without
// sentinels. MpscIntakeQueue<T> is the wait-free producer side of the
// kernel's batched call intake (see core/object.h).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace alps::support {

/// Lock-free multi-producer batch-drain queue.
///
/// push() is a single CAS loop (wait-free in the absence of contention) and
/// never blocks; drain() takes the *entire* batch in one atomic exchange and
/// delivers it in FIFO order (a Treiber push-list, reversed at drain). Any
/// thread may drain at any time: concurrent drains atomically split the
/// backlog into disjoint chains, so no item is ever delivered twice or lost.
/// Per-producer FIFO order is preserved; cross-producer order is the
/// linearization order of the pushes.
///
/// This is deliberately *not* a blocking queue: consumers are expected to
/// pair it with an EventCount (producers push, then signal), which keeps the
/// producer fast path free of mutexes and wake syscalls.
template <class T>
class MpscIntakeQueue {
 public:
  MpscIntakeQueue() = default;
  MpscIntakeQueue(const MpscIntakeQueue&) = delete;
  MpscIntakeQueue& operator=(const MpscIntakeQueue&) = delete;
  ~MpscIntakeQueue() {
    drain([](T&&) {});
  }

  void push(T value) {
    Node* node = new Node{std::move(value),
                          head_.load(std::memory_order_relaxed)};
    while (!head_.compare_exchange_weak(node->next, node,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
    }
  }

  /// True when no pushed item is awaiting a drain. seq_cst so that drain
  /// loops of the form "push; if (!empty()) drain()" cannot strand an item
  /// (see Object::flush_intake for the protocol).
  bool empty() const {
    return head_.load(std::memory_order_seq_cst) == nullptr;
  }

  /// Delivers every queued item to `fn` in FIFO order and returns how many
  /// were delivered. `fn` must not throw.
  template <class Fn>
  std::size_t drain(Fn&& fn) {
    Node* chain = head_.exchange(nullptr, std::memory_order_seq_cst);
    Node* fifo = nullptr;  // reverse the push-order (LIFO) chain
    while (chain != nullptr) {
      Node* next = chain->next;
      chain->next = fifo;
      fifo = chain;
      chain = next;
    }
    std::size_t delivered = 0;
    while (fifo != nullptr) {
      Node* next = fifo->next;
      fn(std::move(fifo->value));
      delete fifo;
      fifo = next;
      ++delivered;
    }
    return delivered;
  }

 private:
  struct Node {
    T value;
    Node* next;
  };
  std::atomic<Node*> head_{nullptr};
};

template <class T>
class BlockingQueue {
 public:
  /// Returns false if the queue is closed (the item is dropped).
  bool push(T item) {
    {
      std::scoped_lock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::optional<T> try_pop() {
    std::scoped_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  template <class Rep, class Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout,
                      [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

template <class T>
class BoundedBlockingQueue {
 public:
  explicit BoundedBlockingQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the queue was closed.
  bool push(T item) {
    {
      std::unique_lock lock(mu_);
      not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  bool try_push(T item) {
    {
      std::scoped_lock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  std::optional<T> pop() {
    std::optional<T> item;
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace alps::support
