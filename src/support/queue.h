// Blocking MPMC queues.
//
// BlockingQueue<T> is the unbounded run queue used by the Pooled process
// model; BoundedBlockingQueue<T> backs flow-controlled benchmark harnesses.
// Both support close(): after close, producers fail and consumers drain the
// residue then observe emptiness, which gives clean shutdown without
// sentinels.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace alps::support {

template <class T>
class BlockingQueue {
 public:
  /// Returns false if the queue is closed (the item is dropped).
  bool push(T item) {
    {
      std::scoped_lock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::optional<T> try_pop() {
    std::scoped_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  template <class Rep, class Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout,
                      [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

template <class T>
class BoundedBlockingQueue {
 public:
  explicit BoundedBlockingQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the queue was closed.
  bool push(T item) {
    {
      std::unique_lock lock(mu_);
      not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  bool try_push(T item) {
    {
      std::scoped_lock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  std::optional<T> pop() {
    std::optional<T> item;
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace alps::support
