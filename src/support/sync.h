// Low-level synchronization primitives used throughout the ALPS runtime.
//
// Everything here follows the C++ Core Guidelines concurrency rules: RAII
// locking only, condition variables always waited on with a predicate, and
// no busy-waiting on the hot paths.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace alps::support {

/// A counting semaphore with an unbounded count.
///
/// std::counting_semaphore requires a compile-time least-max-value and lacks
/// a timed acquire that reports the remaining count, so the runtime uses this
/// small mutex/cv implementation instead. Contention on these semaphores is
/// low (they guard per-object scheduling decisions, not data paths).
class Semaphore {
 public:
  explicit Semaphore(std::int64_t initial = 0) : count_(initial) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void release(std::int64_t n = 1) {
    {
      std::scoped_lock lock(mu_);
      count_ += n;
    }
    if (n == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

  void acquire() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return count_ > 0; });
    --count_;
  }

  bool try_acquire() {
    std::scoped_lock lock(mu_);
    if (count_ <= 0) return false;
    --count_;
    return true;
  }

  template <class Rep, class Period>
  bool try_acquire_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout, [&] { return count_ > 0; })) return false;
    --count_;
    return true;
  }

  std::int64_t value() const {
    std::scoped_lock lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t count_;
};

/// A waiter-counted event epoch (an "eventcount", the futex-style discipline
/// used by lean runtime schedulers). Producers call signal() after publishing
/// state; consumers register with prepare_wait(), re-check their predicate,
/// and only then block. The fast path on both sides is purely atomic:
///
///  - signal() with no registered waiter is two atomic operations and never
///    takes the internal mutex or issues a wake syscall;
///  - a waiter whose predicate is already true cancels its registration with
///    one atomic decrement.
///
/// Lost-wakeup freedom: prepare_wait() publishes the waiter count *before*
/// reading the epoch (both seq_cst), and signal() bumps the epoch *before*
/// reading the waiter count (both seq_cst). In the seq_cst total order either
/// the signaler sees the waiter (and notifies under the mutex), or the waiter
/// sees the bumped epoch (and commit_wait() returns without blocking).
class EventCount {
 public:
  /// Wakes all registered waiters whose epoch predates this call. Safe to
  /// call from any thread, with or without unrelated locks held.
  void signal() {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;  // fast path
    {
      // Empty critical section: a waiter between its epoch re-check and
      // cv_.wait() holds mu_, so this fence orders us after it and the
      // notify below cannot be missed.
      std::scoped_lock lock(mu_);
    }
    cv_.notify_all();
  }

  /// Like signal(), but wakes (at least) one waiter instead of the whole
  /// herd. Use when a single unit of work arrived and any one waiter can
  /// consume it — e.g. one task into a worker pool. Waiters must re-scan
  /// shared state before re-waiting (our ticket discipline does), because
  /// consecutive one-wakeups may coalesce onto the same waiter.
  void signal_one() {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;  // fast path
    {
      std::scoped_lock lock(mu_);
    }
    cv_.notify_one();
  }

  /// Registers the caller as a waiter and returns the current epoch ticket.
  /// Must be balanced by exactly one cancel_wait() or commit_wait().
  std::uint64_t prepare_wait() {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Deregisters without blocking (the predicate turned out to be true).
  void cancel_wait() { waiters_.fetch_sub(1, std::memory_order_release); }

  /// Blocks until the epoch moves past `ticket`, then deregisters.
  void commit_wait(std::uint64_t ticket) {
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] {
        return epoch_.load(std::memory_order_relaxed) != ticket;
      });
    }
    waiters_.fetch_sub(1, std::memory_order_release);
  }

  /// RAII registration: construct before reading the predicate's inputs,
  /// call wait() to block, or let the destructor cancel (predicate was
  /// satisfied, or an exception is unwinding).
  class Ticket {
   public:
    explicit Ticket(EventCount& ec) : ec_(&ec), epoch_(ec.prepare_wait()) {}
    ~Ticket() {
      if (armed_) ec_->cancel_wait();
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    /// Blocks until a signal() after this ticket was issued; consumes the
    /// registration.
    void wait() {
      armed_ = false;
      ec_->commit_wait(epoch_);
    }

   private:
    EventCount* ec_;
    std::uint64_t epoch_;
    bool armed_ = true;
  };

 private:
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> waiters_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

/// A manual-reset event: once set it stays set until reset() is called, and
/// every waiter (past or future) observes it.
class Event {
 public:
  void set() {
    // Notify while holding the lock: a woken waiter must reacquire mu_
    // before returning, so it cannot destroy this Event while notify_all is
    // still touching the condition variable (the common stack-local-Event
    // pattern in tests relies on this).
    std::scoped_lock lock(mu_);
    set_ = true;
    cv_.notify_all();
  }

  void reset() {
    std::scoped_lock lock(mu_);
    set_ = false;
  }

  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return set_; });
  }

  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return set_; });
  }

  bool is_set() const {
    std::scoped_lock lock(mu_);
    return set_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool set_ = false;
};

/// An auto-reset event: set() wakes exactly one past-or-future wait().
/// Used for slot-bound worker parking in the SlotBound process model.
class AutoResetEvent {
 public:
  void set() {
    {
      std::scoped_lock lock(mu_);
      signaled_ = true;
    }
    cv_.notify_one();
  }

  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return signaled_; });
    signaled_ = false;
  }

  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout, [&] { return signaled_; })) return false;
    signaled_ = false;
    return true;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool signaled_ = false;
};

/// A one-shot start/finish barrier for benchmarks: threads park in wait()
/// until arm() releases them all at once, so measured intervals do not
/// include thread start-up skew.
class StartGate {
 public:
  void arm() {
    {
      std::scoped_lock lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Spin lock for micro-critical sections in stats recording. Not used in the
/// kernel proper (kernel sections can block, and CP.43 says keep critical
/// sections short — the stats sections are a handful of arithmetic ops).
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
#if defined(__cpp_lib_atomic_flag_test)
      while (flag_.test(std::memory_order_relaxed)) {
      }
#endif
    }
  }

  void unlock() { flag_.clear(std::memory_order_release); }

  bool try_lock() { return !flag_.test_and_set(std::memory_order_acquire); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace alps::support
