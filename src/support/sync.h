// Low-level synchronization primitives used throughout the ALPS runtime.
//
// Everything here follows the C++ Core Guidelines concurrency rules: RAII
// locking only, condition variables always waited on with a predicate, and
// no busy-waiting on the hot paths.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace alps::support {

/// A counting semaphore with an unbounded count.
///
/// std::counting_semaphore requires a compile-time least-max-value and lacks
/// a timed acquire that reports the remaining count, so the runtime uses this
/// small mutex/cv implementation instead. Contention on these semaphores is
/// low (they guard per-object scheduling decisions, not data paths).
class Semaphore {
 public:
  explicit Semaphore(std::int64_t initial = 0) : count_(initial) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void release(std::int64_t n = 1) {
    {
      std::scoped_lock lock(mu_);
      count_ += n;
    }
    if (n == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

  void acquire() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return count_ > 0; });
    --count_;
  }

  bool try_acquire() {
    std::scoped_lock lock(mu_);
    if (count_ <= 0) return false;
    --count_;
    return true;
  }

  template <class Rep, class Period>
  bool try_acquire_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout, [&] { return count_ > 0; })) return false;
    --count_;
    return true;
  }

  std::int64_t value() const {
    std::scoped_lock lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t count_;
};

/// A manual-reset event: once set it stays set until reset() is called, and
/// every waiter (past or future) observes it.
class Event {
 public:
  void set() {
    {
      std::scoped_lock lock(mu_);
      set_ = true;
    }
    cv_.notify_all();
  }

  void reset() {
    std::scoped_lock lock(mu_);
    set_ = false;
  }

  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return set_; });
  }

  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return set_; });
  }

  bool is_set() const {
    std::scoped_lock lock(mu_);
    return set_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool set_ = false;
};

/// An auto-reset event: set() wakes exactly one past-or-future wait().
/// Used for slot-bound worker parking in the SlotBound process model.
class AutoResetEvent {
 public:
  void set() {
    {
      std::scoped_lock lock(mu_);
      signaled_ = true;
    }
    cv_.notify_one();
  }

  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return signaled_; });
    signaled_ = false;
  }

  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout, [&] { return signaled_; })) return false;
    signaled_ = false;
    return true;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool signaled_ = false;
};

/// A one-shot start/finish barrier for benchmarks: threads park in wait()
/// until arm() releases them all at once, so measured intervals do not
/// include thread start-up skew.
class StartGate {
 public:
  void arm() {
    {
      std::scoped_lock lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Spin lock for micro-critical sections in stats recording. Not used in the
/// kernel proper (kernel sections can block, and CP.43 says keep critical
/// sections short — the stats sections are a handful of arithmetic ops).
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
#if defined(__cpp_lib_atomic_flag_test)
      while (flag_.test(std::memory_order_relaxed)) {
      }
#endif
    }
  }

  void unlock() { flag_.clear(std::memory_order_release); }

  bool try_lock() { return !flag_.test_and_set(std::memory_order_acquire); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace alps::support
