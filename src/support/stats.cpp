#include "support/stats.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace alps::support {

Histogram::Histogram() = default;

int Histogram::bucket_for(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  // Power-of-two bucket group `msb`, sub-bucket from the next 4 bits.
  const int sub = static_cast<int>((v >> (msb - 4)) & (kSubBuckets - 1));
  const int idx = msb * kSubBuckets + sub;
  return std::min(idx, kBuckets - 1);
}

std::uint64_t Histogram::bucket_mid(int b) {
  const int msb = b / kSubBuckets;
  const int sub = b % kSubBuckets;
  if (msb < 4) return static_cast<std::uint64_t>(b);  // exact region
  const std::uint64_t base = 1ull << msb;
  const std::uint64_t step = base / kSubBuckets;
  return base + step * static_cast<std::uint64_t>(sub) + step / 2;
}

void Histogram::record(std::uint64_t v) {
  const int b = bucket_for(v);
  std::scoped_lock lock(mu_);
  ++buckets_[static_cast<std::size_t>(b)];
  ++count_;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  sum_ += static_cast<double>(v);
}

void Histogram::merge(const Histogram& other) {
  // Take a consistent snapshot of `other`, then fold it in.
  std::array<std::uint64_t, kBuckets> snap{};
  std::uint64_t ocount, omin, omax;
  double osum;
  {
    std::scoped_lock lock(other.mu_);
    snap = other.buckets_;
    ocount = other.count_;
    omin = other.min_;
    omax = other.max_;
    osum = other.sum_;
  }
  std::scoped_lock lock(mu_);
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] += snap[static_cast<std::size_t>(i)];
  }
  count_ += ocount;
  min_ = std::min(min_, omin);
  max_ = std::max(max_, omax);
  sum_ += osum;
}

std::uint64_t Histogram::count() const {
  std::scoped_lock lock(mu_);
  return count_;
}

std::uint64_t Histogram::min() const {
  std::scoped_lock lock(mu_);
  return count_ == 0 ? 0 : min_;
}

std::uint64_t Histogram::max() const {
  std::scoped_lock lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::scoped_lock lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t Histogram::percentile(double q) const {
  std::scoped_lock lock(mu_);
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen > target) {
      // Clamp the bucket midpoint into the observed range for tight tails.
      return std::clamp(bucket_mid(b), min_, max_);
    }
  }
  return max_;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "count=%llu mean=%s p50=%s p99=%s max=%s",
                static_cast<unsigned long long>(count()),
                format_ns(mean()).c_str(),
                format_ns(static_cast<double>(percentile(0.50))).c_str(),
                format_ns(static_cast<double>(percentile(0.99))).c_str(),
                format_ns(static_cast<double>(max())).c_str());
  return buf;
}

void Histogram::reset() {
  std::scoped_lock lock(mu_);
  buckets_.fill(0);
  count_ = 0;
  min_ = ~0ull;
  max_ = 0;
  sum_ = 0.0;
}

DataPlaneStats& data_plane() {
  static DataPlaneStats stats;
  return stats;
}

NetHealthStats& net_health() {
  static NetHealthStats stats;
  return stats;
}

std::string format_rate(double ops_per_sec) {
  char num[64];
  std::snprintf(num, sizeof num, "%.0f", ops_per_sec);
  std::string digits = num;
  std::string grouped;
  int cnt = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (cnt != 0 && cnt % 3 == 0) grouped.push_back(',');
    grouped.push_back(*it);
    ++cnt;
  }
  std::reverse(grouped.begin(), grouped.end());
  return grouped + " ops/s";
}

std::string format_ns(double ns) {
  char buf[64];
  if (ns < 1000.0) {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
  }
  return buf;
}

}  // namespace alps::support
