// Deterministic pseudo-random generation for workloads.
//
// Benchmarks and property tests must be reproducible, so everything takes an
// explicit seed; nothing reads global entropy. The Zipf generator drives the
// duplicate-heavy dictionary workload of experiment E3 (§2.7.1 combining).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace alps::support {

/// xoshiro256** by Blackman & Vigna — small, fast, high quality, and
/// trivially seedable from a single 64-bit value via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform in [0, 1).
  double next_double();

  bool next_bool(double p_true = 0.5);

  /// Exponentially distributed with the given mean (for service times).
  double next_exponential(double mean);

  // std::uniform_random_bit_generator interface, so Rng works with
  // std::shuffle and the <random> distributions when needed.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed ranks in [0, n): rank k is drawn with probability
/// proportional to 1/(k+1)^theta. Uses the inverse-CDF over a precomputed
/// table, which is exact and fast for the n <= 10^6 range used in benches.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double theta, std::uint64_t seed);

  std::size_t next();

  std::size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  Rng rng_;
  std::vector<double> cdf_;
  double theta_;
};

/// Deterministic word list ("w000017"-style) for dictionary workloads.
std::vector<std::string> make_word_list(std::size_t n);

}  // namespace alps::support
