#include "net/network.h"

#include "core/error.h"
#include "support/thread_util.h"

namespace alps::net {

Network::Network(LinkLatency default_latency, std::uint64_t seed)
    : default_latency_(default_latency), rng_(seed) {
  delivery_thread_ =
      std::jthread([this](std::stop_token st) { delivery_loop(st); });
}

Network::~Network() {
  delivery_thread_.request_stop();
  cv_.notify_all();
  if (delivery_thread_.joinable()) delivery_thread_.join();
}

NodeId Network::add_node(const std::string& name) {
  std::scoped_lock lock(mu_);
  node_names_.push_back(name);
  handlers_.emplace_back();
  return node_names_.size() - 1;
}

void Network::set_handler(NodeId node, std::function<void(Frame)> handler) {
  std::scoped_lock lock(mu_);
  if (node >= handlers_.size()) {
    raise(ErrorCode::kNetwork, "set_handler on unknown node");
  }
  handlers_[node] = std::move(handler);
}

void Network::set_link_latency(NodeId src, NodeId dst, LinkLatency latency) {
  std::scoped_lock lock(mu_);
  for (auto& [key, lat] : link_overrides_) {
    if (key.first == src && key.second == dst) {
      lat = latency;
      return;
    }
  }
  link_overrides_.push_back({{src, dst}, latency});
}

void Network::set_default_latency(LinkLatency latency) {
  std::scoped_lock lock(mu_);
  default_latency_ = latency;
}

LinkLatency Network::latency_for(NodeId src, NodeId dst) const {
  for (const auto& [key, lat] : link_overrides_) {
    if (key.first == src && key.second == dst) return lat;
  }
  return default_latency_;
}

void Network::set_loss_probability(double p) {
  std::scoped_lock lock(mu_);
  loss_probability_ = p;
}

void Network::partition(NodeId a, NodeId b) {
  std::scoped_lock lock(mu_);
  partitions_.emplace_back(a, b);
}

void Network::heal() {
  std::scoped_lock lock(mu_);
  partitions_.clear();
}

void Network::post(Frame frame) {
  {
    std::scoped_lock lock(mu_);
    // Failure injection: partitions and random loss silently eat the frame,
    // as a real datagram network would.
    for (const auto& [a, b] : partitions_) {
      if ((frame.src == a && frame.dst == b) ||
          (frame.src == b && frame.dst == a)) {
        ++stats_.frames_lost;
        return;
      }
    }
    if (loss_probability_ > 0.0 && rng_.next_double() < loss_probability_) {
      ++stats_.frames_lost;
      return;
    }
    const LinkLatency lat = latency_for(frame.src, frame.dst);
    auto delay = lat.base;
    if (lat.jitter.count() > 0) {
      delay += std::chrono::microseconds(rng_.next_below(
          static_cast<std::uint64_t>(lat.jitter.count()) + 1));
    }
    auto due = std::chrono::steady_clock::now() + delay;
    // Links are FIFO (the paper's channels are point-to-point and ordered):
    // jitter may stretch a link's latency but never reorders its frames.
    auto& last = last_due_[(frame.src << 32) | (frame.dst & 0xffffffffu)];
    if (due < last) due = last;
    last = due;
    queue_.push(Scheduled{due, next_seq_++, std::move(frame)});
  }
  cv_.notify_all();
}

void Network::delivery_loop(const std::stop_token& st) {
  support::set_current_thread_name("net/delivery");
  std::unique_lock lock(mu_);
  for (;;) {
    if (st.stop_requested()) return;
    if (queue_.empty()) {
      idle_cv_.notify_all();
      cv_.wait(lock, [&] { return !queue_.empty() || st.stop_requested(); });
      continue;
    }
    const auto due = queue_.top().due;
    const auto now = std::chrono::steady_clock::now();
    if (now < due) {
      cv_.wait_until(lock, due, [&] {
        return st.stop_requested() ||
               (!queue_.empty() && queue_.top().due <= std::chrono::steady_clock::now());
      });
      continue;
    }
    Frame frame = std::move(const_cast<Scheduled&>(queue_.top()).frame);
    queue_.pop();
    std::function<void(Frame)> handler;
    if (frame.dst < handlers_.size()) handler = handlers_[frame.dst];
    if (!handler) {
      ++stats_.frames_dropped;
      continue;
    }
    ++stats_.frames_delivered;
    stats_.bytes_delivered += frame.payload.size();
    delivering_ = true;
    lock.unlock();
    handler(std::move(frame));  // outside the lock: handlers may post frames
    lock.lock();
    delivering_ = false;
    idle_cv_.notify_all();
  }
}

NetworkStats Network::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

std::size_t Network::node_count() const {
  std::scoped_lock lock(mu_);
  return node_names_.size();
}

std::string Network::node_name(NodeId id) const {
  std::scoped_lock lock(mu_);
  if (id >= node_names_.size()) {
    raise(ErrorCode::kNetwork, "unknown node id");
  }
  return node_names_[id];
}

void Network::wait_quiescent() const {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && !delivering_; });
}

}  // namespace alps::net
