#include "net/network.h"

#include "core/error.h"
#include "net/directory.h"
#include "support/thread_util.h"

namespace alps::net {

Network::Network(LinkLatency default_latency, std::uint64_t seed)
    : default_latency_(default_latency),
      rng_(seed),
      directory_(std::make_unique<Directory>()) {
  delivery_thread_ =
      std::jthread([this](std::stop_token st) { delivery_loop(st); });
}

Network::~Network() {
  delivery_thread_.request_stop();
  cv_.notify_all();
  if (delivery_thread_.joinable()) delivery_thread_.join();
}

NodeId Network::add_node(const std::string& name) {
  std::scoped_lock lock(mu_);
  node_names_.push_back(name);
  handlers_.emplace_back();
  return node_names_.size() - 1;
}

void Network::set_handler(NodeId node, Handler handler) {
  std::unique_lock lock(mu_);
  if (node >= handlers_.size()) {
    raise(ErrorCode::kNetwork, "set_handler on unknown node");
  }
  handlers_[node] = std::move(handler);
  // The delivery loop invokes its copied handler outside the lock; a caller
  // deregistering (typically ~Node) must not return while such an invocation
  // is still running into the old handler's captures.
  idle_cv_.wait(lock, [&] { return !delivering_ || delivering_to_ != node; });
}

void Network::set_link_latency(NodeId src, NodeId dst, LinkLatency latency) {
  std::scoped_lock lock(mu_);
  for (auto& [key, lat] : link_overrides_) {
    if (key.first == src && key.second == dst) {
      lat = latency;
      return;
    }
  }
  link_overrides_.push_back({{src, dst}, latency});
}

void Network::set_default_latency(LinkLatency latency) {
  std::scoped_lock lock(mu_);
  default_latency_ = latency;
}

LinkLatency Network::latency_for(NodeId src, NodeId dst) const {
  for (const auto& [key, lat] : link_overrides_) {
    if (key.first == src && key.second == dst) return lat;
  }
  return default_latency_;
}

void Network::set_loss_probability(double p) {
  std::scoped_lock lock(mu_);
  default_faults_.drop = p;
}

void Network::set_default_faults(LinkFaults faults) {
  std::scoped_lock lock(mu_);
  default_faults_ = faults;
}

void Network::set_link_faults(NodeId src, NodeId dst, LinkFaults faults) {
  std::scoped_lock lock(mu_);
  for (auto& [key, f] : fault_overrides_) {
    if (key.first == src && key.second == dst) {
      f = faults;
      return;
    }
  }
  fault_overrides_.push_back({{src, dst}, faults});
}

LinkFaults Network::faults_for(NodeId src, NodeId dst) const {
  for (const auto& [key, f] : fault_overrides_) {
    if (key.first == src && key.second == dst) return f;
  }
  return default_faults_;
}

void Network::partition(NodeId a, NodeId b) {
  std::scoped_lock lock(mu_);
  partitions_.emplace_back(a, b);
}

void Network::schedule_partition(NodeId a, NodeId b, std::uint64_t after_frames,
                                 std::uint64_t duration_frames) {
  std::scoped_lock lock(mu_);
  scripted_partitions_.push_back(PartitionScript{
      a, b, total_posted_ + after_frames,
      total_posted_ + after_frames + duration_frames});
}

void Network::heal() {
  std::scoped_lock lock(mu_);
  partitions_.clear();
  scripted_partitions_.clear();
}

bool Network::partitioned_locked(NodeId a, NodeId b) const {
  for (const auto& [pa, pb] : partitions_) {
    if ((a == pa && b == pb) || (a == pb && b == pa)) return true;
  }
  for (const auto& s : scripted_partitions_) {
    if (total_posted_ < s.start || total_posted_ >= s.end) continue;
    if ((a == s.a && b == s.b) || (a == s.b && b == s.a)) return true;
  }
  return false;
}

bool Network::is_partitioned(NodeId a, NodeId b) const {
  std::scoped_lock lock(mu_);
  // A departed node is unreachable from everywhere: the permanent cut.
  if (departed_.contains(a) || departed_.contains(b)) return true;
  return partitioned_locked(a, b);
}

void Network::add_peer(NodeId id, const std::string& name,
                       const std::string& address) {
  (void)address;  // in-process: there is no wire endpoint to dial
  {
    std::scoped_lock lock(mu_);
    if (id < node_names_.size()) {
      // Revival of a departed id (a restarted process re-joining under its
      // old identity). A live id is a no-op, matching the socket backend's
      // idempotent add_peer.
      departed_.erase(id);
      node_names_[id] = name;
    } else if (id == node_names_.size()) {
      node_names_.push_back(name);
      handlers_.emplace_back();
    } else {
      raise(ErrorCode::kNetwork,
            "sim node ids are dense; cannot add sparse id " +
                std::to_string(id));
    }
  }
  notify_membership(id, true);
}

bool Network::remove_peer(NodeId id) {
  {
    std::scoped_lock lock(mu_);
    if (id >= node_names_.size() || departed_.contains(id)) return false;
    departed_.insert(id);
    handlers_[id] = nullptr;
    // Purge in-flight frames touching the departed node: rebuild the
    // schedule without them, counting each as lost (the socket backend's
    // queue-drop on eviction).
    decltype(queue_) kept;
    while (!queue_.empty()) {
      Scheduled s = std::move(const_cast<Scheduled&>(queue_.top()));
      queue_.pop();
      if (s.frame.src == id || s.frame.dst == id) {
        ++stats_.frames_lost;
      } else {
        kept.push(std::move(s));
      }
    }
    queue_.swap(kept);
  }
  directory().remove_node(id);
  notify_membership(id, false);
  return true;
}

void Network::post(Frame frame) {
  {
    std::scoped_lock lock(mu_);
    // Failure injection: partitions and random loss silently eat the frame,
    // as a real datagram network would. The partition check reads the clock
    // before this post advances it, so "after N frames" cuts the N+1st; every
    // post (including eaten ones) then drives the script forward —
    // retransmissions make a scripted heal progress.
    const bool cut = partitioned_locked(frame.src, frame.dst) ||
                     departed_.contains(frame.src) ||
                     departed_.contains(frame.dst);
    ++total_posted_;
    ++stats_.frames_posted;
    stats_.bytes_posted += frame.payload.size();
    if (cut) {
      ++stats_.frames_lost;
      return;
    }
    const LinkFaults faults = faults_for(frame.src, frame.dst);
    if (faults.drop > 0.0 && rng_.next_double() < faults.drop) {
      ++stats_.frames_lost;
      return;
    }
    const bool duplicate =
        faults.duplicate > 0.0 && rng_.next_double() < faults.duplicate;
    const bool reorder =
        faults.reorder > 0.0 && rng_.next_double() < faults.reorder;
    const LinkLatency lat = latency_for(frame.src, frame.dst);
    auto delay = lat.base;
    if (lat.jitter.count() > 0) {
      delay += std::chrono::microseconds(rng_.next_below(
          static_cast<std::uint64_t>(lat.jitter.count()) + 1));
    }
    auto due = std::chrono::steady_clock::now() + delay;
    // Links are FIFO (the paper's channels are point-to-point and ordered):
    // jitter may stretch a link's latency but never reorders its frames.
    // An injected reorder fault lets this frame escape the clamp (and does
    // not advance it, so later frames are unaffected).
    auto& link = last_due_[(frame.src << 32) | (frame.dst & 0xffffffffu)];
    if (reorder) {
      if (due < link.max_due) ++fault_stats_.frames_reordered;
    } else {
      if (due < link.clamp) due = link.clamp;
      link.clamp = due;
    }
    if (due > link.max_due) link.max_due = due;
    if (duplicate) {
      auto extra = std::chrono::microseconds(0);
      if (faults.duplicate_jitter.count() > 0) {
        extra = std::chrono::microseconds(rng_.next_below(
            static_cast<std::uint64_t>(faults.duplicate_jitter.count()) + 1));
      }
      ++fault_stats_.frames_duplicated;
      queue_.push(Scheduled{due + extra, next_seq_++, frame});  // copy
    }
    queue_.push(Scheduled{due, next_seq_++, std::move(frame)});
    // Notify under the lock: the delivery thread's latency-timeout wakeup can
    // otherwise consume the frame — and the whole Network be torn down by a
    // caller that observed the delivery — while this thread is still touching
    // cv_ after the unlock.
    cv_.notify_all();
  }
}

void Network::delivery_loop(const std::stop_token& st) {
  support::set_current_thread_name("net/delivery");
  std::unique_lock lock(mu_);
  for (;;) {
    if (st.stop_requested()) return;
    if (queue_.empty()) {
      idle_cv_.notify_all();
      cv_.wait(lock, [&] { return !queue_.empty() || st.stop_requested(); });
      continue;
    }
    const auto due = queue_.top().due;
    const auto now = std::chrono::steady_clock::now();
    if (now < due) {
      cv_.wait_until(lock, due, [&] {
        return st.stop_requested() ||
               (!queue_.empty() && queue_.top().due <= std::chrono::steady_clock::now());
      });
      continue;
    }
    Frame frame = std::move(const_cast<Scheduled&>(queue_.top()).frame);
    queue_.pop();
    if (departed_.contains(frame.src) || departed_.contains(frame.dst)) {
      // Removed after this frame was scheduled but before delivery: the
      // eviction wins (remove_peer purges the queue; this covers the race).
      ++stats_.frames_lost;
      continue;
    }
    Handler handler;
    if (frame.dst < handlers_.size()) handler = handlers_[frame.dst];
    if (!handler) {
      ++stats_.frames_dropped;
      continue;
    }
    ++stats_.frames_delivered;
    stats_.bytes_delivered += frame.payload.size();
    delivering_ = true;
    delivering_to_ = frame.dst;
    // Promote the payload to shared ownership (vector move, no byte copy):
    // decoded blob params and batch members can then alias the frame.
    Buffer payload = Buffer::adopt(std::move(frame.payload));
    lock.unlock();
    // Outside the lock: handlers may post frames.
    handler(frame.src, std::move(payload));
    lock.lock();
    delivering_ = false;
    idle_cv_.notify_all();
  }
}

TransportStats Network::transport_stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

SimFaultStats Network::fault_stats() const {
  std::scoped_lock lock(mu_);
  return fault_stats_;
}

std::size_t Network::node_count() const {
  std::scoped_lock lock(mu_);
  return node_names_.size();
}

std::string Network::node_name(NodeId id) const {
  std::scoped_lock lock(mu_);
  if (id >= node_names_.size()) {
    raise(ErrorCode::kNetwork, "unknown node id");
  }
  return node_names_[id];
}

void Network::wait_quiescent() const {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && !delivering_; });
}

}  // namespace alps::net
