#include "net/transport.h"

#include "net/codec.h"

namespace alps::net {

void Transport::post(NodeId src, NodeId dst, const FrameBuilder& frame) {
  // Generic fallback: flatten the scatter-gather list into one contiguous
  // payload. This is the data plane's single gather (bytes_assembled);
  // stream transports override to skip it.
  post(Frame{src, dst, frame.build()});
}

}  // namespace alps::net
