#include "net/transport.h"

#include "core/error.h"
#include "net/codec.h"

namespace alps::net {

void Transport::post(NodeId src, NodeId dst, const FrameBuilder& frame) {
  // Generic fallback: flatten the scatter-gather list into one contiguous
  // payload. This is the data plane's single gather (bytes_assembled);
  // stream transports override to skip it.
  post(Frame{src, dst, frame.build()});
}

void Transport::add_peer(NodeId id, const std::string& name,
                         const std::string& address) {
  (void)id;
  (void)address;
  raise(ErrorCode::kNetwork,
        "this transport does not support dynamic membership (add_peer " +
            name + ")");
}

bool Transport::remove_peer(NodeId id) {
  (void)id;
  raise(ErrorCode::kNetwork,
        "this transport does not support dynamic membership (remove_peer)");
}

std::uint64_t Transport::add_membership_listener(MembershipListener listener) {
  std::scoped_lock lock(listeners_mu_);
  const std::uint64_t token = next_listener_token_++;
  listeners_.emplace(token, std::move(listener));
  return token;
}

void Transport::remove_membership_listener(std::uint64_t token) {
  std::scoped_lock lock(listeners_mu_);
  listeners_.erase(token);
}

void Transport::notify_membership(NodeId peer, bool added) {
  // Snapshot under the lock, invoke outside it: listeners post frames and
  // take node/batcher locks of their own.
  std::vector<MembershipListener> snapshot;
  {
    std::scoped_lock lock(listeners_mu_);
    snapshot.reserve(listeners_.size());
    for (const auto& [token, fn] : listeners_) snapshot.push_back(fn);
  }
  for (const auto& fn : snapshot) fn(peer, added);
}

}  // namespace alps::net
