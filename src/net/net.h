// Umbrella header for the distribution substrate (S8), mirroring core/alps.h.
//
//   net::Transport     backend seam: post frames, register handlers, stats
//   net::Network       simulated multi-node transport: per-link latency,
//                      fault injection (drop/duplicate/reorder/partition)
//   net::SocketTransport  real TCP / Unix-socket transport between processes
//   net::Directory     cluster map object name → home node (kWrongNode heals
//                      stale per-node route caches in-band)
//   net::Node          hosts kernel Objects; retry timer + at-most-once dedup;
//                      name-based call surface resolves through the directory
//   net::RemoteObject  proxy: call/async_call with CallOptions → Result
//   net::RetryPolicy   retransmission discipline (backoff + jitter)
//   net::RpcError      typed failure causes (timeout, partitioned, ...)
//   net::FrameBatcher  per-link frame coalescing (kBatch envelopes)
//   codec.h            wire format: Value TLV + frame headers
#pragma once

#include "net/batch.h"
#include "net/codec.h"
#include "net/directory.h"
#include "net/network.h"
#include "net/rpc.h"
#include "net/transport.h"
#include "net/transport_socket.h"
