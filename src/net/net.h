// Umbrella header for the distribution substrate (S8), mirroring core/alps.h.
//
//   net::Network       simulated multi-node network: per-link latency,
//                      fault injection (drop/duplicate/reorder/partition)
//   net::Node          hosts kernel Objects; retry timer + at-most-once dedup
//   net::RemoteObject  proxy: call/async_call with CallOptions → Result
//   net::RetryPolicy   retransmission discipline (backoff + jitter)
//   net::RpcError      typed failure causes (timeout, partitioned, ...)
//   codec.h            wire format: Value TLV + frame headers
#pragma once

#include "net/codec.h"
#include "net/network.h"
#include "net/rpc.h"
