#include "net/transport_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/error.h"
#include "support/log.h"
#include "support/stats.h"
#include "support/thread_util.h"

namespace alps::net {

namespace {

/// Read-buffer granularity for inbound streams. One syscall per chunk; the
/// reassembler handles frames larger or smaller than this transparently.
constexpr std::size_t kReadChunk = 64 * 1024;

/// Most iovecs one sendmsg may carry; longer scatter lists loop.
constexpr std::size_t kIovBatch = 64;

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Writes every iovec fully, advancing across partial writes. Returns false
/// on a dead connection. MSG_NOSIGNAL: a peer closing mid-write must surface
/// as EPIPE, not kill the process.
bool send_all(int fd, std::vector<iovec>& iov) {
  std::size_t idx = 0;
  while (idx < iov.size()) {
    msghdr msg{};
    msg.msg_iov = iov.data() + idx;
    msg.msg_iovlen = std::min(iov.size() - idx, kIovBatch);
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    auto advanced = static_cast<std::size_t>(n);
    while (advanced > 0) {
      if (iov[idx].iov_len <= advanced) {
        advanced -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + advanced;
        iov[idx].iov_len -= advanced;
        advanced = 0;
      }
    }
  }
  return true;
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    raise(ErrorCode::kNetwork, "unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string target = host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, target.c_str(), &addr.sin_addr) != 1) {
    raise(ErrorCode::kNetwork, "bad IPv4 address: " + target);
  }
  return addr;
}

}  // namespace

std::string SocketAddress::to_string() const {
  if (is_unix()) return "unix:" + path;
  return (host.empty() ? std::string("127.0.0.1") : host) + ":" +
         std::to_string(port);
}

SocketAddress SocketAddress::parse(const std::string& text) {
  if (text.rfind("unix:", 0) == 0) return unix_path(text.substr(5));
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon + 1 == text.size()) {
    raise(ErrorCode::kNetwork, "unparseable socket address: " + text);
  }
  std::uint32_t port = 0;
  for (std::size_t i = colon + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9' || (port = port * 10 + (c - '0')) > 65535) {
      raise(ErrorCode::kNetwork, "bad port in socket address: " + text);
    }
  }
  return tcp(text.substr(0, colon), static_cast<std::uint16_t>(port));
}

// ---- construction / teardown -----------------------------------------------

SocketTransport::SocketTransport(SocketTransportOptions options)
    : options_(std::move(options)) {
  // Our HELLO, sent as the first bytes of every outbound connection. Built
  // once: options are immutable after construction.
  HelloFrame hello;
  hello.version = options_.protocol_version;
  hello.node = options_.local_node;
  hello.token = options_.cluster_token;
  encode_hello(hello, hello_bytes_);

  // Initial membership: one PeerLink per configured peer, sender threads
  // started lazily on first traffic (connect-on-demand). add_peer /
  // remove_peer change this set on the live transport.
  for (const auto& peer : options_.peers) {
    if (peer.id == options_.local_node) continue;  // self entry tolerated
    auto link = std::make_shared<PeerLink>();
    link->id = peer.id;
    link->address = peer.address;
    peer_names_[peer.id] = peer.name;
    links_.emplace(peer.id, std::move(link));
  }

  // Listener socket. Unix paths are unlinked first so a crashed predecessor
  // cannot wedge the bind.
  const auto& listen_addr = options_.listen;
  if (listen_addr.is_unix()) {
    ::unlink(listen_addr.path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) raise(ErrorCode::kNetwork, "socket() failed");
    auto addr = make_unix_addr(listen_addr.path);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      close_fd(listen_fd_);
      raise(ErrorCode::kNetwork,
            "bind failed on " + listen_addr.to_string() + ": " +
                std::strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) raise(ErrorCode::kNetwork, "socket() failed");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    auto addr = make_tcp_addr(listen_addr.host, listen_addr.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      close_fd(listen_fd_);
      raise(ErrorCode::kNetwork,
            "bind failed on " + listen_addr.to_string() + ": " +
                std::strerror(errno));
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    close_fd(listen_fd_);
    raise(ErrorCode::kNetwork, "listen failed");
  }
  if (!listen_addr.is_unix()) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  }
  listener_ = std::jthread([this](std::stop_token st) { listen_loop(st); });
}

SocketTransport::~SocketTransport() {
  // Stop accepting first so no new readers appear under our feet.
  listener_.request_stop();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (listener_.joinable()) listener_.join();
  close_fd(listen_fd_);

  // Senders: best-effort drain of queued frames (see sender_loop), then join.
  std::vector<std::shared_ptr<PeerLink>> links;
  {
    std::scoped_lock lock(links_mu_);
    links.reserve(links_.size());
    for (auto& [id, link] : links_) links.push_back(link);
  }
  for (auto& link : links) {
    if (link->sender.joinable()) {
      link->sender.request_stop();
      {
        std::scoped_lock lock(link->mu);
        link->cv.notify_all();
      }
      link->sender.join();
    }
    std::scoped_lock lock(link->mu);
    close_fd(link->fd);
  }

  // Readers: shutting the fd down unblocks the blocking read.
  std::vector<std::shared_ptr<Inbound>> inbound;
  {
    std::scoped_lock lock(mu_);
    inbound.swap(inbound_);
  }
  for (auto& conn : inbound) {
    conn->reader.request_stop();
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : inbound) {
    if (conn->reader.joinable()) conn->reader.join();
    close_fd(conn->fd);
  }

  if (options_.listen.is_unix()) ::unlink(options_.listen.path.c_str());
}

NodeId SocketTransport::add_node(const std::string& name) {
  std::scoped_lock lock(mu_);
  if (have_node_) {
    raise(ErrorCode::kNetwork,
          "SocketTransport serves one local node per process; second "
          "add_node(" + name + ") refused");
  }
  have_node_ = true;
  if (options_.local_name.empty()) options_.local_name = name;
  return options_.local_node;
}

void SocketTransport::set_handler(NodeId node, Handler handler) {
  std::unique_lock lock(mu_);
  if (node != options_.local_node) {
    raise(ErrorCode::kNetwork, "set_handler on non-local node");
  }
  handler_ = std::move(handler);
  // Same contract as the sim: a deregistering caller (~Node) must not return
  // while a delivery is still running into the old handler's captures.
  delivery_cv_.wait(lock, [&] { return active_deliveries_ == 0; });
}

// ---- dynamic membership ----------------------------------------------------

std::shared_ptr<SocketTransport::PeerLink> SocketTransport::find_link(
    NodeId id) const {
  std::scoped_lock lock(links_mu_);
  auto it = links_.find(id);
  return it == links_.end() ? nullptr : it->second;
}

void SocketTransport::add_peer(const SocketPeer& peer) {
  if (peer.id == options_.local_node) return;
  {
    std::scoped_lock lock(links_mu_);
    if (links_.contains(peer.id)) return;  // idempotent per id
    auto link = std::make_shared<PeerLink>();
    link->id = peer.id;
    link->address = peer.address;
    peer_names_[peer.id] = peer.name;
    links_.emplace(peer.id, std::move(link));
  }
  notify_membership(peer.id, true);
}

void SocketTransport::add_peer(NodeId id, const std::string& name,
                               const std::string& address) {
  SocketPeer peer;
  peer.id = id;
  peer.name = name;
  peer.address = SocketAddress::parse(address);
  add_peer(peer);
}

bool SocketTransport::remove_peer(NodeId id) {
  std::shared_ptr<PeerLink> link;
  {
    std::scoped_lock lock(links_mu_);
    auto it = links_.find(id);
    if (it == links_.end()) return false;
    link = std::move(it->second);
    links_.erase(it);
    peer_names_.erase(id);
  }
  // Mark terminal and wake the sender; join it holding no locks (it takes
  // link->mu and mu_). A racing enqueue that copied the shared_ptr before the
  // erase sees `removed` and counts its frame dropped.
  {
    std::scoped_lock lock(link->mu);
    link->removed = true;
    close_fd(link->fd);
    link->cv.notify_all();
  }
  if (link->sender.joinable()) {
    link->sender.request_stop();
    link->sender.join();
  }
  std::size_t frames = 0, bytes = 0;
  {
    std::scoped_lock lock(link->mu);
    frames = link->queue.size();
    bytes = link->queue_bytes;
    link->queue.clear();
    link->queue_bytes = 0;
  }
  count_lost(frames, bytes);
  // Inbound side: shut down streams the evicted peer has open. Their reader
  // threads exit on the dead fd; ~SocketTransport joins them.
  std::vector<std::shared_ptr<Inbound>> to_close;
  {
    std::scoped_lock lock(mu_);
    for (const auto& conn : inbound_) {
      if (conn->authed.load(std::memory_order_acquire) &&
          conn->peer.load(std::memory_order_relaxed) == id && conn->fd >= 0) {
        to_close.push_back(conn);
      }
    }
  }
  for (auto& conn : to_close) ::shutdown(conn->fd, SHUT_RDWR);
  // A departed node's named objects fail typed (kObjectNotFound) instead of
  // timing out against a dead address.
  directory_.remove_node(id);
  notify_membership(id, false);
  return true;
}

// ---- send path -------------------------------------------------------------

void SocketTransport::post(Frame frame) {
  {
    std::scoped_lock lock(mu_);
    ++stats_.frames_posted;
    stats_.bytes_posted += frame.payload.size();
  }
  if (frame.dst == options_.local_node) {
    // Loopback: delivered inline on the posting thread (the sim routes this
    // through its delivery thread instead; handlers never block long, so
    // inline is safe and keeps the no-self-connection invariant).
    deliver(frame.src, Buffer::adopt(std::move(frame.payload)));
    return;
  }
  enqueue(frame.dst, FrameBuilder::from_bytes(std::move(frame.payload)));
}

void SocketTransport::post(NodeId src, NodeId dst, const FrameBuilder& frame) {
  {
    std::scoped_lock lock(mu_);
    ++stats_.frames_posted;
    stats_.bytes_posted += frame.size();
  }
  if (dst == options_.local_node) {
    // Loopback never touches the wire, so it pays the ordinary gather.
    deliver(src, Buffer::adopt(frame.build()));
    return;
  }
  enqueue(dst, frame);
}

void SocketTransport::enqueue(NodeId dst, FrameBuilder frame) {
  auto link = find_link(dst);
  if (!link) {
    std::scoped_lock lock(mu_);
    ++stats_.frames_dropped;
    return;
  }
  const std::size_t bytes = frame.size();
  bool lost = false;
  bool dropped = false;
  {
    std::scoped_lock lock(link->mu);
    if (link->removed) {
      dropped = true;  // racing eviction: same as "dst unknown"
    } else if (link->queue.size() >= options_.max_queued_per_peer) {
      lost = true;
    } else if ((link->severed || link->unreachable) &&
               (link->queue.size() >= options_.retransmit_budget_frames ||
                link->queue_bytes + bytes > options_.retransmit_budget_bytes)) {
      // The peer is down and the replay budget is full: past-budget frames
      // are datagram loss, exactly what the RPC retry layer converges under.
      lost = true;
    } else {
      link->queue.push_back(std::move(frame));
      link->queue_bytes += bytes;
      // Queued while the peer is down: this frame is riding out the blip,
      // whether or not the sender observes the outage before it heals.
      if (link->severed || link->unreachable) link->replaying = true;
      if (!link->sender.joinable()) {
        // Connect-on-demand: first frame towards this peer starts its
        // sender, which owns the connection lifecycle from here on. Raw
        // pointer is safe: remove_peer / ~SocketTransport join the sender
        // before the last shared_ptr can drop.
        PeerLink* raw = link.get();
        link->sender = std::jthread(
            [this, raw](std::stop_token st) { sender_loop(st, raw); });
      }
      link->cv.notify_all();
    }
  }
  if (dropped) {
    std::scoped_lock lock(mu_);
    ++stats_.frames_dropped;
  }
  if (lost) count_lost(1, bytes);
}

bool SocketTransport::connect_locked(PeerLink& link) {
  int fd = -1;
  sockaddr_storage storage{};
  socklen_t addr_len = 0;
  if (link.address.is_unix()) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    auto addr = make_unix_addr(link.address.path);
    std::memcpy(&storage, &addr, sizeof(addr));
    addr_len = sizeof(addr);
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    auto addr = make_tcp_addr(link.address.host, link.address.port);
    std::memcpy(&storage, &addr, sizeof(addr));
    addr_len = sizeof(addr);
  }
  bool ok = fd >= 0;
  if (ok) {
    // Non-blocking connect with a poll deadline: an unreachable TCP peer
    // must cost connect_timeout, not a kernel-default 2 minutes.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&storage), addr_len);
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      rc = ::poll(&pfd, 1,
                  static_cast<int>(options_.connect_timeout.count()));
      if (rc == 1) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        rc = err == 0 ? 0 : -1;
      } else {
        rc = -1;  // timeout or poll failure
      }
    }
    ok = rc == 0;
    if (ok) {
      ::fcntl(fd, F_SETFL, flags);  // back to blocking for the send loop
      if (!link.address.is_unix()) {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
    }
  }
  if (!ok) {
    if (fd >= 0) ::close(fd);
    arm_backoff_locked(link);
    return false;
  }
  link.fd = fd;
  link.unreachable = false;
  link.backoff = std::chrono::milliseconds(0);
  return true;
}

void SocketTransport::arm_backoff_locked(PeerLink& link) {
  link.unreachable = true;
  link.backoff = link.backoff.count() == 0
                     ? options_.connect_backoff_initial
                     : std::min(link.backoff * 2, options_.connect_backoff_max);
  link.next_attempt = std::chrono::steady_clock::now() + link.backoff;
}

void SocketTransport::trim_queue_locked(PeerLink& link) {
  std::size_t frames = 0, bytes = 0;
  while (!link.queue.empty() &&
         (link.queue.size() > options_.retransmit_budget_frames ||
          link.queue_bytes > options_.retransmit_budget_bytes)) {
    // Tail-drop the newest: the surviving prefix replays in posted order.
    const std::size_t sz = link.queue.back().size();
    link.queue.pop_back();
    link.queue_bytes -= sz;
    bytes += sz;
    ++frames;
  }
  if (frames > 0) count_lost(frames, bytes);
}

void SocketTransport::park_and_trim_locked(PeerLink& link) {
  link.replaying = true;
  trim_queue_locked(link);
  link.cv.notify_all();  // wait_quiescent: parked, not draining
}

bool SocketTransport::send_frame(int fd, const FrameBuilder& frame) {
  // Stream chunk = 12-byte header + the frame's scatter segments, handed to
  // sendmsg as one iovec list: the writev path. No contiguous frame is ever
  // assembled on this side of the kernel boundary.
  std::uint8_t header[kStreamHeaderBytes];
  encode_stream_header(options_.local_node, frame.size(), header);
  std::vector<FrameBuilder::Segment> segments;
  frame.segments(segments);
  std::vector<iovec> iov;
  iov.reserve(segments.size() + 1);
  iov.push_back(iovec{header, sizeof(header)});
  for (const auto& s : segments) {
    iov.push_back(iovec{const_cast<void*>(s.data), s.size});
  }
  if (!send_all(fd, iov)) return false;
  frame.note_sent_scattered();
  return true;
}

bool SocketTransport::send_hello(int fd) {
  std::vector<iovec> iov;
  iov.push_back(iovec{const_cast<std::uint8_t*>(hello_bytes_.data()),
                      hello_bytes_.size()});
  return send_all(fd, iov);
}

void SocketTransport::sender_loop(const std::stop_token& st, PeerLink* link) {
  support::set_current_thread_name("net/send/" + std::to_string(link->id));
  std::stop_callback wake(st, [link] {
    std::scoped_lock lock(link->mu);
    link->cv.notify_all();
  });
  std::unique_lock lock(link->mu);
  const auto drain_as_lost = [&] {
    const std::size_t frames = link->queue.size();
    const std::size_t bytes = link->queue_bytes;
    link->queue.clear();
    link->queue_bytes = 0;
    if (frames > 0) count_lost(frames, bytes);
  };
  for (;;) {
    if (link->removed) return;  // remove_peer counts the queue itself
    if (link->queue.empty()) {
      if (st.stop_requested()) return;
      link->cv.wait(lock, [&] {
        return st.stop_requested() || link->removed || !link->queue.empty();
      });
      continue;
    }
    if (link->severed) {
      if (st.stop_requested()) {
        drain_as_lost();
        return;
      }
      // The cut parks the queue (budget-bounded): restore() replays it in
      // order, so a deliberate partition heals without re-posting.
      park_and_trim_locked(*link);
      link->cv.wait(lock, [&] {
        return st.stop_requested() || link->removed || !link->severed;
      });
      continue;
    }
    if (link->fd < 0) {
      const auto now = std::chrono::steady_clock::now();
      if (st.stop_requested()) {
        // Teardown with a dead connection: what is still queued is lost.
        drain_as_lost();
        return;
      }
      if (now < link->next_attempt) {
        // In backoff after a failed round; frames keep queueing (budget-
        // bounded) until the next attempt.
        link->cv.wait_until(lock, link->next_attempt, [&] {
          return st.stop_requested() || link->removed || link->severed;
        });
        continue;
      }
      if (!connect_locked(*link)) {
        // The round failed: the queue survives for in-order replay on the
        // next successful connect, bounded by the retransmit budget. The
        // armed backoff paces the next round.
        park_and_trim_locked(*link);
        continue;
      }
      // Fresh connection: our HELLO goes first, before any frame. A failure
      // here is a connect failure — close and back off.
      const int fd = link->fd;
      lock.unlock();
      const bool hello_ok = send_hello(fd);
      lock.lock();
      if (!hello_ok) {
        if (link->fd == fd) close_fd(link->fd);
        arm_backoff_locked(*link);
        continue;
      }
      if (link->replaying) {
        // Everything still queued rode out the blip and is about to replay.
        link->replaying = false;
        const std::uint64_t survived = link->queue.size();
        std::scoped_lock slock(mu_);
        stats_.frames_requeued += survived;
      }
    }
    FrameBuilder frame = std::move(link->queue.front());
    link->queue.pop_front();
    const std::size_t frame_bytes = frame.size();
    link->queue_bytes -= frame_bytes;
    link->sending = true;
    const int fd = link->fd;
    lock.unlock();
    const bool ok = send_frame(fd, frame);
    lock.lock();
    link->sending = false;
    if (!ok) {
      // The connection died under this frame (possibly mid-frame — the
      // peer's reassembler drops the torn tail with the connection). Requeue
      // it at the front so replay preserves posted order; the backoff paces
      // a peer that accepts and immediately dies.
      if (link->fd == fd) close_fd(link->fd);
      if (link->removed || link->severed || st.stop_requested()) {
        // The in-flight frame was already popped, so neither remove_peer's
        // drain nor the severed park can see it — counting it here is its
        // only loss accounting.
        count_lost(1, frame_bytes);
      } else {
        // Front-requeue, then trim: the requeued frame re-enters the parked
        // queue *before* the budget check, so whether it survives or is
        // tail-dropped it is owned by exactly one accounting path (replay,
        // or trim's count_lost) — never both, never neither.
        link->queue.push_front(std::move(frame));
        link->queue_bytes += frame_bytes;
        arm_backoff_locked(*link);
        park_and_trim_locked(*link);
      }
    }
    link->cv.notify_all();  // wait_quiescent
  }
}

// ---- receive path ----------------------------------------------------------

void SocketTransport::listen_loop(const std::stop_token& st) {
  support::set_current_thread_name("net/accept");
  while (!st.stop_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (st.stop_requested()) return;
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener shut down
    }
    auto conn = std::make_shared<Inbound>();
    conn->fd = fd;
    {
      std::scoped_lock lock(mu_);
      inbound_.push_back(conn);
    }
    conn->reader = std::jthread(
        [this, conn](std::stop_token rst) { reader_loop(rst, conn); });
  }
}

bool SocketTransport::validate_hello(const HelloFrame& hello,
                                     std::string* why) const {
  if (hello.version != options_.protocol_version) {
    *why = "protocol version " + std::to_string(hello.version) +
           " != required " + std::to_string(options_.protocol_version);
    return false;
  }
  if (hello.token != options_.cluster_token) {
    *why = "cluster token mismatch";  // never echo either token
    return false;
  }
  if (hello.node == options_.local_node) {
    *why = "peer claims our own node id " + std::to_string(hello.node);
    return false;
  }
  if (!find_link(hello.node)) {
    *why = "node " + std::to_string(hello.node) + " is not in the peer set";
    return false;
  }
  return true;
}

void SocketTransport::reject_inbound(Inbound& conn, const std::string& why) {
  {
    std::scoped_lock lock(mu_);
    ++stats_.handshake_rejected;
  }
  support::net_health().handshake_rejected.add();
  ALPS_LOG_WARN("socket transport: rejecting inbound connection: %s",
                why.c_str());
  if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
}

void SocketTransport::poison_inbound(Inbound& conn, const std::string& why) {
  {
    std::scoped_lock lock(mu_);
    ++stats_.connections_poisoned;
  }
  support::net_health().connections_poisoned.add();
  ALPS_LOG_WARN("socket transport: poisoned connection dropped: %s",
                why.c_str());
  if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
}

void SocketTransport::reader_loop(const std::stop_token& st,
                                  std::shared_ptr<Inbound> conn) {
  support::set_current_thread_name("net/recv");
  HelloReader hello;
  std::shared_ptr<PeerLink> peer_link;  // cached after the handshake
  StreamReassembler reassembler;
  std::vector<std::uint8_t> chunk(kReadChunk);
  while (!st.stop_requested()) {
    const ssize_t n = ::read(conn->fd, chunk.data(), chunk.size());
    if (n == 0) return;  // peer closed; a torn frame dies with the stream
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    const std::uint8_t* data = chunk.data();
    std::size_t remaining = static_cast<std::size_t>(n);
    if (!conn->authed.load(std::memory_order_relaxed)) {
      // Handshake phase: nothing reaches the reassembler until a valid
      // HELLO has been consumed — an impostor never delivers a frame.
      bool complete = false;
      try {
        complete = hello.feed(data, remaining);
      } catch (const Error& e) {
        reject_inbound(*conn, std::string("bad hello: ") + e.what());
        return;
      }
      if (!complete) continue;
      std::string why;
      if (!validate_hello(hello.hello(), &why)) {
        reject_inbound(*conn, why);
        return;
      }
      peer_link = find_link(hello.hello().node);
      conn->peer.store(hello.hello().node, std::memory_order_relaxed);
      conn->authed.store(true, std::memory_order_release);
      if (remaining == 0) continue;
    }
    try {
      reassembler.feed(data, remaining);
    } catch (const Error& e) {
      // Framing is unrecoverable on a byte stream: drop the connection. The
      // peer reconnects (replaying its queue) and the retry layer re-posts
      // what mattered.
      poison_inbound(*conn, e.what());
      return;
    }
    while (auto msg = reassembler.next()) {
      const NodeId claimed = conn->peer.load(std::memory_order_relaxed);
      if (msg->src != claimed) {
        // A stream may only speak for the node its HELLO claimed.
        poison_inbound(*conn, "frame src " + std::to_string(msg->src) +
                                  " does not match handshaken node " +
                                  std::to_string(claimed));
        return;
      }
      bool severed = false;
      bool removed = false;
      if (peer_link) {
        std::scoped_lock lock(peer_link->mu);
        severed = peer_link->severed;
        removed = peer_link->removed;
      }
      if (removed) {
        // Evicted — but maybe re-admitted under a new link since.
        peer_link = find_link(claimed);
        if (peer_link) {
          std::scoped_lock lock(peer_link->mu);
          severed = peer_link->severed;
        }
      }
      if (!peer_link) {
        // Evicted mid-stream (remove_peer race backstop): the rest of this
        // connection is part of the departure.
        count_lost(1, msg->payload.size());
        if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
        return;
      }
      if (severed) {
        // A severed peer's inbound traffic is part of the same cut.
        count_lost(1, msg->payload.size());
        continue;
      }
      deliver(msg->src, std::move(msg->payload));
    }
  }
}

void SocketTransport::deliver(NodeId src, Buffer payload) {
  Handler handler;
  {
    std::scoped_lock lock(mu_);
    if (!handler_) {
      ++stats_.frames_dropped;
      return;
    }
    handler = handler_;
    ++stats_.frames_delivered;
    stats_.bytes_delivered += payload.size();
    ++active_deliveries_;
  }
  handler(src, std::move(payload));  // outside the lock: handlers may post
  {
    std::scoped_lock lock(mu_);
    --active_deliveries_;
  }
  delivery_cv_.notify_all();
}

void SocketTransport::count_lost(std::size_t frames, std::size_t bytes) {
  if (frames == 0) return;
  std::scoped_lock lock(mu_);
  stats_.frames_lost += frames;
  (void)bytes;  // loss is counted in frames; bytes_posted already includes them
}

// ---- partition / lifecycle hooks -------------------------------------------

void SocketTransport::sever(NodeId peer) {
  if (auto link = find_link(peer)) {
    std::scoped_lock lock(link->mu);
    link->severed = true;
    if (!link->queue.empty()) link->replaying = true;
    close_fd(link->fd);
    link->cv.notify_all();
  }
  // Inbound side of the cut: close streams the peer already has open.
  std::vector<std::shared_ptr<Inbound>> to_close;
  {
    std::scoped_lock lock(mu_);
    for (const auto& conn : inbound_) {
      if (conn->peer.load(std::memory_order_relaxed) == peer && conn->fd >= 0) {
        to_close.push_back(conn);
      }
    }
  }
  for (auto& conn : to_close) ::shutdown(conn->fd, SHUT_RDWR);
}

void SocketTransport::restore(NodeId peer) {
  auto link = find_link(peer);
  if (!link) return;
  std::scoped_lock lock(link->mu);
  link->severed = false;
  link->unreachable = false;
  link->backoff = std::chrono::milliseconds(0);
  link->next_attempt = std::chrono::steady_clock::now();
  link->cv.notify_all();
}

void SocketTransport::disconnect(NodeId peer) {
  auto link = find_link(peer);
  if (!link) return;
  std::scoped_lock lock(link->mu);
  close_fd(link->fd);
  link->cv.notify_all();
}

bool SocketTransport::is_partitioned(NodeId a, NodeId b) const {
  const NodeId peer = a == options_.local_node ? b : a;
  auto link = find_link(peer);
  if (!link) return false;
  std::scoped_lock lock(link->mu);
  return link->severed || link->unreachable;
}

// ---- introspection ---------------------------------------------------------

TransportStats SocketTransport::transport_stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

std::size_t SocketTransport::node_count() const {
  std::scoped_lock lock(links_mu_);
  return links_.size() + 1;
}

std::string SocketTransport::node_name(NodeId id) const {
  if (id == options_.local_node) return options_.local_name;
  std::scoped_lock lock(links_mu_);
  auto it = peer_names_.find(id);
  if (it == peer_names_.end()) {
    raise(ErrorCode::kNetwork, "unknown node id");
  }
  return it->second;
}

void SocketTransport::wait_quiescent() const {
  std::vector<std::shared_ptr<PeerLink>> links;
  {
    std::scoped_lock lock(links_mu_);
    links.reserve(links_.size());
    for (const auto& [id, link] : links_) links.push_back(link);
  }
  for (const auto& link : links) {
    std::unique_lock lock(link->mu);
    link->cv.wait(lock, [&] {
      // Parked frames (sever / backoff) count as quiescent: nothing is
      // moving until the peer comes back.
      return (link->queue.empty() && !link->sending) || link->severed ||
             link->unreachable || link->removed;
    });
  }
}

std::uint16_t SocketTransport::bound_port() const {
  return bound_port_ != 0 ? bound_port_ : options_.listen.port;
}

}  // namespace alps::net
