// RPC over the simulated network: remote entry calls and remote channels.
//
// "Calls to the entry procedures of an object are implemented as remote
// procedure calls. A user can further communicate with an executing remote
// procedure using message passing on point-to-point channels." (§1)
//
// A Node hosts kernel Objects and speaks three frame types:
//   kRequest   — (req_id, object, entry, params)   → Object::async_call
//   kResponse  — (req_id, ok, results | error)     → completes the future
//   kChanSend  — (chan_id, message)                → local channel send
//
// Channels cross the wire by name: a local channel encodes as (home node,
// id); the receiving node materializes a proxy whose sends come back as
// kChanSend frames. This is what lets a remote caller pass a reply channel
// to an executing entry procedure, exactly as the paper describes.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/call.h"
#include "core/channel.h"
#include "core/object.h"
#include "net/codec.h"
#include "net/network.h"

namespace alps::net {

class Node;

/// Client-side proxy for an object hosted on another node.
class RemoteObject {
 public:
  RemoteObject() = default;

  /// Marshals the call into a request frame; the returned handle completes
  /// when the response frame arrives.
  CallHandle async_call(const std::string& entry, ValueList params);

  ValueList call(const std::string& entry, ValueList params);

  /// Timed call for lossy/partitioned networks: nullopt on timeout, after
  /// which a late response is ignored (the request is cancelled).
  std::optional<ValueList> call_for(const std::string& entry, ValueList params,
                                    std::chrono::milliseconds timeout);

  bool valid() const { return node_ != nullptr; }

 private:
  friend class Node;
  RemoteObject(Node* node, NodeId target, std::string object_name)
      : node_(node), target_(target), object_name_(std::move(object_name)) {}

  Node* node_ = nullptr;
  NodeId target_ = 0;
  std::string object_name_;
};

class Node : public ChannelResolver {
 public:
  Node(Network& network, const std::string& name);
  ~Node() override;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Makes `object` callable from other nodes under its own name. The
  /// object must outlive the node (or be unhosted first).
  void host(Object& object);
  void unhost(const std::string& object_name);

  /// A proxy for `object_name` on node `target`.
  RemoteObject remote(NodeId target, const std::string& object_name);

  /// Exports a locally created channel so its (node, id) name can be handed
  /// out manually. Hosted-call marshalling does this automatically.
  void export_channel(const ChannelRef& channel);

  // ChannelResolver:
  std::pair<std::uint64_t, std::uint64_t> encode_channel(
      const ChannelRef& channel) override;
  ChannelRef decode_channel(std::uint64_t node, std::uint64_t id) override;

  /// Outstanding client requests (for tests).
  std::size_t inflight() const;

 private:
  friend class RemoteObject;

  enum class MsgType : std::uint8_t {
    kRequest = 1,
    kResponse = 2,
    kChanSend = 3,
  };

  void handle_frame(Frame frame);
  void handle_request(NodeId from, const std::vector<std::uint8_t>& payload,
                      std::size_t pos);
  void handle_response(const std::vector<std::uint8_t>& payload,
                       std::size_t pos);
  void handle_chan_send(const std::vector<std::uint8_t>& payload,
                        std::size_t pos);

  CallHandle send_request(NodeId target, const std::string& object_name,
                          const std::string& entry, ValueList params,
                          std::uint64_t* req_id_out = nullptr);

  /// Abandons an in-flight request: the caller's handle fails with
  /// kNetwork and a late response frame is ignored.
  void cancel_request(std::uint64_t req_id);

  Network* network_;
  NodeId id_;
  std::string name_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Object*> hosted_;
  std::unordered_map<std::uint64_t, std::shared_ptr<CallState>> pending_;
  /// Channels this node has exported (kept alive; keyed by channel id).
  std::unordered_map<std::uint64_t, ChannelRef> exported_channels_;
  /// Proxies for channels homed elsewhere, keyed by (node, id).
  std::unordered_map<std::uint64_t,
                     std::unordered_map<std::uint64_t, std::weak_ptr<ChannelCore>>>
      proxies_;
  std::uint64_t next_req_ = 1;
};

}  // namespace alps::net
