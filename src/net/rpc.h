// RPC over a Transport backend: remote entry calls and remote channels.
//
// "Calls to the entry procedures of an object are implemented as remote
// procedure calls. A user can further communicate with an executing remote
// procedure using message passing on point-to-point channels." (§1)
//
// A Node hosts kernel Objects and speaks six frame types (see codec.h for
// the wire layout):
//   kRequest   — (req_id, epoch, ack, object, entry, params) → Object::async_call
//   kResponse  — (req_id, cause, flags, results | error)     → completes the future
//   kChanSend  — (chan_id, message)                          → local channel send
//   kAck       — (ack_through)                               → dedup eviction
//   kWrongNode — (req_id, home, object, shard, map_epoch)    → stale route; re-send
//   kBatch     — (count, member frames)                      → coalesced link traffic
//
// Location transparency. Objects are addressable by name alone: the
// Network's Directory (directory.h) maps object → placement (one home, N
// shard homes, or a replica set), Node::host registers there, and the
// name-based call surface (`node.call("Dict", "Search", ...)` /
// `node.remote("Dict")`) resolves through a per-node route cache backed by
// the directory. For a sharded object the router hashes the call's first
// parameter (shard_key_hash → jump consistent hash) and targets that
// shard's home; for a read-replicated object writes go to the primary and
// reads spread across the replicas (CallOptions::read). When placement
// changes (host on the new node, then unhost on the old — the directory
// keeps an entry through that order; or a live shard split via
// add_sharded), a request that lands on a stale home earns a stateless
// kWrongNode redirect carrying the current home *for that key's shard*
// plus the answering map's epoch; the client patches the one slot of its
// cached shard map (or refreshes the whole route), re-patches the
// piggybacked ack watermark for the new link, and re-sends the *same*
// (req_id, epoch) frame — so the at-most-once dedup key survives the
// re-route, the redirect composes with retries (at most one extra hop,
// never a double execution), and resharding needs no global barrier.
//
// Frame coalescing. set_batching() buffers this node's outgoing frames per
// destination link and flushes on a size or interval bound (batch.h); the
// receiver unpacks kBatch members in order, preserving link FIFO. High
// fan-in workloads pay ~1/batch-size frames per call (bench_routing, E15).
//
// Fault tolerance. The network may drop, duplicate or reorder frames and
// sever links (see network.h). Two cooperating mechanisms restore the
// exactly-once call semantics ALPS objects assume:
//
//   * Client retries — a RetryPolicy retransmits an unanswered request with
//     exponential backoff + jitter, driven by a per-Node retry timer thread.
//     Failures surface as a typed RpcError (timeout, partitioned,
//     object-not-found, remote-error) rather than an untyped hang.
//   * Server-side at-most-once — a per-(caller, epoch) dedup table keyed by
//     req_id. A retransmission of an executed request replays the cached
//     response frame instead of re-invoking the entry body; one still in
//     flight is dropped (its response is already on the way). Entries are
//     evicted by the caller's ack watermark (piggybacked on requests and
//     sent standalone when a caller goes idle) and bounded per caller.
//
// Channels cross the wire by name: a local channel encodes as (home node,
// id); the receiving node materializes a proxy whose sends come back as
// kChanSend frames. This is what lets a remote caller pass a reply channel
// to an executing entry procedure, exactly as the paper describes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/call.h"
#include "core/channel.h"
#include "core/object.h"
#include "net/batch.h"
#include "net/codec.h"
#include "net/directory.h"
#include "net/transport.h"
#include "support/rng.h"

namespace alps::net {

class Node;

/// Why a remote call failed, as surfaced to the caller. kTimeout covers both
/// ends of the same contract: no response arrived in time, or the serving
/// kernel itself expired the call's deadline (the request header carries it)
/// and said so in a typed response.
enum class RpcCause {
  kTimeout,         ///< attempt/overall deadline passed, locally or remotely
  kPartitioned,     ///< as kTimeout, but a partition to the target is active
  kObjectNotFound,  ///< target node does not host the named object
  kRemoteError,     ///< entry body threw / no such entry / object stopped
  kCancelled,       ///< caller cancelled the request (client- or kernel-side)
  kShutdown,        ///< local node destroyed with the call outstanding
  kObjectDown,      ///< target object quarantined after a manager failure
};

const char* to_string(RpcCause cause);

/// Typed RPC failure. Derives from Error so legacy `.get()` callers that
/// catch Error keep working; new callers receive it as the error arm of
/// `Result<ValueList, RpcError>` and switch on cause().
class RpcError : public Error {
 public:
  RpcError(RpcCause cause, const std::string& what, int attempts = 1)
      : Error(code_for(cause), std::string(to_string(cause)) + ": " + what),
        cause_(cause),
        attempts_(attempts) {}

  [[noreturn]] void raise_copy() const override { throw RpcError(*this); }

  RpcCause cause() const { return cause_; }
  /// Number of transmissions made before the failure surfaced.
  int attempts() const { return attempts_; }

 private:
  /// Keeps ErrorCode and RpcCause telling the same story, so callers that
  /// only see the Error base still get the right typed code.
  static ErrorCode code_for(RpcCause cause) {
    switch (cause) {
      case RpcCause::kTimeout: return ErrorCode::kTimeout;
      case RpcCause::kCancelled: return ErrorCode::kCancelled;
      case RpcCause::kObjectDown: return ErrorCode::kObjectDown;
      default: return ErrorCode::kNetwork;
    }
  }

  RpcCause cause_;
  int attempts_;
};

/// Retransmission discipline for one call. Attempt k waits
/// `attempt_timeout`, then backs off `initial_backoff * multiplier^(k-1)`
/// (capped at `max_backoff`, ± `jitter` fraction) before retransmitting.
/// max_attempts == 0 means unlimited — retry until the overall deadline
/// (or forever if none); that is the default, because with at-most-once
/// dedup a retransmission is always safe and eventual completion is what
/// the exactly-once call semantics promise.
struct RetryPolicy {
  int max_attempts = 0;  ///< 0 = unlimited (bounded by the overall deadline)
  std::chrono::milliseconds attempt_timeout{50};
  std::chrono::milliseconds initial_backoff{10};
  double multiplier = 2.0;
  std::chrono::milliseconds max_backoff{200};
  double jitter = 0.2;  ///< fraction of the backoff, uniform ±
};

/// Per-call knobs for the redesigned call surface.
struct CallOptions {
  /// Overall deadline across all attempts; zero means none (wait forever).
  std::chrono::milliseconds deadline{0};
  /// Engaged = retransmit per the policy (server dedup keeps this safe for
  /// non-idempotent entries). Disengaged = single attempt.
  std::optional<RetryPolicy> retry;
  /// Marks the call read-only: on a read-replicated object it may be served
  /// by any replica (the router spreads reads by key hash) instead of the
  /// primary. Ignored for single-home and sharded placements.
  bool read = false;
};

/// Handle to an in-flight fault-tolerant call. result() blocks and never
/// throws for RPC-level failures — they come back as the RpcError arm.
class RpcHandle {
 public:
  RpcHandle() = default;

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ && state_->ready(); }
  void wait() const { state_->wait(); }

  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) const {
    return state_->wait_for(timeout);
  }

  /// Blocks until completion; returns results or the typed failure.
  Result<ValueList, RpcError> result();

  /// Abandons the call if still in flight: stops its retry timer, fails the
  /// handle with RpcError(kCancelled), and guarantees a late response frame
  /// is dropped (req_ids are never reused). No-op once completed. Note the
  /// entry body may still execute remotely — cancellation is client-side.
  void cancel();

  std::uint64_t req_id() const { return req_id_; }

  /// The underlying future, for interop with CallHandle-based code. Its
  /// get() rethrows the RpcError.
  CallHandle handle() const { return CallHandle(state_); }

 private:
  friend class RemoteObject;
  RpcHandle(std::shared_ptr<CallState> state, Node* node, std::uint64_t req_id)
      : state_(std::move(state)), node_(node), req_id_(req_id) {}

  std::shared_ptr<CallState> state_;
  Node* node_ = nullptr;
  std::uint64_t req_id_ = 0;
};

/// Client-side proxy for an object hosted on another node.
class RemoteObject {
 public:
  RemoteObject() = default;

  /// Fault-tolerant call: blocks (respecting opts.deadline) and returns the
  /// results or a typed RpcError. With opts.retry engaged the request is
  /// retransmitted under the policy; server dedup guarantees the entry body
  /// still executes at most once.
  Result<ValueList, RpcError> call(const std::string& entry, ValueList params,
                                   const CallOptions& opts);

  /// Asynchronous form of the same surface.
  RpcHandle async_call(const std::string& entry, ValueList params,
                       const CallOptions& opts);

  bool valid() const { return node_ != nullptr; }

 private:
  friend class Node;
  RemoteObject(Node* node, NodeId target, std::string object_name)
      : node_(node), target_(target), object_name_(std::move(object_name)) {}
  RemoteObject(Node* node, std::string object_name)
      : node_(node), by_name_(true), object_name_(std::move(object_name)) {}

  Node* node_ = nullptr;
  NodeId target_ = 0;
  bool by_name_ = false;  ///< resolve per call via route cache / directory
  std::string object_name_;
};

class Node : public ChannelResolver {
 public:
  /// Counters for the at-most-once server side (tests assert exactly-once
  /// execution through `dispatched` and the dedup counters).
  struct ServerStats {
    std::uint64_t requests_received = 0;
    std::uint64_t dispatched = 0;       ///< entry bodies actually invoked
    std::uint64_t dedup_replayed = 0;   ///< retransmissions answered from cache
    std::uint64_t dup_in_flight = 0;    ///< retransmissions of running calls
    std::uint64_t dup_acked = 0;        ///< duplicates at/below the ack mark
    std::uint64_t dedup_evicted = 0;    ///< entries evicted by ack/bound
    std::uint64_t dedup_rejected = 0;   ///< retransmissions past the bound,
                                        ///< refused typed (never re-executed)
    std::uint64_t wrong_node_redirects = 0;  ///< kWrongNode frames sent
  };

  /// Counters for the client side.
  struct ClientStats {
    std::uint64_t retransmits = 0;
    std::uint64_t failures = 0;          ///< calls surfaced as RpcError
    std::uint64_t stale_responses = 0;   ///< late/duplicate responses dropped
    std::uint64_t acks_sent = 0;
    std::uint64_t redirects = 0;         ///< requests re-routed by kWrongNode
  };

  /// Binds this node to a transport backend — the in-process simulator
  /// (net::Network) or a real socket transport (net::SocketTransport); the
  /// whole RPC surface above is backend-agnostic.
  Node(Transport& transport, const std::string& name);
  ~Node() override;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Makes `object` callable from other nodes under its own name. The
  /// object must outlive the node (or be unhosted first).
  void host(Object& object);
  void unhost(const std::string& object_name);

  /// A proxy for `object_name` on node `target`.
  RemoteObject remote(NodeId target, const std::string& object_name);

  /// Location-transparent proxy: the home node is resolved per call through
  /// this node's route cache, falling back to the cluster directory, and is
  /// corrected in-band by kWrongNode redirects after a migration.
  RemoteObject remote(const std::string& object_name);

  /// Name-based call surface — `object` is resolved as in remote(name).
  /// A name with no directory entry fails typed (kObjectNotFound) without
  /// touching the network.
  Result<ValueList, RpcError> call(const std::string& object,
                                   const std::string& entry, ValueList params,
                                   const CallOptions& opts = {});
  RpcHandle async_call(const std::string& object, const std::string& entry,
                       ValueList params, const CallOptions& opts = {});

  /// Enables per-link coalescing of this node's outgoing frames (batch.h).
  /// Configure during setup, before traffic flows: swapping the batcher
  /// while calls are in flight is not synchronized against them.
  void set_batching(const BatchOptions& options);
  /// Synchronously flushes any buffered outgoing frames (quiesce points).
  void flush_batches();
  FrameBatcher::Stats batch_stats() const;

  /// This node's cached route for `object` (tests/diagnostics).
  std::optional<NodeId> cached_route(const std::string& object) const;

  /// Exports a locally created channel so its (node, id) name can be handed
  /// out manually. Hosted-call marshalling does this automatically.
  void export_channel(const ChannelRef& channel);

  // ChannelResolver:
  std::pair<std::uint64_t, std::uint64_t> encode_channel(
      const ChannelRef& channel) override;
  ChannelRef decode_channel(std::uint64_t node, std::uint64_t id) override;

  /// Outstanding client requests (for tests).
  std::size_t inflight() const;

  ServerStats server_stats() const;
  ClientStats client_stats() const;
  /// Live at-most-once entries cached for `caller` (for eviction tests).
  std::size_t dedup_entries(NodeId caller) const;

 private:
  friend class RemoteObject;
  friend class RpcHandle;

  struct Pending {
    std::shared_ptr<CallState> state;
    NodeId target = 0;
    std::string object;                  // target object (route-cache upkeep)
    std::string label;                   // "object.entry" for diagnostics
    /// Request frame in scatter-gather form, re-sendable: a retransmit
    /// copies the builder (header arena + payload slice refcounts) instead
    /// of a full encoded frame.
    FrameBuilder frame;
    bool retry = false;
    RetryPolicy policy;
    int attempts = 1;
    int redirects = 0;                   // kWrongNode hops taken so far
    std::chrono::microseconds backoff{0};
    std::chrono::steady_clock::time_point overall_deadline;
  };

  struct DedupEntry {
    bool done = false;
    /// Cached response still in scatter-gather form — large results are
    /// held as slices shared with the original send, so caching a response
    /// for replay costs O(participants), not O(bytes).
    FrameBuilder response;
  };

  struct CallerTable {
    std::uint64_t epoch = 0;
    /// Highest req_id the caller has acked. Requests at or below this are
    /// network-level duplicates of completed calls — dropped outright, since
    /// the ack promises the caller will never want their responses again.
    std::uint64_t acked_through = 0;
    /// Highest req_id discarded by the per-caller size bound while un-acked.
    /// A retransmission at or below this mark might have executed already,
    /// so it is refused typed (kRemoteError) instead of re-dispatched —
    /// at-most-once is preserved even past the bound, at the cost of a
    /// spurious failure for a pathological (ack-less) caller.
    std::uint64_t bound_evicted_through = 0;
    std::map<std::uint64_t, DedupEntry> entries;  // ordered for watermarks
  };

  struct TimerEntry {
    std::chrono::steady_clock::time_point due;
    std::uint64_t req_id;
    bool operator>(const TimerEntry& o) const { return due > o.due; }
  };

  /// Dispatches one decoded payload (a direct frame or a kBatch member).
  /// `payload` owns its storage (the received frame), so blob params can
  /// alias it instead of copying. `batched` rejects nested kBatch envelopes.
  void dispatch_payload(NodeId from, const Buffer& payload, bool batched);
  void handle_request(NodeId from, const Buffer& payload, std::size_t pos);
  void handle_response(NodeId from, const Buffer& payload, std::size_t pos);
  void handle_chan_send(const Buffer& payload, std::size_t pos);
  void handle_ack(NodeId from, const Buffer& payload, std::size_t pos);
  void handle_wrong_node(NodeId from, const Buffer& payload, std::size_t pos);

  std::shared_ptr<CallState> start_call(NodeId target,
                                        const std::string& object_name,
                                        const std::string& entry,
                                        ValueList params,
                                        const CallOptions& opts,
                                        std::uint64_t* req_id_out,
                                        std::uint8_t flags = 0);

  /// Name-based start: resolves the home via route cache → directory. On a
  /// miss the returned state is already failed (kObjectNotFound).
  std::shared_ptr<CallState> start_named_call(const std::string& object_name,
                                              const std::string& entry,
                                              ValueList params,
                                              const CallOptions& opts,
                                              std::uint64_t* req_id_out);

  /// Sends one frame to dst — through the batcher when enabled (keeping the
  /// scatter-gather form so the envelope re-references payload slices),
  /// handed to the transport in builder form otherwise (a socket backend
  /// writes the segments directly; the sim builds once). Never called with
  /// mu_ held.
  void post_frame(NodeId dst, FrameBuilder frame);
  void post_frame(NodeId dst, std::vector<std::uint8_t> payload);

  /// The ack watermark safe to piggyback on a frame to `target`: no req_id
  /// at or below it will ever be retransmitted. Per-target progress capped
  /// by the globally smallest pending id, because a redirect can migrate an
  /// outstanding id to a different target. Caller holds mu_.
  std::uint64_t ack_watermark_locked(NodeId target) const;

  /// Enforces the per-caller dedup bound: evicts oldest *done* entries past
  /// the cap and advances bound_evicted_through. Caller holds mu_.
  void shrink_dedup_locked(CallerTable& table);

  /// Abandons an in-flight request: the caller's handle fails with
  /// RpcError(kCancelled) and a late response frame is ignored.
  void cancel_request(std::uint64_t req_id);

  void retry_loop(const std::stop_token& st);
  /// Membership-change hook (Transport listener): a departed peer's batch
  /// buffer is flushed fail-fast and its cached routes dropped.
  void on_membership(NodeId peer, bool added);
  /// Removes client bookkeeping for req_id; returns an ack frame to post
  /// (empty if none is due). Caller holds mu_.
  std::vector<std::uint8_t> finish_pending_locked(std::uint64_t req_id,
                                                  NodeId target);
  void evict_dedup_locked(CallerTable& table, std::uint64_t ack_through);

  Transport* transport_;
  NodeId id_;
  std::string name_;
  std::uint64_t epoch_;
  std::uint64_t membership_token_ = 0;  ///< Transport listener registration

  mutable std::mutex mu_;
  std::unordered_map<std::string, Object*> hosted_;
  /// Ordered so begin() is the smallest outstanding req_id — the global ack
  /// watermark a redirect-migrated id must still be protected by.
  std::map<std::uint64_t, Pending> pending_;
  /// Name → last known placement, fed by directory lookups and patched one
  /// shard slot at a time by kWrongNode redirect hints; an entry is dropped
  /// on a kObjectNotFound response from any of its homes.
  std::unordered_map<std::string, Placement> route_cache_;
  /// Outstanding req_ids per target plus the last id sent there — the two
  /// feed the ack watermark ("no id <= X will ever be retransmitted").
  std::unordered_map<NodeId, std::set<std::uint64_t>> outstanding_;
  std::unordered_map<NodeId, std::uint64_t> last_sent_;
  /// Server-side at-most-once state, keyed by caller node.
  std::unordered_map<NodeId, CallerTable> dedup_;
  /// Channels this node has exported (kept alive; keyed by channel id).
  std::unordered_map<std::uint64_t, ChannelRef> exported_channels_;
  /// Proxies for channels homed elsewhere, keyed by (node, id).
  std::unordered_map<std::uint64_t,
                     std::unordered_map<std::uint64_t, std::weak_ptr<ChannelCore>>>
      proxies_;
  std::uint64_t next_req_ = 1;
  ServerStats server_stats_;
  ClientStats client_stats_;
  support::Rng rng_;  // backoff jitter (seeded from the node name)

  /// Outgoing frame coalescing (set_batching). The owning pointer is only
  /// written at setup time; hot paths read the raw pointer with acquire
  /// ordering so posting threads never touch mu_ for the common case.
  std::unique_ptr<FrameBatcher> batcher_;
  std::atomic<FrameBatcher*> batcher_raw_{nullptr};

  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<>>
      timers_;
  std::condition_variable timer_cv_;
  std::jthread timer_thread_;
};

}  // namespace alps::net
