#include "net/directory.h"

#include <algorithm>

namespace alps::net {

namespace {

std::uint64_t splitmix64_once(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::uint32_t jump_consistent_hash(std::uint64_t key, std::uint32_t buckets) {
  if (buckets <= 1) return 0;
  std::int64_t b = -1, j = 0;
  while (j < static_cast<std::int64_t>(buckets)) {
    b = j;
    key = key * 2862933555777941757ull + 1;
    j = static_cast<std::int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(1ll << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<std::uint32_t>(b);
}

std::uint64_t shard_key_hash(const Value& key) {
  switch (key.kind()) {
    case ValueKind::kString: {
      const auto sv = key.string_view();
      return fnv1a(sv.data(), sv.size());
    }
    case ValueKind::kBlob: {
      const Buffer& b = key.as_blob();
      return fnv1a(b.data(), b.size());
    }
    case ValueKind::kInt:
      return splitmix64_once(static_cast<std::uint64_t>(key.as_int()));
    case ValueKind::kBool:
      return splitmix64_once(key.as_bool() ? 1 : 0);
    case ValueKind::kReal: {
      const double d = key.as_real();
      std::uint64_t bits;
      static_assert(sizeof bits == sizeof d);
      __builtin_memcpy(&bits, &d, sizeof bits);
      return splitmix64_once(bits);
    }
    default: {
      // Lists/channels/nil are unusual shard keys; fall back to the debug
      // rendering, which is deterministic for lists of the kinds above.
      const std::string s = key.to_string();
      return fnv1a(s.data(), s.size());
    }
  }
}

bool Placement::contains(NodeId id) const {
  return std::find(homes.begin(), homes.end(), id) != homes.end();
}

std::uint32_t Placement::shard_of(std::uint64_t key_hash) const {
  if (mode != PlacementMode::kSharded) return kNoShard;
  return jump_consistent_hash(key_hash,
                              static_cast<std::uint32_t>(homes.size()));
}

NodeId Placement::route(std::uint64_t key_hash, bool read) const {
  switch (mode) {
    case PlacementMode::kSingle:
      return homes.front();
    case PlacementMode::kSharded:
      return homes[jump_consistent_hash(
          key_hash, static_cast<std::uint32_t>(homes.size()))];
    case PlacementMode::kReplicated:
      if (!read) return homes.front();
      return homes[jump_consistent_hash(
          key_hash, static_cast<std::uint32_t>(homes.size()))];
  }
  return homes.front();
}

std::uint64_t Directory::next_epoch_locked(const std::string& object) const {
  std::uint64_t e = 0;
  if (auto it = map_.find(object); it != map_.end()) e = it->second.epoch;
  if (auto it = epoch_floor_.find(object); it != epoch_floor_.end()) {
    e = std::max(e, it->second);
  }
  return e + 1;
}

void Directory::erase_locked(const std::string& object) {
  auto it = map_.find(object);
  if (it == map_.end()) return;
  epoch_floor_[object] = it->second.epoch;
  map_.erase(it);
}

void Directory::add(const std::string& object, NodeId home) {
  std::scoped_lock lock(mu_);
  auto it = map_.find(object);
  // A shard/replica server re-registering its local object must not
  // collapse the cluster's multi-home map to itself.
  if (it != map_.end() && it->second.mode != PlacementMode::kSingle &&
      it->second.contains(home)) {
    return;
  }
  Placement p;
  p.mode = PlacementMode::kSingle;
  p.homes = {home};
  p.epoch = next_epoch_locked(object);
  map_[object] = std::move(p);
}

void Directory::add_sharded(const std::string& object,
                            std::vector<NodeId> homes) {
  if (homes.empty()) return;
  std::scoped_lock lock(mu_);
  Placement p;
  p.mode = PlacementMode::kSharded;
  p.homes = std::move(homes);
  p.epoch = next_epoch_locked(object);
  map_[object] = std::move(p);
}

void Directory::set_shard_home(const std::string& object, std::uint32_t shard,
                               NodeId home) {
  std::scoped_lock lock(mu_);
  auto it = map_.find(object);
  if (it == map_.end() || it->second.mode != PlacementMode::kSharded ||
      shard >= it->second.homes.size()) {
    return;
  }
  it->second.homes[shard] = home;
  it->second.epoch = next_epoch_locked(object);
}

void Directory::add_replicated(const std::string& object, NodeId primary,
                               std::vector<NodeId> replicas) {
  std::scoped_lock lock(mu_);
  Placement p;
  p.mode = PlacementMode::kReplicated;
  p.homes.reserve(replicas.size() + 1);
  p.homes.push_back(primary);
  for (NodeId r : replicas) {
    if (r != primary) p.homes.push_back(r);
  }
  p.epoch = next_epoch_locked(object);
  map_[object] = std::move(p);
}

void Directory::remove(const std::string& object, NodeId home) {
  std::scoped_lock lock(mu_);
  auto it = map_.find(object);
  if (it == map_.end() || !it->second.contains(home)) return;
  Placement& p = it->second;
  switch (p.mode) {
    case PlacementMode::kSingle:
      erase_locked(object);
      return;
    case PlacementMode::kSharded: {
      // Survivors absorb the departed home's shard slots. The absorber is
      // picked by jump hash over the slot index so every directory replica
      // that demotes the same home converges on the same map.
      std::vector<NodeId> survivors;
      for (NodeId h : p.homes) {
        if (h != home) survivors.push_back(h);
      }
      if (survivors.empty()) {
        erase_locked(object);
        return;
      }
      for (std::size_t i = 0; i < p.homes.size(); ++i) {
        if (p.homes[i] != home) continue;
        p.homes[i] = survivors[jump_consistent_hash(
            splitmix64_once(i), static_cast<std::uint32_t>(survivors.size()))];
      }
      p.epoch = next_epoch_locked(object);
      return;
    }
    case PlacementMode::kReplicated: {
      // Drop the home; if it was the primary, the first surviving replica
      // is promoted (homes[0] is the write target by construction).
      std::erase(p.homes, home);
      if (p.homes.empty()) {
        erase_locked(object);
        return;
      }
      p.epoch = next_epoch_locked(object);
      return;
    }
  }
}

std::size_t Directory::remove_node(NodeId home) {
  std::vector<std::string> touched;
  {
    std::scoped_lock lock(mu_);
    for (const auto& [name, p] : map_) {
      if (p.contains(home)) touched.push_back(name);
    }
  }
  // remove() re-takes the lock per entry; eviction is rare and cold.
  for (const auto& name : touched) remove(name, home);
  return touched.size();
}

std::optional<NodeId> Directory::lookup(const std::string& object) const {
  std::scoped_lock lock(mu_);
  auto it = map_.find(object);
  if (it == map_.end()) return std::nullopt;
  return it->second.primary();
}

std::optional<Placement> Directory::placement(const std::string& object) const {
  std::scoped_lock lock(mu_);
  auto it = map_.find(object);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::optional<Directory::RouteDecision> Directory::route(
    const std::string& object, std::uint64_t key_hash, bool read,
    NodeId self) const {
  std::scoped_lock lock(mu_);
  auto it = map_.find(object);
  if (it == map_.end()) return std::nullopt;
  const Placement& p = it->second;
  RouteDecision d;
  d.home = p.route(key_hash, read);
  d.shard = p.shard_of(key_hash);
  d.epoch = p.epoch;
  d.mode = p.mode;
  d.member = p.contains(self);
  return d;
}

std::size_t Directory::size() const {
  std::scoped_lock lock(mu_);
  return map_.size();
}

std::vector<std::string> Directory::objects() const {
  std::scoped_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(map_.size());
  for (const auto& [name, home] : map_) out.push_back(name);
  return out;
}

}  // namespace alps::net
