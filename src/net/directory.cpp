#include "net/directory.h"

namespace alps::net {

void Directory::add(const std::string& object, NodeId home) {
  std::scoped_lock lock(mu_);
  map_[object] = home;
}

void Directory::remove(const std::string& object, NodeId home) {
  std::scoped_lock lock(mu_);
  auto it = map_.find(object);
  if (it != map_.end() && it->second == home) map_.erase(it);
}

std::size_t Directory::remove_node(NodeId home) {
  std::scoped_lock lock(mu_);
  return std::erase_if(map_,
                       [home](const auto& kv) { return kv.second == home; });
}

std::optional<NodeId> Directory::lookup(const std::string& object) const {
  std::scoped_lock lock(mu_);
  auto it = map_.find(object);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::size_t Directory::size() const {
  std::scoped_lock lock(mu_);
  return map_.size();
}

std::vector<std::string> Directory::objects() const {
  std::scoped_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(map_.size());
  for (const auto& [name, home] : map_) out.push_back(name);
  return out;
}

}  // namespace alps::net
