// SocketTransport — real TCP / Unix-domain-socket transport between
// OS processes.
//
// The other half of the Transport seam (transport.h): where net::Network
// simulates the paper's transputer links in one address space, this
// implementation actually crosses the OS boundary, so "calls to the entry
// procedures of an object are implemented as remote procedure calls" (§1)
// holds between separate processes on separate nodes. The RPC stack above
// (rpc.h) runs unchanged on either backend.
//
// Cluster model. Each process is told its own NodeId, a listen address, and
// the address of every initial peer (SocketTransportOptions); add_peer /
// remove_peer then change the peer set on the live transport — PeerLinks and
// reader threads spin up and down without quiescing (DESIGN.md §4.11). One
// SocketTransport serves exactly one local node — processes are the unit of
// distribution here, unlike the sim's many-nodes-in-one-process model.
//
// Connection lifecycle.
//   * A listener thread accepts inbound connections. Before any frame is
//     dispatched, the connection must present a valid HELLO (codec.h):
//     right magic, matching protocol version, matching cluster token, and a
//     claimed NodeId in the current peer set. Anything else is counted
//     (handshake_rejected), logged, and disconnected — an impostor never
//     feeds the reassembler. After the handshake, a reader thread
//     reassembles length-prefixed stream frames (StreamReassembler) and
//     dispatches them; a frame whose src differs from the handshaken id, or
//     a corrupt length field, poisons the connection (connections_poisoned)
//     and tears it down. Frame payloads arrive as owned Buffers, so ≥256 B
//     blob decodes alias the receive buffer exactly as they alias a
//     simulated delivery.
//   * Outbound links are created on demand: the first post() towards a peer
//     starts its sender thread, which connects lazily (sending its own
//     HELLO first) and reconnects with exponential backoff after failures.
//     While a peer is down, queued frames survive up to the retransmit
//     budget (frames and bytes) and replay in order on reconnect — a TCP
//     blip no longer needs the RPC layer's full backoff round-trip. Frames
//     past the budget are counted lost and dropped, per the datagram
//     contract the RPC retry layer already converges under.
//   * sever()/restore() are the real-transport analog of a sim partition:
//     sever tears the connection down and holds (budget-bounded) outbound
//     frames until restore replays them; is_partitioned() reports the cut
//     so RPC failures are typed kPartitioned. ~SocketTransport tears down
//     every connection after a best-effort drain of queued frames.
//
// Zero-copy send path. post(src, dst, FrameBuilder) never builds the frame:
// the sender thread hands the builder's scatter-gather segment list to
// sendmsg() (writev semantics) behind the 12-byte stream header, so the
// data plane's `bytes_assembled` counter stays at zero for every frame this
// transport sends — the slices' single remaining copy happens inside the
// kernel, on the way to the wire.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/codec.h"
#include "net/directory.h"
#include "net/transport.h"

namespace alps::net {

/// One endpoint: either TCP (host:port) or a Unix-domain socket path.
struct SocketAddress {
  std::string host;         ///< TCP peer address; empty for Unix sockets
  std::uint16_t port = 0;   ///< TCP port; 0 asks the OS to pick (listen only)
  std::string path;         ///< Unix socket path; empty for TCP

  static SocketAddress tcp(std::string host, std::uint16_t port) {
    SocketAddress a;
    a.host = std::move(host);
    a.port = port;
    return a;
  }
  static SocketAddress unix_path(std::string path) {
    SocketAddress a;
    a.path = std::move(path);
    return a;
  }
  bool is_unix() const { return !path.empty(); }
  std::string to_string() const;
  /// Inverse of to_string: "unix:<path>" or "host:port" (last ':' splits).
  /// Raises kNetwork on anything unparseable.
  static SocketAddress parse(const std::string& text);
};

struct SocketPeer {
  NodeId id = 0;
  std::string name;
  SocketAddress address;
};

struct SocketTransportOptions {
  NodeId local_node = 0;
  std::string local_name;
  SocketAddress listen;
  std::vector<SocketPeer> peers;  ///< the rest of the static cluster
  /// Reconnect backoff after a failed connect: doubles from initial to max.
  std::chrono::milliseconds connect_backoff_initial{20};
  std::chrono::milliseconds connect_backoff_max{1000};
  /// Per-connect-attempt timeout (non-blocking connect + poll).
  std::chrono::milliseconds connect_timeout{1000};
  /// Bound on frames buffered towards one peer; overflow is counted lost
  /// and dropped (a real NIC queue tail-drops the same way).
  std::size_t max_queued_per_peer = 4096;
  /// While a peer is down (severed, or a connect round failed), at most this
  /// many frames / payload bytes wait for the reconnect and replay in order;
  /// the excess tail-drops as frames_lost. Both bounds apply.
  std::size_t retransmit_budget_frames = 1024;
  std::size_t retransmit_budget_bytes = 4u << 20;
  /// Pre-shared cluster secret carried in the HELLO; an inbound connection
  /// with a different token is rejected before any frame is dispatched.
  /// Empty means "no token required" — but both sides must agree on empty.
  std::string cluster_token;
  /// Wire protocol version claimed and required. Overridable only so tests
  /// can manufacture a version-mismatch rejection.
  std::uint32_t protocol_version = kHelloVersion;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportOptions options);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Returns the preconfigured local node id. One local node per transport;
  /// a second registration raises kNetwork.
  NodeId add_node(const std::string& name) override;

  void set_handler(NodeId node, Handler handler) override;

  void post(Frame frame) override;
  /// Scatter-gather post: queued in builder form; the sender thread writes
  /// the segment list directly (sendmsg), never assembling the frame.
  void post(NodeId src, NodeId dst, const FrameBuilder& frame) override;

  TransportStats transport_stats() const override;
  Directory& directory() override { return directory_; }

  /// True while `sever` is in force for the peer, or its connection is down
  /// and in reconnect backoff after a failure.
  bool is_partitioned(NodeId a, NodeId b) const override;

  std::size_t node_count() const override;
  std::string node_name(NodeId id) const override;

  /// Blocks until every peer's send queue is drained and no write is in
  /// flight. Send-side only: bytes in kernel buffers or the peer process
  /// are beyond this transport's knowledge (DESIGN.md §4.10).
  void wait_quiescent() const override;

  /// Real-transport partition: closes the connection to `peer` and fails
  /// every receive for that peer until restore(). Outbound frames posted
  /// during the cut are held up to the retransmit budget and replay in
  /// order on restore; past-budget frames are counted lost. The RPC layer
  /// sees is_partitioned() and types failures kPartitioned, exactly as
  /// under a sim cut.
  void sever(NodeId peer);
  void restore(NodeId peer);

  /// Dynamic membership (DESIGN.md §4.11): admit / evict a peer on the live
  /// transport. add_peer is idempotent per id; remove_peer joins the peer's
  /// sender, drops its queue as lost, tears down its inbound connections and
  /// purges its directory entries.
  void add_peer(const SocketPeer& peer);
  void add_peer(NodeId id, const std::string& name,
                const std::string& address) override;
  bool remove_peer(NodeId id) override;

  /// Closes the outbound connection to `peer` (it reconnects on demand on
  /// the next post). Unhost/teardown hook and a reconnect test handle.
  void disconnect(NodeId peer);

  /// The port the listener actually bound (TCP with port 0); the configured
  /// port otherwise.
  std::uint16_t bound_port() const;

 private:
  /// Outbound link to one peer: lazily-started sender thread, its queue,
  /// and the connection state machine (disconnected → connecting →
  /// connected, with backoff between failed rounds).
  struct PeerLink {
    NodeId id = 0;
    SocketAddress address;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<FrameBuilder> queue;
    std::size_t queue_bytes = 0;  ///< payload bytes across `queue`
    int fd = -1;
    bool severed = false;
    bool sending = false;       ///< a frame is between pop and wire
    bool unreachable = false;   ///< last connect round failed (in backoff)
    bool removed = false;       ///< evicted by remove_peer; terminal
    bool replaying = false;     ///< queue survived a dead connection
    std::chrono::milliseconds backoff{0};
    std::chrono::steady_clock::time_point next_attempt{};
    // Last member on purpose: ~jthread (request_stop + join) runs first, so
    // the sender never outlives mu/cv above it.
    std::jthread sender;
  };

  /// One accepted inbound connection and its reader thread.
  struct Inbound {
    int fd = -1;
    /// NodeId the HELLO claimed; 0 until `authed`. Atomics because sever /
    /// remove_peer scan these from other threads while the reader runs.
    std::atomic<NodeId> peer{0};
    std::atomic<bool> authed{false};
    std::jthread reader;
  };

  void listen_loop(const std::stop_token& st);
  void reader_loop(const std::stop_token& st, std::shared_ptr<Inbound> conn);
  void sender_loop(const std::stop_token& st, PeerLink* link);
  /// Connects link->fd (non-blocking + poll timeout). Returns false and
  /// arms the backoff on failure. Caller holds link->mu.
  bool connect_locked(PeerLink& link);
  /// Arms the exponential reconnect backoff (same schedule as a failed
  /// connect round). Caller holds link.mu.
  void arm_backoff_locked(PeerLink& link);
  /// Tail-drops frames past the retransmit budget, counting them lost.
  /// Caller holds link.mu.
  void trim_queue_locked(PeerLink& link);
  /// Parks the queue for in-order replay after a blip (cut, failed connect
  /// round, or a connection dying mid-send) and trims it to the retransmit
  /// budget. The single choke point for "parked then dropped": a parked
  /// frame leaves the queue through exactly one of this trim, a teardown
  /// drain, or remove_peer — each of which counts it lost exactly once.
  /// Caller holds link.mu.
  void park_and_trim_locked(PeerLink& link);
  /// Sends one frame over the link's fd as header + scatter segments.
  bool send_frame(int fd, const FrameBuilder& frame);
  /// Writes our HELLO as the first bytes of a fresh connection.
  bool send_hello(int fd);
  /// Allowlist check: version, token, claimed node known and not us.
  bool validate_hello(const HelloFrame& hello, std::string* why) const;
  /// Counts + logs a pre-dispatch rejection / post-handshake poisoning and
  /// shuts the connection down.
  void reject_inbound(Inbound& conn, const std::string& why);
  void poison_inbound(Inbound& conn, const std::string& why);
  void deliver(NodeId src, Buffer payload);
  void enqueue(NodeId dst, FrameBuilder frame);
  void count_lost(std::size_t frames, std::size_t bytes);
  /// Snapshot lookup; the returned shared_ptr keeps the link alive across a
  /// racing remove_peer.
  std::shared_ptr<PeerLink> find_link(NodeId id) const;

  SocketTransportOptions options_;
  std::vector<std::uint8_t> hello_bytes_;  ///< our encoded HELLO, immutable
  Directory directory_;

  mutable std::mutex mu_;
  Handler handler_;
  bool have_node_ = false;
  int active_deliveries_ = 0;
  mutable std::condition_variable delivery_cv_;
  TransportStats stats_;

  /// Peer set. Guarded by links_mu_ (map shape + names); each link's own
  /// state is under its PeerLink::mu. Lock order: links_mu_ or link->mu may
  /// each be followed by mu_, never the reverse.
  mutable std::mutex links_mu_;
  std::unordered_map<NodeId, std::shared_ptr<PeerLink>> links_;
  std::unordered_map<NodeId, std::string> peer_names_;

  std::vector<std::shared_ptr<Inbound>> inbound_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::jthread listener_;
};

}  // namespace alps::net
