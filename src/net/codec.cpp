#include "net/codec.h"

#include <cstring>

#include "core/error.h"

namespace alps::net {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

namespace {
void need(const std::vector<std::uint8_t>& in, std::size_t pos, std::size_t n) {
  if (pos + n > in.size()) {
    raise(ErrorCode::kBadMessage, "truncated frame");
  }
}
}  // namespace

std::uint8_t get_u8(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  need(in, pos, 1);
  return in[pos++];
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  need(in, pos, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[pos++]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  need(in, pos, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[pos++]) << (8 * i);
  return v;
}

std::string get_string(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  const std::uint32_t n = get_u32(in, pos);
  need(in, pos, n);
  std::string s(reinterpret_cast<const char*>(in.data() + pos), n);
  pos += n;
  return s;
}

void encode_request_header(const RequestHeader& h,
                           std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(MsgType::kRequest));
  put_u64(out, h.req_id);
  put_u64(out, h.epoch);
  put_u64(out, h.ack_through);
  put_u64(out, h.deadline_ms);
  put_string(out, h.object);
  put_string(out, h.entry);
}

RequestHeader decode_request_header(const std::vector<std::uint8_t>& in,
                                    std::size_t& pos) {
  RequestHeader h;
  h.req_id = get_u64(in, pos);
  h.epoch = get_u64(in, pos);
  h.ack_through = get_u64(in, pos);
  h.deadline_ms = get_u64(in, pos);
  h.object = get_string(in, pos);
  h.entry = get_string(in, pos);
  return h;
}

void encode_response_header(const ResponseHeader& h,
                            std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(MsgType::kResponse));
  put_u64(out, h.req_id);
  put_u8(out, static_cast<std::uint8_t>(h.cause));
  put_u8(out, h.flags);
}

ResponseHeader decode_response_header(const std::vector<std::uint8_t>& in,
                                      std::size_t& pos) {
  ResponseHeader h;
  h.req_id = get_u64(in, pos);
  const std::uint8_t cause = get_u8(in, pos);
  if (cause > static_cast<std::uint8_t>(WireCause::kObjectDown)) {
    raise(ErrorCode::kBadMessage, "unknown response cause");
  }
  h.cause = static_cast<WireCause>(cause);
  h.flags = get_u8(in, pos);
  return h;
}

void encode_wrong_node(const WrongNodeHeader& h,
                       std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(MsgType::kWrongNode));
  put_u64(out, h.req_id);
  put_u64(out, h.home);
  put_string(out, h.object);
}

WrongNodeHeader decode_wrong_node(const std::vector<std::uint8_t>& in,
                                  std::size_t& pos) {
  WrongNodeHeader h;
  h.req_id = get_u64(in, pos);
  h.home = get_u64(in, pos);
  h.object = get_string(in, pos);
  return h;
}

void encode_batch(const std::vector<std::vector<std::uint8_t>>& members,
                  std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(MsgType::kBatch));
  put_u32(out, static_cast<std::uint32_t>(members.size()));
  for (const auto& m : members) {
    put_u32(out, static_cast<std::uint32_t>(m.size()));
    out.insert(out.end(), m.begin(), m.end());
  }
}

std::vector<std::vector<std::uint8_t>> decode_batch(
    const std::vector<std::uint8_t>& in, std::size_t& pos) {
  const std::uint32_t n = get_u32(in, pos);
  // Each member costs at least its 4-byte length prefix plus a type byte;
  // a count beyond the remaining bytes is a corrupt frame, not a reserve().
  if (n > in.size() - pos) {
    raise(ErrorCode::kBadMessage, "batch count exceeds frame size");
  }
  std::vector<std::vector<std::uint8_t>> members;
  members.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t len = get_u32(in, pos);
    if (len == 0) {
      raise(ErrorCode::kBadMessage, "empty batch member");
    }
    need(in, pos, len);
    members.emplace_back(in.begin() + static_cast<std::ptrdiff_t>(pos),
                         in.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  return members;
}

void encode_ack(std::uint64_t ack_through, std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(MsgType::kAck));
  put_u64(out, ack_through);
}

std::uint64_t decode_ack(const std::vector<std::uint8_t>& in,
                         std::size_t& pos) {
  return get_u64(in, pos);
}

void encode_value(const Value& v, std::vector<std::uint8_t>& out,
                  ChannelResolver* resolver) {
  put_u8(out, static_cast<std::uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kNil:
      return;
    case ValueKind::kBool:
      put_u8(out, v.as_bool() ? 1 : 0);
      return;
    case ValueKind::kInt:
      put_u64(out, static_cast<std::uint64_t>(v.as_int()));
      return;
    case ValueKind::kReal: {
      std::uint64_t bits;
      const double d = v.as_real();
      std::memcpy(&bits, &d, sizeof bits);
      put_u64(out, bits);
      return;
    }
    case ValueKind::kString:
      put_string(out, v.as_string());
      return;
    case ValueKind::kBlob: {
      const Blob& b = v.as_blob();
      put_u32(out, static_cast<std::uint32_t>(b.size()));
      out.insert(out.end(), b.begin(), b.end());
      return;
    }
    case ValueKind::kList: {
      const ValueList& list = v.as_list();
      put_u32(out, static_cast<std::uint32_t>(list.size()));
      for (const auto& x : list) encode_value(x, out, resolver);
      return;
    }
    case ValueKind::kChannel: {
      if (!resolver) {
        raise(ErrorCode::kBadMessage,
              "channel in value but no channel resolver supplied");
      }
      auto [node, id] = resolver->encode_channel(v.as_channel());
      put_u64(out, node);
      put_u64(out, id);
      return;
    }
  }
  raise(ErrorCode::kBadMessage, "unencodable value kind");
}

Value decode_value(const std::vector<std::uint8_t>& in, std::size_t& pos,
                   ChannelResolver* resolver) {
  const auto kind = static_cast<ValueKind>(get_u8(in, pos));
  switch (kind) {
    case ValueKind::kNil:
      return Value();
    case ValueKind::kBool:
      return Value(get_u8(in, pos) != 0);
    case ValueKind::kInt:
      return Value(static_cast<std::int64_t>(get_u64(in, pos)));
    case ValueKind::kReal: {
      const std::uint64_t bits = get_u64(in, pos);
      double d;
      std::memcpy(&d, &bits, sizeof d);
      return Value(d);
    }
    case ValueKind::kString:
      return Value(get_string(in, pos));
    case ValueKind::kBlob: {
      const std::uint32_t n = get_u32(in, pos);
      need(in, pos, n);
      Blob b(in.begin() + static_cast<std::ptrdiff_t>(pos),
             in.begin() + static_cast<std::ptrdiff_t>(pos + n));
      pos += n;
      return Value(std::move(b));
    }
    case ValueKind::kList: {
      const std::uint32_t n = get_u32(in, pos);
      // Every encoded value occupies at least its 1-byte tag; a count that
      // exceeds the remaining bytes is a corrupt (or malicious) frame. This
      // check is what keeps a flipped count byte from becoming a multi-GiB
      // reserve() — a decode bomb.
      if (n > in.size() - pos) {
        raise(ErrorCode::kBadMessage, "list count exceeds frame size");
      }
      ValueList list;
      list.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        list.push_back(decode_value(in, pos, resolver));
      }
      return Value(std::move(list));
    }
    case ValueKind::kChannel: {
      if (!resolver) {
        raise(ErrorCode::kBadMessage,
              "channel in value but no channel resolver supplied");
      }
      const std::uint64_t node = get_u64(in, pos);
      const std::uint64_t id = get_u64(in, pos);
      return Value(resolver->decode_channel(node, id));
    }
  }
  raise(ErrorCode::kBadMessage, "unknown value tag");
}

void encode_list(const ValueList& list, std::vector<std::uint8_t>& out,
                 ChannelResolver* resolver) {
  put_u32(out, static_cast<std::uint32_t>(list.size()));
  for (const auto& v : list) encode_value(v, out, resolver);
}

ValueList decode_list(const std::vector<std::uint8_t>& in, std::size_t& pos,
                      ChannelResolver* resolver) {
  const std::uint32_t n = get_u32(in, pos);
  if (n > in.size() - pos) {
    raise(ErrorCode::kBadMessage, "list count exceeds frame size");
  }
  ValueList list;
  list.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    list.push_back(decode_value(in, pos, resolver));
  }
  return list;
}

}  // namespace alps::net
