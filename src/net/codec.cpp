#include "net/codec.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "core/error.h"
#include "support/stats.h"

namespace alps::net {

namespace {

std::atomic<bool> g_zero_copy{true};

/// Truncation guard, written so an attacker-controlled length field can
/// never overflow the comparison: `n` is checked against the *remaining*
/// bytes, not added to `pos` first.
void need(const Buffer& in, std::size_t pos, std::size_t n) {
  if (pos > in.size() || n > in.size() - pos) {
    raise(ErrorCode::kBadMessage, "truncated frame");
  }
}

}  // namespace

void set_zero_copy_data_plane(bool enabled) {
  g_zero_copy.store(enabled, std::memory_order_relaxed);
}

bool zero_copy_data_plane() {
  return g_zero_copy.load(std::memory_order_relaxed);
}

// ---- primitives ------------------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::uint8_t get_u8(const Buffer& in, std::size_t& pos) {
  need(in, pos, 1);
  return in[pos++];
}

std::uint32_t get_u32(const Buffer& in, std::size_t& pos) {
  need(in, pos, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[pos++]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const Buffer& in, std::size_t& pos) {
  need(in, pos, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[pos++]) << (8 * i);
  return v;
}

std::string get_string(const Buffer& in, std::size_t& pos) {
  const std::uint32_t n = get_u32(in, pos);
  need(in, pos, n);
  std::string s(reinterpret_cast<const char*>(in.data() + pos), n);
  pos += n;
  return s;
}

// ---- FrameBuilder ----------------------------------------------------------

FrameBuilder FrameBuilder::from_bytes(std::vector<std::uint8_t> bytes) {
  FrameBuilder fb;
  fb.size_ = bytes.size();
  fb.arena_ = std::move(bytes);
  return fb;
}

void FrameBuilder::put_u8(std::uint8_t v) {
  arena_.push_back(v);
  ++size_;
}

void FrameBuilder::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    arena_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  size_ += 4;
}

void FrameBuilder::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    arena_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  size_ += 8;
}

void FrameBuilder::put_string(const std::string& s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  put_bytes(s.data(), s.size());
}

void FrameBuilder::put_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  arena_.insert(arena_.end(), p, p + n);
  size_ += n;
}

void FrameBuilder::append_slice(const Buffer& slice) {
  if (!zero_copy_data_plane() || !slice.owned() ||
      slice.size() < kZeroCopySliceThreshold) {
    put_bytes(slice.data(), slice.size());
    return;
  }
  slices_.push_back(Slice{arena_.size(), slice});
  size_ += slice.size();
}

void FrameBuilder::append(const FrameBuilder& other) {
  std::size_t consumed = 0;
  for (const auto& s : other.slices_) {
    put_bytes(other.arena_.data() + consumed, s.arena_prefix - consumed);
    consumed = s.arena_prefix;
    slices_.push_back(Slice{arena_.size(), s.bytes});
    size_ += s.bytes.size();
  }
  put_bytes(other.arena_.data() + consumed, other.arena_.size() - consumed);
  // The arena re-copy is a real intermediate copy; remember it so the
  // accounting at build() does not under-report envelope assembly.
  copied_extra_ += other.arena_.size() + other.copied_extra_;
}

void FrameBuilder::patch_u64(std::size_t offset, std::uint64_t v) {
  if (offset + 8 > patchable_prefix()) {
    raise(ErrorCode::kBadMessage, "frame patch outside header arena");
  }
  for (int i = 0; i < 8; ++i) {
    arena_[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void FrameBuilder::patch_u8_or(std::size_t offset, std::uint8_t bits) {
  if (offset >= patchable_prefix()) {
    raise(ErrorCode::kBadMessage, "frame patch outside header arena");
  }
  arena_[offset] |= bits;
}

void FrameBuilder::build_into(std::vector<std::uint8_t>& out) const {
  out.reserve(out.size() + size_);
  std::size_t consumed = 0;
  std::size_t referenced = 0;
  for (const auto& s : slices_) {
    out.insert(out.end(), arena_.begin() + static_cast<std::ptrdiff_t>(consumed),
               arena_.begin() + static_cast<std::ptrdiff_t>(s.arena_prefix));
    consumed = s.arena_prefix;
    out.insert(out.end(), s.bytes.begin(), s.bytes.end());
    referenced += s.bytes.size();
  }
  out.insert(out.end(), arena_.begin() + static_cast<std::ptrdiff_t>(consumed),
             arena_.end());
  auto& dp = support::data_plane();
  dp.bytes_copied.add(arena_.size() + copied_extra_);
  dp.bytes_referenced.add(referenced);
  dp.frames_assembled.add(1);
  dp.bytes_assembled.add(size_);
}

std::vector<std::uint8_t> FrameBuilder::build() const {
  std::vector<std::uint8_t> out;
  build_into(out);
  return out;
}

void FrameBuilder::segments(std::vector<Segment>& out) const {
  std::size_t consumed = 0;
  for (const auto& s : slices_) {
    if (s.arena_prefix > consumed) {
      out.push_back(Segment{arena_.data() + consumed, s.arena_prefix - consumed});
    }
    consumed = s.arena_prefix;
    if (!s.bytes.empty()) {
      out.push_back(Segment{s.bytes.data(), s.bytes.size()});
    }
  }
  if (arena_.size() > consumed) {
    out.push_back(Segment{arena_.data() + consumed, arena_.size() - consumed});
  }
}

void FrameBuilder::note_sent_scattered() const {
  std::size_t referenced = 0;
  for (const auto& s : slices_) referenced += s.bytes.size();
  auto& dp = support::data_plane();
  dp.bytes_copied.add(arena_.size() + copied_extra_);
  dp.bytes_referenced.add(referenced);
  dp.frames_assembled.add(1);
  // bytes_assembled deliberately stays put: the scatter list went to the
  // wire as-is, the final gather never happened.
}

// ---- frame headers ---------------------------------------------------------

void encode_request_header(const RequestHeader& h, FrameBuilder& out) {
  out.put_u8(static_cast<std::uint8_t>(MsgType::kRequest));
  out.put_u64(h.req_id);
  out.put_u64(h.epoch);
  out.put_u64(h.ack_through);
  out.put_u64(h.deadline_ms);
  out.put_u8(h.flags);
  out.put_string(h.object);
  out.put_string(h.entry);
}

void encode_request_header(const RequestHeader& h,
                           std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(MsgType::kRequest));
  put_u64(out, h.req_id);
  put_u64(out, h.epoch);
  put_u64(out, h.ack_through);
  put_u64(out, h.deadline_ms);
  put_u8(out, h.flags);
  put_string(out, h.object);
  put_string(out, h.entry);
}

RequestHeader decode_request_header(const Buffer& in, std::size_t& pos) {
  RequestHeader h;
  h.req_id = get_u64(in, pos);
  h.epoch = get_u64(in, pos);
  h.ack_through = get_u64(in, pos);
  h.deadline_ms = get_u64(in, pos);
  h.flags = get_u8(in, pos);
  h.object = get_string(in, pos);
  h.entry = get_string(in, pos);
  return h;
}

void encode_response_header(const ResponseHeader& h, FrameBuilder& out) {
  out.put_u8(static_cast<std::uint8_t>(MsgType::kResponse));
  out.put_u64(h.req_id);
  out.put_u8(static_cast<std::uint8_t>(h.cause));
  out.put_u8(h.flags);
}

void encode_response_header(const ResponseHeader& h,
                            std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(MsgType::kResponse));
  put_u64(out, h.req_id);
  put_u8(out, static_cast<std::uint8_t>(h.cause));
  put_u8(out, h.flags);
}

ResponseHeader decode_response_header(const Buffer& in, std::size_t& pos) {
  ResponseHeader h;
  h.req_id = get_u64(in, pos);
  const std::uint8_t cause = get_u8(in, pos);
  if (cause > static_cast<std::uint8_t>(WireCause::kObjectDown)) {
    raise(ErrorCode::kBadMessage, "unknown response cause");
  }
  h.cause = static_cast<WireCause>(cause);
  h.flags = get_u8(in, pos);
  return h;
}

void encode_wrong_node(const WrongNodeHeader& h,
                       std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(MsgType::kWrongNode));
  put_u64(out, h.req_id);
  put_u64(out, h.home);
  put_string(out, h.object);
  put_u32(out, h.shard);
  put_u64(out, h.map_epoch);
}

WrongNodeHeader decode_wrong_node(const Buffer& in, std::size_t& pos) {
  WrongNodeHeader h;
  h.req_id = get_u64(in, pos);
  h.home = get_u64(in, pos);
  h.object = get_string(in, pos);
  h.shard = get_u32(in, pos);
  h.map_epoch = get_u64(in, pos);
  return h;
}

void encode_batch(const std::vector<std::vector<std::uint8_t>>& members,
                  std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(MsgType::kBatch));
  put_u32(out, static_cast<std::uint32_t>(members.size()));
  for (const auto& m : members) {
    put_u32(out, static_cast<std::uint32_t>(m.size()));
    out.insert(out.end(), m.begin(), m.end());
  }
}

void encode_batch(const std::vector<FrameBuilder>& members,
                  FrameBuilder& out) {
  out.put_u8(static_cast<std::uint8_t>(MsgType::kBatch));
  out.put_u32(static_cast<std::uint32_t>(members.size()));
  for (const auto& m : members) {
    out.put_u32(static_cast<std::uint32_t>(m.size()));
    out.append(m);
  }
}

std::vector<Buffer> decode_batch_slices(const Buffer& in, std::size_t& pos) {
  const std::uint32_t n = get_u32(in, pos);
  // Each member costs at least its 4-byte length prefix plus a type byte;
  // a count beyond the remaining bytes is a corrupt frame, not a reserve().
  if (n > in.size() - pos) {
    raise(ErrorCode::kBadMessage, "batch count exceeds frame size");
  }
  std::vector<Buffer> members;
  members.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t len = get_u32(in, pos);
    if (len == 0) {
      raise(ErrorCode::kBadMessage, "empty batch member");
    }
    need(in, pos, len);
    members.push_back(in.slice(pos, len));
    pos += len;
  }
  return members;
}

std::vector<std::vector<std::uint8_t>> decode_batch(const Buffer& in,
                                                    std::size_t& pos) {
  const std::vector<Buffer> slices = decode_batch_slices(in, pos);
  std::vector<std::vector<std::uint8_t>> members;
  members.reserve(slices.size());
  for (const auto& s : slices) members.push_back(s.to_blob());
  return members;
}

void encode_ack(std::uint64_t ack_through, std::vector<std::uint8_t>& out) {
  put_u8(out, static_cast<std::uint8_t>(MsgType::kAck));
  put_u64(out, ack_through);
}

std::uint64_t decode_ack(const Buffer& in, std::size_t& pos) {
  return get_u64(in, pos);
}

// ---- values ----------------------------------------------------------------

void encode_value(const Value& v, FrameBuilder& out,
                  ChannelResolver* resolver) {
  out.put_u8(static_cast<std::uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kNil:
      return;
    case ValueKind::kBool:
      out.put_u8(v.as_bool() ? 1 : 0);
      return;
    case ValueKind::kInt:
      out.put_u64(static_cast<std::uint64_t>(v.as_int()));
      return;
    case ValueKind::kReal: {
      std::uint64_t bits;
      const double d = v.as_real();
      std::memcpy(&bits, &d, sizeof bits);
      out.put_u64(bits);
      return;
    }
    case ValueKind::kString: {
      // Large strings ride as slices of their shared storage — the Value
      // keeps the payload alive for as long as any frame references it.
      // A frame-aliased string re-encodes from its original frame window,
      // never materializing a std::string.
      Buffer bytes = v.string_bytes();
      out.put_u32(static_cast<std::uint32_t>(bytes.size()));
      out.append_slice(std::move(bytes));
      return;
    }
    case ValueKind::kBlob: {
      const Buffer& b = v.as_blob();
      out.put_u32(static_cast<std::uint32_t>(b.size()));
      out.append_slice(b);
      return;
    }
    case ValueKind::kList: {
      const ValueList& list = v.as_list();
      out.put_u32(static_cast<std::uint32_t>(list.size()));
      for (const auto& x : list) encode_value(x, out, resolver);
      return;
    }
    case ValueKind::kChannel: {
      if (!resolver) {
        raise(ErrorCode::kBadMessage,
              "channel in value but no channel resolver supplied");
      }
      auto [node, id] = resolver->encode_channel(v.as_channel());
      out.put_u64(node);
      out.put_u64(id);
      return;
    }
  }
  raise(ErrorCode::kBadMessage, "unencodable value kind");
}

void encode_value(const Value& v, std::vector<std::uint8_t>& out,
                  ChannelResolver* resolver) {
  FrameBuilder fb;
  encode_value(v, fb, resolver);
  fb.build_into(out);
}

Value decode_value(const Buffer& in, std::size_t& pos,
                   ChannelResolver* resolver) {
  const auto kind = static_cast<ValueKind>(get_u8(in, pos));
  switch (kind) {
    case ValueKind::kNil:
      return Value();
    case ValueKind::kBool:
      return Value(get_u8(in, pos) != 0);
    case ValueKind::kInt:
      return Value(static_cast<std::int64_t>(get_u64(in, pos)));
    case ValueKind::kReal: {
      const std::uint64_t bits = get_u64(in, pos);
      double d;
      std::memcpy(&d, &bits, sizeof d);
      return Value(d);
    }
    case ValueKind::kString: {
      const std::uint32_t n = get_u32(in, pos);
      need(in, pos, n);
      if (zero_copy_data_plane() && in.owned() &&
          n >= kZeroCopySliceThreshold) {
        // Like blobs: alias the owned frame instead of copying. The copy
        // happens only if someone later insists on the std::string form
        // (as_string), and is counted there.
        Buffer bytes = in.slice(pos, n);
        pos += n;
        support::data_plane().bytes_referenced.add(n);
        return Value::aliased_string(std::move(bytes));
      }
      // Small or borrowed: materialize directly into the shared storage the
      // Value will hand out — one copy, no re-wrap.
      auto s = std::make_shared<const std::string>(
          reinterpret_cast<const char*>(in.data() + pos), n);
      pos += n;
      support::data_plane().bytes_copied.add(n);
      return Value(std::move(s));
    }
    case ValueKind::kBlob: {
      const std::uint32_t n = get_u32(in, pos);
      need(in, pos, n);
      if (zero_copy_data_plane() && in.owned() &&
          n >= kZeroCopySliceThreshold) {
        // Alias the received frame: the blob Value shares the frame's
        // storage and keeps it alive. The whole frame stays resident while
        // any such Value lives — the standard slice-aliasing tradeoff.
        Buffer b = in.slice(pos, n);
        pos += n;
        support::data_plane().bytes_referenced.add(n);
        return Value(std::move(b));
      }
      Blob b(in.begin() + static_cast<std::ptrdiff_t>(pos),
             in.begin() + static_cast<std::ptrdiff_t>(pos + n));
      pos += n;
      support::data_plane().bytes_copied.add(n);
      return Value(std::move(b));
    }
    case ValueKind::kList: {
      const std::uint32_t n = get_u32(in, pos);
      // Every encoded value occupies at least its 1-byte tag; a count that
      // exceeds the remaining bytes is a corrupt (or malicious) frame. This
      // check is what keeps a flipped count byte from becoming a multi-GiB
      // reserve() — a decode bomb.
      if (n > in.size() - pos) {
        raise(ErrorCode::kBadMessage, "list count exceeds frame size");
      }
      ValueList list;
      list.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        list.push_back(decode_value(in, pos, resolver));
      }
      return Value(std::move(list));
    }
    case ValueKind::kChannel: {
      if (!resolver) {
        raise(ErrorCode::kBadMessage,
              "channel in value but no channel resolver supplied");
      }
      const std::uint64_t node = get_u64(in, pos);
      const std::uint64_t id = get_u64(in, pos);
      return Value(resolver->decode_channel(node, id));
    }
  }
  raise(ErrorCode::kBadMessage, "unknown value tag");
}

void encode_list(const ValueList& list, FrameBuilder& out,
                 ChannelResolver* resolver) {
  out.put_u32(static_cast<std::uint32_t>(list.size()));
  for (const auto& v : list) encode_value(v, out, resolver);
}

void encode_list(const ValueList& list, std::vector<std::uint8_t>& out,
                 ChannelResolver* resolver) {
  FrameBuilder fb;
  encode_list(list, fb, resolver);
  fb.build_into(out);
}

ValueList decode_list(const Buffer& in, std::size_t& pos,
                      ChannelResolver* resolver) {
  const std::uint32_t n = get_u32(in, pos);
  if (n > in.size() - pos) {
    raise(ErrorCode::kBadMessage, "list count exceeds frame size");
  }
  ValueList list;
  list.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    list.push_back(decode_value(in, pos, resolver));
  }
  return list;
}

// ---- stream framing --------------------------------------------------------

void encode_stream_header(NodeId src, std::size_t payload_bytes,
                          std::uint8_t out[kStreamHeaderBytes]) {
  if (payload_bytes > kMaxStreamFrameBytes - 8) {
    raise(ErrorCode::kBadMessage, "stream frame exceeds the size bound");
  }
  if (payload_bytes == 0) {
    // Every real payload starts with a MsgType byte; the reassembler rejects
    // length 8 as corruption, so refuse to produce it.
    raise(ErrorCode::kBadMessage, "stream frame with empty payload");
  }
  const auto length = static_cast<std::uint32_t>(payload_bytes + 8);
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(length >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    out[4 + i] = static_cast<std::uint8_t>(src >> (8 * i));
  }
}

void StreamReassembler::feed(const void* data, std::size_t n) {
  if (poisoned_) {
    raise(ErrorCode::kBadMessage, "stream poisoned by an earlier bad length");
  }
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    if (body_ == nullptr) {
      // Accumulating a (possibly torn) chunk header.
      const std::size_t take = std::min(n, kStreamHeaderBytes - header_fill_);
      std::memcpy(header_ + header_fill_, p, take);
      header_fill_ += take;
      p += take;
      n -= take;
      if (header_fill_ < kStreamHeaderBytes) return;
      std::uint32_t length = 0;
      for (int i = 0; i < 4; ++i) {
        length |= static_cast<std::uint32_t>(header_[i]) << (8 * i);
      }
      src_ = 0;
      for (int i = 0; i < 8; ++i) {
        src_ |= static_cast<NodeId>(header_[4 + i]) << (8 * i);
      }
      if (length > kMaxStreamFrameBytes) {
        // A wild length field means the stream is desynced; there is no way
        // to find the next frame boundary, so refuse everything from here on
        // (the owning connection tears down). Poison events are counted
        // process-wide so corruption is observable, never silent.
        poisoned_ = true;
        support::net_health().streams_poisoned.add();
        raise(ErrorCode::kBadMessage,
              "stream frame length " + std::to_string(length) +
                  " exceeds the " + std::to_string(kMaxStreamFrameBytes) +
                  " byte bound");
      }
      if (length < 9) {
        // Shorter than src + one MsgType byte: no valid frame fits.
        poisoned_ = true;
        support::net_health().streams_poisoned.add();
        raise(ErrorCode::kBadMessage, "stream frame length too small");
      }
      header_fill_ = 0;
      body_ = std::make_shared<Blob>(length - 8);
      body_fill_ = 0;
    }
    const std::size_t take = std::min(n, body_->size() - body_fill_);
    std::memcpy(body_->data() + body_fill_, p, take);
    body_fill_ += take;
    p += take;
    n -= take;
    if (body_fill_ == body_->size()) {
      ready_.push_back(Message{src_, Buffer::from_shared(
                                         std::shared_ptr<const Blob>(body_))});
      body_.reset();
      body_fill_ = 0;
    }
  }
}

std::optional<StreamReassembler::Message> StreamReassembler::next() {
  if (ready_pos_ >= ready_.size()) {
    ready_.clear();
    ready_pos_ = 0;
    return std::nullopt;
  }
  return std::move(ready_[ready_pos_++]);
}

std::size_t StreamReassembler::buffered_bytes() const {
  return header_fill_ + body_fill_;
}

// ---- peer handshake --------------------------------------------------------

void encode_hello(const HelloFrame& h, std::vector<std::uint8_t>& out) {
  if (h.token.size() > kMaxHelloTokenBytes) {
    raise(ErrorCode::kBadMessage, "hello token exceeds the size bound");
  }
  put_u32(out, h.magic);
  put_u32(out, h.version);
  put_u64(out, h.node);
  put_u32(out, static_cast<std::uint32_t>(h.token.size()));
  out.insert(out.end(), h.token.begin(), h.token.end());
}

bool HelloReader::feed(const std::uint8_t*& data, std::size_t& n) {
  if (poisoned_) {
    raise(ErrorCode::kBadMessage, "hello poisoned by earlier bad bytes");
  }
  if (done_) return true;
  const auto read_u32 = [&](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(buf_[at + i]) << (8 * i);
    }
    return v;
  };
  while (n > 0) {
    // Accumulate the fixed prefix first; the token length then tells us the
    // total size. Validate each field as soon as its bytes arrive so a
    // hostile connection is rejected at the earliest possible byte.
    std::size_t want = buf_.size() < kHelloFixedBytes
                           ? kHelloFixedBytes
                           : kHelloFixedBytes + read_u32(kHelloFixedBytes - 4);
    const std::size_t take = std::min(n, want - buf_.size());
    buf_.insert(buf_.end(), data, data + take);
    data += take;
    n -= take;
    if (buf_.size() >= 4 && read_u32(0) != kHelloMagic) {
      poisoned_ = true;
      raise(ErrorCode::kBadMessage, "bad hello magic");
    }
    if (buf_.size() < kHelloFixedBytes) return false;
    const std::uint32_t token_len = read_u32(kHelloFixedBytes - 4);
    if (token_len > kMaxHelloTokenBytes) {
      // Bounded before any token allocation: an oversized length is
      // corruption (or hostility), not a frame to buffer.
      poisoned_ = true;
      raise(ErrorCode::kBadMessage, "hello token length exceeds the bound");
    }
    if (buf_.size() < kHelloFixedBytes + token_len) continue;
    hello_.magic = read_u32(0);
    hello_.version = read_u32(4);
    hello_.node = 0;
    for (int i = 0; i < 8; ++i) {
      hello_.node |= static_cast<NodeId>(buf_[8 + i]) << (8 * i);
    }
    hello_.token.assign(buf_.begin() + kHelloFixedBytes, buf_.end());
    buf_.clear();
    buf_.shrink_to_fit();
    done_ = true;
    return true;
  }
  return done_;
}

}  // namespace alps::net
