// Wire codec for alps::Value (the RPC substrate's serialization layer).
//
// Entry calls in ALPS are remote procedure calls (§1); the kernel's untyped
// ValueLists serialize to a compact tag-length-value format. Channels need
// help: a channel reference crossing the wire is encoded as its (home node,
// channel id) pair, and the ChannelResolver — implemented by net::Node —
// turns that pair back into a local reference or a forwarding proxy.
//
// Zero-copy assembly (DESIGN.md §4.9). Frames are built through a
// FrameBuilder: headers and small values are encoded into an inline arena,
// while large string/blob payloads ride as refcounted Buffer slices. The
// scatter-gather list is flattened exactly once, by build(), into the wire
// vector — so a payload that travels through encode, a retransmit cache and
// a batch envelope is still written once. On the decode side, blob payloads
// of an *owned* frame buffer alias the frame instead of copying out of it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/buffer.h"
#include "core/value.h"
#include "net/transport.h"

namespace alps::net {

// ---- frame layer -----------------------------------------------------------
//
// Every frame payload starts with a one-byte MsgType followed by a typed
// header; requests and responses carry the fields the at-most-once layer
// needs (dedup epoch, ack watermark, error cause). The header codecs below
// are the single source of truth for that layout — rpc.cpp and the tests
// both go through them.

enum class MsgType : std::uint8_t {
  kRequest = 1,    ///< (header, params)        → Object::async_call
  kResponse = 2,   ///< (header, results|error) → completes the caller future
  kChanSend = 3,   ///< (chan_id, message)      → local channel send
  kAck = 4,        ///< (ack_through)           → dedup-table eviction
  kWrongNode = 5,  ///< (req_id, home, object)  → stale route; re-send to home
  kBatch = 6,      ///< (count, length-prefixed member frames) → coalesced link
};

/// Typed cause carried in a response header. kOk means results follow;
/// anything else means an error string follows. Values are wire-stable.
enum class WireCause : std::uint8_t {
  kOk = 0,
  kRemoteError = 1,     ///< entry body threw / no such entry / object stopped
  kObjectNotFound = 2,  ///< target node does not host the named object
  kTimeout = 3,         ///< call deadline expired inside the remote kernel
  kCancelled = 4,       ///< remote kernel revoked the call (CancelToken)
  kObjectDown = 5,      ///< target object quarantined after a manager failure
};

/// Response flag bits.
inline constexpr std::uint8_t kResponseFlagReplayed = 0x01;

/// Payloads at or above this size are carried as Buffer slices through
/// frame assembly (and aliased out of owned frames on decode); smaller ones
/// are cheaper to copy into the arena than to track as segments.
inline constexpr std::size_t kZeroCopySliceThreshold = 256;

/// A/B strawman switch for the payload benches: disabling zero-copy makes
/// append_slice copy into the arena and the decoder always materialize —
/// the seed data plane's behavior — so bench_payload can interleave both
/// modes in one binary. Defaults to enabled.
void set_zero_copy_data_plane(bool enabled);
bool zero_copy_data_plane();

/// Scatter-gather frame under assembly: an inline arena for headers and
/// small values, plus ordered Buffer slices for large payloads. Copyable —
/// a copy duplicates the arena (tens of bytes) and bumps slice refcounts,
/// which is what makes retransmit payloads and dedup response caches cheap
/// to keep. build() flattens into the single wire write and flushes the
/// data-plane counters (support/stats.h).
class FrameBuilder {
 public:
  FrameBuilder() = default;

  /// Adopts an already-encoded frame (vector move, no byte copy). The bytes
  /// land in the arena, so the result stays patchable.
  static FrameBuilder from_bytes(std::vector<std::uint8_t> bytes);

  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// u32 length prefix + bytes, into the arena.
  void put_string(const std::string& s);
  /// Raw bytes into the arena (no length prefix).
  void put_bytes(const void* data, std::size_t n);

  /// Appends payload bytes: referenced as a slice when zero-copy is on, the
  /// slice owns its storage and meets kZeroCopySliceThreshold; copied into
  /// the arena otherwise. (Borrowed views are always copied — the frame may
  /// outlive the caller's storage.)
  void append_slice(const Buffer& slice);

  /// Splices another builder's contents: its arena bytes are copied (header
  /// material), its slices are re-referenced. This is how a batch envelope
  /// absorbs member frames without re-copying their payloads.
  void append(const FrameBuilder& other);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Bytes held inline vs. referenced as slices (accounting/tests).
  std::size_t bytes_inline() const { return arena_.size(); }
  std::size_t bytes_referenced() const { return size_ - arena_.size(); }

  /// In-place header patches (ack watermark re-route, replay flag). The
  /// offset must fall inside the leading arena run — header fields always
  /// do, since headers are encoded before any payload slice. Throws
  /// Error(kBadMessage) otherwise.
  void patch_u64(std::size_t offset, std::uint64_t v);
  void patch_u8_or(std::size_t offset, std::uint8_t bits);

  /// Flattens the scatter-gather list into one contiguous wire vector (the
  /// data plane's single copy of referenced payloads).
  std::vector<std::uint8_t> build() const;
  /// As build(), but appends to `out` (batch envelopes, legacy wrappers).
  void build_into(std::vector<std::uint8_t>& out) const;

  /// One contiguous piece of the frame, in wire order. A writev-style send
  /// path hands these to the kernel directly — no gather ever happens.
  struct Segment {
    const void* data;
    std::size_t size;
  };

  /// Appends this frame's pieces (alternating arena runs and referenced
  /// slices) to `out` in wire order. The views stay valid only while this
  /// builder is alive and unmodified.
  void segments(std::vector<Segment>& out) const;

  /// Flushes the data-plane counters for a frame sent scattered (writev):
  /// arena/copied bytes count as copied, slices as referenced, and — the
  /// whole point — bytes_assembled advances by zero, because no contiguous
  /// frame was ever built. Call exactly once per wire send, in place of the
  /// flush build() would have done.
  void note_sent_scattered() const;

 private:
  struct Slice {
    std::size_t arena_prefix;  ///< arena bytes emitted before this slice
    Buffer bytes;
  };

  /// Frame bytes that are contiguous arena from offset 0 (patch window).
  std::size_t patchable_prefix() const {
    return slices_.empty() ? arena_.size() : slices_.front().arena_prefix;
  }

  std::vector<std::uint8_t> arena_;
  std::vector<Slice> slices_;
  std::size_t size_ = 0;
  /// Arena bytes re-copied by append() (envelope splices) — folded into
  /// bytes_copied at build so intermediate copies stay visible.
  std::size_t copied_extra_ = 0;
};

/// Request flag bits (RequestHeader::flags).
inline constexpr std::uint8_t kRequestFlagReadOnly = 0x01;

struct RequestHeader {
  std::uint64_t req_id = 0;
  std::uint64_t epoch = 0;        ///< caller's dedup epoch (see rpc.h)
  std::uint64_t ack_through = 0;  ///< caller will never retransmit ids <= this
  /// Caller's overall deadline in ms (0 = none). The serving node applies it
  /// to the hosted call via kernel CallOptions, so an expiry is detected
  /// where the work queues — the caller gets a typed kTimeout response
  /// instead of retransmitting into a stalled object.
  std::uint64_t deadline_ms = 0;
  std::string object;
  std::string entry;
  /// kRequestFlagReadOnly marks the call as answerable by a read replica;
  /// the serving node uses it to decide whether a replica that is not the
  /// primary may dispatch or must redirect (DESIGN.md §4.12). Declared last
  /// so existing aggregate initializers keep compiling; encoded right after
  /// deadline_ms so kRequestAckOffset is unchanged.
  std::uint8_t flags = 0;

  bool operator==(const RequestHeader&) const = default;
};

struct ResponseHeader {
  std::uint64_t req_id = 0;
  WireCause cause = WireCause::kOk;
  std::uint8_t flags = 0;

  bool operator==(const ResponseHeader&) const = default;
};

/// Appends the MsgType byte plus the header fields.
void encode_request_header(const RequestHeader& h, FrameBuilder& out);
void encode_response_header(const ResponseHeader& h, FrameBuilder& out);
void encode_request_header(const RequestHeader& h,
                           std::vector<std::uint8_t>& out);
void encode_response_header(const ResponseHeader& h,
                            std::vector<std::uint8_t>& out);
void encode_ack(std::uint64_t ack_through, std::vector<std::uint8_t>& out);

/// Decoders assume the MsgType byte has already been consumed; they throw
/// Error(kBadMessage) on truncation or an out-of-range cause byte. Inputs
/// are Buffers — a plain byte vector converts to a borrowed view, an owned
/// Buffer (e.g. a received frame) additionally enables payload aliasing.
RequestHeader decode_request_header(const Buffer& in, std::size_t& pos);
ResponseHeader decode_response_header(const Buffer& in, std::size_t& pos);
std::uint64_t decode_ack(const Buffer& in, std::size_t& pos);

/// Typed redirect: the receiving node does not host `object`, but the
/// cluster directory says `home` does. Stateless on the server (no dedup
/// entry is created), so a duplicate request to a wrong node just earns a
/// duplicate redirect. The client refreshes its route cache and re-sends
/// the stored request frame to `home` — at most one extra hop per redirect,
/// never a server-side forwarding chain.
/// WrongNodeHeader::shard value for "not a shard redirect": the whole
/// object re-homed to `home` (single-home migration, the original form).
inline constexpr std::uint32_t kWrongNodeNoShard = 0xffffffffu;

struct WrongNodeHeader {
  std::uint64_t req_id = 0;
  std::uint64_t home = 0;  ///< the directory's current home for `object`
  std::string object;
  /// Shard hint: which shard of `object` the redirected key belongs to
  /// (kWrongNodeNoShard for whole-object redirects). Lets the client patch
  /// one slot of its cached shard map instead of dropping it, so a live
  /// shard split heals key by key with no global barrier.
  std::uint32_t shard = kWrongNodeNoShard;
  /// The answering directory's epoch for `object`; the client only applies
  /// a shard patch from an epoch at least as new as its cached map.
  std::uint64_t map_epoch = 0;

  bool operator==(const WrongNodeHeader&) const = default;
};

void encode_wrong_node(const WrongNodeHeader& h,
                       std::vector<std::uint8_t>& out);
WrongNodeHeader decode_wrong_node(const Buffer& in, std::size_t& pos);

/// Batch frame: `count` member frames, each length-prefixed. Members are
/// complete frame payloads (type byte first) and must not themselves be
/// batches — the dispatch layer rejects nesting, so a hostile frame cannot
/// recurse. Decoders validate every length against the remaining bytes and
/// reject empty members (no type byte).
void encode_batch(const std::vector<std::vector<std::uint8_t>>& members,
                  std::vector<std::uint8_t>& out);
/// Scatter-gather envelope: member headers/arenas are spliced, member
/// payload slices stay referenced — the whole batch is written once.
void encode_batch(const std::vector<FrameBuilder>& members, FrameBuilder& out);
std::vector<std::vector<std::uint8_t>> decode_batch(const Buffer& in,
                                                    std::size_t& pos);
/// Members as slices of `in` (zero-copy when `in` is owned) — the dispatch
/// path's form; member decode can then alias payloads of the original frame.
std::vector<Buffer> decode_batch_slices(const Buffer& in, std::size_t& pos);

// ---- stream framing (byte-stream transports) -------------------------------
//
// A socket carries a byte stream, not frames; this layer restores frame
// boundaries with a fixed 12-byte chunk header:
//
//   [u32 length][u64 src]  followed by `length - 8` payload bytes
//
// `length` counts the src field plus the payload, so a complete chunk is
// kStreamHeaderBytes - 8 + length bytes on the wire. The payload is a normal
// frame (MsgType byte first) and feeds the same dispatch path as a simulated
// delivery. Lengths are validated before any allocation: a corrupt or
// hostile peer can at worst cost kMaxStreamFrameBytes of buffering.

/// Fixed size of the chunk header: u32 length + u64 src.
inline constexpr std::size_t kStreamHeaderBytes = 12;

/// Upper bound on one stream frame's `length` field (64 MiB). Anything
/// larger is rejected as kBadMessage — a real frame never gets close, so an
/// oversized length means stream corruption or a hostile peer.
inline constexpr std::uint32_t kMaxStreamFrameBytes = 64u << 20;

/// Writes the chunk header for a frame of `payload_bytes` payload from
/// `src` into `out` (exactly kStreamHeaderBytes). Throws Error(kBadMessage)
/// if the frame would exceed kMaxStreamFrameBytes.
void encode_stream_header(NodeId src, std::size_t payload_bytes,
                          std::uint8_t out[kStreamHeaderBytes]);

/// Incremental reassembler for one connection's byte stream. feed() accepts
/// arbitrarily torn reads (a header split across reads, a payload arriving
/// in fragments, several frames in one read); next() yields complete frames
/// in order. Each frame's payload is an *owned* Buffer, so ≥256 B blob
/// decodes alias it exactly as they alias a simulated delivery. A connection
/// dying mid-frame simply drops the reassembler with the partial frame —
/// mid_frame() lets the owner count that.
class StreamReassembler {
 public:
  struct Message {
    NodeId src = 0;
    Buffer payload;  ///< owned; frame bytes (MsgType first)
  };

  /// Appends `n` raw bytes read from the stream. Throws Error(kBadMessage)
  /// on an oversized or undersized length field; the stream is then poisoned
  /// (every later feed rethrows) because byte-stream framing cannot resync.
  void feed(const void* data, std::size_t n);

  /// Next complete frame, if one is ready.
  std::optional<Message> next();

  /// True while a frame is partially buffered (torn header or body) — what
  /// a mid-frame connection drop abandons.
  bool mid_frame() const { return header_fill_ > 0 || body_ != nullptr; }

  /// Bytes buffered towards the current incomplete frame.
  std::size_t buffered_bytes() const;

 private:
  std::uint8_t header_[kStreamHeaderBytes];
  std::size_t header_fill_ = 0;
  /// Body under reassembly; shared so the completed frame's Buffer can
  /// alias it without a copy.
  std::shared_ptr<Blob> body_;
  std::size_t body_fill_ = 0;
  NodeId src_ = 0;
  std::vector<Message> ready_;
  std::size_t ready_pos_ = 0;
  bool poisoned_ = false;
};

// ---- peer handshake (byte-stream transports) -------------------------------
//
// The first bytes on every stream connection, before any framed traffic:
//
//   [u32 magic][u32 version][u64 node][u32 token_len][token bytes]
//
// The acceptor validates the hello before dispatching a single frame —
// unknown peers, protocol mismatches and bad cluster tokens are counted and
// disconnected instead of feeding the reassembler (DESIGN.md §4.11). The
// magic is checked as soon as its four bytes arrive and the token length is
// bounded, so a port-scanner or hostile connection costs at most
// kMaxHelloTokenBytes of buffering before it is dropped.

/// First four bytes of every ALPS stream connection ("ALPS", little-endian).
inline constexpr std::uint32_t kHelloMagic = 0x53504C41u;

/// Stream protocol version advertised and required by this build.
inline constexpr std::uint32_t kHelloVersion = 1;

/// Bound on the cluster token carried in a hello.
inline constexpr std::uint32_t kMaxHelloTokenBytes = 1024;

/// Fixed-size prefix of the hello: magic + version + node + token_len.
inline constexpr std::size_t kHelloFixedBytes = 4 + 4 + 8 + 4;

struct HelloFrame {
  std::uint32_t magic = kHelloMagic;
  std::uint32_t version = kHelloVersion;
  NodeId node = 0;        ///< the connecting side's claimed cluster id
  std::string token;      ///< pre-shared cluster token; empty = none

  bool operator==(const HelloFrame&) const = default;
};

/// Appends the wire form of `h` to `out`. Throws Error(kBadMessage) if the
/// token exceeds kMaxHelloTokenBytes.
void encode_hello(const HelloFrame& h, std::vector<std::uint8_t>& out);

/// Incremental hello decoder for one connection. feed() consumes hello bytes
/// from the front of [data, data+n) — advancing both — and returns true once
/// the hello is complete; the remaining bytes belong to the frame stream.
/// Accepts arbitrarily torn reads. Throws Error(kBadMessage) on a bad magic
/// (as soon as four bytes arrive) or an oversized token length; the reader is
/// then poisoned and every later feed rethrows.
class HelloReader {
 public:
  bool feed(const std::uint8_t*& data, std::size_t& n);
  bool done() const { return done_; }
  const HelloFrame& hello() const { return hello_; }

 private:
  std::vector<std::uint8_t> buf_;
  HelloFrame hello_;
  bool done_ = false;
  bool poisoned_ = false;
};

/// Byte offset of the flags field inside an encoded response payload
/// (type + req_id + cause); the server flips the replayed bit in its cached
/// copy without re-encoding the whole frame.
inline constexpr std::size_t kResponseFlagsOffset = 1 + 8 + 1;

/// Byte offset of ack_through inside an encoded request payload (type +
/// req_id + epoch). A kWrongNode re-route patches the piggybacked watermark
/// for the new target link in place, without re-encoding the params — the
/// req_id/epoch dedup key is deliberately untouched so at-most-once state
/// survives the re-route.
inline constexpr std::size_t kRequestAckOffset = 1 + 8 + 8;

/// Hook pair used when values may contain channels. encode_channel must
/// return a stable (node, id) naming; decode_channel must return a channel
/// that routes sends to that name.
class ChannelResolver {
 public:
  virtual ~ChannelResolver() = default;
  virtual std::pair<std::uint64_t, std::uint64_t> encode_channel(
      const ChannelRef& channel) = 0;
  virtual ChannelRef decode_channel(std::uint64_t node, std::uint64_t id) = 0;
};

/// Appends the encoding of `v`. Throws Error(kBadMessage) when a channel is
/// present and `resolver` is null. Large string/blob payloads become slices
/// of the builder (no byte copy); the vector overload flattens immediately.
void encode_value(const Value& v, FrameBuilder& out,
                  ChannelResolver* resolver = nullptr);
void encode_value(const Value& v, std::vector<std::uint8_t>& out,
                  ChannelResolver* resolver = nullptr);

/// Decodes one value starting at `pos` (which advances past it). Throws
/// Error(kBadMessage) on malformed input. Blob payloads >=
/// kZeroCopySliceThreshold alias `in` when it owns its storage.
Value decode_value(const Buffer& in, std::size_t& pos,
                   ChannelResolver* resolver = nullptr);

void encode_list(const ValueList& list, FrameBuilder& out,
                 ChannelResolver* resolver = nullptr);
void encode_list(const ValueList& list, std::vector<std::uint8_t>& out,
                 ChannelResolver* resolver = nullptr);

ValueList decode_list(const Buffer& in, std::size_t& pos,
                      ChannelResolver* resolver = nullptr);

// Primitive writers/readers (exposed for the frame headers in rpc.cpp).
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_string(std::vector<std::uint8_t>& out, const std::string& s);
std::uint8_t get_u8(const Buffer& in, std::size_t& pos);
std::uint32_t get_u32(const Buffer& in, std::size_t& pos);
std::uint64_t get_u64(const Buffer& in, std::size_t& pos);
std::string get_string(const Buffer& in, std::size_t& pos);

}  // namespace alps::net
