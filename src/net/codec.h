// Wire codec for alps::Value (the RPC substrate's serialization layer).
//
// Entry calls in ALPS are remote procedure calls (§1); the kernel's untyped
// ValueLists serialize to a compact tag-length-value format. Channels need
// help: a channel reference crossing the wire is encoded as its (home node,
// channel id) pair, and the ChannelResolver — implemented by net::Node —
// turns that pair back into a local reference or a forwarding proxy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/value.h"

namespace alps::net {

// ---- frame layer -----------------------------------------------------------
//
// Every frame payload starts with a one-byte MsgType followed by a typed
// header; requests and responses carry the fields the at-most-once layer
// needs (dedup epoch, ack watermark, error cause). The header codecs below
// are the single source of truth for that layout — rpc.cpp and the tests
// both go through them.

enum class MsgType : std::uint8_t {
  kRequest = 1,    ///< (header, params)        → Object::async_call
  kResponse = 2,   ///< (header, results|error) → completes the caller future
  kChanSend = 3,   ///< (chan_id, message)      → local channel send
  kAck = 4,        ///< (ack_through)           → dedup-table eviction
  kWrongNode = 5,  ///< (req_id, home, object)  → stale route; re-send to home
  kBatch = 6,      ///< (count, length-prefixed member frames) → coalesced link
};

/// Typed cause carried in a response header. kOk means results follow;
/// anything else means an error string follows. Values are wire-stable.
enum class WireCause : std::uint8_t {
  kOk = 0,
  kRemoteError = 1,     ///< entry body threw / no such entry / object stopped
  kObjectNotFound = 2,  ///< target node does not host the named object
  kTimeout = 3,         ///< call deadline expired inside the remote kernel
  kCancelled = 4,       ///< remote kernel revoked the call (CancelToken)
  kObjectDown = 5,      ///< target object quarantined after a manager failure
};

/// Response flag bits.
inline constexpr std::uint8_t kResponseFlagReplayed = 0x01;

struct RequestHeader {
  std::uint64_t req_id = 0;
  std::uint64_t epoch = 0;        ///< caller's dedup epoch (see rpc.h)
  std::uint64_t ack_through = 0;  ///< caller will never retransmit ids <= this
  /// Caller's overall deadline in ms (0 = none). The serving node applies it
  /// to the hosted call via kernel CallOptions, so an expiry is detected
  /// where the work queues — the caller gets a typed kTimeout response
  /// instead of retransmitting into a stalled object.
  std::uint64_t deadline_ms = 0;
  std::string object;
  std::string entry;

  bool operator==(const RequestHeader&) const = default;
};

struct ResponseHeader {
  std::uint64_t req_id = 0;
  WireCause cause = WireCause::kOk;
  std::uint8_t flags = 0;

  bool operator==(const ResponseHeader&) const = default;
};

/// Appends the MsgType byte plus the header fields.
void encode_request_header(const RequestHeader& h,
                           std::vector<std::uint8_t>& out);
void encode_response_header(const ResponseHeader& h,
                            std::vector<std::uint8_t>& out);
void encode_ack(std::uint64_t ack_through, std::vector<std::uint8_t>& out);

/// Decoders assume the MsgType byte has already been consumed; they throw
/// Error(kBadMessage) on truncation or an out-of-range cause byte.
RequestHeader decode_request_header(const std::vector<std::uint8_t>& in,
                                    std::size_t& pos);
ResponseHeader decode_response_header(const std::vector<std::uint8_t>& in,
                                      std::size_t& pos);
std::uint64_t decode_ack(const std::vector<std::uint8_t>& in,
                         std::size_t& pos);

/// Typed redirect: the receiving node does not host `object`, but the
/// cluster directory says `home` does. Stateless on the server (no dedup
/// entry is created), so a duplicate request to a wrong node just earns a
/// duplicate redirect. The client refreshes its route cache and re-sends
/// the stored request frame to `home` — at most one extra hop per redirect,
/// never a server-side forwarding chain.
struct WrongNodeHeader {
  std::uint64_t req_id = 0;
  std::uint64_t home = 0;  ///< the directory's current home for `object`
  std::string object;

  bool operator==(const WrongNodeHeader&) const = default;
};

void encode_wrong_node(const WrongNodeHeader& h,
                       std::vector<std::uint8_t>& out);
WrongNodeHeader decode_wrong_node(const std::vector<std::uint8_t>& in,
                                  std::size_t& pos);

/// Batch frame: `count` member frames, each length-prefixed. Members are
/// complete frame payloads (type byte first) and must not themselves be
/// batches — the dispatch layer rejects nesting, so a hostile frame cannot
/// recurse. decode_batch validates every length against the remaining
/// bytes and rejects empty members (no type byte).
void encode_batch(const std::vector<std::vector<std::uint8_t>>& members,
                  std::vector<std::uint8_t>& out);
std::vector<std::vector<std::uint8_t>> decode_batch(
    const std::vector<std::uint8_t>& in, std::size_t& pos);

/// Byte offset of the flags field inside an encoded response payload
/// (type + req_id + cause); the server flips the replayed bit in its cached
/// copy without re-encoding the whole frame.
inline constexpr std::size_t kResponseFlagsOffset = 1 + 8 + 1;

/// Byte offset of ack_through inside an encoded request payload (type +
/// req_id + epoch). A kWrongNode re-route patches the piggybacked watermark
/// for the new target link in place, without re-encoding the params — the
/// req_id/epoch dedup key is deliberately untouched so at-most-once state
/// survives the re-route.
inline constexpr std::size_t kRequestAckOffset = 1 + 8 + 8;

/// Hook pair used when values may contain channels. encode_channel must
/// return a stable (node, id) naming; decode_channel must return a channel
/// that routes sends to that name.
class ChannelResolver {
 public:
  virtual ~ChannelResolver() = default;
  virtual std::pair<std::uint64_t, std::uint64_t> encode_channel(
      const ChannelRef& channel) = 0;
  virtual ChannelRef decode_channel(std::uint64_t node, std::uint64_t id) = 0;
};

/// Appends the encoding of `v` to `out`. Throws Error(kBadMessage) when a
/// channel is present and `resolver` is null.
void encode_value(const Value& v, std::vector<std::uint8_t>& out,
                  ChannelResolver* resolver = nullptr);

/// Decodes one value starting at `pos` (which advances past it). Throws
/// Error(kBadMessage) on malformed input.
Value decode_value(const std::vector<std::uint8_t>& in, std::size_t& pos,
                   ChannelResolver* resolver = nullptr);

void encode_list(const ValueList& list, std::vector<std::uint8_t>& out,
                 ChannelResolver* resolver = nullptr);

ValueList decode_list(const std::vector<std::uint8_t>& in, std::size_t& pos,
                      ChannelResolver* resolver = nullptr);

// Primitive writers/readers (exposed for the frame headers in rpc.cpp).
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_string(std::vector<std::uint8_t>& out, const std::string& s);
std::uint8_t get_u8(const std::vector<std::uint8_t>& in, std::size_t& pos);
std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& pos);
std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t& pos);
std::string get_string(const std::vector<std::uint8_t>& in, std::size_t& pos);

}  // namespace alps::net
