// Wire codec for alps::Value (the RPC substrate's serialization layer).
//
// Entry calls in ALPS are remote procedure calls (§1); the kernel's untyped
// ValueLists serialize to a compact tag-length-value format. Channels need
// help: a channel reference crossing the wire is encoded as its (home node,
// channel id) pair, and the ChannelResolver — implemented by net::Node —
// turns that pair back into a local reference or a forwarding proxy.
#pragma once

#include <cstdint>
#include <vector>

#include "core/value.h"

namespace alps::net {

/// Hook pair used when values may contain channels. encode_channel must
/// return a stable (node, id) naming; decode_channel must return a channel
/// that routes sends to that name.
class ChannelResolver {
 public:
  virtual ~ChannelResolver() = default;
  virtual std::pair<std::uint64_t, std::uint64_t> encode_channel(
      const ChannelRef& channel) = 0;
  virtual ChannelRef decode_channel(std::uint64_t node, std::uint64_t id) = 0;
};

/// Appends the encoding of `v` to `out`. Throws Error(kBadMessage) when a
/// channel is present and `resolver` is null.
void encode_value(const Value& v, std::vector<std::uint8_t>& out,
                  ChannelResolver* resolver = nullptr);

/// Decodes one value starting at `pos` (which advances past it). Throws
/// Error(kBadMessage) on malformed input.
Value decode_value(const std::vector<std::uint8_t>& in, std::size_t& pos,
                   ChannelResolver* resolver = nullptr);

void encode_list(const ValueList& list, std::vector<std::uint8_t>& out,
                 ChannelResolver* resolver = nullptr);

ValueList decode_list(const std::vector<std::uint8_t>& in, std::size_t& pos,
                      ChannelResolver* resolver = nullptr);

// Primitive writers/readers (exposed for the frame headers in rpc.cpp).
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_string(std::vector<std::uint8_t>& out, const std::string& s);
std::uint8_t get_u8(const std::vector<std::uint8_t>& in, std::size_t& pos);
std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& pos);
std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t& pos);
std::string get_string(const std::vector<std::uint8_t>& in, std::size_t& pos);

}  // namespace alps::net
