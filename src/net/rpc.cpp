#include "net/rpc.h"

#include <atomic>

#include "core/error.h"
#include "net/directory.h"
#include "support/log.h"
#include "support/thread_util.h"

namespace alps::net {

namespace {

/// Upper bound on cached at-most-once entries per caller. Acks normally keep
/// tables tiny; the bound is the backstop for a caller that never acks
/// (entries with responses already sent are evicted oldest-first).
constexpr std::size_t kMaxDedupPerCaller = 256;

/// Upper bound on kWrongNode hops a single request will follow. Routing
/// converges in one hop when placement is stable; a bound this generous only
/// trips when hosts chase each other indefinitely, and the call then fails
/// typed instead of ping-ponging forever.
constexpr int kMaxRedirects = 8;

/// Patches the piggybacked ack watermark inside a stored request frame
/// (little-endian u64 at kRequestAckOffset) without re-encoding — the
/// req_id/epoch dedup key bytes stay untouched across a re-route.
void patch_request_ack(FrameBuilder& frame, std::uint64_t ack) {
  frame.patch_u64(kRequestAckOffset, ack);
}

/// Dedup epochs distinguish distinct Node incarnations, so a fresh node
/// whose req_ids restart at 1 can never be answered from a predecessor's
/// cached responses.
std::atomic<std::uint64_t> g_next_epoch{1};

}  // namespace

const char* to_string(RpcCause cause) {
  switch (cause) {
    case RpcCause::kTimeout: return "rpc timeout";
    case RpcCause::kPartitioned: return "rpc partitioned";
    case RpcCause::kObjectNotFound: return "rpc object not found";
    case RpcCause::kRemoteError: return "rpc remote error";
    case RpcCause::kCancelled: return "rpc cancelled";
    case RpcCause::kShutdown: return "rpc node shutdown";
    case RpcCause::kObjectDown: return "rpc object down";
  }
  return "rpc error";
}

Result<ValueList, RpcError> RpcHandle::result() {
  try {
    return state_->get();
  } catch (const RpcError& e) {
    return e;
  } catch (const Error& e) {
    // Non-RPC Error escaping the wire layer (should not happen) — surface
    // as a remote error rather than throwing through the no-throw surface.
    return RpcError(RpcCause::kRemoteError, e.what());
  }
}

void RpcHandle::cancel() {
  if (node_) node_->cancel_request(req_id_);
}

// ---- RemoteObject ----------------------------------------------------------

RpcHandle RemoteObject::async_call(const std::string& entry, ValueList params,
                                   const CallOptions& opts) {
  if (!node_) raise(ErrorCode::kNetwork, "invalid RemoteObject");
  std::uint64_t req_id = 0;
  auto state =
      by_name_ ? node_->start_named_call(object_name_, entry, std::move(params),
                                         opts, &req_id)
               : node_->start_call(target_, object_name_, entry,
                                   std::move(params), opts, &req_id);
  return RpcHandle(std::move(state), node_, req_id);
}

Result<ValueList, RpcError> RemoteObject::call(const std::string& entry,
                                               ValueList params,
                                               const CallOptions& opts) {
  return async_call(entry, std::move(params), opts).result();
}

// ---- Node lifecycle --------------------------------------------------------

Node::Node(Transport& transport, const std::string& name)
    : transport_(&transport),
      name_(name),
      epoch_(g_next_epoch.fetch_add(1, std::memory_order_relaxed)),
      rng_(std::hash<std::string>{}(name) ^ 0x414c50534e455455ull) {
  id_ = transport.add_node(name);
  transport.set_handler(id_, [this](NodeId src, Buffer payload) {
    dispatch_payload(src, payload, /*batched=*/false);
  });
  membership_token_ = transport.add_membership_listener(
      [this](NodeId peer, bool added) { on_membership(peer, added); });
  timer_thread_ = std::jthread([this](std::stop_token st) { retry_loop(st); });
}

void Node::on_membership(NodeId peer, bool added) {
  if (added) return;
  // A departed peer: flush its batch buffer now — the transport fail-fasts
  // the post (counted dropped) instead of the members idling out a flush
  // interval — and drop routes naming it so the next call re-resolves.
  if (auto* b = batcher_raw_.load(std::memory_order_acquire)) {
    b->flush_peer(peer);
  }
  std::scoped_lock lock(mu_);
  std::erase_if(route_cache_,
                [peer](const auto& kv) { return kv.second.contains(peer); });
}

Node::~Node() {
  // Listener first: a membership change must not call into a dying node.
  transport_->remove_membership_listener(membership_token_);
  // Deregister so late frames are counted as drops instead of running into
  // a destroyed node.
  transport_->set_handler(id_, nullptr);
  timer_thread_.request_stop();
  {
    std::scoped_lock lock(mu_);  // pairs with the retry loop's wait
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  // Retire the batcher after the retry thread (its last posts still coalesce)
  // and before orphaning pending calls; its destructor flushes residue.
  batcher_raw_.store(nullptr, std::memory_order_release);
  batcher_.reset();
  // Fail anything still waiting for a response.
  std::vector<std::pair<std::shared_ptr<CallState>, std::string>> orphans;
  {
    std::scoped_lock lock(mu_);
    for (auto& [req, p] : pending_) orphans.emplace_back(p.state, p.label);
    pending_.clear();
    outstanding_.clear();
  }
  for (auto& [state, label] : orphans) {
    state->fail(std::make_exception_ptr(RpcError(
        RpcCause::kShutdown, label + ": node " + name_ + " shut down")));
  }
}

void Node::host(Object& object) {
  {
    std::scoped_lock lock(mu_);
    hosted_[object.name()] = &object;
  }
  // Register after the local table so a request racing the registration
  // finds the object hosted. Migration order is host(new) then unhost(old):
  // the directory entry just moves (last-writer-wins), never disappears.
  transport_->directory().add(object.name(), id_);
}

void Node::unhost(const std::string& object_name) {
  {
    std::scoped_lock lock(mu_);
    hosted_.erase(object_name);
  }
  // Conditional removal: after a migration the entry names the new home and
  // this unhost must leave it alone.
  transport_->directory().remove(object_name, id_);
}

RemoteObject Node::remote(NodeId target, const std::string& object_name) {
  return RemoteObject(this, target, object_name);
}

RemoteObject Node::remote(const std::string& object_name) {
  return RemoteObject(this, object_name);
}

Result<ValueList, RpcError> Node::call(const std::string& object,
                                       const std::string& entry,
                                       ValueList params,
                                       const CallOptions& opts) {
  return async_call(object, entry, std::move(params), opts).result();
}

RpcHandle Node::async_call(const std::string& object, const std::string& entry,
                           ValueList params, const CallOptions& opts) {
  return remote(object).async_call(entry, std::move(params), opts);
}

void Node::set_batching(const BatchOptions& options) {
  // Quiesce the old batcher (if any) before swapping: posting threads read
  // batcher_raw_ with acquire ordering, so publish the new one last.
  batcher_raw_.store(nullptr, std::memory_order_release);
  batcher_.reset();
  batcher_ = std::make_unique<FrameBatcher>(
      options, [this](NodeId dst, FrameBuilder frame) {
        // Flushes stay in scatter-gather form all the way to the transport,
        // so batch envelopes ride a socket backend's writev path too.
        transport_->post(id_, dst, frame);
      });
  batcher_raw_.store(batcher_.get(), std::memory_order_release);
}

void Node::flush_batches() {
  if (auto* b = batcher_raw_.load(std::memory_order_acquire)) b->flush_all();
}

FrameBatcher::Stats Node::batch_stats() const {
  if (auto* b = batcher_raw_.load(std::memory_order_acquire)) {
    return b->stats();
  }
  return {};
}

std::optional<NodeId> Node::cached_route(const std::string& object) const {
  std::scoped_lock lock(mu_);
  auto it = route_cache_.find(object);
  if (it == route_cache_.end() || it->second.homes.empty()) {
    return std::nullopt;
  }
  return it->second.primary();
}

void Node::post_frame(NodeId dst, FrameBuilder frame) {
  if (auto* b = batcher_raw_.load(std::memory_order_acquire)) {
    // Hand the scatter-gather form to the batcher: payload slices stay
    // referenced until the envelope's single build (or scattered write).
    b->enqueue(dst, std::move(frame));
    return;
  }
  transport_->post(id_, dst, frame);
}

void Node::post_frame(NodeId dst, std::vector<std::uint8_t> payload) {
  if (auto* b = batcher_raw_.load(std::memory_order_acquire)) {
    b->enqueue(dst, std::move(payload));
    return;
  }
  transport_->post(Frame{id_, dst, std::move(payload)});
}

void Node::export_channel(const ChannelRef& channel) {
  std::scoped_lock lock(mu_);
  exported_channels_[channel->id()] = channel;
}

std::pair<std::uint64_t, std::uint64_t> Node::encode_channel(
    const ChannelRef& channel) {
  std::scoped_lock lock(mu_);
  // A proxy re-encodes as its *home* name so channels can be forwarded
  // through intermediaries; a local channel is exported under this node.
  for (auto& [home, by_id] : proxies_) {
    for (auto& [id, weak] : by_id) {
      if (weak.lock() == channel) return {home, id};
    }
  }
  exported_channels_[channel->id()] = channel;
  return {id_, channel->id()};
}

ChannelRef Node::decode_channel(std::uint64_t node, std::uint64_t id) {
  std::scoped_lock lock(mu_);
  if (node == id_) {
    auto it = exported_channels_.find(id);
    if (it == exported_channels_.end()) {
      raise(ErrorCode::kBadMessage,
            "frame names unknown local channel #" + std::to_string(id));
    }
    return it->second;
  }
  auto& by_id = proxies_[node];
  if (auto it = by_id.find(id); it != by_id.end()) {
    if (auto existing = it->second.lock()) return existing;
  }
  ChannelRef proxy = make_channel("proxy:" + std::to_string(node) + "/" +
                                  std::to_string(id));
  proxy->set_forward([this, node, id](ValueList message) {
    FrameBuilder payload;
    payload.put_u8(static_cast<std::uint8_t>(MsgType::kChanSend));
    payload.put_u64(id);
    encode_list(message, payload, this);
    post_frame(node, std::move(payload));
    return true;
  });
  by_id[id] = proxy;
  return proxy;
}

// ---- client side -----------------------------------------------------------

std::shared_ptr<CallState> Node::start_call(NodeId target,
                                            const std::string& object_name,
                                            const std::string& entry,
                                            ValueList params,
                                            const CallOptions& opts,
                                            std::uint64_t* req_id_out,
                                            std::uint8_t flags) {
  auto state = std::make_shared<CallState>();
  std::uint64_t req_id;
  std::uint64_t ack;
  {
    std::scoped_lock lock(mu_);
    req_id = next_req_++;
    // Watermark: every id <= ack has completed (or failed) locally and will
    // never be retransmitted, so the server may evict its dedup entries.
    // Computed before inserting req_id, so ack < req_id always holds.
    ack = ack_watermark_locked(target);
    outstanding_[target].insert(req_id);
    last_sent_[target] = req_id;
  }
  if (req_id_out) *req_id_out = req_id;

  FrameBuilder payload;
  // Ship the deadline so the serving kernel enforces it at the object, not
  // just this side's retry timer.
  const std::uint64_t deadline_ms =
      opts.deadline.count() > 0
          ? static_cast<std::uint64_t>(opts.deadline.count())
          : 0;
  encode_request_header(
      RequestHeader{req_id, epoch_, ack, deadline_ms, object_name, entry,
                    flags},
      payload);
  encode_list(params, payload, this);  // resolver locks mu_; keep it released

  const auto now = std::chrono::steady_clock::now();
  auto overall = std::chrono::steady_clock::time_point::max();
  if (opts.deadline.count() > 0) overall = now + opts.deadline;
  {
    std::scoped_lock lock(mu_);
    Pending p;
    p.state = state;
    p.target = target;
    p.object = object_name;
    p.label = object_name + "." + entry;
    p.frame = payload;  // re-sendable copy: arena + slice refcounts, O(1)/byte
    p.retry = opts.retry.has_value();
    if (p.retry) {
      p.policy = *opts.retry;
      p.backoff = std::chrono::duration_cast<std::chrono::microseconds>(
          p.policy.initial_backoff);
    }
    p.overall_deadline = overall;
    auto due = std::chrono::steady_clock::time_point::max();
    if (p.retry) due = now + p.policy.attempt_timeout;
    if (overall < due) due = overall;
    pending_.emplace(req_id, std::move(p));
    if (due != std::chrono::steady_clock::time_point::max()) {
      timers_.push(TimerEntry{due, req_id});
    }
  }
  timer_cv_.notify_all();
  post_frame(target, std::move(payload));
  return state;
}

std::shared_ptr<CallState> Node::start_named_call(
    const std::string& object_name, const std::string& entry, ValueList params,
    const CallOptions& opts, std::uint64_t* req_id_out) {
  // Resolve: per-node cache first, then the cluster directory. The cache may
  // be stale after a migration or shard split — that is fine, the wrong node
  // answers with a kWrongNode redirect (shard-precise for sharded entries)
  // and handle_wrong_node re-routes in-band.
  //
  // Sharded/replicated routing hashes the call's first parameter — the
  // paper's "initial subsequence" dispatch, applied to placement — before
  // resolving, so the same key deterministically lands on the same home.
  const std::uint64_t key_hash =
      params.empty() ? 0 : shard_key_hash(params.front());
  std::optional<Placement> placement;
  {
    std::scoped_lock lock(mu_);
    if (auto it = route_cache_.find(object_name); it != route_cache_.end()) {
      placement = it->second;
    }
  }
  if (!placement) {
    placement = transport_->directory().placement(object_name);
    if (placement) {
      std::scoped_lock lock(mu_);
      route_cache_[object_name] = *placement;
    }
  }
  std::optional<NodeId> target;
  if (placement && !placement->homes.empty()) {
    target = placement->route(key_hash, opts.read);
  }
  if (!target) {
    // Nothing in the cluster has ever hosted this name: fail typed without
    // touching the network (attempts = 0 — no frame was sent).
    auto state = std::make_shared<CallState>();
    {
      std::scoped_lock lock(mu_);
      ++client_stats_.failures;
    }
    state->fail(std::make_exception_ptr(
        RpcError(RpcCause::kObjectNotFound,
                 object_name + "." + entry + ": no directory entry", 0)));
    if (req_id_out) *req_id_out = 0;
    return state;
  }
  return start_call(*target, object_name, entry, std::move(params), opts,
                    req_id_out, opts.read ? kRequestFlagReadOnly : 0);
}

std::uint64_t Node::ack_watermark_locked(NodeId target) const {
  std::uint64_t ack = 0;
  auto oit = outstanding_.find(target);
  if (oit != outstanding_.end() && !oit->second.empty()) {
    ack = *oit->second.begin() - 1;
  } else if (auto lit = last_sent_.find(target); lit != last_sent_.end()) {
    // Idle towards this target: nothing at or below the last id we ever sent
    // it can retransmit there...
    ack = lit->second;
  }
  // ...unless a kWrongNode redirect migrates a still-outstanding id onto
  // this link later. Cap at the globally smallest outstanding id so the
  // promise holds across re-routes (without redirects this never lowers the
  // per-target value, preserving the original single-target semantics).
  for (const auto& [node, ids] : outstanding_) {
    if (!ids.empty() && *ids.begin() - 1 < ack) ack = *ids.begin() - 1;
  }
  return ack;
}

std::vector<std::uint8_t> Node::finish_pending_locked(std::uint64_t req_id,
                                                      NodeId target) {
  pending_.erase(req_id);
  std::vector<std::uint8_t> ack;
  auto oit = outstanding_.find(target);
  if (oit != outstanding_.end()) {
    oit->second.erase(req_id);
    if (oit->second.empty()) {
      // Caller went idle towards this target: tell it to evict everything
      // at or below the watermark (nothing there can retransmit).
      encode_ack(ack_watermark_locked(target), ack);
    }
  }
  return ack;
}

void Node::retry_loop(const std::stop_token& st) {
  support::set_current_thread_name("net/retry");
  std::unique_lock lock(mu_);
  while (!st.stop_requested()) {
    if (timers_.empty()) {
      timer_cv_.wait(lock, [&] {
        return st.stop_requested() || !timers_.empty();
      });
      continue;
    }
    const auto due = timers_.top().due;
    if (std::chrono::steady_clock::now() < due) {
      timer_cv_.wait_until(lock, due, [&] {
        return st.stop_requested() ||
               (!timers_.empty() &&
                timers_.top().due <= std::chrono::steady_clock::now());
      });
      continue;
    }
    const std::uint64_t req_id = timers_.top().req_id;
    timers_.pop();
    auto it = pending_.find(req_id);
    if (it == pending_.end() || it->second.state->ready()) continue;  // stale
    Pending& p = it->second;
    const auto now = std::chrono::steady_clock::now();
    const bool attempts_left =
        p.retry &&
        (p.policy.max_attempts == 0 || p.attempts < p.policy.max_attempts);
    if (now >= p.overall_deadline || !attempts_left) {
      auto state = p.state;
      const int attempts = p.attempts;
      const NodeId target = p.target;
      std::string what = p.label + " to node " + std::to_string(target) +
                         " unanswered after " + std::to_string(attempts) +
                         " attempt(s)";
      auto ack = finish_pending_locked(req_id, target);
      ++client_stats_.failures;
      if (!ack.empty()) ++client_stats_.acks_sent;
      const bool partitioned = transport_->is_partitioned(id_, target);
      lock.unlock();
      state->fail(std::make_exception_ptr(
          RpcError(partitioned ? RpcCause::kPartitioned : RpcCause::kTimeout,
                   what, attempts)));
      if (!ack.empty()) post_frame(target, std::move(ack));
      lock.lock();
      continue;
    }
    // Retransmit now; the next timer fires after jittered backoff + the
    // attempt timeout (a TCP-RTO-style growing retransmit interval).
    ++p.attempts;
    ++client_stats_.retransmits;
    const NodeId target = p.target;
    FrameBuilder payload = p.frame;
    double jitter_scale = 1.0;
    if (p.policy.jitter > 0.0) {
      jitter_scale += p.policy.jitter * (rng_.next_double() * 2.0 - 1.0);
    }
    auto backoff = std::chrono::duration_cast<std::chrono::microseconds>(
        p.backoff * jitter_scale);
    auto next_backoff = std::chrono::duration_cast<std::chrono::microseconds>(
        p.backoff * p.policy.multiplier);
    const auto cap = std::chrono::duration_cast<std::chrono::microseconds>(
        p.policy.max_backoff);
    p.backoff = next_backoff < cap ? next_backoff : cap;
    auto next_due = now + backoff + p.policy.attempt_timeout;
    if (p.overall_deadline < next_due) next_due = p.overall_deadline;
    timers_.push(TimerEntry{next_due, req_id});
    lock.unlock();
    post_frame(target, std::move(payload));
    lock.lock();
  }
}

void Node::cancel_request(std::uint64_t req_id) {
  std::shared_ptr<CallState> state;
  std::string label;
  NodeId target = 0;
  std::vector<std::uint8_t> ack;
  {
    std::scoped_lock lock(mu_);
    auto it = pending_.find(req_id);
    if (it == pending_.end()) return;  // already answered
    state = it->second.state;
    label = it->second.label;
    target = it->second.target;
    ack = finish_pending_locked(req_id, target);
    ++client_stats_.failures;
    if (!ack.empty()) ++client_stats_.acks_sent;
  }
  state->fail(std::make_exception_ptr(RpcError(
      RpcCause::kCancelled,
      label + ": request #" + std::to_string(req_id) + " cancelled")));
  if (!ack.empty()) post_frame(target, std::move(ack));
}

// ---- frame dispatch --------------------------------------------------------

void Node::dispatch_payload(NodeId from, const Buffer& payload,
                            bool batched) {
  std::size_t pos = 0;
  try {
    const auto type = static_cast<MsgType>(get_u8(payload, pos));
    switch (type) {
      case MsgType::kRequest:
        handle_request(from, payload, pos);
        return;
      case MsgType::kResponse:
        handle_response(from, payload, pos);
        return;
      case MsgType::kChanSend:
        handle_chan_send(payload, pos);
        return;
      case MsgType::kAck:
        handle_ack(from, payload, pos);
        return;
      case MsgType::kWrongNode:
        handle_wrong_node(from, payload, pos);
        return;
      case MsgType::kBatch: {
        if (batched) raise(ErrorCode::kBadMessage, "nested batch frame");
        // Members dispatch in order, preserving the link's FIFO semantics.
        // Each member is its own dispatch: one malformed member is dropped
        // without taking down its batch-mates.
        const auto members = decode_batch_slices(payload, pos);
        for (const auto& member : members) {
          dispatch_payload(from, member, /*batched=*/true);
        }
        return;
      }
    }
    raise(ErrorCode::kBadMessage, "unknown frame type");
  } catch (const Error& e) {
    ALPS_LOG_WARN("node %s: dropping bad frame from %llu: %s", name_.c_str(),
                  static_cast<unsigned long long>(from), e.what());
  }
}

void Node::handle_wrong_node(NodeId /*from*/, const Buffer& payload,
                             std::size_t pos) {
  const WrongNodeHeader header = decode_wrong_node(payload, pos);
  std::shared_ptr<CallState> failed_state;
  std::string failed_what;
  int failed_attempts = 1;
  std::vector<std::uint8_t> ack;
  NodeId ack_target = 0;
  FrameBuilder resend;
  {
    std::scoped_lock lock(mu_);
    // The redirect carries fresh placement news; fold it into the route
    // cache even if the call it answers is already gone. A shard hint
    // patches exactly one slot of the cached map — per-key convergence with
    // no global barrier — while a shard-less hint re-homes the whole object.
    auto cit = route_cache_.find(header.object);
    if (header.shard == kWrongNodeNoShard) {
      const bool cached_multi = cit != route_cache_.end() &&
                                cit->second.mode != PlacementMode::kSingle;
      if (!cached_multi ||
          (cit != route_cache_.end() &&
           header.map_epoch > cit->second.epoch)) {
        // Whole-object re-home (classic migration), or news strictly newer
        // than the cached multi-home map. A stale-epoch shard-less hint must
        // NOT collapse a fresher shard/replica map to one node — the one
        // request still re-routes below; the map stays.
        Placement p;
        p.mode = PlacementMode::kSingle;
        p.homes = {header.home};
        p.epoch = header.map_epoch;
        route_cache_[header.object] = std::move(p);
      }
    } else if (cit != route_cache_.end() &&
               cit->second.mode == PlacementMode::kSharded &&
               header.map_epoch >= cit->second.epoch) {
      // Patch the hinted slot. A hint past the cached map's end means the
      // map grew (shard split): extend it, guessing the old layout for the
      // unknown new slots — wrong guesses self-heal one redirect per key,
      // and jump hashing keeps every unmoved key's old slot valid.
      Placement& p = cit->second;
      if (header.shard >= p.homes.size()) {
        p.homes.resize(header.shard + 1, p.homes.front());
      }
      p.homes[header.shard] = header.home;
      p.epoch = header.map_epoch;
    } else if (cit == route_cache_.end() ||
               cit->second.mode == PlacementMode::kSingle) {
      // First shard-precise news for a map we believed single-homed: build a
      // minimal sharded view around the hint and let redirects fill it in.
      const NodeId fallback = cit != route_cache_.end()
                                  ? cit->second.primary()
                                  : header.home;
      Placement p;
      p.mode = PlacementMode::kSharded;
      p.homes.assign(header.shard + 1, fallback);
      p.homes[header.shard] = header.home;
      p.epoch = header.map_epoch;
      route_cache_[header.object] = std::move(p);
    } else {
      // Shard hint against a cached replicated map (placement mode changed
      // under us): drop the entry and re-resolve from the directory next
      // call rather than guess.
      route_cache_.erase(cit);
    }
    auto it = pending_.find(header.req_id);
    if (it == pending_.end()) {
      ++client_stats_.stale_responses;
      return;
    }
    Pending& p = it->second;
    if (p.target == header.home) {
      // Duplicate redirect for a re-route already taken: the retry timer
      // owns retransmission towards the new home, nothing to do.
      return;
    }
    if (p.redirects >= kMaxRedirects) {
      failed_state = p.state;
      failed_attempts = p.attempts;
      failed_what = p.label + ": routing did not converge after " +
                    std::to_string(p.redirects) + " redirects";
      ack_target = p.target;
      ack = finish_pending_locked(header.req_id, ack_target);
      ++client_stats_.failures;
      if (!ack.empty()) ++client_stats_.acks_sent;
    } else {
      // Migrate the outstanding id old link → new link. The dedup key
      // (req_id, epoch) in the stored frame is untouched; only the
      // piggybacked ack is re-patched, and only after the id is registered
      // against the new target so the watermark can never cover it.
      ++p.redirects;
      ++client_stats_.redirects;
      auto oit = outstanding_.find(p.target);
      if (oit != outstanding_.end()) oit->second.erase(header.req_id);
      p.target = header.home;
      outstanding_[header.home].insert(header.req_id);
      auto& last = last_sent_[header.home];
      if (last < header.req_id) last = header.req_id;
      patch_request_ack(p.frame, ack_watermark_locked(header.home));
      resend = p.frame;  // the retry timer keeps covering loss of this copy
    }
  }
  if (failed_state) {
    failed_state->fail(std::make_exception_ptr(RpcError(
        RpcCause::kObjectNotFound, failed_what, failed_attempts)));
    if (!ack.empty()) post_frame(ack_target, std::move(ack));
    return;
  }
  post_frame(header.home, std::move(resend));
}

// ---- server side -----------------------------------------------------------

void Node::evict_dedup_locked(CallerTable& table, std::uint64_t ack_through) {
  if (ack_through > table.acked_through) table.acked_through = ack_through;
  auto it = table.entries.begin();
  while (it != table.entries.end() && it->first <= ack_through) {
    it = table.entries.erase(it);
    ++server_stats_.dedup_evicted;
  }
}

void Node::shrink_dedup_locked(CallerTable& table) {
  // Oldest-first over *done* entries only; bound_evicted_through remembers
  // the newest id dropped this way so its retransmission is refused typed
  // (handle_request) instead of silently re-executed.
  auto it = table.entries.begin();
  while (it != table.entries.end() &&
         table.entries.size() > kMaxDedupPerCaller) {
    if (it->second.done) {
      if (it->first > table.bound_evicted_through) {
        table.bound_evicted_through = it->first;
      }
      it = table.entries.erase(it);
      ++server_stats_.dedup_evicted;
    } else {
      ++it;
    }
  }
}

void Node::handle_request(NodeId from, const Buffer& payload,
                          std::size_t pos) {
  const RequestHeader header = decode_request_header(payload, pos);
  ValueList params = decode_list(payload, pos, this);

  // Ownership check for multi-home placements: hosting the name is not
  // enough — this node must be the key's shard home (or, for a read of a
  // replicated entry, any member). Computed against the live directory
  // before taking mu_ (the directory has its own lock; never nest them).
  const bool read_only = (header.flags & kRequestFlagReadOnly) != 0;
  const std::uint64_t key_hash =
      params.empty() ? 0 : shard_key_hash(params.front());
  const auto decision =
      transport_->directory().route(header.object, key_hash, read_only, id_);
  bool owner = true;
  if (decision) {
    switch (decision->mode) {
      case PlacementMode::kSingle:
        // Hosting wins over a (possibly stale-replica) directory entry —
        // preserves migration semantics where host(new) precedes the
        // directory catching up on other replicas.
        owner = true;
        break;
      case PlacementMode::kSharded:
        owner = decision->home == id_;
        break;
      case PlacementMode::kReplicated:
        owner = read_only ? decision->member : decision->home == id_;
        break;
    }
  }

  // At-most-once gate: a retransmission of an executed request replays the
  // cached response; one still executing is dropped (its response will go
  // out when the body finishes). Only a first arrival of a locally hosted
  // object dispatches — misrouted requests leave no dedup state at all.
  FrameBuilder replay;
  std::vector<std::uint8_t> reject;
  bool in_flight_dup = false;
  Object* object = nullptr;
  {
    std::scoped_lock lock(mu_);
    ++server_stats_.requests_received;
    auto& table = dedup_[from];
    if (table.epoch != header.epoch) {
      // New caller incarnation: its req_ids restart, so the old cache is
      // not just stale but wrong. Flush it.
      server_stats_.dedup_evicted += table.entries.size();
      table.entries.clear();
      table.acked_through = 0;
      table.bound_evicted_through = 0;
      table.epoch = header.epoch;
    }
    evict_dedup_locked(table, header.ack_through);
    if (header.req_id <= table.acked_through) {
      // A network-level duplicate of a call the caller already acked: its
      // dedup entry is gone, but the ack guarantees the caller has the
      // result, so re-executing would break at-most-once. Drop it.
      ++server_stats_.dup_acked;
      return;
    }
    if (auto it = table.entries.find(header.req_id);
        it != table.entries.end()) {
      if (it->second.done) {
        replay = it->second.response;
        replay.patch_u8_or(kResponseFlagsOffset, kResponseFlagReplayed);
        ++server_stats_.dedup_replayed;
      } else {
        ++server_stats_.dup_in_flight;
        in_flight_dup = true;
      }
    } else if (header.req_id <= table.bound_evicted_through) {
      // The size-bound backstop discarded this id's entry while un-acked, so
      // its body may already have run and the cached response is gone.
      // Refuse typed rather than re-dispatch — at-most-once beats availability
      // here, and only a pathological (ack-less) caller can reach this.
      ++server_stats_.dedup_rejected;
      encode_response_header(
          ResponseHeader{header.req_id, WireCause::kRemoteError, 0}, reject);
      put_string(reject,
                 "at-most-once entry evicted under the per-caller bound; "
                 "result unknown, refusing to re-execute");
    } else if (auto hit = hosted_.find(header.object);
               hit != hosted_.end() && owner) {
      object = hit->second;
      table.entries.emplace(header.req_id, DedupEntry{});
      // Backstop for ack-less callers: drop oldest completed entries.
      shrink_dedup_locked(table);
    }
    // Not hosted — or hosted but not this key's owner (stale shard map on
    // the caller): fall through with object == nullptr; the redirect /
    // not-found answer is stateless (no dedup entry), so a duplicate just
    // earns another redirect and the table never learns misrouted ids.
  }
  if (in_flight_dup) return;
  if (!replay.empty()) {
    post_frame(from, std::move(replay));
    return;
  }
  if (!reject.empty()) {
    post_frame(from, std::move(reject));
    return;
  }
  if (!object) {
    std::vector<std::uint8_t> out;
    if (decision && decision->home != id_) {
      // The directory knows a better home for this key: redirect instead of
      // failing, so a stale client route heals in one extra hop. The hint
      // is shard-precise (shard index + map epoch) so a client with a stale
      // shard map patches exactly one slot — a live split converges key by
      // key with no global barrier.
      encode_wrong_node(WrongNodeHeader{header.req_id, decision->home,
                                        header.object, decision->shard,
                                        decision->epoch},
                        out);
      std::scoped_lock lock(mu_);
      ++server_stats_.wrong_node_redirects;
    } else {
      encode_response_header(
          ResponseHeader{header.req_id, WireCause::kObjectNotFound, 0}, out);
      put_string(out, "no such object: " + header.object);
    }
    post_frame(from, std::move(out));
    return;
  }

  auto respond = [this, from, req_id = header.req_id, epoch = header.epoch](
                     WireCause cause, ValueList results,
                     const std::string& error) {
    FrameBuilder out;
    encode_response_header(ResponseHeader{req_id, cause, 0}, out);
    if (cause == WireCause::kOk) {
      encode_list(results, out, this);
    } else {
      out.put_string(error);
    }
    {
      std::scoped_lock lock(mu_);
      auto dit = dedup_.find(from);
      if (dit != dedup_.end() && dit->second.epoch == epoch) {
        if (auto eit = dit->second.entries.find(req_id);
            eit != dit->second.entries.end()) {
          eit->second.done = true;
          eit->second.response = out;
        }
        // The insert-time bound cannot evict in-flight entries, so a burst
        // from an ack-less caller can overrun the cap; shrink back as the
        // bodies complete.
        shrink_dedup_locked(dit->second);
      }
    }
    post_frame(from, std::move(out));
  };

  // Typed kernel failures cross the wire as their own causes; everything
  // else (entry body threw, no such entry, object stopped) stays
  // kRemoteError.
  auto wire_cause_of = [](const Error& e) {
    switch (e.code()) {
      case ErrorCode::kTimeout: return WireCause::kTimeout;
      case ErrorCode::kCancelled: return WireCause::kCancelled;
      case ErrorCode::kObjectDown: return WireCause::kObjectDown;
      default: return WireCause::kRemoteError;
    }
  };

  CallHandle handle;
  try {
    // Apply the caller's deadline inside the serving kernel: the hosted call
    // is unqueued/abandoned on expiry and the timeout travels back typed.
    alps::CallOptions kernel_opts;
    if (header.deadline_ms > 0) {
      kernel_opts.deadline = std::chrono::milliseconds(header.deadline_ms);
    }
    handle = kernel_opts.none()
                 ? object->async_call(header.entry, std::move(params))
                 : object->async_call(header.entry, std::move(params),
                                      kernel_opts);
    std::scoped_lock lock(mu_);
    ++server_stats_.dispatched;
  } catch (const Error& e) {
    respond(wire_cause_of(e), {}, e.what());
    return;
  } catch (const std::exception& e) {
    respond(WireCause::kRemoteError, {}, e.what());
    return;
  }
  // Send the response from whichever thread completes the call (typically
  // the object's manager at finish); posting a frame never blocks.
  handle.state()->on_complete([respond, wire_cause_of](CallState& state) {
    try {
      respond(WireCause::kOk, state.get(), "");
    } catch (const Error& e) {
      respond(wire_cause_of(e), {}, e.what());
    } catch (const std::exception& e) {
      respond(WireCause::kRemoteError, {}, e.what());
    }
  });
}

void Node::handle_response(NodeId from, const Buffer& payload,
                           std::size_t pos) {
  const ResponseHeader header = decode_response_header(payload, pos);
  // Decode the body before touching bookkeeping so a corrupt frame cannot
  // orphan the pending entry (the retry timer keeps owning it).
  ValueList results;
  std::string error;
  if (header.cause == WireCause::kOk) {
    results = decode_list(payload, pos, this);
  } else {
    error = get_string(payload, pos);
  }
  std::shared_ptr<CallState> state;
  int attempts = 1;
  std::vector<std::uint8_t> ack;
  {
    std::scoped_lock lock(mu_);
    auto it = pending_.find(header.req_id);
    if (it == pending_.end()) {
      // Late (post-timeout/cancel), duplicate, or post-shutdown response:
      // req_ids are never reused, so dropping it is always correct.
      ++client_stats_.stale_responses;
      return;
    }
    state = it->second.state;
    attempts = it->second.attempts;
    if (header.cause == WireCause::kObjectNotFound) {
      // The route we used no longer serves this object and the directory
      // had nothing better (a redirect would have come instead). Drop the
      // cached route so the next name-based call re-resolves.
      auto rit = route_cache_.find(it->second.object);
      if (rit != route_cache_.end() && rit->second.contains(from)) {
        route_cache_.erase(rit);
      }
    }
    ack = finish_pending_locked(header.req_id, from);
    if (!ack.empty()) ++client_stats_.acks_sent;
  }
  if (header.cause == WireCause::kOk) {
    state->complete(std::move(results));
  } else {
    RpcCause cause = RpcCause::kRemoteError;
    switch (header.cause) {
      case WireCause::kObjectNotFound: cause = RpcCause::kObjectNotFound; break;
      case WireCause::kTimeout: cause = RpcCause::kTimeout; break;
      case WireCause::kCancelled: cause = RpcCause::kCancelled; break;
      case WireCause::kObjectDown: cause = RpcCause::kObjectDown; break;
      default: break;
    }
    state->fail(std::make_exception_ptr(RpcError(cause, error, attempts)));
  }
  if (!ack.empty()) post_frame(from, std::move(ack));
}

void Node::handle_ack(NodeId from, const Buffer& payload,
                      std::size_t pos) {
  const std::uint64_t ack_through = decode_ack(payload, pos);
  std::scoped_lock lock(mu_);
  auto it = dedup_.find(from);
  if (it == dedup_.end()) return;
  evict_dedup_locked(it->second, ack_through);
}

void Node::handle_chan_send(const Buffer& payload, std::size_t pos) {
  const std::uint64_t chan_id = get_u64(payload, pos);
  ValueList message = decode_list(payload, pos, this);
  ChannelRef channel;
  {
    std::scoped_lock lock(mu_);
    auto it = exported_channels_.find(chan_id);
    if (it == exported_channels_.end()) {
      raise(ErrorCode::kBadMessage,
            "chan-send for unknown channel #" + std::to_string(chan_id));
    }
    channel = it->second;
  }
  channel->send(std::move(message));
}

std::size_t Node::inflight() const {
  std::scoped_lock lock(mu_);
  return pending_.size();
}

Node::ServerStats Node::server_stats() const {
  std::scoped_lock lock(mu_);
  return server_stats_;
}

Node::ClientStats Node::client_stats() const {
  std::scoped_lock lock(mu_);
  return client_stats_;
}

std::size_t Node::dedup_entries(NodeId caller) const {
  std::scoped_lock lock(mu_);
  auto it = dedup_.find(caller);
  return it == dedup_.end() ? 0 : it->second.entries.size();
}

}  // namespace alps::net
