#include "net/rpc.h"

#include <atomic>

#include "core/error.h"
#include "support/log.h"
#include "support/thread_util.h"

namespace alps::net {

namespace {

/// Upper bound on cached at-most-once entries per caller. Acks normally keep
/// tables tiny; the bound is the backstop for a caller that never acks
/// (entries with responses already sent are evicted oldest-first).
constexpr std::size_t kMaxDedupPerCaller = 256;

/// Dedup epochs distinguish distinct Node incarnations, so a fresh node
/// whose req_ids restart at 1 can never be answered from a predecessor's
/// cached responses.
std::atomic<std::uint64_t> g_next_epoch{1};

}  // namespace

const char* to_string(RpcCause cause) {
  switch (cause) {
    case RpcCause::kTimeout: return "rpc timeout";
    case RpcCause::kPartitioned: return "rpc partitioned";
    case RpcCause::kObjectNotFound: return "rpc object not found";
    case RpcCause::kRemoteError: return "rpc remote error";
    case RpcCause::kCancelled: return "rpc cancelled";
    case RpcCause::kShutdown: return "rpc node shutdown";
    case RpcCause::kObjectDown: return "rpc object down";
  }
  return "rpc error";
}

Result<ValueList, RpcError> RpcHandle::result() {
  try {
    return state_->get();
  } catch (const RpcError& e) {
    return e;
  } catch (const Error& e) {
    // Non-RPC Error escaping the wire layer (should not happen) — surface
    // as a remote error rather than throwing through the no-throw surface.
    return RpcError(RpcCause::kRemoteError, e.what());
  }
}

void RpcHandle::cancel() {
  if (node_) node_->cancel_request(req_id_);
}

// ---- RemoteObject ----------------------------------------------------------

RpcHandle RemoteObject::async_call(const std::string& entry, ValueList params,
                                   const CallOptions& opts) {
  if (!node_) raise(ErrorCode::kNetwork, "invalid RemoteObject");
  std::uint64_t req_id = 0;
  auto state = node_->start_call(target_, object_name_, entry,
                                 std::move(params), opts, &req_id);
  return RpcHandle(std::move(state), node_, req_id);
}

Result<ValueList, RpcError> RemoteObject::call(const std::string& entry,
                                               ValueList params,
                                               const CallOptions& opts) {
  return async_call(entry, std::move(params), opts).result();
}

ValueList RemoteObject::call(const std::string& entry, ValueList params) {
  auto r = call(entry, std::move(params), CallOptions{});
  if (!r.ok()) throw r.error();
  return std::move(r).value();
}

CallHandle RemoteObject::async_call(const std::string& entry,
                                    ValueList params) {
  return async_call(entry, std::move(params), CallOptions{}).handle();
}

std::optional<ValueList> RemoteObject::call_for(
    const std::string& entry, ValueList params,
    std::chrono::milliseconds timeout) {
  CallOptions opts;
  opts.deadline = timeout;
  auto r = call(entry, std::move(params), opts);
  if (!r.ok()) return std::nullopt;
  return std::move(r).value();
}

// ---- Node lifecycle --------------------------------------------------------

Node::Node(Network& network, const std::string& name)
    : network_(&network),
      name_(name),
      epoch_(g_next_epoch.fetch_add(1, std::memory_order_relaxed)),
      rng_(std::hash<std::string>{}(name) ^ 0x414c50534e455455ull) {
  id_ = network.add_node(name);
  network.set_handler(id_, [this](Frame f) { handle_frame(std::move(f)); });
  timer_thread_ = std::jthread([this](std::stop_token st) { retry_loop(st); });
}

Node::~Node() {
  // Deregister so late frames are counted as drops instead of running into
  // a destroyed node.
  network_->set_handler(id_, nullptr);
  timer_thread_.request_stop();
  {
    std::scoped_lock lock(mu_);  // pairs with the retry loop's wait
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  // Fail anything still waiting for a response.
  std::vector<std::pair<std::shared_ptr<CallState>, std::string>> orphans;
  {
    std::scoped_lock lock(mu_);
    for (auto& [req, p] : pending_) orphans.emplace_back(p.state, p.label);
    pending_.clear();
    outstanding_.clear();
  }
  for (auto& [state, label] : orphans) {
    state->fail(std::make_exception_ptr(RpcError(
        RpcCause::kShutdown, label + ": node " + name_ + " shut down")));
  }
}

void Node::host(Object& object) {
  std::scoped_lock lock(mu_);
  hosted_[object.name()] = &object;
}

void Node::unhost(const std::string& object_name) {
  std::scoped_lock lock(mu_);
  hosted_.erase(object_name);
}

RemoteObject Node::remote(NodeId target, const std::string& object_name) {
  return RemoteObject(this, target, object_name);
}

void Node::export_channel(const ChannelRef& channel) {
  std::scoped_lock lock(mu_);
  exported_channels_[channel->id()] = channel;
}

std::pair<std::uint64_t, std::uint64_t> Node::encode_channel(
    const ChannelRef& channel) {
  std::scoped_lock lock(mu_);
  // A proxy re-encodes as its *home* name so channels can be forwarded
  // through intermediaries; a local channel is exported under this node.
  for (auto& [home, by_id] : proxies_) {
    for (auto& [id, weak] : by_id) {
      if (weak.lock() == channel) return {home, id};
    }
  }
  exported_channels_[channel->id()] = channel;
  return {id_, channel->id()};
}

ChannelRef Node::decode_channel(std::uint64_t node, std::uint64_t id) {
  std::scoped_lock lock(mu_);
  if (node == id_) {
    auto it = exported_channels_.find(id);
    if (it == exported_channels_.end()) {
      raise(ErrorCode::kBadMessage,
            "frame names unknown local channel #" + std::to_string(id));
    }
    return it->second;
  }
  auto& by_id = proxies_[node];
  if (auto it = by_id.find(id); it != by_id.end()) {
    if (auto existing = it->second.lock()) return existing;
  }
  ChannelRef proxy = make_channel("proxy:" + std::to_string(node) + "/" +
                                  std::to_string(id));
  proxy->set_forward([this, node, id](ValueList message) {
    std::vector<std::uint8_t> payload;
    put_u8(payload, static_cast<std::uint8_t>(MsgType::kChanSend));
    put_u64(payload, id);
    encode_list(message, payload, this);
    network_->post(Frame{id_, node, std::move(payload)});
    return true;
  });
  by_id[id] = proxy;
  return proxy;
}

// ---- client side -----------------------------------------------------------

std::shared_ptr<CallState> Node::start_call(NodeId target,
                                            const std::string& object_name,
                                            const std::string& entry,
                                            ValueList params,
                                            const CallOptions& opts,
                                            std::uint64_t* req_id_out) {
  auto state = std::make_shared<CallState>();
  std::uint64_t req_id;
  std::uint64_t ack;
  {
    std::scoped_lock lock(mu_);
    req_id = next_req_++;
    auto& out = outstanding_[target];
    // Watermark: every id <= ack has completed (or failed) locally and will
    // never be retransmitted, so the server may evict its dedup entries.
    ack = out.empty() ? last_sent_[target] : *out.begin() - 1;
    out.insert(req_id);
    last_sent_[target] = req_id;
  }
  if (req_id_out) *req_id_out = req_id;

  std::vector<std::uint8_t> payload;
  // Ship the deadline so the serving kernel enforces it at the object, not
  // just this side's retry timer.
  const std::uint64_t deadline_ms =
      opts.deadline.count() > 0
          ? static_cast<std::uint64_t>(opts.deadline.count())
          : 0;
  encode_request_header(
      RequestHeader{req_id, epoch_, ack, deadline_ms, object_name, entry},
      payload);
  encode_list(params, payload, this);  // resolver locks mu_; keep it released

  const auto now = std::chrono::steady_clock::now();
  auto overall = std::chrono::steady_clock::time_point::max();
  if (opts.deadline.count() > 0) overall = now + opts.deadline;
  {
    std::scoped_lock lock(mu_);
    Pending p;
    p.state = state;
    p.target = target;
    p.label = object_name + "." + entry;
    p.payload = payload;  // keep a re-sendable copy
    p.retry = opts.retry.has_value();
    if (p.retry) {
      p.policy = *opts.retry;
      p.backoff = std::chrono::duration_cast<std::chrono::microseconds>(
          p.policy.initial_backoff);
    }
    p.overall_deadline = overall;
    auto due = std::chrono::steady_clock::time_point::max();
    if (p.retry) due = now + p.policy.attempt_timeout;
    if (overall < due) due = overall;
    pending_.emplace(req_id, std::move(p));
    if (due != std::chrono::steady_clock::time_point::max()) {
      timers_.push(TimerEntry{due, req_id});
    }
  }
  timer_cv_.notify_all();
  network_->post(Frame{id_, target, std::move(payload)});
  return state;
}

std::vector<std::uint8_t> Node::finish_pending_locked(std::uint64_t req_id,
                                                      NodeId target) {
  pending_.erase(req_id);
  std::vector<std::uint8_t> ack;
  auto oit = outstanding_.find(target);
  if (oit != outstanding_.end()) {
    oit->second.erase(req_id);
    if (oit->second.empty()) {
      // Caller went idle towards this target: tell it to evict everything
      // up to the last id we ever sent it (nothing below can retransmit).
      encode_ack(last_sent_[target], ack);
    }
  }
  return ack;
}

void Node::retry_loop(const std::stop_token& st) {
  support::set_current_thread_name("net/retry");
  std::unique_lock lock(mu_);
  while (!st.stop_requested()) {
    if (timers_.empty()) {
      timer_cv_.wait(lock, [&] {
        return st.stop_requested() || !timers_.empty();
      });
      continue;
    }
    const auto due = timers_.top().due;
    if (std::chrono::steady_clock::now() < due) {
      timer_cv_.wait_until(lock, due, [&] {
        return st.stop_requested() ||
               (!timers_.empty() &&
                timers_.top().due <= std::chrono::steady_clock::now());
      });
      continue;
    }
    const std::uint64_t req_id = timers_.top().req_id;
    timers_.pop();
    auto it = pending_.find(req_id);
    if (it == pending_.end() || it->second.state->ready()) continue;  // stale
    Pending& p = it->second;
    const auto now = std::chrono::steady_clock::now();
    const bool attempts_left =
        p.retry &&
        (p.policy.max_attempts == 0 || p.attempts < p.policy.max_attempts);
    if (now >= p.overall_deadline || !attempts_left) {
      auto state = p.state;
      const int attempts = p.attempts;
      const NodeId target = p.target;
      std::string what = p.label + " to node " + std::to_string(target) +
                         " unanswered after " + std::to_string(attempts) +
                         " attempt(s)";
      auto ack = finish_pending_locked(req_id, target);
      ++client_stats_.failures;
      if (!ack.empty()) ++client_stats_.acks_sent;
      const bool partitioned = network_->is_partitioned(id_, target);
      lock.unlock();
      state->fail(std::make_exception_ptr(
          RpcError(partitioned ? RpcCause::kPartitioned : RpcCause::kTimeout,
                   what, attempts)));
      if (!ack.empty()) network_->post(Frame{id_, target, std::move(ack)});
      lock.lock();
      continue;
    }
    // Retransmit now; the next timer fires after jittered backoff + the
    // attempt timeout (a TCP-RTO-style growing retransmit interval).
    ++p.attempts;
    ++client_stats_.retransmits;
    const NodeId target = p.target;
    std::vector<std::uint8_t> payload = p.payload;
    double jitter_scale = 1.0;
    if (p.policy.jitter > 0.0) {
      jitter_scale += p.policy.jitter * (rng_.next_double() * 2.0 - 1.0);
    }
    auto backoff = std::chrono::duration_cast<std::chrono::microseconds>(
        p.backoff * jitter_scale);
    auto next_backoff = std::chrono::duration_cast<std::chrono::microseconds>(
        p.backoff * p.policy.multiplier);
    const auto cap = std::chrono::duration_cast<std::chrono::microseconds>(
        p.policy.max_backoff);
    p.backoff = next_backoff < cap ? next_backoff : cap;
    auto next_due = now + backoff + p.policy.attempt_timeout;
    if (p.overall_deadline < next_due) next_due = p.overall_deadline;
    timers_.push(TimerEntry{next_due, req_id});
    lock.unlock();
    network_->post(Frame{id_, target, std::move(payload)});
    lock.lock();
  }
}

void Node::cancel_request(std::uint64_t req_id) {
  std::shared_ptr<CallState> state;
  std::string label;
  NodeId target = 0;
  std::vector<std::uint8_t> ack;
  {
    std::scoped_lock lock(mu_);
    auto it = pending_.find(req_id);
    if (it == pending_.end()) return;  // already answered
    state = it->second.state;
    label = it->second.label;
    target = it->second.target;
    ack = finish_pending_locked(req_id, target);
    ++client_stats_.failures;
    if (!ack.empty()) ++client_stats_.acks_sent;
  }
  state->fail(std::make_exception_ptr(RpcError(
      RpcCause::kCancelled,
      label + ": request #" + std::to_string(req_id) + " cancelled")));
  if (!ack.empty()) network_->post(Frame{id_, target, std::move(ack)});
}

// ---- frame dispatch --------------------------------------------------------

void Node::handle_frame(Frame frame) {
  std::size_t pos = 0;
  try {
    const auto type = static_cast<MsgType>(get_u8(frame.payload, pos));
    switch (type) {
      case MsgType::kRequest:
        handle_request(frame.src, frame.payload, pos);
        return;
      case MsgType::kResponse:
        handle_response(frame.src, frame.payload, pos);
        return;
      case MsgType::kChanSend:
        handle_chan_send(frame.payload, pos);
        return;
      case MsgType::kAck:
        handle_ack(frame.src, frame.payload, pos);
        return;
    }
    raise(ErrorCode::kBadMessage, "unknown frame type");
  } catch (const Error& e) {
    ALPS_LOG_WARN("node %s: dropping bad frame from %llu: %s", name_.c_str(),
                  static_cast<unsigned long long>(frame.src), e.what());
  }
}

// ---- server side -----------------------------------------------------------

void Node::evict_dedup_locked(CallerTable& table, std::uint64_t ack_through) {
  if (ack_through > table.acked_through) table.acked_through = ack_through;
  auto it = table.entries.begin();
  while (it != table.entries.end() && it->first <= ack_through) {
    it = table.entries.erase(it);
    ++server_stats_.dedup_evicted;
  }
}

void Node::handle_request(NodeId from, const std::vector<std::uint8_t>& payload,
                          std::size_t pos) {
  const RequestHeader header = decode_request_header(payload, pos);
  ValueList params = decode_list(payload, pos, this);

  // At-most-once gate: a retransmission of an executed request replays the
  // cached response; one still executing is dropped (its response will go
  // out when the body finishes). Only a first arrival dispatches.
  std::vector<std::uint8_t> replay;
  bool in_flight_dup = false;
  {
    std::scoped_lock lock(mu_);
    ++server_stats_.requests_received;
    auto& table = dedup_[from];
    if (table.epoch != header.epoch) {
      // New caller incarnation: its req_ids restart, so the old cache is
      // not just stale but wrong. Flush it.
      server_stats_.dedup_evicted += table.entries.size();
      table.entries.clear();
      table.acked_through = 0;
      table.epoch = header.epoch;
    }
    evict_dedup_locked(table, header.ack_through);
    if (header.req_id <= table.acked_through) {
      // A network-level duplicate of a call the caller already acked: its
      // dedup entry is gone, but the ack guarantees the caller has the
      // result, so re-executing would break at-most-once. Drop it.
      ++server_stats_.dup_acked;
      return;
    }
    if (auto it = table.entries.find(header.req_id);
        it != table.entries.end()) {
      if (it->second.done) {
        replay = it->second.response;
        replay[kResponseFlagsOffset] |= kResponseFlagReplayed;
        ++server_stats_.dedup_replayed;
      } else {
        ++server_stats_.dup_in_flight;
        in_flight_dup = true;
      }
    } else {
      table.entries.emplace(header.req_id, DedupEntry{});
      if (table.entries.size() > kMaxDedupPerCaller) {
        // Backstop for ack-less callers: drop oldest completed entries.
        for (auto eit = table.entries.begin();
             eit != table.entries.end() &&
             table.entries.size() > kMaxDedupPerCaller;) {
          if (eit->second.done) {
            eit = table.entries.erase(eit);
            ++server_stats_.dedup_evicted;
          } else {
            ++eit;
          }
        }
      }
    }
  }
  if (in_flight_dup) return;
  if (!replay.empty()) {
    network_->post(Frame{id_, from, std::move(replay)});
    return;
  }

  auto respond = [this, from, req_id = header.req_id, epoch = header.epoch](
                     WireCause cause, ValueList results,
                     const std::string& error) {
    std::vector<std::uint8_t> out;
    encode_response_header(ResponseHeader{req_id, cause, 0}, out);
    if (cause == WireCause::kOk) {
      encode_list(results, out, this);
    } else {
      put_string(out, error);
    }
    {
      std::scoped_lock lock(mu_);
      auto dit = dedup_.find(from);
      if (dit != dedup_.end() && dit->second.epoch == epoch) {
        if (auto eit = dit->second.entries.find(req_id);
            eit != dit->second.entries.end()) {
          eit->second.done = true;
          eit->second.response = out;
        }
        // The insert-time bound cannot evict in-flight entries, so a burst
        // from an ack-less caller can overrun the cap; shrink back as the
        // bodies complete.
        auto& entries = dit->second.entries;
        for (auto bit = entries.begin();
             bit != entries.end() && entries.size() > kMaxDedupPerCaller;) {
          if (bit->second.done) {
            bit = entries.erase(bit);
            ++server_stats_.dedup_evicted;
          } else {
            ++bit;
          }
        }
      }
    }
    network_->post(Frame{id_, from, std::move(out)});
  };

  Object* object = nullptr;
  {
    std::scoped_lock lock(mu_);
    auto it = hosted_.find(header.object);
    if (it != hosted_.end()) object = it->second;
  }
  if (!object) {
    respond(WireCause::kObjectNotFound, {},
            "no such object: " + header.object);
    return;
  }

  // Typed kernel failures cross the wire as their own causes; everything
  // else (entry body threw, no such entry, object stopped) stays
  // kRemoteError.
  auto wire_cause_of = [](const Error& e) {
    switch (e.code()) {
      case ErrorCode::kTimeout: return WireCause::kTimeout;
      case ErrorCode::kCancelled: return WireCause::kCancelled;
      case ErrorCode::kObjectDown: return WireCause::kObjectDown;
      default: return WireCause::kRemoteError;
    }
  };

  CallHandle handle;
  try {
    // Apply the caller's deadline inside the serving kernel: the hosted call
    // is unqueued/abandoned on expiry and the timeout travels back typed.
    alps::CallOptions kernel_opts;
    if (header.deadline_ms > 0) {
      kernel_opts.deadline = std::chrono::milliseconds(header.deadline_ms);
    }
    handle = kernel_opts.none()
                 ? object->async_call(header.entry, std::move(params))
                 : object->async_call(header.entry, std::move(params),
                                      kernel_opts);
    std::scoped_lock lock(mu_);
    ++server_stats_.dispatched;
  } catch (const Error& e) {
    respond(wire_cause_of(e), {}, e.what());
    return;
  } catch (const std::exception& e) {
    respond(WireCause::kRemoteError, {}, e.what());
    return;
  }
  // Send the response from whichever thread completes the call (typically
  // the object's manager at finish); posting a frame never blocks.
  handle.state()->on_complete([respond, wire_cause_of](CallState& state) {
    try {
      respond(WireCause::kOk, state.get(), "");
    } catch (const Error& e) {
      respond(wire_cause_of(e), {}, e.what());
    } catch (const std::exception& e) {
      respond(WireCause::kRemoteError, {}, e.what());
    }
  });
}

void Node::handle_response(NodeId from,
                           const std::vector<std::uint8_t>& payload,
                           std::size_t pos) {
  const ResponseHeader header = decode_response_header(payload, pos);
  // Decode the body before touching bookkeeping so a corrupt frame cannot
  // orphan the pending entry (the retry timer keeps owning it).
  ValueList results;
  std::string error;
  if (header.cause == WireCause::kOk) {
    results = decode_list(payload, pos, this);
  } else {
    error = get_string(payload, pos);
  }
  std::shared_ptr<CallState> state;
  int attempts = 1;
  std::vector<std::uint8_t> ack;
  {
    std::scoped_lock lock(mu_);
    auto it = pending_.find(header.req_id);
    if (it == pending_.end()) {
      // Late (post-timeout/cancel), duplicate, or post-shutdown response:
      // req_ids are never reused, so dropping it is always correct.
      ++client_stats_.stale_responses;
      return;
    }
    state = it->second.state;
    attempts = it->second.attempts;
    ack = finish_pending_locked(header.req_id, from);
    if (!ack.empty()) ++client_stats_.acks_sent;
  }
  if (header.cause == WireCause::kOk) {
    state->complete(std::move(results));
  } else {
    RpcCause cause = RpcCause::kRemoteError;
    switch (header.cause) {
      case WireCause::kObjectNotFound: cause = RpcCause::kObjectNotFound; break;
      case WireCause::kTimeout: cause = RpcCause::kTimeout; break;
      case WireCause::kCancelled: cause = RpcCause::kCancelled; break;
      case WireCause::kObjectDown: cause = RpcCause::kObjectDown; break;
      default: break;
    }
    state->fail(std::make_exception_ptr(RpcError(cause, error, attempts)));
  }
  if (!ack.empty()) network_->post(Frame{id_, from, std::move(ack)});
}

void Node::handle_ack(NodeId from, const std::vector<std::uint8_t>& payload,
                      std::size_t pos) {
  const std::uint64_t ack_through = decode_ack(payload, pos);
  std::scoped_lock lock(mu_);
  auto it = dedup_.find(from);
  if (it == dedup_.end()) return;
  evict_dedup_locked(it->second, ack_through);
}

void Node::handle_chan_send(const std::vector<std::uint8_t>& payload,
                            std::size_t pos) {
  const std::uint64_t chan_id = get_u64(payload, pos);
  ValueList message = decode_list(payload, pos, this);
  ChannelRef channel;
  {
    std::scoped_lock lock(mu_);
    auto it = exported_channels_.find(chan_id);
    if (it == exported_channels_.end()) {
      raise(ErrorCode::kBadMessage,
            "chan-send for unknown channel #" + std::to_string(chan_id));
    }
    channel = it->second;
  }
  channel->send(std::move(message));
}

std::size_t Node::inflight() const {
  std::scoped_lock lock(mu_);
  return pending_.size();
}

Node::ServerStats Node::server_stats() const {
  std::scoped_lock lock(mu_);
  return server_stats_;
}

Node::ClientStats Node::client_stats() const {
  std::scoped_lock lock(mu_);
  return client_stats_;
}

std::size_t Node::dedup_entries(NodeId caller) const {
  std::scoped_lock lock(mu_);
  auto it = dedup_.find(caller);
  return it == dedup_.end() ? 0 : it->second.entries.size();
}

}  // namespace alps::net
