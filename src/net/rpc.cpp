#include "net/rpc.h"

#include "core/error.h"
#include "support/log.h"

namespace alps::net {

CallHandle RemoteObject::async_call(const std::string& entry,
                                    ValueList params) {
  if (!node_) raise(ErrorCode::kNetwork, "invalid RemoteObject");
  return node_->send_request(target_, object_name_, entry, std::move(params));
}

ValueList RemoteObject::call(const std::string& entry, ValueList params) {
  return async_call(entry, std::move(params)).get();
}

std::optional<ValueList> RemoteObject::call_for(
    const std::string& entry, ValueList params,
    std::chrono::milliseconds timeout) {
  if (!node_) raise(ErrorCode::kNetwork, "invalid RemoteObject");
  std::uint64_t req_id = 0;
  CallHandle handle =
      node_->send_request(target_, object_name_, entry, std::move(params),
                          &req_id);
  if (!handle.wait_for(timeout)) {
    node_->cancel_request(req_id);
    // The cancel fails the handle unless a response raced in; re-check.
    if (!handle.ready()) return std::nullopt;
  }
  try {
    return handle.get();
  } catch (const Error&) {
    return std::nullopt;
  }
}

Node::Node(Network& network, const std::string& name)
    : network_(&network), name_(name) {
  id_ = network.add_node(name);
  network.set_handler(id_, [this](Frame f) { handle_frame(std::move(f)); });
}

Node::~Node() {
  // Deregister so late frames are counted as drops instead of running into
  // a destroyed node.
  network_->set_handler(id_, nullptr);
  // Fail anything still waiting for a response.
  std::vector<std::shared_ptr<CallState>> orphans;
  {
    std::scoped_lock lock(mu_);
    for (auto& [req, state] : pending_) orphans.push_back(state);
    pending_.clear();
  }
  for (auto& state : orphans) {
    state->fail(ErrorCode::kNetwork, "node " + name_ + " shut down");
  }
}

void Node::host(Object& object) {
  std::scoped_lock lock(mu_);
  hosted_[object.name()] = &object;
}

void Node::unhost(const std::string& object_name) {
  std::scoped_lock lock(mu_);
  hosted_.erase(object_name);
}

RemoteObject Node::remote(NodeId target, const std::string& object_name) {
  return RemoteObject(this, target, object_name);
}

void Node::export_channel(const ChannelRef& channel) {
  std::scoped_lock lock(mu_);
  exported_channels_[channel->id()] = channel;
}

std::pair<std::uint64_t, std::uint64_t> Node::encode_channel(
    const ChannelRef& channel) {
  std::scoped_lock lock(mu_);
  // A proxy re-encodes as its *home* name so channels can be forwarded
  // through intermediaries; a local channel is exported under this node.
  for (auto& [home, by_id] : proxies_) {
    for (auto& [id, weak] : by_id) {
      if (weak.lock() == channel) return {home, id};
    }
  }
  exported_channels_[channel->id()] = channel;
  return {id_, channel->id()};
}

ChannelRef Node::decode_channel(std::uint64_t node, std::uint64_t id) {
  std::scoped_lock lock(mu_);
  if (node == id_) {
    auto it = exported_channels_.find(id);
    if (it == exported_channels_.end()) {
      raise(ErrorCode::kBadMessage,
            "frame names unknown local channel #" + std::to_string(id));
    }
    return it->second;
  }
  auto& by_id = proxies_[node];
  if (auto it = by_id.find(id); it != by_id.end()) {
    if (auto existing = it->second.lock()) return existing;
  }
  ChannelRef proxy = make_channel("proxy:" + std::to_string(node) + "/" +
                                  std::to_string(id));
  proxy->set_forward([this, node, id](ValueList message) {
    std::vector<std::uint8_t> payload;
    put_u8(payload, static_cast<std::uint8_t>(MsgType::kChanSend));
    put_u64(payload, id);
    encode_list(message, payload, this);
    network_->post(Frame{id_, node, std::move(payload)});
    return true;
  });
  by_id[id] = proxy;
  return proxy;
}

CallHandle Node::send_request(NodeId target, const std::string& object_name,
                              const std::string& entry, ValueList params,
                              std::uint64_t* req_id_out) {
  auto state = std::make_shared<CallState>();
  std::uint64_t req_id;
  {
    std::scoped_lock lock(mu_);
    req_id = next_req_++;
    pending_[req_id] = state;
  }
  if (req_id_out) *req_id_out = req_id;
  std::vector<std::uint8_t> payload;
  put_u8(payload, static_cast<std::uint8_t>(MsgType::kRequest));
  put_u64(payload, req_id);
  put_string(payload, object_name);
  put_string(payload, entry);
  encode_list(params, payload, this);
  network_->post(Frame{id_, target, std::move(payload)});
  return CallHandle(state);
}

void Node::handle_frame(Frame frame) {
  std::size_t pos = 0;
  try {
    const auto type = static_cast<MsgType>(get_u8(frame.payload, pos));
    switch (type) {
      case MsgType::kRequest:
        handle_request(frame.src, frame.payload, pos);
        return;
      case MsgType::kResponse:
        handle_response(frame.payload, pos);
        return;
      case MsgType::kChanSend:
        handle_chan_send(frame.payload, pos);
        return;
    }
    raise(ErrorCode::kBadMessage, "unknown frame type");
  } catch (const Error& e) {
    ALPS_LOG_WARN("node %s: dropping bad frame from %llu: %s", name_.c_str(),
                  static_cast<unsigned long long>(frame.src), e.what());
  }
}

void Node::handle_request(NodeId from, const std::vector<std::uint8_t>& payload,
                          std::size_t pos) {
  const std::uint64_t req_id = get_u64(payload, pos);
  const std::string object_name = get_string(payload, pos);
  const std::string entry = get_string(payload, pos);
  ValueList params = decode_list(payload, pos, this);

  auto respond = [this, from, req_id](bool ok, ValueList results,
                                      const std::string& error) {
    std::vector<std::uint8_t> out;
    put_u8(out, static_cast<std::uint8_t>(MsgType::kResponse));
    put_u64(out, req_id);
    put_u8(out, ok ? 1 : 0);
    if (ok) {
      encode_list(results, out, this);
    } else {
      put_string(out, error);
    }
    network_->post(Frame{id_, from, std::move(out)});
  };

  Object* object = nullptr;
  {
    std::scoped_lock lock(mu_);
    auto it = hosted_.find(object_name);
    if (it != hosted_.end()) object = it->second;
  }
  if (!object) {
    respond(false, {}, "no such object: " + object_name);
    return;
  }

  CallHandle handle;
  try {
    handle = object->async_call(entry, std::move(params));
  } catch (const std::exception& e) {
    respond(false, {}, e.what());
    return;
  }
  // Send the response from whichever thread completes the call (typically
  // the object's manager at finish); posting a frame never blocks.
  handle.state()->on_complete([respond](CallState& state) {
    try {
      respond(true, state.get(), "");
    } catch (const std::exception& e) {
      respond(false, {}, e.what());
    }
  });
}

void Node::handle_response(const std::vector<std::uint8_t>& payload,
                           std::size_t pos) {
  const std::uint64_t req_id = get_u64(payload, pos);
  const bool ok = get_u8(payload, pos) != 0;
  std::shared_ptr<CallState> state;
  {
    std::scoped_lock lock(mu_);
    auto it = pending_.find(req_id);
    if (it == pending_.end()) return;  // duplicate or post-shutdown response
    state = it->second;
    pending_.erase(it);
  }
  if (ok) {
    state->complete(decode_list(payload, pos, this));
  } else {
    state->fail(ErrorCode::kNetwork,
                "remote call failed: " + get_string(payload, pos));
  }
}

void Node::handle_chan_send(const std::vector<std::uint8_t>& payload,
                            std::size_t pos) {
  const std::uint64_t chan_id = get_u64(payload, pos);
  ValueList message = decode_list(payload, pos, this);
  ChannelRef channel;
  {
    std::scoped_lock lock(mu_);
    auto it = exported_channels_.find(chan_id);
    if (it == exported_channels_.end()) {
      raise(ErrorCode::kBadMessage,
            "chan-send for unknown channel #" + std::to_string(chan_id));
    }
    channel = it->second;
  }
  channel->send(std::move(message));
}

void Node::cancel_request(std::uint64_t req_id) {
  std::shared_ptr<CallState> state;
  {
    std::scoped_lock lock(mu_);
    auto it = pending_.find(req_id);
    if (it == pending_.end()) return;  // already answered
    state = it->second;
    pending_.erase(it);
  }
  state->fail(ErrorCode::kNetwork,
              "request #" + std::to_string(req_id) + " timed out");
}

std::size_t Node::inflight() const {
  std::scoped_lock lock(mu_);
  return pending_.size();
}

}  // namespace alps::net
