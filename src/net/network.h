// Simulated multi-node transport.
//
// The ALPS kernel was being implemented on a 16-node transputer network
// (§4); no such hardware here, so this Transport implementation simulates
// the substrate the RPC layer needs: named nodes, point-to-point frames,
// per-link latency (base + uniform jitter, deterministic under a seed),
// delivery on a dedicated thread, and traffic accounting. The substitution
// preserves the code path the paper depends on — entry calls marshalled
// into messages, delivered asynchronously, answered with response messages
// — while staying laptop-runnable (experiment E11 sweeps the latency).
//
// This is the deterministic half of the Transport seam (transport.h): the
// fault injectors below (drop/duplicate/reorder, scripted partitions) have
// no socket equivalent, which is exactly why the simulation stays — every
// fault-model test keeps its reproducible substrate, while the same RPC
// stack runs unchanged over real sockets (transport_socket.h).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/transport.h"
#include "support/rng.h"

namespace alps::net {

struct LinkLatency {
  std::chrono::microseconds base{0};
  std::chrono::microseconds jitter{0};  // uniform in [0, jitter]
};

/// Per-link fault injection knobs. All probabilities are independent
/// per-frame Bernoulli draws from the network's seeded RNG, so a given
/// frame-post sequence produces the same fault pattern every run.
struct LinkFaults {
  double drop = 0.0;       ///< frame silently lost
  double duplicate = 0.0;  ///< a second copy is delivered after extra jitter
  double reorder = 0.0;    ///< frame escapes the link's FIFO clamp
  /// Extra delay bound for duplicated copies (uniform in [0, this]).
  std::chrono::microseconds duplicate_jitter{2000};
};

/// Counters only the simulation can produce: a socket transport never
/// duplicates or reorders frames on its own, so these stay out of the
/// transport-agnostic TransportStats shape.
struct SimFaultStats {
  std::uint64_t frames_duplicated = 0;  ///< injected duplicate copies
  std::uint64_t frames_reordered = 0;   ///< frames that escaped the FIFO clamp
};

/// A set of nodes plus a delivery thread. Handlers run on the delivery
/// thread and must not block for long (the RPC layer's handlers only
/// enqueue kernel work).
class Network final : public Transport {
 public:
  explicit Network(LinkLatency default_latency = {}, std::uint64_t seed = 1);
  ~Network() override;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node; returns its id (ids are dense, starting at 0).
  NodeId add_node(const std::string& name) override;

  /// The cluster's object directory (see directory.h). The Network models
  /// the whole cluster, so it owns the authoritative name → home-node map;
  /// Node::host/unhost maintain it and name-based calls resolve through it.
  Directory& directory() override { return *directory_; }

  void set_handler(NodeId node, Handler handler) override;

  /// Overrides the latency of the directed link src → dst.
  void set_link_latency(NodeId src, NodeId dst, LinkLatency latency);

  void set_default_latency(LinkLatency latency);

  /// Schedules delivery of `frame` after the link's latency. Frames to the
  /// sender itself are delivered through the same path (loopback latency).
  void post(Frame frame) override;
  using Transport::post;  // scatter-gather overload (flattens via build())

  // ---- failure injection (experiments & tests) ----

  /// Drops each frame independently with probability `p` (0 disables).
  /// Deterministic under the network's seed. Equivalent to setting the
  /// default LinkFaults' drop probability.
  void set_loss_probability(double p);

  /// Faults applied to every link without a per-link override.
  void set_default_faults(LinkFaults faults);

  /// Overrides the fault model of the directed link src → dst.
  void set_link_faults(NodeId src, NodeId dst, LinkFaults faults);

  /// Severs both directions between the two node sets containing `a` and
  /// `b`: frames between a's side and b's side are lost until heal() — a
  /// network partition. (Simple two-sided model: the partition is defined
  /// by the explicit pair list.)
  void partition(NodeId a, NodeId b);

  /// Scripted partition, deterministic under the frame stream: the a↔b cut
  /// activates once `after_frames` total frames have been posted and heals
  /// after `duration_frames` more. Lost frames count as posted, so
  /// retransmissions drive the script forward even while the cut is active.
  void schedule_partition(NodeId a, NodeId b, std::uint64_t after_frames,
                          std::uint64_t duration_frames);

  /// Removes all partitions, manual and scripted.
  void heal();

  /// True while an a↔b cut (manual or currently-active scripted) exists.
  /// The RPC layer uses this to type a delivery failure as "partitioned"
  /// rather than a plain timeout.
  bool is_partitioned(NodeId a, NodeId b) const override;

  // ---- dynamic membership (parity with SocketTransport) ----

  /// Revives a departed node, or appends a brand-new one when `id` equals
  /// the next dense id (`address` is meaningless in-process and ignored).
  /// Raises kNetwork for a sparse id — the sim's ids stay dense.
  void add_peer(NodeId id, const std::string& name,
                const std::string& address) override;

  /// Marks `id` departed: frames to or from it — queued, in flight, or
  /// posted later — are counted lost, is_partitioned() reports it cut, and
  /// its directory entries are purged, exactly what a SocketTransport
  /// eviction looks like from the RPC layer.
  bool remove_peer(NodeId id) override;

  TransportStats transport_stats() const override;
  /// Injected-fault accounting (sim-only; see SimFaultStats).
  SimFaultStats fault_stats() const;

  std::size_t node_count() const override;
  std::string node_name(NodeId id) const override;

  /// Blocks until no frame is queued or in flight (for tests/benches).
  /// Exact, unlike a socket transport's best-effort version: the sim owns
  /// both ends of every link.
  void wait_quiescent() const override;

 private:
  struct Scheduled {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq;  // FIFO tiebreak for equal deadlines
    Frame frame;
    bool operator>(const Scheduled& o) const {
      return due != o.due ? due > o.due : seq > o.seq;
    }
  };

  struct PartitionScript {
    NodeId a, b;
    std::uint64_t start;  // activates when total_posted_ >= start
    std::uint64_t end;    // heals when total_posted_ >= end
  };

  void delivery_loop(const std::stop_token& st);
  LinkLatency latency_for(NodeId src, NodeId dst) const;
  LinkFaults faults_for(NodeId src, NodeId dst) const;
  bool partitioned_locked(NodeId a, NodeId b) const;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable std::condition_variable idle_cv_;
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>> queue_;
  std::vector<std::string> node_names_;
  std::vector<Handler> handlers_;
  std::vector<std::pair<std::pair<NodeId, NodeId>, LinkLatency>> link_overrides_;
  std::vector<std::pair<std::pair<NodeId, NodeId>, LinkFaults>> fault_overrides_;
  std::vector<std::pair<NodeId, NodeId>> partitions_;  // undirected pairs
  std::unordered_set<NodeId> departed_;  ///< evicted by remove_peer
  std::vector<PartitionScript> scripted_partitions_;
  std::uint64_t total_posted_ = 0;  // all post() calls, including lost frames
  LinkFaults default_faults_;
  LinkLatency default_latency_;
  support::Rng rng_;
  TransportStats stats_;
  SimFaultStats fault_stats_;
  /// Per-directed-link schedule state (keyed src<<32|dst): `clamp` is the
  /// FIFO watermark jittered frames are held to; `max_due` is the latest
  /// delivery ever scheduled, used to detect when an injected reorder fault
  /// actually overtook an earlier frame.
  struct LinkSchedule {
    std::chrono::steady_clock::time_point clamp;
    std::chrono::steady_clock::time_point max_due;
  };
  std::unordered_map<std::uint64_t, LinkSchedule> last_due_;
  std::uint64_t next_seq_ = 0;
  bool delivering_ = false;
  NodeId delivering_to_ = 0;  ///< valid while delivering_ is true
  std::unique_ptr<Directory> directory_;
  std::jthread delivery_thread_;
};

}  // namespace alps::net
