#include "net/batch.h"

#include "net/codec.h"
#include "support/thread_util.h"

namespace alps::net {

FrameBatcher::FrameBatcher(BatchOptions options, PostFn post)
    : options_(options), post_(std::move(post)) {
  if (options_.max_frames == 0) options_.max_frames = 1;
  flusher_thread_ =
      std::jthread([this](std::stop_token st) { flusher(st); });
}

FrameBatcher::~FrameBatcher() {
  flusher_thread_.request_stop();
  cv_.notify_all();
  if (flusher_thread_.joinable()) flusher_thread_.join();
  flush_all();  // residue goes out, late but never lost at this layer
}

void FrameBatcher::collect_locked(NodeId dst, LinkBuffer& buf,
                                  std::vector<Flush>& out) {
  if (buf.members.empty()) return;
  if (buf.members.size() == 1) {
    out.emplace_back(dst, std::move(buf.members.front()));
    ++stats_.singles_posted;
  } else {
    // One envelope, still in scatter-gather form: member headers splice into
    // the envelope's arena, member payload slices stay referenced. Whether
    // the members' bytes ever hit contiguous memory is the transport's call
    // (the sim builds once at post; a socket writes the segments directly).
    FrameBuilder envelope;
    encode_batch(buf.members, envelope);
    stats_.frames_coalesced += buf.members.size();
    ++stats_.batches_posted;
    out.emplace_back(dst, std::move(envelope));
  }
  buf.members.clear();
  buf.bytes = 0;
}

void FrameBatcher::enqueue(NodeId dst, std::vector<std::uint8_t> payload) {
  enqueue(dst, FrameBuilder::from_bytes(std::move(payload)));
}

void FrameBatcher::enqueue(NodeId dst, FrameBuilder frame) {
  std::vector<Flush> out;
  {
    std::scoped_lock lock(mu_);
    LinkBuffer& buf = buffers_[dst];
    if (buf.members.empty()) {
      buf.oldest = std::chrono::steady_clock::now();
      cv_.notify_all();  // the flusher may need an earlier deadline
    }
    buf.bytes += frame.size();
    buf.members.push_back(std::move(frame));
    ++stats_.frames_enqueued;
    if (buf.members.size() >= options_.max_frames ||
        buf.bytes >= options_.max_bytes) {
      ++stats_.size_flushes;
      collect_locked(dst, buf, out);
    }
  }
  for (auto& [to, p] : out) post_(to, std::move(p));
}

void FrameBatcher::flush_all() {
  std::vector<Flush> out;
  {
    std::scoped_lock lock(mu_);
    for (auto& [dst, buf] : buffers_) collect_locked(dst, buf, out);
  }
  for (auto& [to, p] : out) post_(to, std::move(p));
}

void FrameBatcher::flush_peer(NodeId dst) {
  std::vector<Flush> out;
  {
    std::scoped_lock lock(mu_);
    auto it = buffers_.find(dst);
    if (it == buffers_.end()) return;
    collect_locked(dst, it->second, out);
    buffers_.erase(it);  // a departed peer's buffer does not linger
  }
  for (auto& [to, p] : out) post_(to, std::move(p));
}

void FrameBatcher::flusher(const std::stop_token& st) {
  support::set_current_thread_name("net/batch");
  std::unique_lock lock(mu_);
  while (!st.stop_requested()) {
    auto next_due = std::chrono::steady_clock::time_point::max();
    for (const auto& [dst, buf] : buffers_) {
      if (buf.members.empty()) continue;
      const auto due = buf.oldest + options_.flush_interval;
      if (due < next_due) next_due = due;
    }
    if (next_due == std::chrono::steady_clock::time_point::max()) {
      cv_.wait(lock, [&] {
        if (st.stop_requested()) return true;
        for (const auto& [dst, buf] : buffers_) {
          if (!buf.members.empty()) return true;
        }
        return false;
      });
      continue;
    }
    if (std::chrono::steady_clock::now() < next_due) {
      cv_.wait_until(lock, next_due);
      continue;
    }
    // Flush every link whose oldest member has aged past the interval.
    std::vector<Flush> out;
    const auto now = std::chrono::steady_clock::now();
    for (auto& [dst, buf] : buffers_) {
      if (buf.members.empty()) continue;
      if (buf.oldest + options_.flush_interval <= now) {
        ++stats_.interval_flushes;
        collect_locked(dst, buf, out);
      }
    }
    lock.unlock();
    for (auto& [to, p] : out) post_(to, std::move(p));
    lock.lock();
  }
}

FrameBatcher::Stats FrameBatcher::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace alps::net
