// Transport — the substrate contract under the RPC layer.
//
// The paper's ALPS kernel ran on a 16-node transputer network (§4): objects
// on distinct nodes, entry calls crossing real links. This interface is the
// seam that makes that claim testable both ways. A Transport moves opaque
// frame payloads between named nodes and delivers them, asynchronously, to
// per-node handlers; everything above it (rpc.h) — retries, at-most-once
// dedup, routing, batching — is transport-agnostic by construction. Two
// implementations ship:
//
//   * net::Network (network.h) — the in-process simulation. Deterministic
//     under a seed, with per-link latency and injected faults (drop /
//     duplicate / reorder / partition). The fault-model tests live here.
//   * net::SocketTransport (transport_socket.h) — real TCP or Unix-domain
//     sockets between OS processes: listener/connector lifecycle, per-peer
//     reconnect with backoff, length-prefixed stream framing, and a
//     writev-style scatter-gather send path that skips the final frame
//     gather entirely.
//
// What the contract promises (and deliberately does not):
//   * Per-link FIFO for delivered frames (sim clamps jitter; TCP is a
//     byte stream) — unless a sim reorder fault is injected on purpose.
//   * Frames may be lost. The sim loses them by injection; sockets lose
//     them when a connection dies mid-flight or a peer is unreachable.
//     Loss is counted, never reported synchronously to the poster.
//   * Frames may be duplicated by the sim (injection) but never by the
//     socket transport; the RPC dedup layer tolerates both.
//   * Delivery handlers run on transport-owned threads and must not block
//     for long; the RPC layer's handlers only enqueue kernel work.
// DESIGN.md §4.10 tabulates the full sim-vs-socket contract.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/buffer.h"

namespace alps::net {

using NodeId = std::uint64_t;

class Directory;
class FrameBuilder;

/// One point-to-point message: an opaque payload from src to dst. The
/// payload is a contiguous byte vector here; the scatter-gather post
/// overload below avoids ever materializing it on transports that can
/// write a slice list directly.
struct Frame {
  NodeId src = 0;
  NodeId dst = 0;
  std::vector<std::uint8_t> payload;
};

/// Transport-agnostic traffic accounting — one shape for both backends, so
/// benches and tests read the same fields over the sim and over sockets.
/// Sim-only fault-injection counters live in SimFaultStats (network.h).
struct TransportStats {
  std::uint64_t frames_posted = 0;     ///< every post(), incl. lost frames
  std::uint64_t bytes_posted = 0;      ///< payload bytes across all posts
  std::uint64_t frames_delivered = 0;  ///< handed to a handler
  std::uint64_t bytes_delivered = 0;
  std::uint64_t frames_dropped = 0;    ///< dst unknown or no handler
  std::uint64_t frames_lost = 0;       ///< injected loss / partition (sim),
                                       ///< dead or unreachable link (sockets)
  // Socket-only resilience counters (always zero on the sim — it has no
  // wire, no handshake and no reconnect; see DESIGN.md §4.11):
  std::uint64_t handshake_rejected = 0;    ///< inbound connections refused
                                           ///< before any frame dispatched
  std::uint64_t connections_poisoned = 0;  ///< connections dropped on
                                           ///< framing corruption
  std::uint64_t frames_requeued = 0;       ///< frames that survived a dead
                                           ///< connection for in-order replay
};

class Transport {
 public:
  /// Delivery callback. `payload` owns its storage (the received frame), so
  /// ≥ kZeroCopySliceThreshold blob decodes alias the frame instead of
  /// copying out of it — on both backends.
  using Handler = std::function<void(NodeId src, Buffer payload)>;

  virtual ~Transport() = default;

  /// Registers a local delivery endpoint; returns its id. The simulation
  /// mints dense ids for any number of in-process nodes; a socket transport
  /// is configured with exactly one local node per process and returns its
  /// preassigned cluster id.
  virtual NodeId add_node(const std::string& name) = 0;

  /// Installs (or, with nullptr, removes) the handler for `node`. Must not
  /// return while a delivery into a previous handler is still running, so a
  /// deregistering caller (~Node) can safely destroy the captures.
  virtual void set_handler(NodeId node, Handler handler) = 0;

  /// Posts one frame for asynchronous delivery. Never blocks on the remote
  /// end; loss is silent (counted in stats), exactly as a datagram network.
  virtual void post(Frame frame) = 0;

  /// Scatter-gather post: the frame still in FrameBuilder form. The default
  /// flattens via build() (the sim's single gather); stream transports
  /// override it to write the slice list directly — no contiguous frame is
  /// ever assembled, so data-plane `bytes_assembled` stays at zero.
  virtual void post(NodeId src, NodeId dst, const FrameBuilder& frame);

  virtual TransportStats transport_stats() const = 0;

  /// The cluster's object directory (name → home node). The simulation owns
  /// the authoritative map for all in-process nodes; a socket transport owns
  /// this process's replica, seeded from static placement configuration and
  /// healed in-band by kWrongNode redirects (DESIGN.md §4.10).
  virtual Directory& directory() = 0;
  const Directory& directory() const {
    return const_cast<Transport*>(this)->directory();
  }

  /// True while a↔b is known unreachable: an active sim partition, or a
  /// socket peer whose connection is dead/in backoff. The RPC layer uses it
  /// to type a delivery failure as "partitioned" rather than plain timeout.
  virtual bool is_partitioned(NodeId a, NodeId b) const {
    (void)a;
    (void)b;
    return false;
  }

  virtual std::size_t node_count() const = 0;
  virtual std::string node_name(NodeId id) const = 0;

  /// Best effort: blocks until nothing this transport buffered locally is
  /// still queued or being delivered. The sim's version is exact (it owns
  /// both ends); a socket transport can only quiesce its own send queues —
  /// bytes in kernel buffers or the peer process are out of reach.
  virtual void wait_quiescent() const {}

  // ---- dynamic membership (DESIGN.md §4.11) ----
  //
  // Both backends support changing the peer set on a live transport: the
  // socket backend spins PeerLinks and reader threads up and down without
  // quiescing; the sim marks nodes departed (their frames are lost, exactly
  // as a cut). Removing a peer also purges its directory entries, so a
  // departed node's named objects fail typed instead of timing out.

  /// Admits `id` to the peer set. `address` is backend-specific ("unix:<path>"
  /// or "host:port" for sockets; ignored by the sim, which revives or appends
  /// the node). Raises kNetwork if the backend cannot honor the request.
  virtual void add_peer(NodeId id, const std::string& name,
                        const std::string& address);

  /// Evicts `id` from the peer set: frames to/from it are dropped or lost
  /// from now on, its queued frames are counted lost, and its directory
  /// entries are removed. Returns false if the peer was not present.
  virtual bool remove_peer(NodeId id);

  /// Membership-change hook: invoked (outside transport locks) after every
  /// add_peer / remove_peer, with `added` telling which. Nodes use it to
  /// flush departed-peer batch buffers and drop stale routes. Returns a
  /// token for remove_membership_listener.
  using MembershipListener = std::function<void(NodeId peer, bool added)>;
  std::uint64_t add_membership_listener(MembershipListener listener);
  void remove_membership_listener(std::uint64_t token);

 protected:
  /// Backends call this after a membership change, holding no locks.
  void notify_membership(NodeId peer, bool added);

 private:
  mutable std::mutex listeners_mu_;
  std::unordered_map<std::uint64_t, MembershipListener> listeners_;
  std::uint64_t next_listener_token_ = 1;
};

}  // namespace alps::net
