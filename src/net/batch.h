// Per-link frame coalescing.
//
// High fan-in RPC workloads pay one network frame per request, response and
// ack; on a real transport each frame is a syscall and a wire header. The
// batcher buffers a node's outgoing frames per destination and flushes a
// link when either a size bound (frames or bytes) is reached or the oldest
// buffered frame has waited `flush_interval` — the classic throughput/latency
// knob. A flush of one frame is sent raw (no envelope, so batch-size-1
// latency matches direct sends); two or more are wrapped in a single kBatch
// frame that the receiving node unpacks in order, preserving the link's
// FIFO semantics.
//
// Fault interplay: a batch is one frame to the Network, so injected drop /
// duplication / partition hits all members together. That is by design —
// the retry + at-most-once machinery above (rpc.h) already converges under
// whole-frame loss, and a duplicated batch only produces member duplicates
// the dedup table absorbs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/codec.h"
#include "net/transport.h"

namespace alps::net {

struct BatchOptions {
  std::size_t max_frames = 8;        ///< flush a link at this many members
  std::size_t max_bytes = 48 * 1024; ///< ... or this many buffered bytes
  /// Upper bound on how long a buffered frame may wait for company.
  std::chrono::microseconds flush_interval{200};
};

/// Buffers (dst, payload) pairs per destination and emits them through the
/// supplied post function, coalesced into kBatch frames. Thread-safe; a
/// dedicated flusher thread enforces the interval bound, size-bound flushes
/// happen inline on the enqueuing thread. The destructor flushes residue.
class FrameBatcher {
 public:
  /// Flushes leave in scatter-gather form so the transport can keep the
  /// batch envelope on the writev path (a socket backend sends the segment
  /// list directly; the sim builds it at post).
  using PostFn = std::function<void(NodeId dst, FrameBuilder frame)>;

  struct Stats {
    std::uint64_t frames_enqueued = 0;
    std::uint64_t batches_posted = 0;    ///< kBatch envelopes (≥ 2 members)
    std::uint64_t frames_coalesced = 0;  ///< members carried inside batches
    std::uint64_t singles_posted = 0;    ///< flushed alone, sent raw
    std::uint64_t size_flushes = 0;
    std::uint64_t interval_flushes = 0;
  };

  FrameBatcher(BatchOptions options, PostFn post);
  ~FrameBatcher();

  FrameBatcher(const FrameBatcher&) = delete;
  FrameBatcher& operator=(const FrameBatcher&) = delete;

  /// Buffers a frame still in scatter-gather form: its payload slices are
  /// carried by reference into the batch envelope and written once, at the
  /// envelope's single build.
  void enqueue(NodeId dst, FrameBuilder frame);
  /// Pre-encoded frame (adopted without a byte copy).
  void enqueue(NodeId dst, std::vector<std::uint8_t> payload);

  /// Synchronously flushes every link's buffer (tests / quiesce points).
  void flush_all();

  /// Synchronously flushes (and forgets) one destination's buffer — the
  /// membership-change hook. Posting fails fast at the transport for a
  /// removed peer (counted dropped) instead of the members idling a full
  /// flush_interval and then dying anyway.
  void flush_peer(NodeId dst);

  Stats stats() const;

 private:
  struct LinkBuffer {
    std::vector<FrameBuilder> members;
    std::size_t bytes = 0;
    std::chrono::steady_clock::time_point oldest{};
  };
  using Flush = std::pair<NodeId, FrameBuilder>;

  /// Drains `buf` into one outgoing payload appended to `out`. Caller holds
  /// mu_; the actual post happens outside the lock.
  void collect_locked(NodeId dst, LinkBuffer& buf, std::vector<Flush>& out);
  void flusher(const std::stop_token& st);

  BatchOptions options_;
  PostFn post_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<NodeId, LinkBuffer> buffers_;
  Stats stats_;
  std::jthread flusher_thread_;
};

}  // namespace alps::net
