// Cluster directory: object name → placement (one home, N shards, or a
// replica set).
//
// The paper pitches entry calls as RPCs so that "a parallel program can be
// executed on a distributed system without change" (§1, §4) — which needs a
// cluster-level view of where each object lives, not caller-managed node
// ids. Every Transport owns one Directory; the simulated Network's instance
// is authoritative for the whole in-process cluster, while a SocketTransport
// owns this process's replica, seeded from static placement config.
// Node::host and Node::unhost keep it current, and each node caches
// resolutions per-object. A stale cache (or stale replica) is corrected
// in-band: the wrong node answers with a typed kWrongNode redirect carrying
// its directory's current home *for that key's shard* (see rpc.h), so
// placement — including live shard splits — can change without touching
// callers or taking a global barrier.
//
// Placement modes (DESIGN.md §4.12):
//   kSingle     one home; the original name → node mapping.
//   kSharded    homes[i] serves shard i; the router hashes the call's first
//               parameter (the paper's "initial subsequence" dispatch made
//               distributed) and picks the shard with a jump consistent
//               hash, so growing N → N+1 homes moves only ~1/(N+1) keys.
//   kReplicated homes[0] is the primary (all writes); reads spread across
//               the whole set by key hash.
//
// Every mutation bumps the entry's epoch; epochs are monotonic per name
// even across erase/re-add, so a redirect hint can always be ordered
// against a cached map.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/value.h"
#include "net/transport.h"

namespace alps::net {

/// Sentinel shard index: "this placement is not sharded" (wire: a redirect
/// that re-homes the whole object rather than one shard).
inline constexpr std::uint32_t kNoShard = 0xffffffffu;

/// Jump consistent hash (Lamping & Veach, 2014): maps `key` to a bucket in
/// [0, buckets) such that growing buckets → buckets+1 reassigns only
/// ~1/(buckets+1) of the keys — no ring state, stable across processes.
std::uint32_t jump_consistent_hash(std::uint64_t key, std::uint32_t buckets);

/// Process-stable hash of a call's first parameter for shard routing.
/// Strings and blobs hash their bytes (FNV-1a), integers/bools/doubles
/// their bit patterns; never std::hash, which may differ across processes.
std::uint64_t shard_key_hash(const Value& key);

enum class PlacementMode : std::uint8_t { kSingle, kSharded, kReplicated };

/// One directory entry: where a named object answers.
struct Placement {
  PlacementMode mode = PlacementMode::kSingle;
  /// kSingle: exactly one home. kSharded: homes[i] serves shard i.
  /// kReplicated: homes[0] is the primary, the rest are read replicas.
  std::vector<NodeId> homes;
  std::uint64_t epoch = 0;

  NodeId primary() const { return homes.front(); }
  bool contains(NodeId id) const;

  /// Shard index for a key hash (kNoShard unless sharded).
  std::uint32_t shard_of(std::uint64_t key_hash) const;

  /// The node that should serve this call: kSingle → the home; kSharded →
  /// the key's shard home; kReplicated → the primary for writes, a
  /// key-spread replica for reads.
  NodeId route(std::uint64_t key_hash, bool read) const;
};

/// Thread-safe name → placement map. All operations are O(1) hash lookups
/// (plus O(homes) for demotions); nodes hold a pointer to the Network's
/// instance, never a copy.
class Directory {
 public:
  /// Registers (or re-homes) `object` at a single `home`. A migration is
  /// just a second add under the new home — last-writer-wins. If the
  /// existing entry is multi-home and already *contains* `home` (e.g. a
  /// shard server re-hosting its local object), the shard map is preserved
  /// untouched; otherwise the entry collapses to a single home.
  void add(const std::string& object, NodeId home);

  /// Installs (or wholesale replaces) a sharded placement: homes[i] serves
  /// shard i. A shard split is simply a second call with N+1 homes — the
  /// epoch bump plus kWrongNode redirects migrate traffic key by key.
  void add_sharded(const std::string& object, std::vector<NodeId> homes);

  /// Re-homes one shard of an existing sharded entry (live migration of a
  /// single shard). No-op if the entry is not sharded or `shard` is out of
  /// range.
  void set_shard_home(const std::string& object, std::uint32_t shard,
                      NodeId home);

  /// Installs (or wholesale replaces) a read-replicated placement:
  /// `primary` takes writes, reads spread over {primary} ∪ replicas.
  void add_replicated(const std::string& object, NodeId primary,
                      std::vector<NodeId> replicas);

  /// Drops `home` from the entry while it still names it. Single-home:
  /// erases the mapping (an unhost on the old node after a migration must
  /// not erase the new home's entry). Sharded: surviving homes absorb the
  /// departed node's shard slots (deterministically, by jump hash over the
  /// slot index). Replicated: the home is dropped; if it was the primary,
  /// the first surviving replica is promoted. The entry is erased only
  /// when no home survives.
  void remove(const std::string& object, NodeId home);

  /// Demotes `home` out of every entry — the directory half of a
  /// membership eviction (Transport::remove_peer). Multi-home entries keep
  /// serving from the survivors; only names with no surviving home are
  /// erased, so lookups for them fail typed (kObjectNotFound) instead of
  /// timing out against a dead address. Returns how many entries were
  /// touched (demoted or erased).
  std::size_t remove_node(NodeId home);

  /// Primary/single home — kept for the one-home callers; multi-home aware
  /// code should use placement().
  std::optional<NodeId> lookup(const std::string& object) const;

  std::optional<Placement> placement(const std::string& object) const;

  /// One routing decision, computed under the directory lock without
  /// copying the placement — the per-request server-side ownership check
  /// and redirect-hint source (rpc.cpp).
  struct RouteDecision {
    NodeId home = 0;  ///< the node that should serve this (key, read) call
    std::uint32_t shard = kNoShard;  ///< key's shard (kNoShard if unsharded)
    std::uint64_t epoch = 0;
    PlacementMode mode = PlacementMode::kSingle;
    bool member = false;  ///< `self` appears among the entry's homes
  };
  std::optional<RouteDecision> route(const std::string& object,
                                     std::uint64_t key_hash, bool read,
                                     NodeId self) const;

  std::size_t size() const;

  /// All registered object names (diagnostics / examples).
  std::vector<std::string> objects() const;

 private:
  // Callee must hold mu_. Bumps past both the live entry's epoch and the
  // floor a previous incarnation left behind.
  std::uint64_t next_epoch_locked(const std::string& object) const;
  void erase_locked(const std::string& object);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Placement> map_;
  // Last epoch of erased entries, so re-adding a name keeps epochs
  // monotonic and stale redirect hints stay orderable.
  std::unordered_map<std::string, std::uint64_t> epoch_floor_;
};

}  // namespace alps::net
