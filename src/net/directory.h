// Cluster directory: object name → home node.
//
// The paper pitches entry calls as RPCs so that "a parallel program can be
// executed on a distributed system without change" (§1, §4) — which needs a
// cluster-level view of where each object lives, not caller-managed node
// ids. Every Transport owns one Directory; the simulated Network's instance
// is authoritative for the whole in-process cluster, while a SocketTransport
// owns this process's replica, seeded from static placement config.
// Node::host and Node::unhost keep it current, and each node caches
// resolutions per-object. A stale cache (or stale replica) is corrected
// in-band: the wrong node answers with a typed kWrongNode redirect carrying
// its directory's current home (see rpc.h), so placement can change without
// touching callers.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/transport.h"

namespace alps::net {

/// Thread-safe name → home-node map. All operations are O(1) hash lookups;
/// nodes hold a pointer to the Network's instance, never a copy.
class Directory {
 public:
  /// Registers (or re-homes) `object` at `home`. A migration is just a
  /// second add under the new home — the map is last-writer-wins.
  void add(const std::string& object, NodeId home);

  /// Removes the mapping only while it still names `home`: an unhost on the
  /// old node after a migration must not erase the new home's entry (this
  /// is what makes "host on B, then unhost on A" a race-free migration
  /// order — there is never a window with no entry).
  void remove(const std::string& object, NodeId home);

  /// Erases every object homed at `home` — the directory half of a
  /// membership eviction (Transport::remove_peer). Lookups for the departed
  /// node's objects then fail typed (kObjectNotFound) instead of timing out
  /// against a dead address. Returns how many entries were purged.
  std::size_t remove_node(NodeId home);

  std::optional<NodeId> lookup(const std::string& object) const;

  std::size_t size() const;

  /// All registered object names (diagnostics / examples).
  std::vector<std::string> objects() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, NodeId> map_;
};

}  // namespace alps::net
