// Process models for executing entry-procedure bodies (paper §3).
//
// The paper discusses three ways to provide the processes that service a
// hidden procedure array P[1..N]:
//
//  1. one-to-one  — N processes created when the object is created, each
//     permanently bound to one array element (SlotBound here);
//  2. pooled      — a pool of M << N processes, one assigned to a call when
//     it is *started* rather than when it arrives (Pooled here);
//  3. dynamic     — a process created per call, which the paper notes is
//     expensive on many operating systems (Dynamic here).
//
// The paper further recommends lightweight processes sharing the object's
// address space; std::jthread is the closest portable analogue (threads of
// one process share the address space). Experiment E7 compares the models.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace alps::sched {

enum class ProcessModel {
  kSlotBound,  ///< one worker per procedure-array slot, created eagerly
  kPooled,     ///< M workers service all started calls
  kDynamic,    ///< one thread created per started call
};

const char* to_string(ProcessModel model);

/// Key identifying which procedure-array slot a task belongs to.
/// kUnboundTask marks work with no slot (non-intercepted entries); every
/// model must still run it.
inline constexpr std::size_t kUnboundTask = static_cast<std::size_t>(-1);

/// One element of a batch submission (see Executor::submit_batch).
struct BatchItem {
  std::size_t slot_key = kUnboundTask;
  std::function<void()> task;
};

/// Executes entry bodies on behalf of one object. Implementations own their
/// threads; shutdown() drains in-flight work and joins everything. submit()
/// after shutdown() is a no-op returning false.
///
/// Dropped-task contract: a task that is refused (submit after shutdown) is
/// destroyed without running. Callers that must observe completion attach
/// the observation to the task's captures (the kernel wraps call bodies so
/// that destroying an unrun task fails the caller), rather than relying on
/// the return value alone.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Schedules `task`. For kSlotBound, `slot_key` selects the dedicated
  /// worker; tasks for one slot run in submission order.
  virtual bool submit(std::size_t slot_key, std::function<void()> task) = 0;

  /// Schedules a whole batch, paying at most one wakeup for all of it (the
  /// work-stealing pooled executor distributes the batch across worker
  /// deques under one pass and wakes the pool once). Returns the number of
  /// tasks accepted; refused tasks are destroyed. Used by the kernel's
  /// call-intake drain. The default forwards to submit() per item.
  virtual std::size_t submit_batch(std::vector<BatchItem> items) {
    std::size_t accepted = 0;
    for (auto& item : items) {
      if (submit(item.slot_key, std::move(item.task))) ++accepted;
    }
    return accepted;
  }

  /// Stops accepting work, waits for in-flight tasks, joins all threads.
  virtual void shutdown() = 0;

  /// Total threads ever created (experiment E7's cost metric).
  virtual std::uint64_t threads_created() const = 0;

  /// Threads currently alive.
  virtual std::uint64_t threads_alive() const = 0;

  virtual ProcessModel model() const = 0;
};

/// `n_slots` workers created eagerly, one per slot; unbound tasks get
/// dynamically created threads (the paper's implicit process creation for
/// non-intercepted entries).
std::unique_ptr<Executor> make_slot_bound_executor(std::size_t n_slots,
                                                   std::string name);

/// M pooled workers, each with its own deque; workers steal from each other
/// when their own deque runs dry and park on a waiter-counted event when the
/// whole pool is idle (no shared run-queue lock on the submit path).
std::unique_ptr<Executor> make_pooled_executor(std::size_t m_workers,
                                               std::string name);

/// A fresh thread per task.
std::unique_ptr<Executor> make_dynamic_executor(std::string name);

std::unique_ptr<Executor> make_executor(ProcessModel model, std::size_t n_slots,
                                        std::size_t m_workers, std::string name);

}  // namespace alps::sched
