// Process models for executing entry-procedure bodies (paper §3).
//
// The paper discusses three ways to provide the processes that service a
// hidden procedure array P[1..N]:
//
//  1. one-to-one  — N processes created when the object is created, each
//     permanently bound to one array element (SlotBound here);
//  2. pooled      — a pool of M << N processes, one assigned to a call when
//     it is *started* rather than when it arrives (Pooled here);
//  3. dynamic     — a process created per call, which the paper notes is
//     expensive on many operating systems (Dynamic here).
//
// The paper further recommends lightweight processes sharing the object's
// address space; std::jthread is the closest portable analogue (threads of
// one process share the address space). Experiment E7 compares the models.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace alps::sched {

enum class ProcessModel {
  kSlotBound,  ///< one worker per procedure-array slot, created eagerly
  kPooled,     ///< M workers service all started calls
  kDynamic,    ///< one thread created per started call
};

const char* to_string(ProcessModel model);

/// Key identifying which procedure-array slot a task belongs to.
/// kUnboundTask marks work with no slot (non-intercepted entries); every
/// model must still run it.
inline constexpr std::size_t kUnboundTask = static_cast<std::size_t>(-1);

/// Executes entry bodies on behalf of one object. Implementations own their
/// threads; shutdown() drains in-flight work and joins everything. submit()
/// after shutdown() is a no-op returning false.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Schedules `task`. For kSlotBound, `slot_key` selects the dedicated
  /// worker; tasks for one slot run in submission order.
  virtual bool submit(std::size_t slot_key, std::function<void()> task) = 0;

  /// Stops accepting work, waits for in-flight tasks, joins all threads.
  virtual void shutdown() = 0;

  /// Total threads ever created (experiment E7's cost metric).
  virtual std::uint64_t threads_created() const = 0;

  /// Threads currently alive.
  virtual std::uint64_t threads_alive() const = 0;

  virtual ProcessModel model() const = 0;
};

/// `n_slots` workers created eagerly, one per slot; unbound tasks get
/// dynamically created threads (the paper's implicit process creation for
/// non-intercepted entries).
std::unique_ptr<Executor> make_slot_bound_executor(std::size_t n_slots,
                                                   std::string name);

/// M pooled workers over a shared run queue.
std::unique_ptr<Executor> make_pooled_executor(std::size_t m_workers,
                                               std::string name);

/// A fresh thread per task.
std::unique_ptr<Executor> make_dynamic_executor(std::string name);

std::unique_ptr<Executor> make_executor(ProcessModel model, std::size_t n_slots,
                                        std::size_t m_workers, std::string name);

}  // namespace alps::sched
