#include "sched/executor.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "support/queue.h"
#include "support/thread_util.h"

namespace alps::sched {

namespace {

using Task = std::function<void()>;

/// Shared bookkeeping for thread-count metrics.
struct ThreadStats {
  std::atomic<std::uint64_t> created{0};
  std::atomic<std::uint64_t> alive{0};
};

/// Joins dynamically spawned per-task threads. CP.26 forbids detach(), so
/// finished threads are swept opportunistically and joined at shutdown.
class DynamicSpawner {
 public:
  explicit DynamicSpawner(std::string name, ThreadStats* stats)
      : name_(std::move(name)), stats_(stats) {}

  bool spawn(Task task) {
    std::scoped_lock lock(mu_);
    if (closed_) return false;
    sweep_locked();
    auto done = std::make_shared<std::atomic<bool>>(false);
    stats_->created.fetch_add(1, std::memory_order_relaxed);
    stats_->alive.fetch_add(1, std::memory_order_relaxed);
    threads_.push_back(
        {std::jthread([this, task = std::move(task), done]() mutable {
           support::set_current_thread_name(name_ + "/dyn");
           task();
           task = nullptr;
           stats_->alive.fetch_sub(1, std::memory_order_relaxed);
           done->store(true, std::memory_order_release);
         }),
         done});
    return true;
  }

  void close_and_join() {
    std::vector<Entry> drained;
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
      drained.swap(threads_);
    }
    for (auto& e : drained) {
      if (e.thread.joinable()) e.thread.join();
    }
  }

 private:
  struct Entry {
    std::jthread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void sweep_locked() {
    for (auto it = threads_.begin(); it != threads_.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = threads_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::mutex mu_;
  std::vector<Entry> threads_;
  bool closed_ = false;
  std::string name_;
  ThreadStats* stats_;
};

class SlotBoundExecutor final : public Executor {
 public:
  SlotBoundExecutor(std::size_t n_slots, std::string name)
      : name_(std::move(name)), spawner_(name_, &stats_), queues_(n_slots) {
    workers_.reserve(n_slots);
    for (std::size_t i = 0; i < n_slots; ++i) {
      stats_.created.fetch_add(1, std::memory_order_relaxed);
      stats_.alive.fetch_add(1, std::memory_order_relaxed);
      workers_.emplace_back([this, i] {
        support::set_current_thread_name(name_ + "/s" + std::to_string(i));
        while (auto task = queues_[i].pop()) {
          (*task)();
        }
        stats_.alive.fetch_sub(1, std::memory_order_relaxed);
      });
    }
  }

  ~SlotBoundExecutor() override { shutdown(); }

  bool submit(std::size_t slot_key, Task task) override {
    if (slot_key == kUnboundTask || slot_key >= queues_.size()) {
      return spawner_.spawn(std::move(task));
    }
    return queues_[slot_key].push(std::move(task));
  }

  void shutdown() override {
    bool expected = false;
    if (!shut_.compare_exchange_strong(expected, true)) return;
    for (auto& q : queues_) q.close();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    spawner_.close_and_join();
  }

  std::uint64_t threads_created() const override {
    return stats_.created.load(std::memory_order_relaxed);
  }
  std::uint64_t threads_alive() const override {
    return stats_.alive.load(std::memory_order_relaxed);
  }
  ProcessModel model() const override { return ProcessModel::kSlotBound; }

 private:
  std::string name_;
  ThreadStats stats_;
  DynamicSpawner spawner_;
  std::vector<support::BlockingQueue<Task>> queues_;
  std::vector<std::jthread> workers_;
  std::atomic<bool> shut_{false};
};

class PooledExecutor final : public Executor {
 public:
  PooledExecutor(std::size_t m_workers, std::string name)
      : name_(std::move(name)) {
    workers_.reserve(m_workers);
    for (std::size_t i = 0; i < m_workers; ++i) {
      stats_.created.fetch_add(1, std::memory_order_relaxed);
      stats_.alive.fetch_add(1, std::memory_order_relaxed);
      workers_.emplace_back([this, i] {
        support::set_current_thread_name(name_ + "/p" + std::to_string(i));
        while (auto task = queue_.pop()) {
          (*task)();
        }
        stats_.alive.fetch_sub(1, std::memory_order_relaxed);
      });
    }
  }

  ~PooledExecutor() override { shutdown(); }

  bool submit(std::size_t, Task task) override {
    return queue_.push(std::move(task));
  }

  void shutdown() override {
    bool expected = false;
    if (!shut_.compare_exchange_strong(expected, true)) return;
    queue_.close();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  std::uint64_t threads_created() const override {
    return stats_.created.load(std::memory_order_relaxed);
  }
  std::uint64_t threads_alive() const override {
    return stats_.alive.load(std::memory_order_relaxed);
  }
  ProcessModel model() const override { return ProcessModel::kPooled; }

 private:
  std::string name_;
  ThreadStats stats_;
  support::BlockingQueue<Task> queue_;
  std::vector<std::jthread> workers_;
  std::atomic<bool> shut_{false};
};

class DynamicExecutor final : public Executor {
 public:
  explicit DynamicExecutor(std::string name)
      : name_(std::move(name)), spawner_(name_, &stats_) {}

  ~DynamicExecutor() override { shutdown(); }

  bool submit(std::size_t, Task task) override {
    return spawner_.spawn(std::move(task));
  }

  void shutdown() override {
    bool expected = false;
    if (!shut_.compare_exchange_strong(expected, true)) return;
    spawner_.close_and_join();
  }

  std::uint64_t threads_created() const override {
    return stats_.created.load(std::memory_order_relaxed);
  }
  std::uint64_t threads_alive() const override {
    return stats_.alive.load(std::memory_order_relaxed);
  }
  ProcessModel model() const override { return ProcessModel::kDynamic; }

 private:
  std::string name_;
  ThreadStats stats_;
  DynamicSpawner spawner_;
  std::atomic<bool> shut_{false};
};

}  // namespace

const char* to_string(ProcessModel model) {
  switch (model) {
    case ProcessModel::kSlotBound: return "slot-bound";
    case ProcessModel::kPooled: return "pooled";
    case ProcessModel::kDynamic: return "dynamic";
  }
  return "?";
}

std::unique_ptr<Executor> make_slot_bound_executor(std::size_t n_slots,
                                                   std::string name) {
  return std::make_unique<SlotBoundExecutor>(n_slots, std::move(name));
}

std::unique_ptr<Executor> make_pooled_executor(std::size_t m_workers,
                                               std::string name) {
  return std::make_unique<PooledExecutor>(m_workers, std::move(name));
}

std::unique_ptr<Executor> make_dynamic_executor(std::string name) {
  return std::make_unique<DynamicExecutor>(std::move(name));
}

std::unique_ptr<Executor> make_executor(ProcessModel model, std::size_t n_slots,
                                        std::size_t m_workers,
                                        std::string name) {
  switch (model) {
    case ProcessModel::kSlotBound:
      return make_slot_bound_executor(n_slots, std::move(name));
    case ProcessModel::kPooled:
      return make_pooled_executor(m_workers, std::move(name));
    case ProcessModel::kDynamic:
      return make_dynamic_executor(std::move(name));
  }
  return make_pooled_executor(m_workers, std::move(name));
}

}  // namespace alps::sched
