#include "sched/executor.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "support/queue.h"
#include "support/sync.h"
#include "support/thread_util.h"

namespace alps::sched {

namespace {

using Task = std::function<void()>;

/// Shared bookkeeping for thread-count metrics.
struct ThreadStats {
  std::atomic<std::uint64_t> created{0};
  std::atomic<std::uint64_t> alive{0};
};

/// Joins dynamically spawned per-task threads. CP.26 forbids detach(), so
/// finished threads are swept opportunistically and joined at shutdown.
class DynamicSpawner {
 public:
  explicit DynamicSpawner(std::string name, ThreadStats* stats)
      : name_(std::move(name)), stats_(stats) {}

  bool spawn(Task task) {
    std::scoped_lock lock(mu_);
    if (closed_) return false;
    sweep_locked();
    auto done = std::make_shared<std::atomic<bool>>(false);
    stats_->created.fetch_add(1, std::memory_order_relaxed);
    stats_->alive.fetch_add(1, std::memory_order_relaxed);
    threads_.push_back(
        {std::jthread([this, task = std::move(task), done]() mutable {
           support::set_current_thread_name(name_ + "/dyn");
           task();
           task = nullptr;
           stats_->alive.fetch_sub(1, std::memory_order_relaxed);
           done->store(true, std::memory_order_release);
         }),
         done});
    return true;
  }

  void close_and_join() {
    std::vector<Entry> drained;
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
      drained.swap(threads_);
    }
    for (auto& e : drained) {
      if (e.thread.joinable()) e.thread.join();
    }
  }

 private:
  struct Entry {
    std::jthread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void sweep_locked() {
    for (auto it = threads_.begin(); it != threads_.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = threads_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::mutex mu_;
  std::vector<Entry> threads_;
  bool closed_ = false;
  std::string name_;
  ThreadStats* stats_;
};

class SlotBoundExecutor final : public Executor {
 public:
  SlotBoundExecutor(std::size_t n_slots, std::string name)
      : name_(std::move(name)), spawner_(name_, &stats_), queues_(n_slots) {
    workers_.reserve(n_slots);
    for (std::size_t i = 0; i < n_slots; ++i) {
      stats_.created.fetch_add(1, std::memory_order_relaxed);
      stats_.alive.fetch_add(1, std::memory_order_relaxed);
      workers_.emplace_back([this, i] {
        support::set_current_thread_name(name_ + "/s" + std::to_string(i));
        while (auto task = queues_[i].pop()) {
          (*task)();
        }
        stats_.alive.fetch_sub(1, std::memory_order_relaxed);
      });
    }
  }

  ~SlotBoundExecutor() override { shutdown(); }

  bool submit(std::size_t slot_key, Task task) override {
    if (slot_key == kUnboundTask || slot_key >= queues_.size()) {
      return spawner_.spawn(std::move(task));
    }
    return queues_[slot_key].push(std::move(task));
  }

  void shutdown() override {
    bool expected = false;
    if (!shut_.compare_exchange_strong(expected, true)) return;
    for (auto& q : queues_) q.close();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    spawner_.close_and_join();
  }

  std::uint64_t threads_created() const override {
    return stats_.created.load(std::memory_order_relaxed);
  }
  std::uint64_t threads_alive() const override {
    return stats_.alive.load(std::memory_order_relaxed);
  }
  ProcessModel model() const override { return ProcessModel::kSlotBound; }

 private:
  std::string name_;
  ThreadStats stats_;
  DynamicSpawner spawner_;
  std::vector<support::BlockingQueue<Task>> queues_;
  std::vector<std::jthread> workers_;
  std::atomic<bool> shut_{false};
};

/// The pooled process model as a work-stealing pool: every worker owns a
/// mutex-striped deque (critical sections are a couple of pointer moves,
/// per CP.43), submitters route to a stripe by slot key (or round-robin for
/// unbound work), and a worker whose own deque runs dry steals from its
/// peers before parking on an EventCount. Compared with
/// the previous single shared BlockingQueue this removes the one mutex that
/// every submit and every dequeue contended on, and lets an uncontended
/// submit skip the wake syscall entirely when no worker is sleeping.
class WorkStealingPooledExecutor final : public Executor {
 public:
  WorkStealingPooledExecutor(std::size_t m_workers, std::string name)
      : name_(std::move(name)), stripes_(m_workers == 0 ? 1 : m_workers) {
    for (auto& s : stripes_) s = std::make_unique<Stripe>();
    const std::size_t m = stripes_.size();
    workers_.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      stats_.created.fetch_add(1, std::memory_order_relaxed);
      stats_.alive.fetch_add(1, std::memory_order_relaxed);
      workers_.emplace_back([this, i] {
        support::set_current_thread_name(name_ + "/p" + std::to_string(i));
        run_worker(i);
        stats_.alive.fetch_sub(1, std::memory_order_relaxed);
      });
    }
  }

  ~WorkStealingPooledExecutor() override { shutdown(); }

  bool submit(std::size_t slot_key, Task task) override {
    Stripe& s = stripe_for(slot_key);
    {
      std::scoped_lock lock(s.mu);
      // closed_ is checked under the stripe lock: a worker's final
      // emptiness scan also locks every stripe, so either it sees this
      // push, or this check sees closed_ (read-read coherence through the
      // lock) and the task is refused — never stranded.
      if (closed_.load(std::memory_order_seq_cst)) return false;
      s.q.push_back(std::move(task));
    }
    // One task: wake one sleeper, not the herd (workers re-scan every
    // stripe before re-parking, so coalesced wakeups cannot strand work).
    idle_.signal_one();
    return true;
  }

  std::size_t submit_batch(std::vector<BatchItem> items) override {
    if (items.empty()) return 0;
    std::size_t accepted = 0;
    // Group per stripe so each stripe lock is taken once, then wake the
    // pool once for the whole batch.
    std::vector<std::vector<Task>> per_stripe(stripes_.size());
    for (auto& item : items) {
      per_stripe[stripe_index(item.slot_key)].push_back(std::move(item.task));
    }
    for (std::size_t i = 0; i < per_stripe.size(); ++i) {
      if (per_stripe[i].empty()) continue;
      std::scoped_lock lock(stripes_[i]->mu);
      if (closed_.load(std::memory_order_seq_cst)) continue;  // tasks dropped
      for (auto& t : per_stripe[i]) stripes_[i]->q.push_back(std::move(t));
      accepted += per_stripe[i].size();
    }
    if (accepted == 1) {
      idle_.signal_one();
    } else if (accepted > 1) {
      idle_.signal();  // several tasks: the whole pool may have work
    }
    return accepted;
  }

  void shutdown() override {
    bool expected = false;
    if (!shut_.compare_exchange_strong(expected, true)) return;
    closed_.store(true, std::memory_order_seq_cst);
    idle_.signal();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  std::uint64_t threads_created() const override {
    return stats_.created.load(std::memory_order_relaxed);
  }
  std::uint64_t threads_alive() const override {
    return stats_.alive.load(std::memory_order_relaxed);
  }
  ProcessModel model() const override { return ProcessModel::kPooled; }

 private:
  struct Stripe {
    // std::mutex, not a spinlock: uncontended futex lock/unlock is one CAS
    // (as cheap as spinning), and on an oversubscribed or single-core box a
    // holder preempted mid-section must make contenders *block*, not burn
    // their whole timeslice spinning.
    std::mutex mu;
    std::deque<Task> q;
  };

  std::size_t stripe_index(std::size_t slot_key) const {
    return (slot_key == kUnboundTask
                ? rr_.fetch_add(1, std::memory_order_relaxed)
                : slot_key) %
           stripes_.size();
  }
  Stripe& stripe_for(std::size_t slot_key) {
    return *stripes_[stripe_index(slot_key)];
  }

  std::optional<Task> pop_local(std::size_t me) {
    Stripe& s = *stripes_[me];
    std::scoped_lock lock(s.mu);
    if (s.q.empty()) return std::nullopt;
    Task t = std::move(s.q.front());
    s.q.pop_front();
    return t;
  }

  /// Steals from peers; try_lock so a busy stripe is skipped rather than
  /// spun on. Steal from the back — the owner takes from the front.
  std::optional<Task> steal(std::size_t me) {
    const std::size_t m = stripes_.size();
    for (std::size_t d = 1; d < m; ++d) {
      Stripe& s = *stripes_[(me + d) % m];
      if (!s.mu.try_lock()) continue;
      std::unique_lock lock(s.mu, std::adopt_lock);
      if (s.q.empty()) continue;
      Task t = std::move(s.q.back());
      s.q.pop_back();
      return t;
    }
    return std::nullopt;
  }

  /// Exhaustive scan (blocking locks) — the authority for "the pool is
  /// empty", used right before parking or exiting.
  std::optional<Task> scan_all(std::size_t me) {
    const std::size_t m = stripes_.size();
    for (std::size_t d = 0; d < m; ++d) {
      Stripe& s = *stripes_[(me + d) % m];
      std::scoped_lock lock(s.mu);
      if (s.q.empty()) continue;
      Task t = std::move(s.q.front());
      s.q.pop_front();
      return t;
    }
    return std::nullopt;
  }

  void run_worker(std::size_t me) {
    for (;;) {
      if (auto t = pop_local(me)) {
        (*t)();
        continue;
      }
      if (auto t = steal(me)) {
        (*t)();
        continue;
      }
      // Register as a sleeper *before* the authoritative rescan so a
      // submit between the rescan and the park is never missed.
      support::EventCount::Ticket ticket(idle_);
      const bool closed = closed_.load(std::memory_order_seq_cst);
      if (auto t = scan_all(me)) {
        (*t)();
        continue;
      }
      if (closed) return;  // drained: closed_ was set before the empty scan
      ticket.wait();
    }
  }

  std::string name_;
  ThreadStats stats_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  mutable std::atomic<std::size_t> rr_{0};
  support::EventCount idle_;
  std::atomic<bool> closed_{false};
  std::vector<std::jthread> workers_;
  std::atomic<bool> shut_{false};
};

class DynamicExecutor final : public Executor {
 public:
  explicit DynamicExecutor(std::string name)
      : name_(std::move(name)), spawner_(name_, &stats_) {}

  ~DynamicExecutor() override { shutdown(); }

  bool submit(std::size_t, Task task) override {
    return spawner_.spawn(std::move(task));
  }

  void shutdown() override {
    bool expected = false;
    if (!shut_.compare_exchange_strong(expected, true)) return;
    spawner_.close_and_join();
  }

  std::uint64_t threads_created() const override {
    return stats_.created.load(std::memory_order_relaxed);
  }
  std::uint64_t threads_alive() const override {
    return stats_.alive.load(std::memory_order_relaxed);
  }
  ProcessModel model() const override { return ProcessModel::kDynamic; }

 private:
  std::string name_;
  ThreadStats stats_;
  DynamicSpawner spawner_;
  std::atomic<bool> shut_{false};
};

}  // namespace

const char* to_string(ProcessModel model) {
  switch (model) {
    case ProcessModel::kSlotBound: return "slot-bound";
    case ProcessModel::kPooled: return "pooled";
    case ProcessModel::kDynamic: return "dynamic";
  }
  return "?";
}

std::unique_ptr<Executor> make_slot_bound_executor(std::size_t n_slots,
                                                   std::string name) {
  return std::make_unique<SlotBoundExecutor>(n_slots, std::move(name));
}

std::unique_ptr<Executor> make_pooled_executor(std::size_t m_workers,
                                               std::string name) {
  return std::make_unique<WorkStealingPooledExecutor>(m_workers,
                                                      std::move(name));
}

std::unique_ptr<Executor> make_dynamic_executor(std::string name) {
  return std::make_unique<DynamicExecutor>(std::move(name));
}

std::unique_ptr<Executor> make_executor(ProcessModel model, std::size_t n_slots,
                                        std::size_t m_workers,
                                        std::string name) {
  switch (model) {
    case ProcessModel::kSlotBound:
      return make_slot_bound_executor(n_slots, std::move(name));
    case ProcessModel::kPooled:
      return make_pooled_executor(m_workers, std::move(name));
    case ProcessModel::kDynamic:
      return make_dynamic_executor(std::move(name));
  }
  return make_pooled_executor(m_workers, std::move(name));
}

}  // namespace alps::sched
