// Nondeterministic selection (paper §2.4): the `select` and `loop`
// statements with accept / await / receive / when guards, acceptance
// conditions (`when B` evaluated against tentatively received values), and
// run-time priorities (`pri E`, smallest value wins).
//
//   Select()
//     .on(accept_guard(deposit)
//           .when([&](const ValueList&) { return count < N; })
//           .then([&](Accepted a) { m.execute(a); ++count; }))
//     .on(await_guard(deposit)
//           .then([&](Awaited w) { m.finish(w); }))
//     .loop(m);
//
// An accept/await guard stands for the whole family `(i:1..N) accept P[i]`;
// every eligible slot is a separate candidate, so `when`/`pri` can depend on
// each call's own values (e.g. shortest-seek-first scheduling).
//
// Selection is delta-driven (DESIGN.md §4.4): every event source carries a
// generation counter (the attached/ready queues' journals, the channels'
// front generation, the object's external-event epoch), and the selector
// caches each candidate's `when`/`pri` evaluation keyed on the generation it
// was computed at. A wakeup replays only the membership deltas of sources
// that actually moved; unchanged closures are never re-run. Eligible
// candidates live in a persistent min-heap keyed (pri, insertion seq) —
// pick-best is O(log n) rather than a rescan of guards × slots, and the seq
// key round-robins equal-pri candidates because a fired candidate re-enters
// behind its peers.
//
// Caching contract: by default `when`/`pri` closures are re-evaluated on
// every pass — they may freely read mutable state (the enclosing manager's
// locals, clocks, #P, ...), matching the pre-caching API. A guard whose
// closures are pure functions of their argument can opt into the fast path
// with `.cacheable()`: its verdicts are then cached per candidate and the
// closures are never re-run while the candidate is unchanged. Guards with
// no closures at all cache implicitly (their verdict depends on nothing);
// plain when-guards (`when B => S`) re-evaluate implicitly, and
// `Object::notify_external_event()` discards every cached result for
// callers that mutate state the kernel cannot see.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/channel.h"
#include "core/entry.h"
#include "core/manager.h"
#include "core/value.h"

namespace alps {

class Object;

/// Acceptance condition: sees the tentatively received values (intercepted
/// params for accept, intercepted+hidden results for await, the message for
/// receive). Must be side-effect free; it runs under the kernel lock and may
/// be evaluated for candidates that end up not selected. If the guard is
/// marked `cacheable`, it must also be a pure function of its argument —
/// the selector then caches its result per candidate.
using ValuePred = std::function<bool(const ValueList&)>;
/// Run-time priority (`pri E`); smaller is more urgent. Same restrictions.
using ValuePri = std::function<std::int64_t(const ValueList&)>;

struct AcceptGuard {
  EntryRef entry;
  ValuePred when_fn;
  ValuePri pri_fn;
  std::function<void(Accepted)> then_fn;
  bool reeval = false;
  bool cache = false;
  bool compat_gate = false;

  AcceptGuard&& when(ValuePred p) && {
    when_fn = std::move(p);
    return std::move(*this);
  }
  /// Gates the guard on the entry's compatibility group (DESIGN.md §4.8):
  /// candidates are eligible only while a call of this entry could launch —
  /// no incompatible group in flight and no older incompatible call waiting
  /// its turn. Group occupancy is a cached guard dimension: the verdict is
  /// keyed on the object's compat generation and re-derived only when that
  /// moves (occupancy transitions, participant queue changes) — never by a
  /// per-pass rescan. The entry must carry compatibility annotations; pair
  /// the guard's `then` with Manager::start_compatible (or
  /// start_compatible_pending).
  AcceptGuard&& compatible() && {
    compat_gate = true;
    return std::move(*this);
  }
  AcceptGuard&& pri(ValuePri p) && {
    pri_fn = std::move(p);
    return std::move(*this);
  }
  /// Declares the `when`/`pri` closures pure functions of their argument:
  /// the selector may cache their verdict per candidate and never re-run
  /// them while the candidate is unchanged (the delta-driven fast path).
  /// Without this, closure-bearing guards re-evaluate on every pass.
  AcceptGuard&& cacheable() && {
    cache = true;
    return std::move(*this);
  }
  /// Forces re-evaluation on every pass even for a guard the selector could
  /// cache (e.g. one with no closures). This is already the default for
  /// guards with `when`/`pri` closures; it overrides `.cacheable()`.
  AcceptGuard&& always_reeval() && {
    reeval = true;
    return std::move(*this);
  }
  AcceptGuard&& then(std::function<void(Accepted)> h) && {
    then_fn = std::move(h);
    return std::move(*this);
  }
};

struct AwaitGuard {
  EntryRef entry;
  ValuePred when_fn;
  ValuePri pri_fn;
  std::function<void(Awaited)> then_fn;
  bool reeval = false;
  bool cache = false;

  AwaitGuard&& when(ValuePred p) && {
    when_fn = std::move(p);
    return std::move(*this);
  }
  AwaitGuard&& pri(ValuePri p) && {
    pri_fn = std::move(p);
    return std::move(*this);
  }
  /// See AcceptGuard::cacheable.
  AwaitGuard&& cacheable() && {
    cache = true;
    return std::move(*this);
  }
  AwaitGuard&& always_reeval() && {
    reeval = true;
    return std::move(*this);
  }
  AwaitGuard&& then(std::function<void(Awaited)> h) && {
    then_fn = std::move(h);
    return std::move(*this);
  }
};

struct ReceiveGuard {
  ChannelRef channel;
  ValuePred when_fn;
  ValuePri pri_fn;
  std::function<void(ValueList)> then_fn;
  bool reeval = false;
  bool cache = false;

  ReceiveGuard&& when(ValuePred p) && {
    when_fn = std::move(p);
    return std::move(*this);
  }
  ReceiveGuard&& pri(ValuePri p) && {
    pri_fn = std::move(p);
    return std::move(*this);
  }
  /// See AcceptGuard::cacheable.
  ReceiveGuard&& cacheable() && {
    cache = true;
    return std::move(*this);
  }
  ReceiveGuard&& always_reeval() && {
    reeval = true;
    return std::move(*this);
  }
  ReceiveGuard&& then(std::function<void(ValueList)> h) && {
    then_fn = std::move(h);
    return std::move(*this);
  }
};

/// A pure boolean guard (`when B => S`). Its condition reads arbitrary
/// state by construction, so it is implicitly always re-evaluated.
struct WhenGuard {
  std::function<bool()> cond;
  std::function<std::int64_t()> pri_fn;
  std::function<void()> then_fn;

  WhenGuard&& pri(std::function<std::int64_t()> p) && {
    pri_fn = std::move(p);
    return std::move(*this);
  }
  WhenGuard&& then(std::function<void()> h) && {
    then_fn = std::move(h);
    return std::move(*this);
  }
};

inline AcceptGuard accept_guard(EntryRef e) {
  return AcceptGuard{e, {}, {}, {}};
}
inline AwaitGuard await_guard(EntryRef e) { return AwaitGuard{e, {}, {}, {}}; }
inline ReceiveGuard receive_guard(ChannelRef c) {
  return ReceiveGuard{std::move(c), {}, {}, {}};
}
inline WhenGuard when_guard(std::function<bool()> cond) {
  return WhenGuard{std::move(cond), {}, {}};
}

class Select {
 public:
  Select();
  ~Select();

  Select(const Select&) = delete;
  Select& operator=(const Select&) = delete;

  Select& on(AcceptGuard g);
  Select& on(AwaitGuard g);
  Select& on(ReceiveGuard g);
  Select& on(WhenGuard g);

  /// Runs one selection: blocks until a guard fires, runs its `then`
  /// handler (outside the kernel lock), and returns the guard's index.
  /// Throws kNoEligibleGuard if no guard is eligible and none can become so
  /// (only false when-guards remain); throws kObjectStopped when the object
  /// is stopping.
  std::size_t select(Manager& m);

  /// The paper's `loop`: selects repeatedly until the object stops. Returns
  /// normally on stop.
  void loop(Manager& m);

  /// Enables the naive O(N) slot-scan eligibility check that re-runs every
  /// closure on every wakeup — the wasteful strategy §3 warns about, and the
  /// differential baseline the incremental engine is tested against. Exists
  /// for experiment E9 (and that test).
  Select& use_naive_polling(bool enable);

  std::size_t guard_count() const { return guards_.size(); }

 private:
  enum class Kind { kAccept, kAwait, kReceive, kWhen };

  struct GuardRec {
    Kind kind;
    EntryRef entry;      // accept/await
    ChannelRef channel;  // receive
    ValuePred when_v;
    ValuePri pri_v;
    std::function<bool()> when_b;         // when-guard condition
    std::function<std::int64_t()> pri_b;  // when-guard priority
    std::function<void(Accepted)> on_accept;
    std::function<void(Awaited)> on_await;
    std::function<void(ValueList)> on_receive;
    std::function<void()> on_when;
    /// Closures read mutable state: never skip them via the cache.
    bool always_reeval = false;
    /// Accept guard gated on the entry's compat group (see
    /// AcceptGuard::compatible).
    bool compat_gate = false;
  };

  /// Cached evaluation of one candidate (a slot for accept/await guards;
  /// the single pseudo-candidate of a receive/when guard).
  struct SlotCache {
    /// Which evaluation the cache holds: the call id for accept/await (calls
    /// never re-attach, so an id match proves same values), the channel
    /// front generation for receive. 0 = never evaluated.
    std::uint64_t key = 0;
    /// Heap insertion seq of the live index entry (meaningful iff in_index).
    std::uint64_t seq = 0;
    std::int64_t pri = 0;
    bool eligible = false;
    /// A live heap entry for this candidate exists (with seq above). Heap
    /// entries are lazily deleted: anything disagreeing with the cache is
    /// garbage, discarded at pop or compaction.
    bool in_index = false;
  };

  struct GuardState {
    bool primed = false;      ///< evaluated at least once
    std::uint64_t src_gen = 0;  ///< source generation at last sync
    /// Compat-gated guards: object compat generation the gate verdict was
    /// derived at, and the verdict itself. While the gate is closed the
    /// guard contributes no candidates and skips its delta journal (a
    /// reopen rescans the members, re-adding cached verdicts cheaply).
    std::uint64_t compat_gen = 0;
    bool gate_open = true;
    std::vector<SlotCache> slots;
  };

  /// Persistent priority-index entry: min by (pri, seq). seq is assigned at
  /// insertion and kept while the candidate stays eligible with unchanged
  /// pri; a fired candidate re-inserts with a fresh seq and thus queues
  /// behind equal-pri peers — rotation fairness falls out of the key.
  struct IndexEntry {
    std::int64_t pri = 0;
    std::uint64_t seq = 0;
    std::uint32_t guard = 0;
    std::uint32_t slot = 0;  ///< kNoCacheSlot for receive/when
  };

  struct Fired {
    std::size_t guard_idx;
    Accepted accepted;
    Awaited awaited;
    ValueList message;
  };

  Fired select_impl(Manager& m);
  Fired select_impl_naive(Manager& m);
  /// Human-readable guard description for the watchdog's stall report.
  static std::string describe_guard(const GuardRec& g, Object* obj);

  // -- incremental engine internals (all require the kernel lock) --
  static bool index_before(const IndexEntry& a, const IndexEntry& b);
  void sync_guard(Object* obj, std::size_t gi, bool invalidated);
  void consider_slot(std::size_t gi, Object* obj, std::size_t slot_idx,
                     bool force);
  void update_mono_cache(std::size_t gi, std::uint64_t key, bool eligible,
                         std::int64_t pri);
  void push_entry(std::size_t gi, std::uint32_t slot, SlotCache& c,
                  std::int64_t pri);
  SlotCache& cache_of(const IndexEntry& e);
  bool entry_live(const IndexEntry& e) const;
  bool validate_top(Object* obj, const IndexEntry& e) const;
  void compact_index();

  std::vector<GuardRec> guards_;
  std::vector<GuardState> state_;
  std::vector<IndexEntry> index_;  ///< binary min-heap, lazy deletion
  std::size_t live_count_ = 0;     ///< non-garbage entries in index_
  ValueList scratch_view_;         ///< reused intercepted-params view
  std::uint64_t next_seq_ = 0;
  std::uint64_t seen_inval_gen_ = 0;
  std::uint64_t rotation_ = 0;  ///< naive path's tie rotation
  bool naive_polling_ = false;
  // Scratch buffers for the naive path, reused across iterations (no
  // per-iteration heap allocation).
  struct NaiveCandidate {
    std::size_t guard_idx = 0;
    std::size_t slot = kNoSlot;
    std::int64_t pri = 0;
  };
  std::vector<NaiveCandidate> scratch_candidates_;
  std::vector<std::size_t> scratch_tied_;
};

}  // namespace alps
