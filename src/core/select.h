// Nondeterministic selection (paper §2.4): the `select` and `loop`
// statements with accept / await / receive / when guards, acceptance
// conditions (`when B` evaluated against tentatively received values), and
// run-time priorities (`pri E`, smallest value wins).
//
//   Select()
//     .on(accept_guard(deposit)
//           .when([&](const ValueList&) { return count < N; })
//           .then([&](Accepted a) { m.execute(a); ++count; }))
//     .on(await_guard(deposit)
//           .then([&](Awaited w) { m.finish(w); }))
//     .loop(m);
//
// An accept/await guard stands for the whole family `(i:1..N) accept P[i]`;
// every eligible slot is a separate candidate, so `when`/`pri` can depend on
// each call's own values (e.g. shortest-seek-first scheduling). Eligibility
// checks use the kernel's indexed ready lists (O(ready), not O(N) polls —
// the waste the paper's §3 warns about; bench_guard_scan quantifies it).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/channel.h"
#include "core/entry.h"
#include "core/manager.h"
#include "core/value.h"

namespace alps {

class Object;

/// Acceptance condition: sees the tentatively received values (intercepted
/// params for accept, intercepted+hidden results for await, the message for
/// receive). Must be side-effect free; it runs under the kernel lock and may
/// be evaluated for candidates that end up not selected.
using ValuePred = std::function<bool(const ValueList&)>;
/// Run-time priority (`pri E`); smaller is more urgent. Same restrictions.
using ValuePri = std::function<std::int64_t(const ValueList&)>;

struct AcceptGuard {
  EntryRef entry;
  ValuePred when_fn;
  ValuePri pri_fn;
  std::function<void(Accepted)> then_fn;

  AcceptGuard&& when(ValuePred p) && {
    when_fn = std::move(p);
    return std::move(*this);
  }
  AcceptGuard&& pri(ValuePri p) && {
    pri_fn = std::move(p);
    return std::move(*this);
  }
  AcceptGuard&& then(std::function<void(Accepted)> h) && {
    then_fn = std::move(h);
    return std::move(*this);
  }
};

struct AwaitGuard {
  EntryRef entry;
  ValuePred when_fn;
  ValuePri pri_fn;
  std::function<void(Awaited)> then_fn;

  AwaitGuard&& when(ValuePred p) && {
    when_fn = std::move(p);
    return std::move(*this);
  }
  AwaitGuard&& pri(ValuePri p) && {
    pri_fn = std::move(p);
    return std::move(*this);
  }
  AwaitGuard&& then(std::function<void(Awaited)> h) && {
    then_fn = std::move(h);
    return std::move(*this);
  }
};

struct ReceiveGuard {
  ChannelRef channel;
  ValuePred when_fn;
  ValuePri pri_fn;
  std::function<void(ValueList)> then_fn;

  ReceiveGuard&& when(ValuePred p) && {
    when_fn = std::move(p);
    return std::move(*this);
  }
  ReceiveGuard&& pri(ValuePri p) && {
    pri_fn = std::move(p);
    return std::move(*this);
  }
  ReceiveGuard&& then(std::function<void(ValueList)> h) && {
    then_fn = std::move(h);
    return std::move(*this);
  }
};

/// A pure boolean guard (`when B => S`).
struct WhenGuard {
  std::function<bool()> cond;
  std::function<std::int64_t()> pri_fn;
  std::function<void()> then_fn;

  WhenGuard&& pri(std::function<std::int64_t()> p) && {
    pri_fn = std::move(p);
    return std::move(*this);
  }
  WhenGuard&& then(std::function<void()> h) && {
    then_fn = std::move(h);
    return std::move(*this);
  }
};

inline AcceptGuard accept_guard(EntryRef e) { return AcceptGuard{e, {}, {}, {}}; }
inline AwaitGuard await_guard(EntryRef e) { return AwaitGuard{e, {}, {}, {}}; }
inline ReceiveGuard receive_guard(ChannelRef c) {
  return ReceiveGuard{std::move(c), {}, {}, {}};
}
inline WhenGuard when_guard(std::function<bool()> cond) {
  return WhenGuard{std::move(cond), {}, {}};
}

class Select {
 public:
  Select();
  ~Select();

  Select(const Select&) = delete;
  Select& operator=(const Select&) = delete;

  Select& on(AcceptGuard g);
  Select& on(AwaitGuard g);
  Select& on(ReceiveGuard g);
  Select& on(WhenGuard g);

  /// Runs one selection: blocks until a guard fires, runs its `then`
  /// handler (outside the kernel lock), and returns the guard's index.
  /// Throws kNoEligibleGuard if no guard is eligible and none can become so
  /// (only false when-guards remain); throws kObjectStopped when the object
  /// is stopping.
  std::size_t select(Manager& m);

  /// The paper's `loop`: selects repeatedly until the object stops. Returns
  /// normally on stop.
  void loop(Manager& m);

  /// Enables the naive O(N) slot-scan eligibility check instead of the
  /// indexed ready lists — the wasteful strategy §3 warns about. Exists for
  /// experiment E9 only.
  Select& use_naive_polling(bool enable);

  std::size_t guard_count() const { return guards_.size(); }

 private:
  enum class Kind { kAccept, kAwait, kReceive, kWhen };

  struct GuardRec {
    Kind kind;
    EntryRef entry;           // accept/await
    ChannelRef channel;       // receive
    ValuePred when_v;
    ValuePri pri_v;
    std::function<bool()> when_b;          // when-guard condition
    std::function<std::int64_t()> pri_b;   // when-guard priority
    std::function<void(Accepted)> on_accept;
    std::function<void(Awaited)> on_await;
    std::function<void(ValueList)> on_receive;
    std::function<void()> on_when;
  };

  struct Fired {
    std::size_t guard_idx;
    Accepted accepted;
    Awaited awaited;
    ValueList message;
  };

  Fired select_impl(Manager& m);

  std::vector<GuardRec> guards_;
  std::uint64_t rotation_ = 0;
  bool naive_polling_ = false;
};

}  // namespace alps
