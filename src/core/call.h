// Call records and completion futures.
//
// Every invocation of an entry procedure creates a CallRecord carrying the
// full caller-supplied parameter list and a shared CallState that the caller
// holds as a CallHandle. The kernel completes the state exactly once — with
// results at `finish` (or immediately for non-intercepted entries), or with
// an error if the body threw or the object stopped.
#pragma once

#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/error.h"
#include "core/value.h"

namespace alps {

/// Cooperative cancellation handle shared between a caller and the kernel.
/// The caller keeps the token and calls request_cancel(); every call launched
/// with this token in its CallOptions is then failed with kCancelled at
/// whatever lifecycle stage it has reached (pending calls are unqueued,
/// started bodies are abandoned and their result discarded). One token may
/// cover many calls, and may outlive the objects it was used against.
class CancelToken {
 public:
  void request_cancel() {
    std::vector<std::function<void()>> subs;
    {
      std::scoped_lock lock(mu_);
      if (cancelled_) return;
      cancelled_ = true;
      subs.swap(subs_);
    }
    for (auto& fn : subs) fn();
  }

  bool cancelled() const {
    std::scoped_lock lock(mu_);
    return cancelled_;
  }

  /// Kernel-internal: registers a callback run exactly once when the token is
  /// cancelled (immediately if it already is). Callbacks must not assume the
  /// object that registered them is still alive; the kernel registers thunks
  /// that only touch independently-owned supervisor state.
  void subscribe(std::function<void()> fn) {
    bool run_now = false;
    {
      std::scoped_lock lock(mu_);
      if (cancelled_) {
        run_now = true;
      } else {
        subs_.push_back(std::move(fn));
      }
    }
    if (run_now) fn();
  }

 private:
  mutable std::mutex mu_;
  bool cancelled_ = false;
  std::vector<std::function<void()>> subs_;
};

/// Per-call options for local (kernel-level) invocations. Distinct from
/// net::CallOptions, which drives the RPC retry machinery; this one is
/// enforced inside the object kernel and works at every stage of the
/// intercepted-call lifecycle. Zero-cost when default-constructed: the
/// kernel registers nothing unless a deadline or token is present.
struct CallOptions {
  /// Relative deadline; <=0 means none. On expiry the caller observes a
  /// typed Error(kTimeout) and the kernel reclaims whatever the call held.
  std::chrono::milliseconds deadline{0};
  /// Optional cancellation token (see CancelToken).
  std::shared_ptr<CancelToken> cancel = nullptr;

  bool none() const { return deadline.count() <= 0 && cancel == nullptr; }
};

class CallState {
 public:
  /// Completes with results. First completion wins; later ones are ignored
  /// (the kernel never double-completes, but shutdown races are tolerated).
  void complete(ValueList results) {
    std::function<void(CallState&)> cb;
    {
      std::scoped_lock lock(mu_);
      if (done_) return;
      results_ = std::move(results);
      done_ = true;
      cb = std::move(on_complete_);
    }
    cv_.notify_all();
    if (cb) cb(*this);
  }

  void fail(std::exception_ptr error) {
    std::function<void(CallState&)> cb;
    {
      std::scoped_lock lock(mu_);
      if (done_) return;
      error_ = std::move(error);
      done_ = true;
      cb = std::move(on_complete_);
    }
    cv_.notify_all();
    if (cb) cb(*this);
  }

  void fail(ErrorCode code, const std::string& what) {
    fail(std::make_exception_ptr(Error(code, what)));
  }

  bool ready() const {
    std::scoped_lock lock(mu_);
    return done_;
  }

  void wait() const {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return done_; });
  }

  /// Plain timed wait; returns false on timeout without completing the call.
  /// Callers that want a typed outcome should use get_for, which converts a
  /// timeout into an Error(kTimeout) completion instead of a bare false.
  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) const {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return done_; });
  }

  /// Waits up to `timeout`; on expiry fails the call with a typed
  /// Error(kTimeout) and throws it. First-completion-wins still holds: if a
  /// real completion races past the timeout, that completion is what get()
  /// observes and no timeout error is recorded.
  template <class Rep, class Period>
  ValueList get_for(std::chrono::duration<Rep, Period> timeout) {
    if (!wait_for(timeout)) {
      fail(ErrorCode::kTimeout, "call still outstanding at deadline");
    }
    return get();
  }

  /// Waits and returns the results, rethrowing any stored error. Kernel
  /// errors are rethrown as a per-caller copy (Error::raise_copy), never as
  /// the shared stored object, so the caller may keep reading its exception
  /// after every CallState reference is gone.
  ValueList get() {
    wait();
    std::scoped_lock lock(mu_);
    if (error_) {
      try {
        std::rethrow_exception(error_);
      } catch (const Error& e) {
        e.raise_copy();
      }
      // Non-Error exceptions (foreign types) propagate from the rethrow
      // unchanged.
    }
    return results_;
  }

  /// True iff completed with an error.
  bool failed() const {
    std::scoped_lock lock(mu_);
    return done_ && error_ != nullptr;
  }

  /// Registers a completion callback invoked exactly once, on the completing
  /// thread (or immediately if already done). Used by the RPC layer to send
  /// the response frame without dedicating a thread per in-flight call.
  void on_complete(std::function<void(CallState&)> cb) {
    bool run_now = false;
    {
      std::scoped_lock lock(mu_);
      if (done_) {
        run_now = true;
      } else {
        on_complete_ = std::move(cb);
      }
    }
    if (run_now) cb(*this);
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  ValueList results_;
  std::exception_ptr error_;
  std::function<void(CallState&)> on_complete_;
  bool done_ = false;
};

/// The caller's side of an invocation (a lightweight shared future).
class CallHandle {
 public:
  CallHandle() = default;
  explicit CallHandle(std::shared_ptr<CallState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ && state_->ready(); }
  void wait() const { state_->wait(); }

  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) const {
    return state_->wait_for(timeout);
  }

  /// Blocks for the results; rethrows the call's error if it failed.
  ValueList get() { return state_->get(); }

  /// Timed get: throws Error(kTimeout) if the call is still outstanding
  /// after `timeout` (and fails the call so later observers agree).
  template <class Rep, class Period>
  ValueList get_for(std::chrono::duration<Rep, Period> timeout) {
    return state_->get_for(timeout);
  }

  std::shared_ptr<CallState> state() const { return state_; }

 private:
  std::shared_ptr<CallState> state_;
};

/// Kernel-internal record of one invocation.
struct CallRecord {
  ValueList params;  // full caller-supplied parameter list
  std::shared_ptr<CallState> state;
  std::chrono::steady_clock::time_point arrived;
  std::uint64_t id = 0;  // per-object unique id (tracing)
};

}  // namespace alps
