// Error taxonomy for the ALPS kernel.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace alps {

enum class ErrorCode {
  kTypeMismatch,       ///< Value accessed as the wrong kind
  kArityMismatch,      ///< wrong number of params/results supplied
  kNoSuchEntry,        ///< entry name not found on an object
  kNotExported,        ///< external call to a local (non-exported) procedure
  kProtocolViolation,  ///< manager primitive used out of lifecycle order
  kObjectStopped,      ///< object stopped while the call was outstanding
  kNoEligibleGuard,    ///< select with no eligible and no waitable guard
  kChannelClosed,      ///< receive on a closed, drained channel
  kBodyFailed,         ///< entry body raised an exception
  kNetwork,            ///< simulated-network failure
  kBadMessage,         ///< undecodable wire frame
  kTimeout,            ///< deadline elapsed before the operation completed
  kCancelled,          ///< caller revoked the call via its CancelToken
  kObjectDown,         ///< object quarantined after a manager failure
};

const char* to_string(ErrorCode code);

class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(""),
        code_(code),
        msg_(std::make_shared<const std::string>(
            std::string(to_string(code)) + ": " + what)) {}

  /// The message lives in a shared immutable string instead of the
  /// runtime_error base: Error copies cross threads (an exception stored by
  /// the network delivery thread, its copy read on the caller's thread), and
  /// libstdc++ keeps what() in a refcounted COW buffer whose synchronization
  /// is invisible to sanitizer-instrumented code. shared_ptr's refcount is
  /// header-inlined, so the lifetime handoff stays visible.
  const char* what() const noexcept override { return msg_->c_str(); }

  /// Throws a copy of the most-derived error. Completion futures use this to
  /// hand every caller its own exception object: the stored one is freed by
  /// whichever thread drops the last CallState reference (often a kernel or
  /// network thread), with lifetime managed by libstdc++'s exception_ptr
  /// refcount — another handoff invisible to instrumented builds. Subclasses
  /// that add state must override.
  [[noreturn]] virtual void raise_copy() const { throw Error(*this); }

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
  std::shared_ptr<const std::string> msg_;
};

[[noreturn]] inline void raise(ErrorCode code, const std::string& what) {
  throw Error(code, what);
}

inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kTypeMismatch: return "type mismatch";
    case ErrorCode::kArityMismatch: return "arity mismatch";
    case ErrorCode::kNoSuchEntry: return "no such entry";
    case ErrorCode::kNotExported: return "entry not exported";
    case ErrorCode::kProtocolViolation: return "protocol violation";
    case ErrorCode::kObjectStopped: return "object stopped";
    case ErrorCode::kNoEligibleGuard: return "no eligible guard";
    case ErrorCode::kChannelClosed: return "channel closed";
    case ErrorCode::kBodyFailed: return "body failed";
    case ErrorCode::kNetwork: return "network error";
    case ErrorCode::kBadMessage: return "bad message";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kObjectDown: return "object down";
  }
  return "unknown error";
}

/// Value-or-error sum type for APIs that report failures as data instead of
/// exceptions (the fault-tolerant RPC surface returns
/// `Result<ValueList, net::RpcError>`). Minimal by design: `ok()`, `value()`,
/// `error()`, and nothing that would hide which arm is engaged.
template <class T, class E>
class Result {
 public:
  Result(T value) : v_(std::in_place_index<0>, std::move(value)) {}
  Result(E error) : v_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return v_.index() == 0; }
  explicit operator bool() const { return ok(); }

  /// The success value; call only when ok().
  T& value() & { return std::get<0>(v_); }
  const T& value() const& { return std::get<0>(v_); }
  T&& value() && { return std::get<0>(std::move(v_)); }

  /// The error; call only when !ok().
  E& error() & { return std::get<1>(v_); }
  const E& error() const& { return std::get<1>(v_); }

  T value_or(T fallback) const& {
    return ok() ? std::get<0>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, E> v_;
};

}  // namespace alps
