// Error taxonomy for the ALPS kernel.
#pragma once

#include <stdexcept>
#include <string>

namespace alps {

enum class ErrorCode {
  kTypeMismatch,       ///< Value accessed as the wrong kind
  kArityMismatch,      ///< wrong number of params/results supplied
  kNoSuchEntry,        ///< entry name not found on an object
  kNotExported,        ///< external call to a local (non-exported) procedure
  kProtocolViolation,  ///< manager primitive used out of lifecycle order
  kObjectStopped,      ///< object stopped while the call was outstanding
  kNoEligibleGuard,    ///< select with no eligible and no waitable guard
  kChannelClosed,      ///< receive on a closed, drained channel
  kBodyFailed,         ///< entry body raised an exception
  kNetwork,            ///< simulated-network failure
  kBadMessage,         ///< undecodable wire frame
};

const char* to_string(ErrorCode code);

class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(std::string(to_string(code)) + ": " + what),
        code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

[[noreturn]] inline void raise(ErrorCode code, const std::string& what) {
  throw Error(code, what);
}

inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kTypeMismatch: return "type mismatch";
    case ErrorCode::kArityMismatch: return "arity mismatch";
    case ErrorCode::kNoSuchEntry: return "no such entry";
    case ErrorCode::kNotExported: return "entry not exported";
    case ErrorCode::kProtocolViolation: return "protocol violation";
    case ErrorCode::kObjectStopped: return "object stopped";
    case ErrorCode::kNoEligibleGuard: return "no eligible guard";
    case ErrorCode::kChannelClosed: return "channel closed";
    case ErrorCode::kBodyFailed: return "body failed";
    case ErrorCode::kNetwork: return "network error";
    case ErrorCode::kBadMessage: return "bad message";
  }
  return "unknown error";
}

}  // namespace alps
