#include "core/channel.h"

#include <atomic>

#include "core/error.h"

namespace alps {

namespace {
std::atomic<std::uint64_t> g_next_channel_id{1};
}

ChannelCore::ChannelCore(std::string name)
    : name_(std::move(name)),
      id_(g_next_channel_id.fetch_add(1, std::memory_order_relaxed)) {}

bool ChannelCore::send(ValueList message) {
  std::function<bool(ValueList)> forward;
  bool wake = false;
  bool has_observers = false;
  {
    std::scoped_lock lock(mu_);
    if (closed_) return false;
    if (forward_) {
      forward = forward_;  // forward outside the lock
    } else {
      messages_.push_back(std::move(message));
      bump_front_gen();
      // Snapshot both wake conditions under the lock so the fast path pays
      // neither the notify syscall nor notify_observers' second lock round.
      // A receiver that arrives after we release mu_ sees the message; an
      // observer registered after we release mu_ re-evaluates its guards
      // right after registering (see Select::select_impl).
      wake = waiters_ > 0;
      has_observers = !observers_.empty();
    }
  }
  if (forward) return forward(std::move(message));
  if (wake) cv_.notify_one();
  if (has_observers) notify_observers();
  return true;
}

ValueList ChannelCore::receive() {
  std::unique_lock lock(mu_);
  ++waiters_;
  cv_.wait(lock, [&] { return !messages_.empty() || closed_; });
  --waiters_;
  if (messages_.empty()) {
    raise(ErrorCode::kChannelClosed, "receive on closed channel " + name_);
  }
  ValueList msg = std::move(messages_.front());
  messages_.pop_front();
  bump_front_gen();
  return msg;
}

std::optional<ValueList> ChannelCore::try_receive() {
  std::scoped_lock lock(mu_);
  if (messages_.empty()) return std::nullopt;
  ValueList msg = std::move(messages_.front());
  messages_.pop_front();
  bump_front_gen();
  return msg;
}

std::optional<ValueList> ChannelCore::receive_for(
    std::chrono::nanoseconds timeout) {
  std::unique_lock lock(mu_);
  ++waiters_;
  const bool ready = cv_.wait_for(
      lock, timeout, [&] { return !messages_.empty() || closed_; });
  --waiters_;
  if (!ready) return std::nullopt;
  if (messages_.empty()) return std::nullopt;
  ValueList msg = std::move(messages_.front());
  messages_.pop_front();
  bump_front_gen();
  return msg;
}

bool ChannelCore::peek_front(
    const std::function<void(const ValueList&)>& fn) const {
  std::scoped_lock lock(mu_);
  if (messages_.empty()) return false;
  fn(messages_.front());
  return true;
}

std::optional<ValueList> ChannelCore::take_front_if(
    const std::function<bool(const ValueList&)>& fn) {
  std::scoped_lock lock(mu_);
  if (messages_.empty() || !fn(messages_.front())) return std::nullopt;
  ValueList msg = std::move(messages_.front());
  messages_.pop_front();
  bump_front_gen();
  return msg;
}

void ChannelCore::close() {
  {
    std::scoped_lock lock(mu_);
    closed_ = true;
    bump_front_gen();
  }
  cv_.notify_all();
  notify_observers();
}

bool ChannelCore::closed() const {
  std::scoped_lock lock(mu_);
  return closed_;
}

std::size_t ChannelCore::size() const {
  std::scoped_lock lock(mu_);
  return messages_.size();
}

ChannelCore::ObserverToken ChannelCore::add_observer(std::function<void()> fn) {
  std::scoped_lock lock(mu_);
  const ObserverToken token = next_token_++;
  observers_.emplace_back(token, std::move(fn));
  return token;
}

void ChannelCore::remove_observer(ObserverToken token) {
  std::scoped_lock lock(mu_);
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (it->first == token) {
      observers_.erase(it);
      return;
    }
  }
}

void ChannelCore::set_forward(std::function<bool(ValueList)> forward) {
  std::scoped_lock lock(mu_);
  forward_ = std::move(forward);
}

bool ChannelCore::is_remote_proxy() const {
  std::scoped_lock lock(mu_);
  return static_cast<bool>(forward_);
}

void ChannelCore::notify_observers() {
  // Copy under the lock, invoke outside it: observers take other locks
  // (e.g. the owning object's kernel lock) and must not nest inside ours.
  std::vector<std::function<void()>> snapshot;
  {
    std::scoped_lock lock(mu_);
    snapshot.reserve(observers_.size());
    for (auto& [token, fn] : observers_) snapshot.push_back(fn);
  }
  for (auto& fn : snapshot) fn();
}

ChannelRef make_channel(std::string name) {
  return std::make_shared<ChannelCore>(std::move(name));
}

}  // namespace alps
