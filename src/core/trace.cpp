#include "core/trace.h"

#include <sstream>

#include "support/stats.h"

namespace alps {

const char* to_string(CallPhase phase) {
  switch (phase) {
    case CallPhase::kArrived: return "arrived";
    case CallPhase::kAttached: return "attached";
    case CallPhase::kAccepted: return "accepted";
    case CallPhase::kStarted: return "started";
    case CallPhase::kReady: return "ready";
    case CallPhase::kFinished: return "finished";
    case CallPhase::kFailed: return "failed";
    case CallPhase::kCombined: return "combined";
    case CallPhase::kDeferred: return "deferred";
  }
  return "?";
}

std::string StallReport::summary() const {
  std::ostringstream os;
  os << "watchdog: object '" << object << "' stalled for " << stalled_for.count()
     << "ms (manager: " << manager_activity
     << (escalated ? ", escalated" : "") << ")\n";
  for (const EntryRow& row : entries) {
    if (row.pending == 0 && row.attached == 0 && row.accepted == 0 &&
        row.running == 0 && row.ready == 0 && row.awaited == 0 &&
        row.deferred == 0) {
      continue;
    }
    os << "  entry '" << row.name << "': pending=" << row.pending
       << " attached=" << row.attached << " accepted=" << row.accepted
       << " running=" << row.running << " ready=" << row.ready
       << " awaited=" << row.awaited;
    if (row.deferred > 0) os << " deferred=" << row.deferred;
    os << "\n";
  }
  if (!guards.empty()) {
    os << "  last select guards:\n";
    for (const std::string& g : guards) os << "    " << g << "\n";
  }
  return os.str();
}

void TraceCollector::on_event(const TraceEvent& event) {
  std::scoped_lock lock(mu_);
  EntryState& state = entries_[event.entry];
  EntryReport& rep = state.report;
  switch (event.phase) {
    case CallPhase::kArrived: {
      ++rep.arrived;
      state.pending[event.call_id].arrived = event.at;
      return;
    }
    case CallPhase::kAttached: {
      auto it = state.pending.find(event.call_id);
      if (it == state.pending.end()) return;
      it->second.attached = event.at;
      rep.attach_wait.record_duration(event.at - it->second.arrived);
      return;
    }
    case CallPhase::kAccepted: {
      auto it = state.pending.find(event.call_id);
      if (it == state.pending.end()) return;
      it->second.accepted = event.at;
      rep.accept_wait.record_duration(event.at - it->second.attached);
      return;
    }
    case CallPhase::kStarted: {
      if (event.concurrency >= 2) ++rep.concurrent_starts;
      auto it = state.pending.find(event.call_id);
      if (it == state.pending.end()) return;
      it->second.started = event.at;
      rep.start_delay.record_duration(event.at - it->second.accepted);
      if (it->second.deferred.time_since_epoch().count() != 0) {
        rep.defer_wait.record_duration(event.at - it->second.deferred);
      }
      return;
    }
    case CallPhase::kDeferred: {
      ++rep.deferred;
      auto it = state.pending.find(event.call_id);
      if (it == state.pending.end()) return;
      it->second.deferred = event.at;
      return;
    }
    case CallPhase::kReady: {
      auto it = state.pending.find(event.call_id);
      if (it == state.pending.end()) return;
      it->second.ready = event.at;
      rep.service_time.record_duration(event.at - it->second.started);
      return;
    }
    case CallPhase::kFinished:
    case CallPhase::kFailed:
    case CallPhase::kCombined: {
      // Terminal counters always advance — a call that terminates is a call
      // that terminated, whether or not its arrival was observed. Only the
      // latency samples need the pending timestamps.
      if (event.phase == CallPhase::kFinished) {
        ++rep.finished;
      } else if (event.phase == CallPhase::kFailed) {
        ++rep.failed;
      } else {
        ++rep.combined;
      }
      auto it = state.pending.find(event.call_id);
      if (it == state.pending.end()) {
        ++rep.unmatched;
        return;
      }
      if (event.phase == CallPhase::kFinished &&
          it->second.ready.time_since_epoch().count() != 0) {
        rep.finish_delay.record_duration(event.at - it->second.ready);
      }
      rep.total_latency.record_duration(event.at - it->second.arrived);
      state.pending.erase(it);
      return;
    }
  }
}

TraceCollector::EntryReport TraceCollector::report(
    const std::string& entry) const {
  std::scoped_lock lock(mu_);
  auto it = entries_.find(entry);
  if (it == entries_.end()) return {};
  EntryReport rep = it->second.report;
  rep.still_pending = it->second.pending.size();
  return rep;
}

std::vector<std::string> TraceCollector::entries() const {
  std::scoped_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, state] : entries_) out.push_back(name);
  return out;
}

std::string TraceCollector::summary() const {
  // One lock acquisition for the whole dump: re-locking per entry would let
  // events land between entries and tear the snapshot (entry A's counters
  // from before a burst, entry B's from after).
  std::scoped_lock lock(mu_);
  std::ostringstream os;
  for (const auto& [name, state] : entries_) {
    const EntryReport& rep = state.report;
    os << name << ": arrived=" << rep.arrived << " finished=" << rep.finished
       << " failed=" << rep.failed << " combined=" << rep.combined
       << " unmatched=" << rep.unmatched << " abandoned=" << rep.abandoned
       << " pending=" << state.pending.size();
    if (rep.deferred > 0 || rep.concurrent_starts > 0) {
      os << " deferred=" << rep.deferred
         << " concurrent_starts=" << rep.concurrent_starts;
    }
    os << "\n";
    os << "  accept_wait   " << rep.accept_wait.summary() << "\n";
    os << "  service_time  " << rep.service_time.summary() << "\n";
    os << "  total_latency " << rep.total_latency.summary() << "\n";
  }
  // Process-wide data-plane footer (§4.9): how many payload bytes were
  // actually memcpy'd vs. carried by reference since start/reset — the
  // observable form of the zero-copy claim.
  const auto& dp = support::data_plane();
  os << "data-plane: frames=" << dp.frames_assembled.get()
     << " assembled=" << dp.bytes_assembled.get() << "B"
     << " copied=" << dp.bytes_copied.get() << "B"
     << " referenced=" << dp.bytes_referenced.get() << "B\n";
  // Transport-health footer (§4.11): rejected handshakes and poisoned
  // streams are never silent — they surface here even when no test holds
  // the owning transport's stats.
  const auto& nh = support::net_health();
  os << "transport-health: handshake_rejected=" << nh.handshake_rejected.get()
     << " connections_poisoned=" << nh.connections_poisoned.get()
     << " streams_poisoned=" << nh.streams_poisoned.get() << "\n";
  return os.str();
}

std::size_t TraceCollector::flush_pending() {
  std::scoped_lock lock(mu_);
  std::size_t flushed = 0;
  for (auto& [name, state] : entries_) {
    state.report.abandoned += state.pending.size();
    flushed += state.pending.size();
    state.pending.clear();
  }
  return flushed;
}

void TraceCollector::reset() {
  std::scoped_lock lock(mu_);
  entries_.clear();
}

}  // namespace alps
