// Typed façade over the dynamically typed kernel.
//
// The ALPS paper presents a strongly typed Pascal-like notation (§4); the
// kernel underneath moves untyped value lists. This header recovers static
// typing for C++ users: Codec<T> maps C++ types to kernel Values, and
// typed::call / typed::Channel wrap invocation and messaging.
//
//   auto h = typed::async_call<std::string>(dict, search, std::string("w1"));
//   std::string meaning = h.get();
//
//   typed::Channel<int, std::string> ch;   // chan(int, string)
//   ch.send(1, "hello");
//   auto [n, s] = ch.receive();
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/channel.h"
#include "core/error.h"
#include "core/object.h"
#include "core/value.h"

namespace alps::typed_api {

template <class T>
struct Codec;

template <>
struct Codec<bool> {
  static Value encode(bool v) { return Value(v); }
  static bool decode(const Value& v) { return v.as_bool(); }
};

template <>
struct Codec<std::int64_t> {
  static Value encode(std::int64_t v) { return Value(v); }
  static std::int64_t decode(const Value& v) { return v.as_int(); }
};

template <>
struct Codec<int> {
  static Value encode(int v) { return Value(v); }
  static int decode(const Value& v) { return static_cast<int>(v.as_int()); }
};

template <>
struct Codec<unsigned> {
  static Value encode(unsigned v) { return Value(v); }
  static unsigned decode(const Value& v) {
    return static_cast<unsigned>(v.as_int());
  }
};

template <>
struct Codec<std::size_t> {
  static Value encode(std::size_t v) { return Value(v); }
  static std::size_t decode(const Value& v) {
    return static_cast<std::size_t>(v.as_int());
  }
};

template <>
struct Codec<double> {
  static Value encode(double v) { return Value(v); }
  static double decode(const Value& v) { return v.as_real(); }
};

template <>
struct Codec<std::string> {
  static Value encode(std::string v) { return Value(std::move(v)); }
  static std::string decode(const Value& v) { return v.as_string(); }
};

template <>
struct Codec<Blob> {
  static Value encode(Blob v) { return Value(std::move(v)); }
  static Blob decode(const Value& v) { return v.as_blob().to_blob(); }
};

template <>
struct Codec<Buffer> {
  static Value encode(Buffer v) { return Value(std::move(v)); }
  static Buffer decode(const Value& v) { return v.as_blob(); }
};

template <>
struct Codec<Value> {
  static Value encode(Value v) { return v; }
  static Value decode(const Value& v) { return v; }
};

template <>
struct Codec<ChannelRef> {
  static Value encode(ChannelRef v) { return Value(std::move(v)); }
  static ChannelRef decode(const Value& v) { return v.as_channel(); }
};

template <class T>
struct Codec<std::vector<T>> {
  static Value encode(const std::vector<T>& v) {
    ValueList out;
    out.reserve(v.size());
    for (const auto& x : v) out.push_back(Codec<T>::encode(x));
    return Value(std::move(out));
  }
  static std::vector<T> decode(const Value& v) {
    const ValueList& list = v.as_list();
    std::vector<T> out;
    out.reserve(list.size());
    for (const auto& x : list) out.push_back(Codec<T>::decode(x));
    return out;
  }
};

template <class A, class B>
struct Codec<std::pair<A, B>> {
  static Value encode(const std::pair<A, B>& v) {
    return Value(ValueList{Codec<A>::encode(v.first), Codec<B>::encode(v.second)});
  }
  static std::pair<A, B> decode(const Value& v) {
    const ValueList& list = v.as_list();
    if (list.size() != 2) raise(ErrorCode::kTypeMismatch, "pair arity");
    return {Codec<A>::decode(list[0]), Codec<B>::decode(list[1])};
  }
};

/// Encodes a parameter pack into a ValueList.
template <class... Ts>
ValueList encode_all(Ts&&... ts) {
  ValueList out;
  out.reserve(sizeof...(Ts));
  (out.push_back(Codec<std::decay_t<Ts>>::encode(std::forward<Ts>(ts))), ...);
  return out;
}

/// Decodes a ValueList into a tuple of the given types.
template <class... Ts, std::size_t... Is>
std::tuple<Ts...> decode_tuple_impl(const ValueList& list,
                                    std::index_sequence<Is...>) {
  if (list.size() != sizeof...(Ts)) {
    raise(ErrorCode::kArityMismatch,
          "expected " + std::to_string(sizeof...(Ts)) + " values, got " +
              std::to_string(list.size()));
  }
  return std::tuple<Ts...>(Codec<Ts>::decode(list[Is])...);
}

template <class... Ts>
std::tuple<Ts...> decode_tuple(const ValueList& list) {
  return decode_tuple_impl<Ts...>(list, std::index_sequence_for<Ts...>{});
}

/// Typed future over a kernel CallHandle. R=void → get() returns void;
/// R=std::tuple<...> → multiple results; otherwise a single result.
template <class R>
class Future {
 public:
  explicit Future(CallHandle h) : h_(std::move(h)) {}

  R get() {
    ValueList results = h_.get();
    if constexpr (std::is_void_v<R>) {
      (void)results;
      return;
    } else {
      return decode_result(results);
    }
  }

  bool ready() const { return h_.ready(); }
  void wait() const { h_.wait(); }
  CallHandle& raw() { return h_; }

 private:
  template <class T = R>
  static T decode_result(const ValueList& results) {
    if constexpr (is_tuple_v<T>) {
      return decode_from_list<T>(results);
    } else {
      if (results.size() != 1) {
        raise(ErrorCode::kArityMismatch,
              "expected 1 result, got " + std::to_string(results.size()));
      }
      return Codec<T>::decode(results[0]);
    }
  }

  template <class T>
  struct is_tuple : std::false_type {};
  template <class... Ts>
  struct is_tuple<std::tuple<Ts...>> : std::true_type {};
  template <class T>
  static constexpr bool is_tuple_v = is_tuple<T>::value;

  template <class Tup, std::size_t... Is>
  static Tup decode_from_list_impl(const ValueList& list,
                                   std::index_sequence<Is...>) {
    if (list.size() != sizeof...(Is)) {
      raise(ErrorCode::kArityMismatch, "result tuple arity mismatch");
    }
    return Tup(Codec<std::tuple_element_t<Is, Tup>>::decode(list[Is])...);
  }

  template <class Tup>
  static Tup decode_from_list(const ValueList& list) {
    return decode_from_list_impl<Tup>(
        list, std::make_index_sequence<std::tuple_size_v<Tup>>{});
  }

  CallHandle h_;
};

/// typed::async_call<R>(obj, entry, args...) — type-checked invocation.
template <class R = void, class... Args>
Future<R> async_call(Object& obj, EntryRef entry, Args&&... args) {
  return Future<R>(obj.async_call(entry, encode_all(std::forward<Args>(args)...)));
}

template <class R = void, class... Args>
R call(Object& obj, EntryRef entry, Args&&... args) {
  return async_call<R>(obj, entry, std::forward<Args>(args)...).get();
}

/// Typed channel over a kernel channel: chan(T1, ..., Tn).
template <class... Ts>
class Channel {
 public:
  Channel() : core_(make_channel()) {}
  explicit Channel(std::string name) : core_(make_channel(std::move(name))) {}
  explicit Channel(ChannelRef core) : core_(std::move(core)) {}

  bool send(Ts... values) {
    return core_->send(encode_all(std::move(values)...));
  }

  std::tuple<Ts...> receive() { return decode_tuple<Ts...>(core_->receive()); }

  std::optional<std::tuple<Ts...>> try_receive() {
    auto msg = core_->try_receive();
    if (!msg) return std::nullopt;
    return decode_tuple<Ts...>(*msg);
  }

  void close() { core_->close(); }
  std::size_t size() const { return core_->size(); }

  /// The underlying kernel channel (to embed in Values / guards).
  const ChannelRef& ref() const { return core_; }
  Value as_value() const { return Value(core_); }

 private:
  ChannelRef core_;
};

}  // namespace alps::typed_api

namespace alps {
namespace typed = typed_api;  // convenient alias: alps::typed::call<...>
}
