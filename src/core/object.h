// alps::Object — the kernel of the reproduction.
//
// An object (paper §2.2) is shared data + entry procedures + an optional
// manager process. This class implements the call lifecycle:
//
//   invoke ──(not intercepted)──▶ body starts implicitly ──▶ caller completed
//   invoke ──(intercepted)─▶ attach to a free slot of P[1..N] (else queue)
//      Attached ─accept→ Accepted ─start→ Running ─body returns→ Ready
//      Ready ─await→ Awaited ─finish→ slot freed, caller completed
//      Accepted ─combine_finish→ caller completed without executing the body
//
// Threading model: one kernel mutex per object guards all scheduling state;
// bodies and manager handlers never run under it. The manager runs on a
// dedicated std::jthread (the paper wants it at higher priority so it stays
// receptive to entry calls; a dedicated always-runnable thread is the
// portable equivalent, and try_boost_priority() is attempted on top).
// Wakeups use a single condition variable plus an event epoch so select
// guards never poll.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stop_token>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/call.h"
#include "core/entry.h"
#include "core/trace.h"
#include "core/value.h"
#include "sched/executor.h"
#include "support/sync.h"

namespace alps {

class Manager;
class Select;

using ManagerFn = std::function<void(Manager&)>;

struct ObjectOptions {
  /// Process model for the procedure-array processes (paper §3).
  sched::ProcessModel model = sched::ProcessModel::kPooled;
  /// M, for the pooled model.
  std::size_t pool_workers = 4;
  /// Attempt to raise the manager thread's scheduling priority (best effort;
  /// the dedicated thread preserves the intent when this fails).
  bool boost_manager_priority = true;
};

struct EntryStats {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t accepts = 0;
  std::uint64_t starts = 0;
  std::uint64_t finishes = 0;
  std::uint64_t combines = 0;
  std::size_t pending = 0;
};

struct ObjectStats {
  std::vector<EntryStats> entries;
  std::uint64_t threads_created = 0;
  std::uint64_t threads_alive = 0;
};

class Object {
 public:
  explicit Object(std::string name, ObjectOptions opts = {});
  ~Object();

  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;

  // ---- definition part (§2.2) ----

  /// Declares an entry (or, with decl.exported=false, a local procedure).
  /// Must be called before start().
  EntryRef define_entry(EntryDecl decl);

  // ---- implementation part ----

  /// Provides the body; ImplDecl{} gives a plain single procedure.
  void implement(EntryRef entry, BodyFn body);
  /// Provides the body plus the hidden-array / hidden-params configuration.
  void implement(EntryRef entry, ImplDecl impl, BodyFn body);

  /// Installs the manager process with its intercepts clause. Optional: an
  /// object without a manager starts every call implicitly (§2.3).
  void set_manager(std::vector<InterceptClause> clauses, ManagerFn fn);

  /// Installs a lifecycle tracer (see core/trace.h). Must be called before
  /// start(); the tracer must outlive the object. Pass nullptr to disable.
  void set_tracer(Tracer* tracer);

  /// Freezes the definition, creates the process-model executor and the
  /// manager thread. Calls are only allowed between start() and stop().
  void start();

  /// Stops the manager, drains running bodies, fails unfinished calls with
  /// kObjectStopped. Idempotent; also run by the destructor.
  void stop();

  // ---- invocation (callers) ----

  /// External asynchronous invocation `X.P(...)`. All parameters are
  /// supplied here; the kernel routes the intercepted prefix to the manager.
  CallHandle async_call(EntryRef entry, ValueList params);
  CallHandle async_call(const std::string& entry_name, ValueList params);

  /// Blocking call; returns the results (throws the call's error).
  ValueList call(EntryRef entry, ValueList params);

  // ---- introspection ----

  /// The paper's `#P`: pending calls = waiting-to-attach + attached-but-not-
  /// yet-accepted. Lock-free, safe inside guard conditions.
  std::size_t pending(EntryRef entry) const;

  EntryRef entry(const std::string& name) const;

  /// Wakes the manager's select statement to re-evaluate its guards. Used by
  /// channel observers; harmless to call at any time.
  void notify_external_event();

  const std::string& name() const { return name_; }
  bool running() const;
  ObjectStats stats() const;
  /// Error that escaped the manager function, if any (nullptr otherwise).
  std::exception_ptr manager_error() const;

 private:
  friend class Manager;
  friend class Select;
  friend class BodyCtx;

  enum class SlotState : std::uint8_t {
    kFree,
    kAttached,
    kAccepted,
    kRunning,
    kReady,
    kAwaited,
  };

  struct Slot {
    SlotState state = SlotState::kFree;
    std::optional<CallRecord> call;
    /// After the body returns: intercepted visible results + hidden results
    /// (what `await` hands to the manager).
    ValueList mgr_results;
    /// Visible results beyond the intercepted prefix (go straight to the
    /// caller at finish).
    ValueList rest_results;
    std::exception_ptr body_error;
    /// Executor key for the slot-bound process model.
    std::size_t global_key = sched::kUnboundTask;
  };

  struct EntryCore {
    EntryDecl decl;
    ImplDecl impl;
    BodyFn body;
    bool implemented = false;
    bool intercepted = false;
    std::size_t icept_params = 0;
    std::size_t icept_results = 0;
    std::vector<Slot> slots;
    std::deque<CallRecord> overflow;   ///< waiting to attach (FIFO)
    std::deque<std::size_t> attached;  ///< slots awaiting accept (FIFO)
    std::deque<std::size_t> ready;     ///< slots ready to terminate (FIFO)
    std::atomic<std::size_t> pending{0};  ///< #P, lock-free mirror
    std::uint64_t calls = 0, accepts = 0, starts = 0, finishes = 0,
                  combines = 0;
  };

  // -- kernel helpers (suffix _locked requires mu_ held) --
  EntryCore& core(std::size_t idx) { return *entries_[idx]; }
  EntryCore& core_checked(EntryRef entry, const char* op);
  void bump_epoch_locked();
  void update_pending_locked(EntryCore& e);
  void attach_locked(std::size_t entry_idx, CallRecord rec);
  CallHandle dispatch(std::size_t entry_idx, ValueList params, bool external);
  void spawn_unintercepted(std::size_t entry_idx, CallRecord rec);
  void submit_body(std::size_t entry_idx, std::size_t slot_idx,
                   ValueList full_params);
  /// Frees a slot after finish/fail and attaches the next queued call.
  void release_slot_locked(std::size_t entry_idx, std::size_t slot_idx);
  void require_started(const char* op) const;
  void require_not_started(const char* op) const;
  /// Emits a trace event if a tracer is installed. Safe with or without the
  /// kernel lock held (the tracer must not reenter the kernel).
  void trace(const EntryCore& e, std::uint64_t call_id, std::size_t slot,
             CallPhase phase) const {
    if (tracer_) {
      tracer_->on_event(TraceEvent{e.decl.name, call_id, slot, phase,
                                   std::chrono::steady_clock::now()});
    }
  }

  std::string name_;
  ObjectOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable mgr_cv_;
  std::uint64_t epoch_ = 0;  // guarded by mu_; bumped on every kernel event

  std::vector<std::unique_ptr<EntryCore>> entries_;
  std::unordered_map<std::string, std::size_t> by_name_;

  ManagerFn manager_fn_;
  bool has_manager_ = false;
  Tracer* tracer_ = nullptr;
  std::atomic<std::uint64_t> next_call_id_{1};
  std::unique_ptr<sched::Executor> executor_;
  std::jthread manager_thread_;
  std::thread::id manager_thread_id_;
  std::stop_source stop_source_;
  std::exception_ptr manager_error_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  support::Event stop_done_;
};

}  // namespace alps
