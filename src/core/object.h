// alps::Object — the kernel of the reproduction.
//
// An object (paper §2.2) is shared data + entry procedures + an optional
// manager process. This class implements the call lifecycle:
//
//   invoke ──(not intercepted)──▶ body starts implicitly ──▶ caller completed
//   invoke ──(intercepted)─▶ attach to a free slot of P[1..N] (else queue)
//      Attached ─accept→ Accepted ─start→ Running ─body returns→ Ready
//      Ready ─await→ Awaited ─finish→ slot freed, caller completed
//      Accepted ─combine_finish→ caller completed without executing the body
//
// Threading model: one kernel mutex per object guards all scheduling state;
// bodies and manager handlers never run under it. The manager runs on a
// dedicated std::jthread (the paper wants it at higher priority so it stays
// receptive to entry calls; a dedicated always-runnable thread is the
// portable equivalent, and try_boost_priority() is attempted on top).
//
// Hot-path contention (see DESIGN.md §4.3):
//  - async_call never takes the kernel mutex: the call record goes onto a
//    lock-free MPSC intake queue and the kernel drains the whole backlog
//    under ONE lock acquisition the next time the manager (or, for
//    unintercepted entries, the dispatching caller) runs — N concurrent
//    callers pay one mutex round instead of N;
//  - wakeups use a waiter-counted event epoch (support::EventCount): a
//    kernel event with no sleeping manager is two atomic ops and no
//    syscall, and the only mgr_wake_ waiter is ever the manager thread
//    itself, so manager-side primitives (finish et al.) need no
//    self-notification at all;
//  - the attached/ready scheduling lists are intrusive FIFO queues with the
//    links stored in the slot (O(1) push/pop/remove, no find+erase) and each
//    carries a generation-stamped delta journal so the select engine can
//    react to exactly the slots that changed instead of rescanning
//    (DESIGN.md §4.4).
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stop_token>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/call.h"
#include "core/entry.h"
#include "core/trace.h"
#include "core/value.h"
#include "sched/executor.h"
#include "support/queue.h"
#include "support/sync.h"

namespace alps {

class Manager;
class Select;

using ManagerFn = std::function<void(Manager&)>;

struct ObjectOptions {
  /// Process model for the procedure-array processes (paper §3).
  sched::ProcessModel model = sched::ProcessModel::kPooled;
  /// M, for the pooled model.
  std::size_t pool_workers = 4;
  /// Attempt to raise the manager thread's scheduling priority (best effort;
  /// the dedicated thread preserves the intent when this fails).
  bool boost_manager_priority = true;
};

struct EntryStats {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t accepts = 0;
  std::uint64_t starts = 0;
  std::uint64_t finishes = 0;
  std::uint64_t combines = 0;
  std::size_t pending = 0;
};

struct ObjectStats {
  std::vector<EntryStats> entries;
  std::uint64_t threads_created = 0;
  std::uint64_t threads_alive = 0;
};

class Object {
 public:
  explicit Object(std::string name, ObjectOptions opts = {});
  ~Object();

  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;

  // ---- definition part (§2.2) ----

  /// Declares an entry (or, with decl.exported=false, a local procedure).
  /// Must be called before start().
  EntryRef define_entry(EntryDecl decl);

  // ---- implementation part ----

  /// Provides the body; ImplDecl{} gives a plain single procedure.
  void implement(EntryRef entry, BodyFn body);
  /// Provides the body plus the hidden-array / hidden-params configuration.
  void implement(EntryRef entry, ImplDecl impl, BodyFn body);

  /// Installs the manager process with its intercepts clause. Optional: an
  /// object without a manager starts every call implicitly (§2.3).
  void set_manager(std::vector<InterceptClause> clauses, ManagerFn fn);

  /// Installs a lifecycle tracer (see core/trace.h). Must be called before
  /// start(); the tracer must outlive the object. Pass nullptr to disable.
  void set_tracer(Tracer* tracer);

  /// Freezes the definition, creates the process-model executor and the
  /// manager thread. Calls are only allowed between start() and stop().
  void start();

  /// Stops the manager, drains running bodies, fails unfinished calls with
  /// kObjectStopped. Idempotent; also run by the destructor.
  void stop();

  // ---- invocation (callers) ----

  /// External asynchronous invocation `X.P(...)`. All parameters are
  /// supplied here; the kernel routes the intercepted prefix to the manager.
  CallHandle async_call(EntryRef entry, ValueList params);
  CallHandle async_call(const std::string& entry_name, ValueList params);

  /// Blocking call; returns the results (throws the call's error).
  ValueList call(EntryRef entry, ValueList params);

  // ---- introspection ----

  /// The paper's `#P`: pending calls = waiting-to-attach + attached-but-not-
  /// yet-accepted. Lock-free, safe inside guard conditions.
  std::size_t pending(EntryRef entry) const;

  EntryRef entry(const std::string& name) const;

  /// Wakes the manager's select statement to re-evaluate its guards;
  /// harmless to call at any time. Bumps the guard invalidation generation
  /// so cached `when`/`pri` results are discarded — this is the documented
  /// way to tell select "arbitrary object state changed". (Sources with
  /// their own generation counter — channels, the attached/ready lists —
  /// don't need it; their observers use the cheaper wake_manager().)
  void notify_external_event();

  /// Guard-cache invalidation epoch (see notify_external_event and
  /// DESIGN.md §4.4). Select re-runs every closure when this moves.
  std::uint64_t guard_inval_gen() const {
    return guard_inval_gen_.load(std::memory_order_acquire);
  }

  const std::string& name() const { return name_; }
  bool running() const;
  ObjectStats stats() const;
  /// Error that escaped the manager function, if any (nullptr otherwise).
  std::exception_ptr manager_error() const;

 private:
  friend class Manager;
  friend class Select;
  friend class BodyCtx;

  enum class SlotState : std::uint8_t {
    kFree,
    kAttached,
    kAccepted,
    kRunning,
    kReady,
    kAwaited,
  };

  struct Slot {
    SlotState state = SlotState::kFree;
    std::optional<CallRecord> call;
    /// After the body returns: intercepted visible results + hidden results
    /// (what `await` hands to the manager).
    ValueList mgr_results;
    /// Visible results beyond the intercepted prefix (go straight to the
    /// caller at finish).
    ValueList rest_results;
    std::exception_ptr body_error;
    /// Executor key for the slot-bound process model.
    std::size_t global_key = sched::kUnboundTask;
    /// Intrusive links for the attached/ready queues. A slot is in at most
    /// one queue at a time (kAttached => attached, kReady => ready), so one
    /// pair of links serves both; they double as the back-pointers that make
    /// mid-queue removal O(1) instead of find+erase.
    std::size_t q_prev = kNoSlot;
    std::size_t q_next = kNoSlot;
  };

  /// One membership change of a SlotQueue (for the selector's delta replay).
  struct SlotDelta {
    std::uint32_t slot = 0;
    bool added = false;
  };

  /// Intrusive FIFO over Slot::q_prev/q_next plus a generation-stamped ring
  /// journal of membership changes. `log_gen` counts every push/remove ever;
  /// a consumer that remembers the generation it last synced at can replay
  /// the ring window [seen, log_gen) to learn exactly which slots changed,
  /// or fall back to a full scan of the list when it is more than kWindow
  /// events behind. All operations require the object's kernel lock.
  struct SlotQueue {
    static constexpr std::size_t kWindow = 64;

    std::size_t head = kNoSlot;
    std::size_t tail = kNoSlot;
    std::size_t count = 0;
    std::uint64_t log_gen = 0;
    std::array<SlotDelta, kWindow> log;

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    void record(std::size_t slot, bool added) {
      log[log_gen % kWindow] = SlotDelta{static_cast<std::uint32_t>(slot), added};
      ++log_gen;
    }

    void push_back(std::vector<Slot>& slots, std::size_t idx) {
      Slot& s = slots[idx];
      s.q_prev = tail;
      s.q_next = kNoSlot;
      if (tail == kNoSlot) {
        head = idx;
      } else {
        slots[tail].q_next = idx;
      }
      tail = idx;
      ++count;
      record(idx, /*added=*/true);
    }

    void remove(std::vector<Slot>& slots, std::size_t idx) {
      assert(count > 0 && "remove on empty SlotQueue");
      Slot& s = slots[idx];
      // Fail fast on a slot that is not actually linked in THIS queue —
      // unlinking it anyway would silently corrupt head/tail/count.
      assert((s.q_prev != kNoSlot ? slots[s.q_prev].q_next == idx
                                  : head == idx) &&
             "slot not linked in this queue");
      assert((s.q_next != kNoSlot ? slots[s.q_next].q_prev == idx
                                  : tail == idx) &&
             "slot not linked in this queue");
      if (s.q_prev == kNoSlot) {
        head = s.q_next;
      } else {
        slots[s.q_prev].q_next = s.q_next;
      }
      if (s.q_next == kNoSlot) {
        tail = s.q_prev;
      } else {
        slots[s.q_next].q_prev = s.q_prev;
      }
      s.q_prev = s.q_next = kNoSlot;
      --count;
      record(idx, /*added=*/false);
    }

    std::size_t front() const { return head; }

    std::size_t pop_front(std::vector<Slot>& slots) {
      assert(count > 0 && "pop_front on empty SlotQueue");
      const std::size_t idx = head;
      remove(slots, idx);
      return idx;
    }

    /// Unlinks everything (stop path). Jumping the generation past the ring
    /// window forces every journal consumer into a full rescan.
    void clear(std::vector<Slot>& slots) {
      for (std::size_t i = head; i != kNoSlot;) {
        const std::size_t next = slots[i].q_next;
        slots[i].q_prev = slots[i].q_next = kNoSlot;
        i = next;
      }
      head = tail = kNoSlot;
      count = 0;
      log_gen += kWindow + 1;
    }
  };

  struct EntryCore {
    EntryDecl decl;
    ImplDecl impl;
    BodyFn body;
    bool implemented = false;
    bool intercepted = false;
    std::size_t icept_params = 0;
    std::size_t icept_results = 0;
    std::vector<Slot> slots;
    std::deque<CallRecord> overflow;  ///< waiting to attach (FIFO)
    SlotQueue attached;               ///< slots awaiting accept (FIFO)
    SlotQueue ready;                  ///< slots ready to terminate (FIFO)
    std::atomic<std::size_t> pending{0};  ///< #P, lock-free mirror
    /// Intercepted calls pushed to the intake but not yet drained; #P
    /// counts them so callers polling pending() see an arrival immediately.
    std::atomic<std::size_t> in_intake{0};
    /// Incremented lock-free at dispatch (the call path never takes mu_).
    std::atomic<std::uint64_t> calls{0};
    std::uint64_t accepts = 0, starts = 0, finishes = 0, combines = 0;
  };

  /// One undrained async_call. Producers (callers) push these lock-free;
  /// whoever next holds the kernel lock — a manager wait/select, stats(),
  /// or an unmanaged dispatch — drains the whole backlog as a batch.
  struct IntakeItem {
    std::size_t entry;
    CallRecord rec;
  };

  // -- kernel helpers (suffix _locked requires mu_ held) --
  /// Wakes the manager's select WITHOUT discarding cached guard results.
  /// For event sources that carry their own generation counter (a channel's
  /// front_gen, the slot queues' journals): the selector re-checks those on
  /// every pass, so a global cache flush would be pure waste.
  void wake_manager() { mgr_wake_.signal(); }
  EntryCore& core(std::size_t idx) { return *entries_[idx]; }
  EntryCore& core_checked(EntryRef entry, const char* op);
  void update_pending_locked(EntryCore& e);
  void attach_locked(std::size_t entry_idx, CallRecord rec);
  CallHandle dispatch(std::size_t entry_idx, ValueList params, bool external);
  /// Drains the intake under the already-held kernel lock: attaches
  /// intercepted calls, batch-submits unintercepted bodies. Skips (leaving
  /// items queued for stop()'s flush) once stopping_ is set.
  void drain_intake_locked();
  /// Drains the intake without holding mu_ (takes it only if the batch
  /// contains intercepted calls). Fails everything drained once stopping_.
  void flush_intake();
  /// Builds the executor task for one unintercepted call. The task's
  /// captures fail the caller if the task is destroyed without running.
  sched::BatchItem make_unintercepted_task(std::size_t entry_idx,
                                           CallRecord rec);
  void submit_body(std::size_t entry_idx, std::size_t slot_idx,
                   ValueList full_params);
  /// Frees a slot after finish/fail and attaches the next queued call.
  void release_slot_locked(std::size_t entry_idx, std::size_t slot_idx);
  void require_started(const char* op) const;
  void require_not_started(const char* op) const;
  /// Emits a trace event if a tracer is installed. Safe with or without the
  /// kernel lock held (the tracer must not reenter the kernel).
  void trace(const EntryCore& e, std::uint64_t call_id, std::size_t slot,
             CallPhase phase) const {
    if (tracer_) {
      tracer_->on_event(TraceEvent{e.decl.name, call_id, slot, phase,
                                   std::chrono::steady_clock::now()});
    }
  }

  std::string name_;
  ObjectOptions opts_;

  mutable std::mutex mu_;
  /// Wakes the manager thread (the only waiter) after kernel events that
  /// originate off it: call intake, body completion, channel observers,
  /// stop. Prepare-ticket/recheck/wait gives select an epoch snapshot.
  support::EventCount mgr_wake_;
  /// Lock-free call intake (see IntakeItem).
  support::MpscIntakeQueue<IntakeItem> intake_;

  std::vector<std::unique_ptr<EntryCore>> entries_;
  std::unordered_map<std::string, std::size_t> by_name_;

  ManagerFn manager_fn_;
  bool has_manager_ = false;
  Tracer* tracer_ = nullptr;
  std::atomic<std::uint64_t> next_call_id_{1};
  std::unique_ptr<sched::Executor> executor_;
  std::jthread manager_thread_;
  std::atomic<std::thread::id> manager_thread_id_{};
  std::stop_source stop_source_;
  std::exception_ptr manager_error_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> guard_inval_gen_{1};
  support::Event stop_done_;
};

}  // namespace alps
