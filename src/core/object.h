// alps::Object — the kernel of the reproduction.
//
// An object (paper §2.2) is shared data + entry procedures + an optional
// manager process. This class implements the call lifecycle:
//
//   invoke ──(not intercepted)──▶ body starts implicitly ──▶ caller completed
//   invoke ──(intercepted)─▶ attach to a free slot of P[1..N] (else queue)
//      Attached ─accept→ Accepted ─start→ Running ─body returns→ Ready
//      Ready ─await→ Awaited ─finish→ slot freed, caller completed
//      Accepted ─combine_finish→ caller completed without executing the body
//
// Threading model: one kernel mutex per object guards all scheduling state;
// bodies and manager handlers never run under it. The manager runs on a
// dedicated std::jthread (the paper wants it at higher priority so it stays
// receptive to entry calls; a dedicated always-runnable thread is the
// portable equivalent, and try_boost_priority() is attempted on top).
//
// Hot-path contention (see DESIGN.md §4.3):
//  - async_call never takes the kernel mutex: the call record goes onto a
//    lock-free MPSC intake queue and the kernel drains the whole backlog
//    under ONE lock acquisition the next time the manager (or, for
//    unintercepted entries, the dispatching caller) runs — N concurrent
//    callers pay one mutex round instead of N;
//  - wakeups use a waiter-counted event epoch (support::EventCount): a
//    kernel event with no sleeping manager is two atomic ops and no
//    syscall, and the only mgr_wake_ waiter is ever the manager thread
//    itself, so manager-side primitives (finish et al.) need no
//    self-notification at all;
//  - the attached/ready scheduling lists are intrusive FIFO queues with the
//    links stored in the slot (O(1) push/pop/remove, no find+erase) and each
//    carries a generation-stamped delta journal so the select engine can
//    react to exactly the slots that changed instead of rescanning
//    (DESIGN.md §4.4).
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stop_token>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/call.h"
#include "core/entry.h"
#include "core/supervision.h"
#include "core/trace.h"
#include "core/value.h"
#include "sched/executor.h"
#include "support/queue.h"
#include "support/sync.h"

namespace alps {

class Manager;
class Select;

using ManagerFn = std::function<void(Manager&)>;

struct ObjectOptions {
  /// Process model for the procedure-array processes (paper §3).
  sched::ProcessModel model = sched::ProcessModel::kPooled;
  /// M, for the pooled model.
  std::size_t pool_workers = 4;
  /// Attempt to raise the manager thread's scheduling priority (best effort;
  /// the dedicated thread preserves the intent when this fails).
  bool boost_manager_priority = true;
  /// What to do when the manager fails (see core/supervision.h). Fields are
  /// appended here so existing designated initializers keep compiling.
  SupervisionPolicy supervision{};
  /// Manager progress monitor (off by default; see core/supervision.h).
  WatchdogOptions watchdog{};
};

struct EntryStats {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t accepts = 0;
  std::uint64_t starts = 0;
  std::uint64_t finishes = 0;
  std::uint64_t combines = 0;
  std::size_t pending = 0;
  // -- multiactive counters (DESIGN.md §4.8); zero for unannotated entries --
  /// Calls launched through the compatibility path (start_compatible).
  std::uint64_t ma_started = 0;
  /// Of those, launches that overlapped >=1 other in-flight multiactive
  /// body (the intra-object parallelism actually realized).
  std::uint64_t ma_concurrent_starts = 0;
  /// start_compatible calls parked because an incompatible group was in
  /// flight (each later launched in arrival order when the group drained).
  std::uint64_t ma_conflict_blocks = 0;
};

struct ObjectStats {
  std::vector<EntryStats> entries;
  std::uint64_t threads_created = 0;
  std::uint64_t threads_alive = 0;
};

class Object {
 public:
  explicit Object(std::string name, ObjectOptions opts = {});
  ~Object();

  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;

  // ---- definition part (§2.2) ----

  /// Declares an entry (or, with decl.exported=false, a local procedure).
  /// Must be called before start().
  EntryRef define_entry(EntryDecl decl);

  // ---- implementation part ----

  /// Provides the body; ImplDecl{} gives a plain single procedure.
  void implement(EntryRef entry, BodyFn body);
  /// Provides the body plus the hidden-array / hidden-params configuration.
  void implement(EntryRef entry, ImplDecl impl, BodyFn body);

  /// Installs the manager process with its intercepts clause. Optional: an
  /// object without a manager starts every call implicitly (§2.3).
  void set_manager(std::vector<InterceptClause> clauses, ManagerFn fn);

  /// Installs a lifecycle tracer (see core/trace.h). Must be called before
  /// start(); the tracer must outlive the object. Pass nullptr to disable.
  void set_tracer(Tracer* tracer);

  /// Freezes the definition, creates the process-model executor and the
  /// manager thread. Calls are only allowed between start() and stop().
  void start();

  /// Stops the manager, drains running bodies, fails unfinished calls with
  /// kObjectStopped. Idempotent; also run by the destructor.
  void stop();

  // ---- invocation (callers) ----

  /// External asynchronous invocation `X.P(...)`. All parameters are
  /// supplied here; the kernel routes the intercepted prefix to the manager.
  CallHandle async_call(EntryRef entry, ValueList params);
  CallHandle async_call(const std::string& entry_name, ValueList params);

  /// As above with per-call options: a deadline and/or a CancelToken,
  /// enforced at every stage of the intercepted-call lifecycle. On expiry or
  /// cancellation the caller observes a typed Error (kTimeout / kCancelled)
  /// exactly once: still-pending calls are unqueued and their slot reclaimed,
  /// accepted ones are abandoned before the body runs, started ones have
  /// their result discarded at finish.
  CallHandle async_call(EntryRef entry, ValueList params,
                        const CallOptions& opts);
  CallHandle async_call(const std::string& entry_name, ValueList params,
                        const CallOptions& opts);

  /// Blocking call; returns the results (throws the call's error).
  ValueList call(EntryRef entry, ValueList params);
  ValueList call(EntryRef entry, ValueList params, const CallOptions& opts);

  // ---- introspection ----

  /// The paper's `#P`: pending calls = waiting-to-attach + attached-but-not-
  /// yet-accepted. Lock-free, safe inside guard conditions.
  std::size_t pending(EntryRef entry) const;

  EntryRef entry(const std::string& name) const;

  /// Wakes the manager's select statement to re-evaluate its guards;
  /// harmless to call at any time. Bumps the guard invalidation generation
  /// so cached `when`/`pri` results are discarded — this is the documented
  /// way to tell select "arbitrary object state changed". (Sources with
  /// their own generation counter — channels, the attached/ready lists —
  /// don't need it; their observers use the cheaper wake_manager().)
  void notify_external_event();

  /// Guard-cache invalidation epoch (see notify_external_event and
  /// DESIGN.md §4.4). Select re-runs every closure when this moves.
  std::uint64_t guard_inval_gen() const {
    return guard_inval_gen_.load(std::memory_order_acquire);
  }

  const std::string& name() const { return name_; }
  bool running() const;
  ObjectStats stats() const;
  /// Error that escaped the manager function, if any (nullptr otherwise).
  /// Under kRestart this is the most recent incarnation's failure.
  std::exception_ptr manager_error() const;

  /// True once the object has been quarantined (manager failed under
  /// SupervisionMode::kQuarantine, restart budget exhausted, or a watchdog
  /// escalation under kFailFast). Every call then fails with kObjectDown.
  bool quarantined() const { return down_.load(std::memory_order_acquire); }

  /// Manager restarts performed so far (kRestart only).
  int restarts() const { return restarts_.load(std::memory_order_acquire); }

 private:
  friend class Manager;
  friend class Select;
  friend class BodyCtx;

  enum class SlotState : std::uint8_t {
    kFree,
    kAttached,
    kAccepted,
    kRunning,
    kReady,
    kAwaited,
    /// start_compatible'd while an incompatible group was in flight: parked
    /// kernel-side (params staged in the slot, FIFO position in ma_queue_)
    /// until the conflict drains, then launched without the manager.
    kDeferred,
  };

  struct Slot {
    SlotState state = SlotState::kFree;
    /// The caller was failed (deadline/cancel) while this call was in or
    /// past Accepted: the protocol still runs to finish, but the result is
    /// discarded there (first-completion-wins makes the finish a no-op).
    bool abandoned = false;
    /// No manager will ever await this started body (quarantine/restart):
    /// the body-completion handler releases the slot directly.
    bool discard_on_ready = false;
    /// Launched via the compatibility path: the kernel completes the caller
    /// directly when the body returns (no await/finish round-trip) and
    /// drains the deferred queue on the way out.
    bool multiactive = false;
    /// Full body parameter list of a kDeferred call, staged until launch.
    ValueList deferred_params;
    std::optional<CallRecord> call;
    /// After the body returns: intercepted visible results + hidden results
    /// (what `await` hands to the manager).
    ValueList mgr_results;
    /// Visible results beyond the intercepted prefix (go straight to the
    /// caller at finish).
    ValueList rest_results;
    std::exception_ptr body_error;
    /// Executor key for the slot-bound process model.
    std::size_t global_key = sched::kUnboundTask;
    /// Intrusive links for the attached/ready queues. A slot is in at most
    /// one queue at a time (kAttached => attached, kReady => ready), so one
    /// pair of links serves both; they double as the back-pointers that make
    /// mid-queue removal O(1) instead of find+erase.
    std::size_t q_prev = kNoSlot;
    std::size_t q_next = kNoSlot;
  };

  /// One membership change of a SlotQueue (for the selector's delta replay).
  struct SlotDelta {
    std::uint32_t slot = 0;
    bool added = false;
  };

  /// Intrusive FIFO over Slot::q_prev/q_next plus a generation-stamped ring
  /// journal of membership changes. `log_gen` counts every push/remove ever;
  /// a consumer that remembers the generation it last synced at can replay
  /// the ring window [seen, log_gen) to learn exactly which slots changed,
  /// or fall back to a full scan of the list when it is more than kWindow
  /// events behind. All operations require the object's kernel lock.
  struct SlotQueue {
    static constexpr std::size_t kWindow = 64;

    std::size_t head = kNoSlot;
    std::size_t tail = kNoSlot;
    std::size_t count = 0;
    std::uint64_t log_gen = 0;
    std::array<SlotDelta, kWindow> log;

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    void record(std::size_t slot, bool added) {
      log[log_gen % kWindow] = SlotDelta{static_cast<std::uint32_t>(slot), added};
      ++log_gen;
    }

    void push_back(std::vector<Slot>& slots, std::size_t idx) {
      Slot& s = slots[idx];
      s.q_prev = tail;
      s.q_next = kNoSlot;
      if (tail == kNoSlot) {
        head = idx;
      } else {
        slots[tail].q_next = idx;
      }
      tail = idx;
      ++count;
      record(idx, /*added=*/true);
    }

    void remove(std::vector<Slot>& slots, std::size_t idx) {
      assert(count > 0 && "remove on empty SlotQueue");
      Slot& s = slots[idx];
      // Fail fast on a slot that is not actually linked in THIS queue —
      // unlinking it anyway would silently corrupt head/tail/count.
      assert((s.q_prev != kNoSlot ? slots[s.q_prev].q_next == idx
                                  : head == idx) &&
             "slot not linked in this queue");
      assert((s.q_next != kNoSlot ? slots[s.q_next].q_prev == idx
                                  : tail == idx) &&
             "slot not linked in this queue");
      if (s.q_prev == kNoSlot) {
        head = s.q_next;
      } else {
        slots[s.q_prev].q_next = s.q_next;
      }
      if (s.q_next == kNoSlot) {
        tail = s.q_prev;
      } else {
        slots[s.q_next].q_prev = s.q_prev;
      }
      s.q_prev = s.q_next = kNoSlot;
      --count;
      record(idx, /*added=*/false);
    }

    std::size_t front() const { return head; }

    std::size_t pop_front(std::vector<Slot>& slots) {
      assert(count > 0 && "pop_front on empty SlotQueue");
      const std::size_t idx = head;
      remove(slots, idx);
      return idx;
    }

    /// Unlinks everything (stop path). Jumping the generation past the ring
    /// window forces every journal consumer into a full rescan.
    void clear(std::vector<Slot>& slots) {
      for (std::size_t i = head; i != kNoSlot;) {
        const std::size_t next = slots[i].q_next;
        slots[i].q_prev = slots[i].q_next = kNoSlot;
        i = next;
      }
      head = tail = kNoSlot;
      count = 0;
      log_gen += kWindow + 1;
    }
  };

  struct EntryCore {
    EntryDecl decl;
    ImplDecl impl;
    BodyFn body;
    bool implemented = false;
    bool intercepted = false;
    std::size_t icept_params = 0;
    std::size_t icept_results = 0;
    std::vector<Slot> slots;
    std::deque<CallRecord> overflow;  ///< waiting to attach (FIFO)
    SlotQueue attached;               ///< slots awaiting accept (FIFO)
    SlotQueue ready;                  ///< slots ready to terminate (FIFO)
    std::atomic<std::size_t> pending{0};  ///< #P, lock-free mirror
    /// Intercepted calls pushed to the intake but not yet drained; #P
    /// counts them so callers polling pending() see an arrival immediately.
    std::atomic<std::size_t> in_intake{0};
    /// Incremented lock-free at dispatch (the call path never takes mu_).
    std::atomic<std::uint64_t> calls{0};
    std::uint64_t accepts = 0, starts = 0, finishes = 0, combines = 0;

    // -- compatibility scheduling (DESIGN.md §4.8); frozen at start() --
    /// This entry carries a compat annotation (or is named by one).
    bool compat_participant = false;
    /// compat[j]: a call of this entry may run concurrently with a call of
    /// entry j. Symmetric across entries; compat[self] only when the entry
    /// listed itself. Sized entries_.size() at start().
    std::vector<bool> compat;
    /// In-flight multiactive bodies / parked deferred calls of this entry
    /// (guarded by mu_). Occupancy 0<->nonzero transitions bump compat_gen_.
    std::size_t ma_running = 0;
    std::size_t ma_deferred = 0;
    /// Stats mirrors of the EntryStats multiactive counters.
    std::uint64_t ma_started = 0, ma_concurrent = 0, ma_conflicts = 0;
  };

  /// One undrained async_call. Producers (callers) push these lock-free;
  /// whoever next holds the kernel lock — a manager wait/select, stats(),
  /// or an unmanaged dispatch — drains the whole backlog as a batch.
  struct IntakeItem {
    std::size_t entry;
    CallRecord rec;
  };

  /// Shared state between the object and its supervisor thread (deadlines,
  /// cancellations, manager-failure events, watchdog pacing). Held via
  /// shared_ptr so CancelToken subscriptions can capture a weak_ptr and
  /// outlive the object safely: a token fired after the object is gone
  /// simply finds the hub expired.
  struct SupervisorHub {
    struct Doomed {
      std::uint64_t id = 0;
      std::size_t entry = 0;
      std::weak_ptr<CallState> state;
    };
    struct Deadline {
      std::chrono::steady_clock::time_point due;
      std::uint64_t id = 0;
      std::size_t entry = 0;
      std::weak_ptr<CallState> state;
    };

    std::mutex mu;
    std::condition_variable cv;
    bool stop = false;
    bool kick = false;              ///< new deadline/doomed entry queued
    bool manager_down = false;      ///< manager failed under kRestart
    std::exception_ptr down_cause;
    std::string down_what;
    std::vector<Doomed> doomed;     ///< cancelled calls awaiting cleanup
    std::vector<Deadline> deadlines;  ///< min-heap by due (std::*_heap)
  };

  /// Manager-thread activity for the watchdog's stall report (what the
  /// manager was last seen doing). Values index kActivityNames.
  enum : std::uint8_t {
    kActUserCode = 0,
    kActAcceptWait = 1,
    kActAwaitWait = 2,
    kActSelectWait = 3,
    kActDown = 4,
  };

  /// RAII marker for the manager's blocking primitives (accept/await/select
  /// waits); restores "user-code" on exit, including unwinds.
  class ActivityScope {
   public:
    ActivityScope(Object& obj, std::uint8_t activity) : obj_(obj) {
      obj_.mgr_activity_.store(activity, std::memory_order_relaxed);
    }
    ~ActivityScope() {
      obj_.mgr_activity_.store(kActUserCode, std::memory_order_relaxed);
    }
    ActivityScope(const ActivityScope&) = delete;
    ActivityScope& operator=(const ActivityScope&) = delete;

   private:
    Object& obj_;
  };

  // -- kernel helpers (suffix _locked requires mu_ held) --
  /// Wakes the manager's select WITHOUT discarding cached guard results.
  /// For event sources that carry their own generation counter (a channel's
  /// front_gen, the slot queues' journals): the selector re-checks those on
  /// every pass, so a global cache flush would be pure waste.
  void wake_manager() { mgr_wake_.signal(); }
  EntryCore& core(std::size_t idx) { return *entries_[idx]; }
  EntryCore& core_checked(EntryRef entry, const char* op);
  void update_pending_locked(EntryCore& e);
  void attach_locked(std::size_t entry_idx, CallRecord rec);
  CallHandle dispatch(std::size_t entry_idx, ValueList params, bool external,
                      const CallOptions* opts = nullptr);
  /// Manager primitives (and select fires) bump this so the watchdog can
  /// tell "blocked with nothing to do" from "wedged with work pending".
  void note_progress() { mgr_ops_.fetch_add(1, std::memory_order_relaxed); }
  /// Throws the watchdog-abort error if an escalation has flagged this
  /// manager incarnation; called from the manager's blocking primitives.
  void check_manager_abort() const;

  // -- supervision (core/supervision.h; DESIGN.md §4.6) --
  /// Spawns the manager thread for a (re)start; its catch block routes
  /// failures to handle_manager_failure.
  void spawn_manager();
  /// Runs on the failing manager thread: records manager_error_, then
  /// applies the policy (quarantine / schedule a restart / nothing).
  void handle_manager_failure(std::exception_ptr err, const std::string& what);
  /// Quarantines the object: fails every pending caller and all future
  /// calls with Error(kObjectDown, why). Idempotent.
  void take_down(std::exception_ptr cause, const std::string& why);
  /// Supervisor-thread half of kRestart: backoff, reconcile pending calls,
  /// on_restart hook, join the dead thread, spawn the next incarnation.
  void handle_manager_down(std::exception_ptr cause, const std::string& what);
  /// Re-queues / fails the failed incarnation's calls per replay_pending.
  void reconcile_for_restart();
  /// Starts the supervisor thread once (no-op when already running or
  /// stopping); needed for deadlines/cancellation, kRestart and watchdog.
  void ensure_supervisor();
  void supervisor_loop();
  /// Registers deadline/cancel enforcement for a dispatched call.
  void register_call_guard(std::uint64_t id, std::size_t entry_idx,
                           const std::shared_ptr<CallState>& state,
                           const CallOptions& opts);
  /// Fails one call wherever it currently is in the lifecycle (intake,
  /// overflow, attached, accepted, started...) with a typed error; the
  /// caller observes exactly one completion.
  void fail_call(std::uint64_t id, std::size_t entry_idx,
                 const std::weak_ptr<CallState>& wstate, ErrorCode code,
                 const std::string& why);
  /// One watchdog sample; state lives in the supervisor loop's frame.
  struct WatchdogState {
    bool have_baseline = false;
    std::uint64_t last_ops = 0;
    std::chrono::steady_clock::time_point last_progress{};
    bool reported = false;
  };
  void watchdog_tick(WatchdogState& wd);
  StallReport build_stall_report(std::chrono::milliseconds stalled,
                                 bool escalated);
  /// Drains the intake under the already-held kernel lock: attaches
  /// intercepted calls, batch-submits unintercepted bodies. Skips (leaving
  /// items queued for stop()'s flush) once stopping_ is set.
  void drain_intake_locked();
  /// Drains the intake without holding mu_ (takes it only if the batch
  /// contains intercepted calls). Fails everything drained once stopping_.
  void flush_intake();
  /// Builds the executor task for one unintercepted call. The task's
  /// captures fail the caller if the task is destroyed without running.
  sched::BatchItem make_unintercepted_task(std::size_t entry_idx,
                                           CallRecord rec);
  /// Builds the executor task for one started intercepted body (slot is
  /// already kRunning and holds the call). The completion handler routes on
  /// Slot::multiactive: the serial path parks the result for await/finish,
  /// the compat path completes the caller directly and drains the deferred
  /// queue. Requires mu_ (reads global_key; safe either way, but every
  /// caller already holds it).
  sched::BatchItem make_body_task(std::size_t entry_idx, std::size_t slot_idx,
                                  ValueList full_params);
  void submit_body(std::size_t entry_idx, std::size_t slot_idx,
                   ValueList full_params);

  // -- compatibility scheduling (multiactive; DESIGN.md §4.8) --
  bool compat_ok(std::size_t i, std::size_t j) const {
    return entries_[i]->compat[j];
  }
  /// Admissible to launch a call of entry i now: compatible with every
  /// entry holding running or deferred multiactive work (self included).
  bool compat_admissible_locked(std::size_t i) const;
  /// Accept-gate for compat-gated select guards: launch-admissible AND no
  /// incompatible participant holds an attached call older than entry i's
  /// oldest attached call (arrival-order fairness — an incompatible call
  /// that arrived first gets its turn before the gate reopens).
  bool compat_gate_open_locked(std::size_t i) const;
  /// Marks an accepted slot Running on the compat path: counters, occupancy
  /// transitions, kStarted trace (with the realized concurrency level).
  void ma_mark_running_locked(std::size_t entry_idx, std::size_t slot_idx);
  /// Launches every deferred call that became admissible, FIFO with a
  /// blocked-set (a deferred call never overtakes an earlier-deferred
  /// incompatible one). Appends body tasks for submission outside mu_.
  void drain_deferred_locked(std::vector<sched::BatchItem>& out);
  /// Removes one slot's (entry,slot) pair from ma_queue_ (fail/teardown).
  void ma_unqueue_locked(std::size_t entry_idx, std::size_t slot_idx);
  /// Frees a slot after finish/fail and attaches the next queued call.
  void release_slot_locked(std::size_t entry_idx, std::size_t slot_idx);
  void require_started(const char* op) const;
  void require_not_started(const char* op) const;
  /// Emits a trace event if a tracer is installed. Safe with or without the
  /// kernel lock held (the tracer must not reenter the kernel).
  /// `concurrency` is the number of in-flight multiactive bodies including
  /// this call (meaningful on kStarted events from the compat path; 0
  /// elsewhere).
  void trace(const EntryCore& e, std::uint64_t call_id, std::size_t slot,
             CallPhase phase, std::size_t concurrency = 0) const {
    if (tracer_) {
      tracer_->on_event(TraceEvent{e.decl.name, call_id, slot, phase,
                                   concurrency,
                                   std::chrono::steady_clock::now()});
    }
  }

  std::string name_;
  ObjectOptions opts_;

  mutable std::mutex mu_;
  /// Wakes the manager thread (the only waiter) after kernel events that
  /// originate off it: call intake, body completion, channel observers,
  /// stop. Prepare-ticket/recheck/wait gives select an epoch snapshot.
  support::EventCount mgr_wake_;
  /// Lock-free call intake (see IntakeItem).
  support::MpscIntakeQueue<IntakeItem> intake_;

  std::vector<std::unique_ptr<EntryCore>> entries_;
  std::unordered_map<std::string, std::size_t> by_name_;

  ManagerFn manager_fn_;
  bool has_manager_ = false;
  Tracer* tracer_ = nullptr;
  std::atomic<std::uint64_t> next_call_id_{1};
  std::unique_ptr<sched::Executor> executor_;
  std::jthread manager_thread_;
  std::atomic<std::thread::id> manager_thread_id_{};
  std::stop_source stop_source_;
  std::exception_ptr manager_error_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> guard_inval_gen_{1};
  support::Event stop_done_;

  // -- compatibility scheduling state (all guarded by mu_) --
  /// Generation of the compat dimension: bumped on occupancy-set changes
  /// (an entry's multiactive work going 0<->nonzero) and on attached-queue
  /// changes of participant entries. Select's compat gate re-derives only
  /// when this moves — the "group occupancy as a cached guard dimension"
  /// contract.
  std::uint64_t compat_gen_ = 1;
  /// FIFO of deferred calls: (entry, slot). Arrival order across entries.
  std::deque<std::pair<std::size_t, std::size_t>> ma_queue_;
  /// Entry indices participating in compatibility scheduling.
  std::vector<std::size_t> compat_participants_;
  /// Total in-flight multiactive bodies (concurrent-start stat).
  std::size_t ma_total_running_ = 0;

  // -- supervision state --
  std::shared_ptr<SupervisorHub> hub_ = std::make_shared<SupervisorHub>();
  std::jthread supervisor_thread_;
  bool supervisor_started_ = false;  // guarded by mu_
  /// Quarantined: set once (seq_cst, mirroring stopping_'s dispatch/flush
  /// handshake), never cleared. down_msg_ is written before the store and
  /// read only after an acquire load observes true.
  std::atomic<bool> down_{false};
  std::string down_msg_;
  std::atomic<int> restarts_{0};
  /// Watchdog escalation flag: manager primitives convert it into a typed
  /// unwind (check_manager_abort). Reset before each restart.
  std::atomic<bool> mgr_abort_{false};
  /// A manager incarnation is running (false between failure and restart).
  std::atomic<bool> mgr_live_{false};
  /// Manager progress counter (see note_progress).
  std::atomic<std::uint64_t> mgr_ops_{0};
  std::atomic<std::uint8_t> mgr_activity_{kActUserCode};
  /// Guard descriptions of the manager's most recent select (guarded by
  /// mu_); copied by value into stall reports so they survive the Select.
  std::vector<std::string> guard_snapshot_;
};

}  // namespace alps
