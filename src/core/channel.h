// Asynchronous point-to-point channels (paper §2.1.2).
//
// `send` buffers the message and never blocks the sender; `receive` blocks
// until a message is available. Channels carry ValueLists (a message is a
// tuple of values, matching `chan(T1, ..., Tn)`), can be stored in Values,
// composed into data structures, passed as parameters and in messages.
//
// Guard integration: a manager's select statement may wait on `receive C`
// guards. The selector registers an observer which the channel invokes
// (outside the channel lock) whenever a message arrives or the channel
// closes, so selection is event-driven rather than polled.
//
// Distribution integration: when a channel reference crosses the simulated
// network (src/net), the receiving node materializes a channel whose
// `forward` hook routes sends back to the home node. The hook replaces local
// enqueueing entirely.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/value.h"

namespace alps {

class ChannelCore {
 public:
  explicit ChannelCore(std::string name = "");

  ChannelCore(const ChannelCore&) = delete;
  ChannelCore& operator=(const ChannelCore&) = delete;

  /// Asynchronous send: buffers and returns (or forwards, for remote
  /// channels). Returns false if the channel is closed.
  bool send(ValueList message);

  /// Blocking receive; throws Error(kChannelClosed) once closed and drained.
  ValueList receive();

  std::optional<ValueList> try_receive();

  std::optional<ValueList> receive_for(std::chrono::nanoseconds timeout);

  /// Applies `fn` to the front message without consuming it (used by select
  /// guards to evaluate acceptance conditions on the tentatively received
  /// message). Returns false if the channel is empty.
  bool peek_front(const std::function<void(const ValueList&)>& fn) const;

  /// Consumes the front message only if `fn` approves it; used by the
  /// selector's commit step to revalidate after winning the selection.
  std::optional<ValueList> take_front_if(
      const std::function<bool(const ValueList&)>& fn);

  void close();
  bool closed() const;

  std::size_t size() const;
  bool empty() const { return size() == 0; }

  const std::string& name() const { return name_; }

  /// Globally unique id (used by the wire codec to name channels).
  std::uint64_t id() const { return id_; }

  /// Front-of-queue generation: bumped whenever the message a receive guard
  /// would tentatively see can have changed (enqueue, any pop, close). The
  /// selector caches its `when`/`pri` evaluation of the front message keyed
  /// on this value and skips re-evaluation while it is unchanged.
  std::uint64_t front_gen() const {
    return front_gen_.load(std::memory_order_acquire);
  }

  // ---- observer hooks (selector / network integration) ----

  using ObserverToken = std::uint64_t;
  /// `fn` is invoked after every send/close, outside the channel lock.
  ObserverToken add_observer(std::function<void()> fn);
  void remove_observer(ObserverToken token);

  /// Installs a forwarding hook; subsequent sends invoke it instead of
  /// enqueueing locally. Used for remote channel proxies.
  void set_forward(std::function<bool(ValueList)> forward);
  bool is_remote_proxy() const;

 private:
  void notify_observers();
  /// Must be called with mu_ held; release-publishes so a selector woken
  /// through its observer (EventCount) sees the bump.
  void bump_front_gen() {
    front_gen_.store(front_gen_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_release);
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ValueList> messages_;
  /// Receivers currently blocked in cv_.wait (guarded by mu_). send() skips
  /// the notify syscall entirely when nobody is waiting — the common case
  /// for manager-driven channels, where select peeks instead of blocking.
  int waiters_ = 0;
  bool closed_ = false;
  std::string name_;
  std::uint64_t id_;
  std::function<bool(ValueList)> forward_;
  std::atomic<std::uint64_t> front_gen_{0};
  std::vector<std::pair<ObserverToken, std::function<void()>>> observers_;
  ObserverToken next_token_ = 1;
};

/// Creates a fresh channel. `name` is for diagnostics only.
ChannelRef make_channel(std::string name = "");

}  // namespace alps
