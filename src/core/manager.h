// The manager primitives (paper §2.3): accept / start / await / finish,
// the packaged `execute`, and request combining (§2.7).
//
// A Manager is handed to the user's manager function on the dedicated
// manager thread; all primitives must be invoked from that thread (the
// manager is "a single CSP-like process" — the paper contrasts this with
// the internally concurrent mediator). The kernel enforces this.
#pragma once

#include <cstddef>
#include <exception>
#include <optional>
#include <stop_token>
#include <string>

#include "core/entry.h"
#include "core/value.h"

namespace alps {

class Object;
class Select;

/// Result of an `accept P[i](...)`: identifies the slot and carries the
/// intercepted parameter prefix.
struct Accepted {
  std::size_t entry = static_cast<std::size_t>(-1);
  std::size_t slot = kNoSlot;
  /// First `n_params` (from the intercepts clause) invocation parameters.
  ValueList params;

  bool valid() const { return slot != kNoSlot; }
};

/// Result of an `await P[i](...)`: the intercepted result prefix followed by
/// all hidden results. `failed` is set when the body raised instead of
/// returning — the entry-body exception surfaces here, to the manager, as a
/// per-call failure (`error` holds it for inspection) and is delivered to
/// the caller at finish. `abandoned` is set when the caller was already
/// failed (deadline expiry / cancellation / restart): the manager should
/// finish normally — the completion is discarded — and skip side effects it
/// only wants for live callers.
struct Awaited {
  std::size_t entry = static_cast<std::size_t>(-1);
  std::size_t slot = kNoSlot;
  ValueList results;
  bool failed = false;
  bool abandoned = false;
  std::exception_ptr error;

  bool valid() const { return slot != kNoSlot; }
};

class Manager {
 public:
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // ---- accept ----

  /// Blocks until a call is attached to some slot of `entry`, accepts it
  /// (arrival order), and returns the intercepted parameters.
  Accepted accept(EntryRef entry);

  /// Non-blocking variant.
  std::optional<Accepted> try_accept(EntryRef entry);

  // ---- start ----

  /// Starts the body asynchronously w.r.t. the manager, re-supplying the
  /// intercepted parameters unchanged and appending `hidden_params`
  /// (must match the entry's ImplDecl::hidden_params arity).
  void start(const Accepted& a, ValueList hidden_params = {});

  /// As start(), but the manager substitutes `iparams` for the intercepted
  /// parameter prefix (the manager "supplies these invocation parameters to
  /// P when it is started" — it may transform them).
  void start_with(const Accepted& a, ValueList iparams,
                  ValueList hidden_params = {});

  // ---- multiactive dispatch (compatibility groups, DESIGN.md §4.8) ----

  /// Starts an accepted call of a compat-annotated entry. If the call is
  /// compatible with every in-flight multiactive group it launches
  /// immediately (possibly overlapping other bodies of this object);
  /// otherwise the kernel parks it and launches it in arrival order once the
  /// conflicting group drains. Either way the kernel completes the caller
  /// directly when the body returns — do NOT await/finish such a call. The
  /// entry must carry compatibility annotations and must not declare hidden
  /// params/results (those need the await/finish round-trip).
  void start_compatible(const Accepted& a);

  /// Batched accept + start_compatible: accepts attached calls of `entry`
  /// in arrival order and launches each, for as long as the compat gate
  /// stays open (no incompatible group in flight and no older incompatible
  /// call waiting its turn). The whole batch costs one kernel-lock
  /// acquisition and one executor wakeup. Returns the number launched
  /// (0 when nothing was attached or the gate is closed).
  std::size_t start_compatible_pending(EntryRef entry);

  // ---- await ----

  /// Blocks until *some* started call of `entry` is ready to terminate and
  /// returns its intercepted+hidden results (arrival order).
  Awaited await(EntryRef entry);

  /// Blocks until this specific call is ready to terminate.
  Awaited await(const Accepted& a);

  std::optional<Awaited> try_await(EntryRef entry);

  // ---- finish ----

  /// Endorses termination, echoing the intercepted results unchanged to the
  /// caller. The caller receives [intercepted prefix, body's remaining
  /// results]; hidden results stay with the manager.
  void finish(const Awaited& w);

  /// As finish(), with the manager substituting the intercepted result
  /// prefix (it "can monitor the results being returned by P").
  void finish_with(const Awaited& w, ValueList iresults);

  /// Combining (§2.7): completes an accepted call *without starting it*.
  /// Requires the intercepts clause to cover all parameters, and
  /// `all_results` to be the full visible result list.
  void combine_finish(const Accepted& a, ValueList all_results);

  /// Completes an accepted or awaited call with an error (extension; useful
  /// for admission control).
  void fail(const Accepted& a, const std::string& why);
  void fail(const Awaited& w, const std::string& why);

  // ---- execute = start; await; finish (§2.3) ----

  /// Runs the call to completion in exclusion w.r.t. the manager and returns
  /// what await returned (so hidden results remain inspectable).
  Awaited execute(const Accepted& a, ValueList hidden_params = {});

  // ---- environment ----

  /// The paper's `#P` for guard conditions.
  std::size_t pending(EntryRef entry) const;

  bool stop_requested() const;
  std::stop_token stop_token() const;
  Object& object() { return *obj_; }

 private:
  friend class Object;
  friend class Select;

  explicit Manager(Object& obj) : obj_(&obj) {}

  /// Throws kObjectStopped when the object is stopping (manager unwinds).
  void check_stop() const;
  void assert_manager_thread(const char* op) const;

  Object* obj_;
};

}  // namespace alps
