#include "core/object.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <semaphore>
#include <utility>

#include "core/error.h"
#include "core/manager.h"
#include "support/log.h"
#include "support/thread_util.h"

namespace alps {

CallHandle BodyCtx::call_sibling(EntryRef target, ValueList params) const {
  if (target.object() != obj_) {
    raise(ErrorCode::kProtocolViolation,
          "call_sibling target belongs to a different object");
  }
  return obj_->dispatch(target.index(), std::move(params), /*external=*/false);
}

Object::Object(std::string name, ObjectOptions opts)
    : name_(std::move(name)), opts_(opts) {}

Object::~Object() { stop(); }

void Object::require_started(const char* op) const {
  if (!started_.load(std::memory_order_acquire)) {
    raise(ErrorCode::kProtocolViolation,
          std::string(op) + " before start() on object " + name_);
  }
}

void Object::require_not_started(const char* op) const {
  if (started_.load(std::memory_order_acquire)) {
    raise(ErrorCode::kProtocolViolation,
          std::string(op) + " after start() on object " + name_);
  }
}

EntryRef Object::define_entry(EntryDecl decl) {
  require_not_started("define_entry");
  std::scoped_lock lock(mu_);
  if (by_name_.count(decl.name)) {
    raise(ErrorCode::kProtocolViolation,
          "duplicate entry " + decl.name + " on object " + name_);
  }
  auto core = std::make_unique<EntryCore>();
  core->decl = std::move(decl);
  const std::size_t idx = entries_.size();
  by_name_.emplace(core->decl.name, idx);
  entries_.push_back(std::move(core));
  return EntryRef(this, idx);
}

void Object::implement(EntryRef entry, BodyFn body) {
  implement(entry, ImplDecl{}, std::move(body));
}

void Object::implement(EntryRef entry, ImplDecl impl, BodyFn body) {
  require_not_started("implement");
  if (entry.object() != this) {
    raise(ErrorCode::kProtocolViolation, "implement with foreign EntryRef");
  }
  if (impl.array == 0) {
    raise(ErrorCode::kProtocolViolation, "procedure array size must be >= 1");
  }
  std::scoped_lock lock(mu_);
  EntryCore& e = core(entry.index());
  e.impl = impl;
  e.body = std::move(body);
  e.implemented = true;
}

void Object::set_tracer(Tracer* tracer) {
  require_not_started("set_tracer");
  tracer_ = tracer;
}

void Object::set_manager(std::vector<InterceptClause> clauses, ManagerFn fn) {
  require_not_started("set_manager");
  std::scoped_lock lock(mu_);
  for (const auto& c : clauses) {
    if (c.entry.object() != this) {
      raise(ErrorCode::kProtocolViolation, "intercept of foreign entry");
    }
    EntryCore& e = core(c.entry.index());
    if (c.n_params > e.decl.params) {
      raise(ErrorCode::kArityMismatch,
            "intercepts " + e.decl.name + ": parameter prefix longer than the "
            "entry's parameter list");
    }
    if (c.n_results > e.decl.results) {
      raise(ErrorCode::kArityMismatch,
            "intercepts " + e.decl.name + ": result prefix longer than the "
            "entry's result list");
    }
    e.intercepted = true;
    e.icept_params = c.n_params;
    e.icept_results = c.n_results;
  }
  manager_fn_ = std::move(fn);
  has_manager_ = true;
}

void Object::start() {
  require_not_started("start");

  std::size_t total_slots = 0;
  {
    std::scoped_lock lock(mu_);
    for (auto& ep : entries_) {
      EntryCore& e = *ep;
      if (!e.implemented) {
        raise(ErrorCode::kProtocolViolation,
              "entry " + e.decl.name + " defined but not implemented");
      }
      if (e.intercepted && !has_manager_) {
        raise(ErrorCode::kProtocolViolation,
              "entry " + e.decl.name + " intercepted but no manager set");
      }
      if (!e.intercepted &&
          (e.impl.hidden_params > 0 || e.impl.hidden_results > 0)) {
        raise(ErrorCode::kProtocolViolation,
              "entry " + e.decl.name +
                  " has hidden params/results but is not intercepted (only "
                  "the manager can supply/receive them)");
      }
      if (e.intercepted) {
        e.slots.resize(e.impl.array);
        for (auto& s : e.slots) s.global_key = total_slots++;
      }
    }
    // Freeze the compatibility matrix (multiactive scheduling, DESIGN.md
    // §4.8). Compatibility is symmetric: listing B on A also admits A
    // beside B, and naming an entry (or being named) makes it participate.
    const std::size_t n = entries_.size();
    for (auto& ep : entries_) ep->compat.assign(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      EntryCore& e = *entries_[i];
      if (!e.decl.compat_annotated) continue;
      if (!e.intercepted) {
        raise(ErrorCode::kProtocolViolation,
              "entry " + e.decl.name +
                  " has compatibility annotations but is not intercepted "
                  "(only managed entries are compat-scheduled)");
      }
      e.compat_participant = true;
      for (const std::string& other : e.decl.compatible) {
        auto it = by_name_.find(other);
        if (it == by_name_.end()) {
          raise(ErrorCode::kNoSuchEntry,
                "compatible_with(\"" + other + "\") on entry " + e.decl.name +
                    ": no such entry on object " + name_);
        }
        EntryCore& o = *entries_[it->second];
        if (!o.intercepted) {
          raise(ErrorCode::kProtocolViolation,
                "compatible_with(\"" + other + "\") on entry " + e.decl.name +
                    ": target entry is not intercepted");
        }
        o.compat_participant = true;
        e.compat[it->second] = true;
        o.compat[i] = true;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (entries_[i]->compat_participant) compat_participants_.push_back(i);
    }
    executor_ = sched::make_executor(opts_.model, total_slots,
                                     opts_.pool_workers, name_);
  }

  started_.store(true, std::memory_order_release);

  if (has_manager_) {
    // Restart and watchdog both need the supervisor thread from the first
    // instant; deadline/cancel callers start it lazily otherwise.
    if (opts_.supervision.mode == SupervisionMode::kRestart ||
        opts_.watchdog.enabled) {
      ensure_supervisor();
    }
    spawn_manager();
  }
}

void Object::spawn_manager() {
  mgr_live_.store(true, std::memory_order_release);
  // Gate the body behind the handle assignment: a manager that crashes
  // instantly would otherwise wake the supervisor into joining/replacing
  // manager_thread_ while the move-assignment below is still in flight —
  // the supervisor could even spawn a replacement that this assignment then
  // clobbers. The release() after the assignment gives the supervisor a
  // happens-before edge to a fully-written handle.
  auto gate = std::make_shared<std::binary_semaphore>(0);
  manager_thread_ = std::jthread([this, gate] {
    gate->acquire();
    support::set_current_thread_name("mgr:" + name_);
    if (opts_.boost_manager_priority) {
      support::try_boost_priority();
    }
    manager_thread_id_.store(std::this_thread::get_id(),
                             std::memory_order_release);
    Manager m(*this);
    try {
      manager_fn_(m);
      mgr_live_.store(false, std::memory_order_release);
    } catch (const Error& err) {
      // Stop-induced unwinding is the normal shutdown path.
      if (err.code() != ErrorCode::kObjectStopped) {
        handle_manager_failure(std::current_exception(), err.what());
      } else {
        mgr_live_.store(false, std::memory_order_release);
      }
    } catch (const std::exception& ex) {
      handle_manager_failure(std::current_exception(), ex.what());
    } catch (...) {
      handle_manager_failure(std::current_exception(), "unknown error");
    }
  });
  gate->release();
}

void Object::handle_manager_failure(std::exception_ptr err,
                                    const std::string& what) {
  mgr_live_.store(false, std::memory_order_release);
  mgr_activity_.store(kActDown, std::memory_order_relaxed);
  {
    std::scoped_lock lock(mu_);
    manager_error_ = err;
  }
  ALPS_LOG_ERROR("object %s: manager terminated with error: %s", name_.c_str(),
                 what.c_str());
  if (stopping_.load(std::memory_order_acquire)) return;
  const bool watchdog_abort = mgr_abort_.load(std::memory_order_acquire);
  switch (opts_.supervision.mode) {
    case SupervisionMode::kFailFast:
      // A watchdog escalation must contain the stall even here: leaving the
      // object up with a dead manager would make escalation a silent no-op.
      if (watchdog_abort) {
        take_down(err, "object " + name_ +
                           " quarantined: watchdog aborted a stalled manager");
      }
      break;
    case SupervisionMode::kQuarantine:
      take_down(err,
                "object " + name_ + " quarantined: manager failed: " + what);
      break;
    case SupervisionMode::kRestart: {
      // Hand off to the supervisor thread: this (dying) thread cannot join
      // or replace itself. The supervisor was started in start().
      auto hub = hub_;
      {
        std::scoped_lock lk(hub->mu);
        hub->manager_down = true;
        hub->down_cause = err;
        hub->down_what = what;
      }
      hub->cv.notify_one();
      break;
    }
  }
}

void Object::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Another stop() is in progress (or finished); wait for quiescence.
    stop_done_.wait();
    return;
  }

  stop_source_.request_stop();
  mgr_wake_.signal();

  // Stop the supervisor BEFORE joining the manager: the supervisor is the
  // only other thread that joins/replaces manager_thread_ (restart), so
  // retiring it first makes the join below race-free. The empty critical
  // section is a barrier: stopping_ is already set, so any in-flight
  // ensure_supervisor() has either finished spawning (joinable below) or
  // bailed out — it checks stopping_ under this same mutex.
  { std::scoped_lock lock(mu_); }
  {
    std::scoped_lock lk(hub_->mu);
    hub_->stop = true;
  }
  hub_->cv.notify_all();
  if (supervisor_thread_.joinable()) supervisor_thread_.join();

  if (manager_thread_.joinable()) manager_thread_.join();

  // Fail every call that never reached finish *before* draining the
  // executor: a still-running body may be blocked on a sibling call whose
  // manager is now gone, and failing its handle is what unblocks it.
  std::vector<std::shared_ptr<CallState>> to_fail;
  {
    std::scoped_lock lock(mu_);
    for (auto& ep : entries_) {
      EntryCore& e = *ep;
      for (auto& rec : e.overflow) {
        trace(e, rec.id, kNoSlot, CallPhase::kFailed);
        to_fail.push_back(rec.state);
      }
      e.overflow.clear();
      for (std::size_t i = 0; i < e.slots.size(); ++i) {
        Slot& s = e.slots[i];
        if (s.state != SlotState::kFree && s.call.has_value()) {
          trace(e, s.call->id, i, CallPhase::kFailed);
          to_fail.push_back(s.call->state);
          s.call.reset();
        }
        s.state = SlotState::kFree;
        s.multiactive = false;
        s.deferred_params.clear();
      }
      e.attached.clear(e.slots);
      e.ready.clear(e.slots);
      e.ma_running = 0;
      e.ma_deferred = 0;
      update_pending_locked(e);
    }
    // Running multiactive bodies see state != kRunning in their completion
    // handler and bail without touching these (now-reset) counters.
    ma_queue_.clear();
    ma_total_running_ = 0;
  }
  for (auto& state : to_fail) {
    state->fail(ErrorCode::kObjectStopped, "object " + name_ + " stopped");
  }
  // Fail the intake backlog (records that never reached the scheduling
  // structures). stopping_ is set, so this flush fails rather than routes;
  // a racing dispatch that pushes after this re-flushes on its own.
  flush_intake();

  if (executor_) executor_->shutdown();
  stop_done_.set();
}

bool Object::running() const {
  return started_.load(std::memory_order_acquire) &&
         !stopping_.load(std::memory_order_acquire);
}

Object::EntryCore& Object::core_checked(EntryRef entry, const char* op) {
  if (entry.object() != this || entry.index() >= entries_.size()) {
    raise(ErrorCode::kProtocolViolation,
          std::string(op) + ": EntryRef does not belong to object " + name_);
  }
  return core(entry.index());
}

void Object::update_pending_locked(EntryCore& e) {
  e.pending.store(e.overflow.size() + e.attached.size(),
                  std::memory_order_relaxed);
  // Attached-queue membership of a participant feeds the compat gate's
  // arrival-fairness term; re-key the gate so select re-derives it (the
  // recompute is O(participants) and happens only when the gen moved).
  if (e.compat_participant) ++compat_gen_;
}

CallHandle Object::async_call(EntryRef entry, ValueList params) {
  if (entry.object() != this) {
    raise(ErrorCode::kProtocolViolation, "async_call with foreign EntryRef");
  }
  return dispatch(entry.index(), std::move(params), /*external=*/true);
}

CallHandle Object::async_call(const std::string& entry_name, ValueList params) {
  return dispatch(entry(entry_name).index(), std::move(params),
                  /*external=*/true);
}

CallHandle Object::async_call(EntryRef entry, ValueList params,
                              const CallOptions& opts) {
  if (entry.object() != this) {
    raise(ErrorCode::kProtocolViolation, "async_call with foreign EntryRef");
  }
  return dispatch(entry.index(), std::move(params), /*external=*/true, &opts);
}

CallHandle Object::async_call(const std::string& entry_name, ValueList params,
                              const CallOptions& opts) {
  return dispatch(entry(entry_name).index(), std::move(params),
                  /*external=*/true, &opts);
}

ValueList Object::call(EntryRef e, ValueList params) {
  return async_call(e, std::move(params)).get();
}

ValueList Object::call(EntryRef e, ValueList params, const CallOptions& opts) {
  return async_call(e, std::move(params), opts).get();
}

EntryRef Object::entry(const std::string& name) const {
  // Lock-free: the name table is built single-threaded before start() and
  // immutable afterwards, and guard conditions (which run under the kernel
  // lock) legitimately call this via the `#P` pending-count operator.
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    raise(ErrorCode::kNoSuchEntry, name + " on object " + name_);
  }
  return EntryRef(const_cast<Object*>(this), it->second);
}

std::size_t Object::pending(EntryRef entry) const {
  if (entry.object() != this || entry.index() >= entries_.size()) {
    raise(ErrorCode::kProtocolViolation, "pending with foreign EntryRef");
  }
  // #P = waiting-to-attach + attached-but-not-accepted + still in the
  // intake queue. Guard conditions run right after a drain, so the last
  // term is zero where the paper's semantics need exactness.
  const EntryCore& e = *entries_[entry.index()];
  return e.pending.load(std::memory_order_relaxed) +
         e.in_intake.load(std::memory_order_relaxed);
}

CallHandle Object::dispatch(std::size_t entry_idx, ValueList params,
                            bool external, const CallOptions* opts) {
  require_started("call");
  auto state = std::make_shared<CallState>();
  CallHandle handle(state);

  if (stopping_.load(std::memory_order_acquire)) {
    state->fail(ErrorCode::kObjectStopped, "object " + name_ + " stopped");
    return handle;
  }
  if (down_.load(std::memory_order_acquire)) {
    // down_msg_ is written before the seq_cst store to down_; the acquire
    // load above makes it safely readable (and it is never written again).
    state->fail(ErrorCode::kObjectDown, down_msg_);
    return handle;
  }

  // The whole dispatch path is lock-free: decl/impl/intercepted are frozen
  // at start(), counters are atomics, and the record goes onto the MPSC
  // intake queue rather than into the scheduling structures directly.
  EntryCore& e = core(entry_idx);
  if (external && !e.decl.exported) {
    state->fail(ErrorCode::kNotExported,
                e.decl.name + " is local to object " + name_);
    return handle;
  }
  if (params.size() != e.decl.params) {
    state->fail(ErrorCode::kArityMismatch,
                e.decl.name + " expects " + std::to_string(e.decl.params) +
                    " params, got " + std::to_string(params.size()));
    return handle;
  }
  if (opts != nullptr && opts->cancel && opts->cancel->cancelled()) {
    // A pre-cancelled token never queues: the caller gets a deterministic
    // kCancelled instead of racing the manager for the slot.
    state->fail(ErrorCode::kCancelled,
                e.decl.name + " on " + name_ + " cancelled before dispatch");
    return handle;
  }
  const std::uint64_t call_id =
      next_call_id_.fetch_add(1, std::memory_order_relaxed);
  e.calls.fetch_add(1, std::memory_order_relaxed);
  trace(e, call_id, kNoSlot, CallPhase::kArrived);

  const bool intercepted = e.intercepted;
  if (intercepted) e.in_intake.fetch_add(1, std::memory_order_relaxed);
  intake_.push(IntakeItem{entry_idx,
                          CallRecord{std::move(params), state,
                                     std::chrono::steady_clock::now(),
                                     call_id}});
  if (intercepted) {
    // Batched intake: the manager drains the whole backlog under one lock
    // acquisition when it next evaluates accept/select. signal() skips the
    // wake syscall when the manager is not actually sleeping.
    mgr_wake_.signal();
    if (stopping_.load(std::memory_order_seq_cst) ||
        down_.load(std::memory_order_seq_cst)) {
      // stop()/take_down() may have drained before our push landed; the
      // seq_cst push/flag ordering guarantees one of us sees the record.
      flush_intake();
    }
  } else {
    // Unmanaged dispatch: drain immediately — uncontended callers get a
    // batch of one, concurrent callers combine into one drain.
    flush_intake();
  }
  if (opts != nullptr && !opts->none() && !state->ready()) {
    register_call_guard(call_id, entry_idx, state, *opts);
  }
  return handle;
}

void Object::drain_intake_locked() {
  if (intake_.empty()) return;
  if (stopping_.load(std::memory_order_acquire) ||
      down_.load(std::memory_order_acquire)) {
    // Leave the backlog queued: stop()/take_down() flush (and fail) it
    // outside the kernel lock, where completion callbacks may run.
    return;
  }
  std::vector<sched::BatchItem> batch;
  intake_.drain([&](IntakeItem&& item) {
    EntryCore& e = core(item.entry);
    if (e.intercepted) {
      e.in_intake.fetch_sub(1, std::memory_order_relaxed);
      attach_locked(item.entry, std::move(item.rec));
    } else {
      batch.push_back(make_unintercepted_task(item.entry, std::move(item.rec)));
    }
  });
  if (!batch.empty()) {
    // Executor locks are leaves (never taken around kernel calls), so
    // submitting under mu_ is deadlock-free. Refused tasks fail their
    // caller on destruction (see make_unintercepted_task).
    executor_->submit_batch(std::move(batch));
  }
}

void Object::flush_intake() {
  while (!intake_.empty()) {
    std::vector<IntakeItem> items;
    intake_.drain([&](IntakeItem&& item) { items.push_back(std::move(item)); });
    if (items.empty()) continue;  // another drainer took this chain

    const bool stopped_now = stopping_.load(std::memory_order_acquire);
    if (stopped_now || down_.load(std::memory_order_acquire)) {
      for (auto& item : items) {
        EntryCore& e = core(item.entry);
        if (e.intercepted) e.in_intake.fetch_sub(1, std::memory_order_relaxed);
        trace(e, item.rec.id, kNoSlot, CallPhase::kFailed);
        if (stopped_now) {
          item.rec.state->fail(ErrorCode::kObjectStopped,
                               "object " + name_ + " stopped");
        } else {
          item.rec.state->fail(ErrorCode::kObjectDown, down_msg_);
        }
      }
      continue;
    }

    std::vector<sched::BatchItem> batch;
    bool attached_any = false;
    bool need_lock = false;
    for (const auto& item : items) {
      if (core(item.entry).intercepted) need_lock = true;
    }
    if (need_lock) {
      std::scoped_lock lock(mu_);
      for (auto& item : items) {
        EntryCore& e = core(item.entry);
        if (e.intercepted) {
          e.in_intake.fetch_sub(1, std::memory_order_relaxed);
          attach_locked(item.entry, std::move(item.rec));
          attached_any = true;
        } else {
          batch.push_back(
              make_unintercepted_task(item.entry, std::move(item.rec)));
        }
      }
    } else {
      for (auto& item : items) {
        batch.push_back(
            make_unintercepted_task(item.entry, std::move(item.rec)));
      }
    }
    if (attached_any) mgr_wake_.signal();
    if (!batch.empty()) executor_->submit_batch(std::move(batch));
  }
}

void Object::attach_locked(std::size_t entry_idx, CallRecord rec) {
  EntryCore& e = core(entry_idx);
  // Attach to a free slot if one exists, else queue (paper §2.5: "if there
  // are more requests than can be accommodated in the procedure array, the
  // remaining requests continue to wait").
  for (std::size_t i = 0; i < e.slots.size(); ++i) {
    if (e.slots[i].state == SlotState::kFree) {
      e.slots[i].state = SlotState::kAttached;
      trace(e, rec.id, i, CallPhase::kAttached);
      e.slots[i].call = std::move(rec);
      e.slots[i].mgr_results.clear();
      e.slots[i].rest_results.clear();
      e.slots[i].body_error = nullptr;
      e.slots[i].abandoned = false;
      e.slots[i].discard_on_ready = false;
      e.slots[i].multiactive = false;
      e.slots[i].deferred_params.clear();
      e.attached.push_back(e.slots, i);
      update_pending_locked(e);
      return;
    }
  }
  e.overflow.push_back(std::move(rec));
  update_pending_locked(e);
}

void Object::release_slot_locked(std::size_t entry_idx, std::size_t slot_idx) {
  EntryCore& e = core(entry_idx);
  Slot& s = e.slots[slot_idx];
  s.state = SlotState::kFree;
  s.call.reset();
  s.mgr_results.clear();
  s.rest_results.clear();
  s.body_error = nullptr;
  s.abandoned = false;
  s.discard_on_ready = false;
  s.multiactive = false;
  s.deferred_params.clear();
  if (!e.overflow.empty()) {
    CallRecord next = std::move(e.overflow.front());
    e.overflow.pop_front();
    s.state = SlotState::kAttached;
    trace(e, next.id, slot_idx, CallPhase::kAttached);
    s.call = std::move(next);
    e.attached.push_back(e.slots, slot_idx);
  }
  update_pending_locked(e);
  // No wakeup: release_slot_locked only runs from manager primitives, and
  // the manager is the only mgr_wake_ waiter — it cannot be asleep while
  // executing its own finish.
}

namespace {

/// Fails the call if the wrapping task is destroyed without having run
/// (executor refused or dropped it during shutdown). CallState's
/// first-completion-wins makes the failure a no-op after a normal finish.
/// Held via shared_ptr so std::function copies cannot fire it early.
class FailOnDrop {
 public:
  FailOnDrop(std::shared_ptr<CallState> state, const std::string& obj_name)
      : state_(std::move(state)), obj_name_(obj_name) {}
  ~FailOnDrop() {
    state_->fail(ErrorCode::kObjectStopped,
                 "object " + obj_name_ + " stopped before the body could run");
  }
  FailOnDrop(const FailOnDrop&) = delete;
  FailOnDrop& operator=(const FailOnDrop&) = delete;

 private:
  std::shared_ptr<CallState> state_;
  std::string obj_name_;
};

}  // namespace

sched::BatchItem Object::make_unintercepted_task(std::size_t entry_idx,
                                                 CallRecord rec) {
  auto state = std::move(rec.state);
  auto guard = std::make_shared<FailOnDrop>(state, name_);
  return sched::BatchItem{
      sched::kUnboundTask,
      [this, entry_idx, id = rec.id, params = std::move(rec.params), state,
       guard]() mutable {
        EntryCore& ec = core(entry_idx);
        BodyCtx ctx(this, ec.decl.name, kNoSlot, std::move(params));
        ValueList out;
        try {
          out = ec.body(ctx);
          if (out.size() != ec.decl.results) {
            raise(ErrorCode::kArityMismatch,
                  ec.decl.name + " body returned " +
                      std::to_string(out.size()) + " results, declared " +
                      std::to_string(ec.decl.results));
          }
        } catch (...) {
          trace(ec, id, kNoSlot, CallPhase::kFailed);
          state->fail(std::current_exception());
          return;
        }
        trace(ec, id, kNoSlot, CallPhase::kFinished);
        state->complete(std::move(out));
      }};
}

void Object::submit_body(std::size_t entry_idx, std::size_t slot_idx,
                         ValueList full_params) {
  sched::BatchItem item =
      make_body_task(entry_idx, slot_idx, std::move(full_params));
  const bool ok = executor_->submit(item.slot_key, std::move(item.task));
  if (!ok) {
    // Executor already shut down; stop() will fail the caller.
    ALPS_LOG_DEBUG("object %s: start after shutdown dropped", name_.c_str());
  }
}

sched::BatchItem Object::make_body_task(std::size_t entry_idx,
                                        std::size_t slot_idx,
                                        ValueList full_params) {
  EntryCore& e = core(entry_idx);
  const std::size_t key = e.slots[slot_idx].global_key;
  return sched::BatchItem{
      key,
      [this, entry_idx, slot_idx, params = std::move(full_params)]() mutable {
        EntryCore& ec = core(entry_idx);
        BodyCtx ctx(this, ec.decl.name, slot_idx, std::move(params));
        ValueList out;
        std::exception_ptr err;
        try {
          out = ec.body(ctx);
          const std::size_t want = ec.decl.results + ec.impl.hidden_results;
          if (out.size() != want) {
            raise(ErrorCode::kArityMismatch,
                  ec.decl.name + " body returned " +
                      std::to_string(out.size()) + " results, expected " +
                      std::to_string(want) +
                      " (visible + hidden)");
          }
        } catch (...) {
          err = std::current_exception();
        }

        std::shared_ptr<CallState> caller;
        ValueList final_results;
        std::vector<sched::BatchItem> launch;
        bool wake_mgr = true;
        {
          std::scoped_lock lock(mu_);
          Slot& s = ec.slots[slot_idx];
          if (s.state != SlotState::kRunning) {
            // Object stopped and reset the slot while the body ran; the
            // caller has already been failed.
            return;
          }
          if (s.multiactive) {
            // Compat-path epilogue: the kernel completes the caller itself
            // (no await/finish round-trip through the manager), retires the
            // group occupancy and launches any deferred calls that the
            // departure unblocked.
            //
            // The manager is woken only when this completion changes what it
            // can do: the group drained while a participant has attached
            // calls (a closed compat gate may now be open), or the freed
            // slot re-attaches an overflow call. A plain completion needs no
            // manager turn at all — that is the multiactive throughput win.
            wake_mgr = false;
            --ec.ma_running;
            if (ec.ma_running == 0) {
              ++compat_gen_;
              for (std::size_t idx : compat_participants_) {
                if (!entries_[idx]->attached.empty()) {
                  wake_mgr = true;
                  break;
                }
              }
            }
            --ma_total_running_;
            ++ec.finishes;
            if (!s.discard_on_ready && !s.abandoned) {
              caller = s.call->state;
              trace(ec, s.call->id, slot_idx,
                    err ? CallPhase::kFailed : CallPhase::kFinished);
              if (!err) final_results = std::move(out);
            }
            if (!ec.overflow.empty()) wake_mgr = true;  // release re-attaches
            release_slot_locked(entry_idx, slot_idx);
            drain_deferred_locked(launch);
            if (stopping_.load(std::memory_order_relaxed)) wake_mgr = true;
          } else if (s.discard_on_ready) {
            // No manager will ever await this body (quarantine, or a
            // restart that could not replay a started call): the caller was
            // already failed, so drop the result and reclaim the slot — a
            // queued overflow call re-attaches for the next incarnation.
            release_slot_locked(entry_idx, slot_idx);
          } else {
            if (err) {
              // Move (not copy): the worker's reference transfers into the
              // slot here, under mu_, so every later release of the exception
              // object happens on a mutex-synchronized thread. Holding a copy
              // until the lambda exits would let this thread do the *final*
              // release after mgr_wake_.signal(), racing readers that TSan
              // cannot relate through libstdc++'s internal refcounting.
              s.body_error = std::move(err);
              err = nullptr;
            } else {
              // Split [visible..., hidden...]: the manager's await sees the
              // intercepted visible prefix plus all hidden results; the rest
              // goes straight to the caller at finish. `out` is dead after
              // the split, so move every element instead of copying.
              const auto icept =
                  out.begin() + static_cast<std::ptrdiff_t>(ec.icept_results);
              const auto visible =
                  out.begin() + static_cast<std::ptrdiff_t>(ec.decl.results);
              s.mgr_results.reserve(ec.icept_results + ec.impl.hidden_results);
              s.mgr_results.assign(std::make_move_iterator(out.begin()),
                                   std::make_move_iterator(icept));
              s.mgr_results.insert(s.mgr_results.end(),
                                   std::make_move_iterator(visible),
                                   std::make_move_iterator(out.end()));
              s.rest_results.assign(std::make_move_iterator(icept),
                                    std::make_move_iterator(visible));
            }
            s.state = SlotState::kReady;
            trace(ec, s.call->id, slot_idx, CallPhase::kReady);
            ec.ready.push_back(ec.slots, slot_idx);
          }
        }
        // Body completions come from executor threads; wake the manager's
        // await/select (two atomic ops when it is not sleeping). On the
        // compat path this also re-keys gated guards via compat_gen_.
        if (wake_mgr) mgr_wake_.signal();
        if (caller) {
          // Outside mu_: completion callbacks run user code.
          if (err) {
            caller->fail(std::move(err));
          } else {
            caller->complete(std::move(final_results));
          }
        }
        if (!launch.empty()) executor_->submit_batch(std::move(launch));
      }};
}

// ---------------------------------------------------------------------------
// Multiactive scheduling: compatibility groups (DESIGN.md §4.8)
// ---------------------------------------------------------------------------

bool Object::compat_admissible_locked(std::size_t i) const {
  // Launchable now: compatible with every participant that has in-flight
  // (running or deferred) calls. Deferred occupancy counts so a newly
  // accepted call cannot overtake an earlier parked incompatible one.
  for (std::size_t j : compat_participants_) {
    const EntryCore& ej = *entries_[j];
    if (ej.ma_running + ej.ma_deferred == 0) continue;
    if (!entries_[i]->compat[j]) return false;
  }
  return true;
}

bool Object::compat_gate_open_locked(std::size_t i) const {
  // Select-gate for entry i: admissible AND no incompatible participant has
  // an attached call older than i's own oldest attached call. Call ids are
  // globally increasing, so the second term is arrival-order fairness: a
  // stream of compatible calls cannot starve an incompatible one that
  // arrived first (the paper's writer-takes-its-turn property).
  const EntryCore& ei = *entries_[i];
  const std::uint64_t my_oldest =
      ei.attached.empty()
          ? std::numeric_limits<std::uint64_t>::max()
          : ei.slots[ei.attached.front()].call->id;
  for (std::size_t j : compat_participants_) {
    if (entries_[i]->compat[j]) continue;
    const EntryCore& ej = *entries_[j];
    if (ej.ma_running + ej.ma_deferred > 0) return false;
    if (j != i && !ej.attached.empty() &&
        ej.slots[ej.attached.front()].call->id < my_oldest) {
      return false;
    }
  }
  return true;
}

void Object::ma_mark_running_locked(std::size_t entry_idx,
                                    std::size_t slot_idx) {
  EntryCore& e = core(entry_idx);
  Slot& s = e.slots[slot_idx];
  s.state = SlotState::kRunning;
  s.multiactive = true;
  ++e.starts;
  ++e.ma_started;
  if (e.ma_running == 0) ++compat_gen_;
  ++e.ma_running;
  ++ma_total_running_;
  if (ma_total_running_ > 1) ++e.ma_concurrent;
  trace(e, s.call->id, slot_idx, CallPhase::kStarted, ma_total_running_);
}

void Object::drain_deferred_locked(std::vector<sched::BatchItem>& out) {
  if (ma_queue_.empty()) return;
  // FIFO with a blocked-set: a deferred call launches only if it is
  // compatible with everything running AND with every earlier-deferred call
  // still parked — a later arrival never overtakes an earlier incompatible
  // one (arrival-order serial equivalence).
  std::vector<std::size_t> blocked;
  for (std::size_t qi = 0; qi < ma_queue_.size();) {
    const auto [ei, si] = ma_queue_[qi];
    EntryCore& e = core(ei);
    Slot& s = e.slots[si];
    bool ok = true;
    for (std::size_t j : compat_participants_) {
      if (core(j).ma_running > 0 && !e.compat[j]) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (std::size_t b : blocked) {
        if (!e.compat[b]) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) {
      blocked.push_back(ei);
      ++qi;
      continue;
    }
    ma_queue_.erase(ma_queue_.begin() +
                    static_cast<std::ptrdiff_t>(qi));
    if (e.ma_deferred > 0) --e.ma_deferred;
    if (e.ma_deferred == 0) ++compat_gen_;
    if (s.state != SlotState::kDeferred || s.abandoned) {
      // Failed/cancelled while parked (fail_call unqueues eagerly, but be
      // robust): reclaim without running — the caller is already failed.
      if (s.state == SlotState::kDeferred) release_slot_locked(ei, si);
      continue;
    }
    ValueList full = std::move(s.deferred_params);
    s.deferred_params.clear();
    ma_mark_running_locked(ei, si);
    out.push_back(make_body_task(ei, si, std::move(full)));
    // A launch only adds occupancy (more restrictive), so the scan resumes
    // at the same index with the updated ma_running counts.
  }
}

void Object::ma_unqueue_locked(std::size_t entry_idx, std::size_t slot_idx) {
  for (auto it = ma_queue_.begin(); it != ma_queue_.end(); ++it) {
    if (it->first == entry_idx && it->second == slot_idx) {
      ma_queue_.erase(it);
      break;
    }
  }
  EntryCore& e = core(entry_idx);
  if (e.ma_deferred > 0) --e.ma_deferred;
  if (e.ma_deferred == 0) ++compat_gen_;
}

ObjectStats Object::stats() const {
  ObjectStats out;
  Object* self = const_cast<Object*>(this);
  std::scoped_lock lock(mu_);
  // Fold any undrained arrivals into the snapshot so counts are current.
  if (started_.load(std::memory_order_acquire)) self->drain_intake_locked();
  out.entries.reserve(entries_.size());
  for (const auto& ep : entries_) {
    const EntryCore& e = *ep;
    EntryStats st;
    st.name = e.decl.name;
    st.calls = e.calls.load(std::memory_order_relaxed);
    st.accepts = e.accepts;
    st.starts = e.starts;
    st.finishes = e.finishes;
    st.combines = e.combines;
    st.pending = e.pending.load(std::memory_order_relaxed) +
                 e.in_intake.load(std::memory_order_relaxed);
    st.ma_started = e.ma_started;
    st.ma_concurrent_starts = e.ma_concurrent;
    st.ma_conflict_blocks = e.ma_conflicts;
    out.entries.push_back(std::move(st));
  }
  if (executor_) {
    out.threads_created = executor_->threads_created();
    out.threads_alive = executor_->threads_alive();
  }
  return out;
}

void Object::notify_external_event() {
  // The generation bump discards every cached guard evaluation: "wake and
  // re-evaluate the guards" is this call's documented contract, and callers
  // use it to announce arbitrary state changes the kernel cannot see.
  // Sources with their own generation counter (channels, the slot queues)
  // use the cheaper wake_manager() instead, so the delta machinery keeps
  // its caches across their events.
  guard_inval_gen_.fetch_add(1, std::memory_order_release);
  mgr_wake_.signal();
}

std::exception_ptr Object::manager_error() const {
  std::scoped_lock lock(mu_);
  return manager_error_;
}

// ---------------------------------------------------------------------------
// Supervision: quarantine, restart, deadlines/cancellation, watchdog
// (DESIGN.md §4.6)
// ---------------------------------------------------------------------------

void Object::check_manager_abort() const {
  if (mgr_abort_.load(std::memory_order_acquire)) {
    raise(ErrorCode::kTimeout,
          "manager of object " + name_ + " aborted by watchdog (stalled)");
  }
}

void Object::take_down(std::exception_ptr cause, const std::string& why) {
  std::vector<std::shared_ptr<CallState>> to_fail;
  {
    std::scoped_lock lock(mu_);
    if (down_.load(std::memory_order_relaxed) ||
        stopping_.load(std::memory_order_acquire)) {
      return;
    }
    down_msg_ = why;
    if (!manager_error_ && cause) manager_error_ = cause;
    // seq_cst store paired with dispatch's push-then-recheck: a caller that
    // pushed before this store is flushed below; one that pushes after it
    // sees down_ and flushes (or fails) itself.
    down_.store(true, std::memory_order_seq_cst);
    for (auto& ep : entries_) {
      EntryCore& e = *ep;
      for (auto& rec : e.overflow) {
        trace(e, rec.id, kNoSlot, CallPhase::kFailed);
        to_fail.push_back(rec.state);
      }
      e.overflow.clear();
      for (std::size_t i = 0; i < e.slots.size(); ++i) {
        Slot& s = e.slots[i];
        if (s.state == SlotState::kFree || !s.call.has_value()) continue;
        trace(e, s.call->id, i, CallPhase::kFailed);
        to_fail.push_back(s.call->state);
        if (s.state == SlotState::kRunning) {
          // Body still executing: keep the record (the completion handler
          // reads it) and let discard_on_ready reclaim the slot. Multiactive
          // handlers also retire their ma_running occupancy there.
          s.discard_on_ready = true;
        } else {
          s.call.reset();
          s.state = SlotState::kFree;
          s.abandoned = false;
          s.multiactive = false;
          s.deferred_params.clear();
        }
      }
      e.attached.clear(e.slots);
      e.ready.clear(e.slots);
      e.ma_deferred = 0;  // deferred slots were freed above
      update_pending_locked(e);
    }
    ma_queue_.clear();
  }
  for (auto& state : to_fail) {
    state->fail(ErrorCode::kObjectDown, why);
  }
  // Fail the intake backlog; new arrivals see down_ in dispatch.
  flush_intake();
}

void Object::reconcile_for_restart() {
  const bool replay = opts_.supervision.replay_pending;
  std::vector<std::shared_ptr<CallState>> to_fail;
  const std::string why =
      "object " + name_ + ": call dropped during manager restart";
  {
    std::scoped_lock lock(mu_);
    for (std::size_t ei = 0; ei < entries_.size(); ++ei) {
      EntryCore& e = core(ei);
      if (!e.intercepted) continue;
      if (!replay) {
        for (auto& rec : e.overflow) {
          trace(e, rec.id, kNoSlot, CallPhase::kFailed);
          to_fail.push_back(rec.state);
        }
        e.overflow.clear();
      }
      for (std::size_t i = 0; i < e.slots.size(); ++i) {
        Slot& s = e.slots[i];
        switch (s.state) {
          case SlotState::kFree:
            break;
          case SlotState::kAttached:
            // Never reached the dead manager; waits for the next one
            // (unless the policy says otherwise).
            if (!replay) {
              e.attached.remove(e.slots, i);
              trace(e, s.call->id, i, CallPhase::kFailed);
              to_fail.push_back(s.call->state);
              s.call.reset();
              s.state = SlotState::kFree;
              s.abandoned = false;
            }
            break;
          case SlotState::kAccepted:
            if (replay && !s.abandoned) {
              // Accepted but never started: no side effects yet, so the
              // call is safe to re-queue for the new incarnation. It joins
              // the tail of the accept queue (arrival order within the
              // queue is preserved; its place relative to already-attached
              // peers is not).
              s.state = SlotState::kAttached;
              s.mgr_results.clear();
              s.rest_results.clear();
              s.body_error = nullptr;
              e.attached.push_back(e.slots, i);
            } else {
              trace(e, s.call->id, i, CallPhase::kFailed);
              to_fail.push_back(s.call->state);
              s.call.reset();
              s.state = SlotState::kFree;
              s.abandoned = false;
            }
            break;
          case SlotState::kDeferred:
            // Parked by the compat scheduler: the body never ran, so under
            // replay the call is as safe to re-queue as an accepted one —
            // restore the moved-out params and put it back on the attach
            // queue for the next incarnation.
            ma_unqueue_locked(ei, i);
            if (replay && !s.abandoned) {
              s.state = SlotState::kAttached;
              s.call->params = std::move(s.deferred_params);
              s.deferred_params.clear();
              s.multiactive = false;
              s.mgr_results.clear();
              s.rest_results.clear();
              s.body_error = nullptr;
              e.attached.push_back(e.slots, i);
            } else {
              trace(e, s.call->id, i, CallPhase::kFailed);
              to_fail.push_back(s.call->state);
              s.call.reset();
              s.state = SlotState::kFree;
              s.abandoned = false;
              s.multiactive = false;
              s.deferred_params.clear();
            }
            break;
          case SlotState::kRunning:
            // Side effects may have happened: a started body cannot be
            // replayed. Fail the caller; the completion handler reclaims
            // the slot (and, on the compat path, its group occupancy).
            if (s.call) {
              trace(e, s.call->id, i, CallPhase::kFailed);
              to_fail.push_back(s.call->state);
            }
            s.discard_on_ready = true;
            break;
          case SlotState::kReady:
            e.ready.remove(e.slots, i);
            if (s.call) {
              trace(e, s.call->id, i, CallPhase::kFailed);
              to_fail.push_back(s.call->state);
            }
            s.call.reset();
            s.state = SlotState::kFree;
            s.abandoned = false;
            break;
          case SlotState::kAwaited:
            if (s.call) {
              trace(e, s.call->id, i, CallPhase::kFailed);
              to_fail.push_back(s.call->state);
            }
            s.call.reset();
            s.state = SlotState::kFree;
            s.abandoned = false;
            break;
        }
      }
      // Re-attach queued overflow onto any slots the reconcile freed.
      while (!e.overflow.empty()) {
        bool attached_one = false;
        for (std::size_t i = 0; i < e.slots.size() && !e.overflow.empty();
             ++i) {
          if (e.slots[i].state == SlotState::kFree) {
            CallRecord next = std::move(e.overflow.front());
            e.overflow.pop_front();
            Slot& s = e.slots[i];
            s.state = SlotState::kAttached;
            trace(e, next.id, i, CallPhase::kAttached);
            s.call = std::move(next);
            s.mgr_results.clear();
            s.rest_results.clear();
            s.body_error = nullptr;
            s.abandoned = false;
            s.discard_on_ready = false;
            e.attached.push_back(e.slots, i);
            attached_one = true;
          }
        }
        if (!attached_one) break;
      }
      update_pending_locked(e);
    }
  }
  for (auto& state : to_fail) {
    state->fail(ErrorCode::kObjectDown, why);
  }
}

void Object::handle_manager_down(std::exception_ptr cause,
                                 const std::string& what) {
  if (stopping_.load(std::memory_order_acquire) ||
      down_.load(std::memory_order_acquire)) {
    return;
  }
  const SupervisionPolicy& pol = opts_.supervision;
  const int attempt = restarts_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (pol.max_restarts >= 0 && attempt > pol.max_restarts) {
    restarts_.fetch_sub(1, std::memory_order_acq_rel);
    take_down(cause, "object " + name_ +
                         " quarantined: restart budget exhausted (" +
                         std::to_string(pol.max_restarts) +
                         " restarts) after manager failure: " + what);
    return;
  }

  // Bounded exponential backoff, interruptible by stop().
  const double mult = pol.backoff_multiplier < 1.0 ? 1.0
                                                   : pol.backoff_multiplier;
  double delay_ms = static_cast<double>(pol.initial_backoff.count()) *
                    std::pow(mult, attempt - 1);
  delay_ms = std::min(delay_ms, static_cast<double>(pol.max_backoff.count()));
  if (delay_ms > 0) {
    std::unique_lock lk(hub_->mu);
    hub_->cv.wait_for(lk,
                      std::chrono::milliseconds(static_cast<long>(delay_ms)),
                      [&] { return hub_->stop; });
    if (hub_->stop) return;
  }
  if (stopping_.load(std::memory_order_acquire)) return;

  reconcile_for_restart();
  if (pol.on_restart) pol.on_restart();
  mgr_abort_.store(false, std::memory_order_release);
  // The old incarnation's thread has exited its catch block (it only
  // notified the hub); join it before installing the replacement. stop()
  // cannot race this join: it retires the supervisor thread first.
  if (manager_thread_.joinable()) manager_thread_.join();
  ALPS_LOG_INFO("object %s: restarting manager (attempt %d): %s",
                name_.c_str(), attempt, what.c_str());
  spawn_manager();
}

void Object::ensure_supervisor() {
  std::scoped_lock lock(mu_);
  if (supervisor_started_ || stopping_.load(std::memory_order_acquire)) {
    return;
  }
  supervisor_started_ = true;
  supervisor_thread_ = std::jthread([this] { supervisor_loop(); });
}

void Object::register_call_guard(std::uint64_t id, std::size_t entry_idx,
                                 const std::shared_ptr<CallState>& state,
                                 const CallOptions& opts) {
  ensure_supervisor();
  if (opts.deadline.count() > 0) {
    {
      std::scoped_lock lk(hub_->mu);
      hub_->deadlines.push_back(SupervisorHub::Deadline{
          std::chrono::steady_clock::now() + opts.deadline, id, entry_idx,
          state});
      std::push_heap(hub_->deadlines.begin(), hub_->deadlines.end(),
                     [](const SupervisorHub::Deadline& a,
                        const SupervisorHub::Deadline& b) {
                       return a.due > b.due;  // min-heap by due
                     });
      hub_->kick = true;
    }
    hub_->cv.notify_one();
  }
  if (opts.cancel) {
    // The subscription captures only a weak hub reference: if the token
    // outlives the object, the callback finds the hub expired and falls
    // back to failing the (already-failed) state directly.
    std::weak_ptr<SupervisorHub> whub = hub_;
    std::weak_ptr<CallState> wstate = state;
    opts.cancel->subscribe([whub, wstate, id, entry_idx] {
      if (auto hub = whub.lock()) {
        {
          std::scoped_lock lk(hub->mu);
          hub->doomed.push_back(SupervisorHub::Doomed{id, entry_idx, wstate});
          hub->kick = true;
        }
        hub->cv.notify_one();
      } else if (auto st = wstate.lock()) {
        st->fail(ErrorCode::kCancelled, "call cancelled");
      }
    });
  }
}

void Object::fail_call(std::uint64_t id, std::size_t entry_idx,
                       const std::weak_ptr<CallState>& wstate, ErrorCode code,
                       const std::string& why) {
  auto state = wstate.lock();
  if (!state || state->ready()) return;
  bool touched_sched = false;
  std::vector<sched::BatchItem> launch;
  {
    std::scoped_lock lock(mu_);
    if (!stopping_.load(std::memory_order_acquire) &&
        !down_.load(std::memory_order_acquire)) {
      // Make sure the record reached the scheduling structures (the caller
      // registered the guard after pushing to intake).
      drain_intake_locked();
      EntryCore& e = core(entry_idx);
      if (e.intercepted) {
        bool found = false;
        for (auto it = e.overflow.begin(); it != e.overflow.end(); ++it) {
          if (it->id == id) {
            trace(e, id, kNoSlot, CallPhase::kFailed);
            e.overflow.erase(it);
            update_pending_locked(e);
            touched_sched = true;
            found = true;
            break;
          }
        }
        if (!found) {
          for (std::size_t i = 0; i < e.slots.size(); ++i) {
            Slot& s = e.slots[i];
            if (!s.call.has_value() || s.call->id != id) continue;
            switch (s.state) {
              case SlotState::kAttached:
                // Unqueue before the manager ever sees it; the freed slot
                // immediately re-attaches any waiting overflow call.
                e.attached.remove(e.slots, i);
                trace(e, id, i, CallPhase::kFailed);
                release_slot_locked(entry_idx, i);
                touched_sched = true;
                break;
              case SlotState::kAccepted:
                // The manager holds this call: mark it abandoned so start
                // skips the body and await reports the failure; the slot
                // travels the normal accept→finish protocol and is
                // reclaimed there.
                s.abandoned = true;
                s.body_error = std::make_exception_ptr(Error(code, why));
                trace(e, id, i, CallPhase::kFailed);
                touched_sched = true;
                break;
              case SlotState::kDeferred:
                // Parked by the compat scheduler: unqueue and reclaim now;
                // later-deferred calls it was blocking may have become
                // launchable, so drain after the removal.
                ma_unqueue_locked(entry_idx, i);
                trace(e, id, i, CallPhase::kFailed);
                release_slot_locked(entry_idx, i);
                drain_deferred_locked(launch);
                touched_sched = true;
                break;
              case SlotState::kRunning:
              case SlotState::kReady:
              case SlotState::kAwaited:
                // Body started (or finished): let the protocol run; the
                // manager sees `abandoned` at await and its finish becomes
                // a no-op completion. A multiactive body's completion
                // handler sees `abandoned` and skips caller completion.
                s.abandoned = true;
                trace(e, id, i, CallPhase::kFailed);
                touched_sched = true;
                break;
              case SlotState::kFree:
                break;
            }
            break;
          }
        }
      }
    }
  }
  // Complete the caller outside the kernel lock (callbacks may run user
  // code). First-completion-wins: if finish/fail raced past us, this no-ops
  // and the caller keeps the real completion.
  state->fail(code, why);
  if (!launch.empty()) executor_->submit_batch(std::move(launch));
  if (touched_sched) {
    // #P moved or a candidate vanished: discard cached guard verdicts and
    // wake the manager so select/accept re-evaluates against the new state.
    notify_external_event();
  }
}

void Object::supervisor_loop() {
  support::set_current_thread_name("sup:" + name_);
  auto hub = hub_;
  const WatchdogOptions wd = opts_.watchdog;
  std::chrono::milliseconds poll = wd.poll_interval;
  if (wd.enabled && poll.count() <= 0) {
    poll = std::max(wd.stall_threshold / 4, std::chrono::milliseconds(1));
  }
  WatchdogState wds;
  auto wd_next = std::chrono::steady_clock::now() + poll;

  const auto heap_less = [](const SupervisorHub::Deadline& a,
                            const SupervisorHub::Deadline& b) {
    return a.due > b.due;
  };

  std::unique_lock lk(hub->mu);
  for (;;) {
    auto due = std::chrono::steady_clock::time_point::max();
    if (!hub->deadlines.empty()) due = hub->deadlines.front().due;
    if (wd.enabled) due = std::min(due, wd_next);
    const auto pred = [&] {
      return hub->stop || hub->kick || hub->manager_down;
    };
    if (due == std::chrono::steady_clock::time_point::max()) {
      hub->cv.wait(lk, pred);
    } else {
      hub->cv.wait_until(lk, due, pred);
    }
    if (hub->stop) return;
    hub->kick = false;

    std::vector<SupervisorHub::Doomed> doomed = std::move(hub->doomed);
    hub->doomed.clear();
    std::vector<SupervisorHub::Deadline> expired;
    const auto now = std::chrono::steady_clock::now();
    while (!hub->deadlines.empty() && hub->deadlines.front().due <= now) {
      std::pop_heap(hub->deadlines.begin(), hub->deadlines.end(), heap_less);
      expired.push_back(std::move(hub->deadlines.back()));
      hub->deadlines.pop_back();
    }
    const bool mgr_down = hub->manager_down;
    hub->manager_down = false;
    std::exception_ptr cause = std::move(hub->down_cause);
    std::string what = std::move(hub->down_what);
    hub->down_cause = nullptr;
    hub->down_what.clear();

    lk.unlock();
    for (const auto& d : doomed) {
      fail_call(d.id, d.entry, d.state, ErrorCode::kCancelled,
                "call cancelled by caller on object " + name_);
    }
    for (const auto& d : expired) {
      fail_call(d.id, d.entry, d.state, ErrorCode::kTimeout,
                "call deadline expired on object " + name_);
    }
    if (mgr_down) handle_manager_down(cause, what);
    if (wd.enabled && std::chrono::steady_clock::now() >= wd_next) {
      watchdog_tick(wds);
      wd_next = std::chrono::steady_clock::now() + poll;
    }
    lk.lock();
  }
}

void Object::watchdog_tick(WatchdogState& wd) {
  if (stopping_.load(std::memory_order_acquire) ||
      down_.load(std::memory_order_acquire)) {
    return;
  }
  if (!mgr_live_.load(std::memory_order_acquire)) {
    // Between incarnations (or after a fail-fast death): not a stall.
    wd.have_baseline = false;
    wd.reported = false;
    return;
  }
  const std::uint64_t ops = mgr_ops_.load(std::memory_order_relaxed);
  bool work_pending = false;
  {
    std::scoped_lock lock(mu_);
    for (const auto& ep : entries_) {
      const EntryCore& e = *ep;
      if (e.pending.load(std::memory_order_relaxed) > 0 ||
          e.in_intake.load(std::memory_order_relaxed) > 0) {
        work_pending = true;
        break;
      }
      for (const Slot& s : e.slots) {
        if (s.state != SlotState::kFree) {
          work_pending = true;
          break;
        }
      }
      if (work_pending) break;
    }
  }
  const auto now = std::chrono::steady_clock::now();
  if (!wd.have_baseline || ops != wd.last_ops || !work_pending) {
    wd.have_baseline = true;
    wd.last_ops = ops;
    wd.last_progress = now;
    wd.reported = false;
    return;
  }
  const auto stalled =
      std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                            wd.last_progress);
  if (stalled < opts_.watchdog.stall_threshold || wd.reported) return;
  wd.reported = true;  // once per stall episode; re-arms on progress
  const bool escalate = opts_.watchdog.escalate;
  StallReport report = build_stall_report(stalled, escalate);
  ALPS_LOG_ERROR("%s", report.summary().c_str());
  if (tracer_) tracer_->on_stall(report);
  if (escalate) {
    mgr_abort_.store(true, std::memory_order_release);
    // The manager converts the flag into a typed unwind at its next
    // blocking primitive; the policy then decides restart vs quarantine.
    notify_external_event();
  }
}

StallReport Object::build_stall_report(std::chrono::milliseconds stalled,
                                       bool escalated) {
  static const char* const kActivityNames[] = {
      "user-code", "accept-wait", "await-wait", "select-wait", "down"};
  StallReport report;
  report.object = name_;
  report.stalled_for = stalled;
  report.escalated = escalated;
  const std::uint8_t act = mgr_activity_.load(std::memory_order_relaxed);
  report.manager_activity = kActivityNames[act <= kActDown ? act : 0];
  std::scoped_lock lock(mu_);
  report.guards = guard_snapshot_;
  report.entries.reserve(entries_.size());
  for (const auto& ep : entries_) {
    const EntryCore& e = *ep;
    StallReport::EntryRow row;
    row.name = e.decl.name;
    row.pending = e.pending.load(std::memory_order_relaxed) +
                  e.in_intake.load(std::memory_order_relaxed);
    for (const Slot& s : e.slots) {
      switch (s.state) {
        case SlotState::kFree: break;
        case SlotState::kAttached: ++row.attached; break;
        case SlotState::kAccepted: ++row.accepted; break;
        case SlotState::kRunning: ++row.running; break;
        case SlotState::kReady: ++row.ready; break;
        case SlotState::kAwaited: ++row.awaited; break;
        case SlotState::kDeferred: ++row.deferred; break;
      }
    }
    report.entries.push_back(std::move(row));
  }
  return report;
}

}  // namespace alps
