#include "core/object.h"

#include <algorithm>
#include <utility>

#include "core/error.h"
#include "core/manager.h"
#include "support/log.h"
#include "support/thread_util.h"

namespace alps {

CallHandle BodyCtx::call_sibling(EntryRef target, ValueList params) const {
  if (target.object() != obj_) {
    raise(ErrorCode::kProtocolViolation,
          "call_sibling target belongs to a different object");
  }
  return obj_->dispatch(target.index(), std::move(params), /*external=*/false);
}

Object::Object(std::string name, ObjectOptions opts)
    : name_(std::move(name)), opts_(opts) {}

Object::~Object() { stop(); }

void Object::require_started(const char* op) const {
  if (!started_.load(std::memory_order_acquire)) {
    raise(ErrorCode::kProtocolViolation,
          std::string(op) + " before start() on object " + name_);
  }
}

void Object::require_not_started(const char* op) const {
  if (started_.load(std::memory_order_acquire)) {
    raise(ErrorCode::kProtocolViolation,
          std::string(op) + " after start() on object " + name_);
  }
}

EntryRef Object::define_entry(EntryDecl decl) {
  require_not_started("define_entry");
  std::scoped_lock lock(mu_);
  if (by_name_.count(decl.name)) {
    raise(ErrorCode::kProtocolViolation,
          "duplicate entry " + decl.name + " on object " + name_);
  }
  auto core = std::make_unique<EntryCore>();
  core->decl = std::move(decl);
  const std::size_t idx = entries_.size();
  by_name_.emplace(core->decl.name, idx);
  entries_.push_back(std::move(core));
  return EntryRef(this, idx);
}

void Object::implement(EntryRef entry, BodyFn body) {
  implement(entry, ImplDecl{}, std::move(body));
}

void Object::implement(EntryRef entry, ImplDecl impl, BodyFn body) {
  require_not_started("implement");
  if (entry.object() != this) {
    raise(ErrorCode::kProtocolViolation, "implement with foreign EntryRef");
  }
  if (impl.array == 0) {
    raise(ErrorCode::kProtocolViolation, "procedure array size must be >= 1");
  }
  std::scoped_lock lock(mu_);
  EntryCore& e = core(entry.index());
  e.impl = impl;
  e.body = std::move(body);
  e.implemented = true;
}

void Object::set_tracer(Tracer* tracer) {
  require_not_started("set_tracer");
  tracer_ = tracer;
}

void Object::set_manager(std::vector<InterceptClause> clauses, ManagerFn fn) {
  require_not_started("set_manager");
  std::scoped_lock lock(mu_);
  for (const auto& c : clauses) {
    if (c.entry.object() != this) {
      raise(ErrorCode::kProtocolViolation, "intercept of foreign entry");
    }
    EntryCore& e = core(c.entry.index());
    if (c.n_params > e.decl.params) {
      raise(ErrorCode::kArityMismatch,
            "intercepts " + e.decl.name + ": parameter prefix longer than the "
            "entry's parameter list");
    }
    if (c.n_results > e.decl.results) {
      raise(ErrorCode::kArityMismatch,
            "intercepts " + e.decl.name + ": result prefix longer than the "
            "entry's result list");
    }
    e.intercepted = true;
    e.icept_params = c.n_params;
    e.icept_results = c.n_results;
  }
  manager_fn_ = std::move(fn);
  has_manager_ = true;
}

void Object::start() {
  require_not_started("start");

  std::size_t total_slots = 0;
  {
    std::scoped_lock lock(mu_);
    for (auto& ep : entries_) {
      EntryCore& e = *ep;
      if (!e.implemented) {
        raise(ErrorCode::kProtocolViolation,
              "entry " + e.decl.name + " defined but not implemented");
      }
      if (e.intercepted && !has_manager_) {
        raise(ErrorCode::kProtocolViolation,
              "entry " + e.decl.name + " intercepted but no manager set");
      }
      if (!e.intercepted &&
          (e.impl.hidden_params > 0 || e.impl.hidden_results > 0)) {
        raise(ErrorCode::kProtocolViolation,
              "entry " + e.decl.name +
                  " has hidden params/results but is not intercepted (only "
                  "the manager can supply/receive them)");
      }
      if (e.intercepted) {
        e.slots.resize(e.impl.array);
        for (auto& s : e.slots) s.global_key = total_slots++;
      }
    }
    executor_ = sched::make_executor(opts_.model, total_slots,
                                     opts_.pool_workers, name_);
  }

  started_.store(true, std::memory_order_release);

  if (has_manager_) {
    manager_thread_ = std::jthread([this] {
      support::set_current_thread_name("mgr:" + name_);
      if (opts_.boost_manager_priority) {
        support::try_boost_priority();
      }
      manager_thread_id_.store(std::this_thread::get_id(),
                               std::memory_order_release);
      Manager m(*this);
      try {
        manager_fn_(m);
      } catch (const Error& err) {
        // Stop-induced unwinding is the normal shutdown path.
        if (err.code() != ErrorCode::kObjectStopped) {
          std::scoped_lock lock(mu_);
          manager_error_ = std::current_exception();
          ALPS_LOG_ERROR("object %s: manager terminated with error: %s",
                         name_.c_str(), err.what());
        }
      } catch (...) {
        std::scoped_lock lock(mu_);
        manager_error_ = std::current_exception();
        ALPS_LOG_ERROR("object %s: manager terminated with unknown error",
                       name_.c_str());
      }
    });
  }
}

void Object::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Another stop() is in progress (or finished); wait for quiescence.
    stop_done_.wait();
    return;
  }

  stop_source_.request_stop();
  mgr_wake_.signal();

  if (manager_thread_.joinable()) manager_thread_.join();

  // Fail every call that never reached finish *before* draining the
  // executor: a still-running body may be blocked on a sibling call whose
  // manager is now gone, and failing its handle is what unblocks it.
  std::vector<std::shared_ptr<CallState>> to_fail;
  {
    std::scoped_lock lock(mu_);
    for (auto& ep : entries_) {
      EntryCore& e = *ep;
      for (auto& rec : e.overflow) {
        trace(e, rec.id, kNoSlot, CallPhase::kFailed);
        to_fail.push_back(rec.state);
      }
      e.overflow.clear();
      for (std::size_t i = 0; i < e.slots.size(); ++i) {
        Slot& s = e.slots[i];
        if (s.state != SlotState::kFree && s.call.has_value()) {
          trace(e, s.call->id, i, CallPhase::kFailed);
          to_fail.push_back(s.call->state);
          s.call.reset();
        }
        s.state = SlotState::kFree;
      }
      e.attached.clear(e.slots);
      e.ready.clear(e.slots);
      update_pending_locked(e);
    }
  }
  for (auto& state : to_fail) {
    state->fail(ErrorCode::kObjectStopped, "object " + name_ + " stopped");
  }
  // Fail the intake backlog (records that never reached the scheduling
  // structures). stopping_ is set, so this flush fails rather than routes;
  // a racing dispatch that pushes after this re-flushes on its own.
  flush_intake();

  if (executor_) executor_->shutdown();
  stop_done_.set();
}

bool Object::running() const {
  return started_.load(std::memory_order_acquire) &&
         !stopping_.load(std::memory_order_acquire);
}

Object::EntryCore& Object::core_checked(EntryRef entry, const char* op) {
  if (entry.object() != this || entry.index() >= entries_.size()) {
    raise(ErrorCode::kProtocolViolation,
          std::string(op) + ": EntryRef does not belong to object " + name_);
  }
  return core(entry.index());
}

void Object::update_pending_locked(EntryCore& e) {
  e.pending.store(e.overflow.size() + e.attached.size(),
                  std::memory_order_relaxed);
}

CallHandle Object::async_call(EntryRef entry, ValueList params) {
  if (entry.object() != this) {
    raise(ErrorCode::kProtocolViolation, "async_call with foreign EntryRef");
  }
  return dispatch(entry.index(), std::move(params), /*external=*/true);
}

CallHandle Object::async_call(const std::string& entry_name, ValueList params) {
  return dispatch(entry(entry_name).index(), std::move(params),
                  /*external=*/true);
}

ValueList Object::call(EntryRef e, ValueList params) {
  return async_call(e, std::move(params)).get();
}

EntryRef Object::entry(const std::string& name) const {
  // Lock-free: the name table is built single-threaded before start() and
  // immutable afterwards, and guard conditions (which run under the kernel
  // lock) legitimately call this via the `#P` pending-count operator.
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    raise(ErrorCode::kNoSuchEntry, name + " on object " + name_);
  }
  return EntryRef(const_cast<Object*>(this), it->second);
}

std::size_t Object::pending(EntryRef entry) const {
  if (entry.object() != this || entry.index() >= entries_.size()) {
    raise(ErrorCode::kProtocolViolation, "pending with foreign EntryRef");
  }
  // #P = waiting-to-attach + attached-but-not-accepted + still in the
  // intake queue. Guard conditions run right after a drain, so the last
  // term is zero where the paper's semantics need exactness.
  const EntryCore& e = *entries_[entry.index()];
  return e.pending.load(std::memory_order_relaxed) +
         e.in_intake.load(std::memory_order_relaxed);
}

CallHandle Object::dispatch(std::size_t entry_idx, ValueList params,
                            bool external) {
  require_started("call");
  auto state = std::make_shared<CallState>();
  CallHandle handle(state);

  if (stopping_.load(std::memory_order_acquire)) {
    state->fail(ErrorCode::kObjectStopped, "object " + name_ + " stopped");
    return handle;
  }

  // The whole dispatch path is lock-free: decl/impl/intercepted are frozen
  // at start(), counters are atomics, and the record goes onto the MPSC
  // intake queue rather than into the scheduling structures directly.
  EntryCore& e = core(entry_idx);
  if (external && !e.decl.exported) {
    state->fail(ErrorCode::kNotExported,
                e.decl.name + " is local to object " + name_);
    return handle;
  }
  if (params.size() != e.decl.params) {
    state->fail(ErrorCode::kArityMismatch,
                e.decl.name + " expects " + std::to_string(e.decl.params) +
                    " params, got " + std::to_string(params.size()));
    return handle;
  }
  const std::uint64_t call_id =
      next_call_id_.fetch_add(1, std::memory_order_relaxed);
  e.calls.fetch_add(1, std::memory_order_relaxed);
  trace(e, call_id, kNoSlot, CallPhase::kArrived);

  const bool intercepted = e.intercepted;
  if (intercepted) e.in_intake.fetch_add(1, std::memory_order_relaxed);
  intake_.push(IntakeItem{entry_idx,
                          CallRecord{std::move(params), state,
                                     std::chrono::steady_clock::now(),
                                     call_id}});
  if (intercepted) {
    // Batched intake: the manager drains the whole backlog under one lock
    // acquisition when it next evaluates accept/select. signal() skips the
    // wake syscall when the manager is not actually sleeping.
    mgr_wake_.signal();
    if (stopping_.load(std::memory_order_seq_cst)) {
      // stop() may have drained before our push landed; the seq_cst
      // push/stopping ordering guarantees one of us sees the record.
      flush_intake();
    }
  } else {
    // Unmanaged dispatch: drain immediately — uncontended callers get a
    // batch of one, concurrent callers combine into one drain.
    flush_intake();
  }
  return handle;
}

void Object::drain_intake_locked() {
  if (intake_.empty()) return;
  if (stopping_.load(std::memory_order_acquire)) {
    // Leave the backlog queued: stop() flushes (and fails) it outside the
    // kernel lock, where completion callbacks are allowed to run.
    return;
  }
  std::vector<sched::BatchItem> batch;
  intake_.drain([&](IntakeItem&& item) {
    EntryCore& e = core(item.entry);
    if (e.intercepted) {
      e.in_intake.fetch_sub(1, std::memory_order_relaxed);
      attach_locked(item.entry, std::move(item.rec));
    } else {
      batch.push_back(make_unintercepted_task(item.entry, std::move(item.rec)));
    }
  });
  if (!batch.empty()) {
    // Executor locks are leaves (never taken around kernel calls), so
    // submitting under mu_ is deadlock-free. Refused tasks fail their
    // caller on destruction (see make_unintercepted_task).
    executor_->submit_batch(std::move(batch));
  }
}

void Object::flush_intake() {
  while (!intake_.empty()) {
    std::vector<IntakeItem> items;
    intake_.drain([&](IntakeItem&& item) { items.push_back(std::move(item)); });
    if (items.empty()) continue;  // another drainer took this chain

    if (stopping_.load(std::memory_order_acquire)) {
      for (auto& item : items) {
        EntryCore& e = core(item.entry);
        if (e.intercepted) e.in_intake.fetch_sub(1, std::memory_order_relaxed);
        trace(e, item.rec.id, kNoSlot, CallPhase::kFailed);
        item.rec.state->fail(ErrorCode::kObjectStopped,
                             "object " + name_ + " stopped");
      }
      continue;
    }

    std::vector<sched::BatchItem> batch;
    bool attached_any = false;
    bool need_lock = false;
    for (const auto& item : items) {
      if (core(item.entry).intercepted) need_lock = true;
    }
    if (need_lock) {
      std::scoped_lock lock(mu_);
      for (auto& item : items) {
        EntryCore& e = core(item.entry);
        if (e.intercepted) {
          e.in_intake.fetch_sub(1, std::memory_order_relaxed);
          attach_locked(item.entry, std::move(item.rec));
          attached_any = true;
        } else {
          batch.push_back(
              make_unintercepted_task(item.entry, std::move(item.rec)));
        }
      }
    } else {
      for (auto& item : items) {
        batch.push_back(
            make_unintercepted_task(item.entry, std::move(item.rec)));
      }
    }
    if (attached_any) mgr_wake_.signal();
    if (!batch.empty()) executor_->submit_batch(std::move(batch));
  }
}

void Object::attach_locked(std::size_t entry_idx, CallRecord rec) {
  EntryCore& e = core(entry_idx);
  // Attach to a free slot if one exists, else queue (paper §2.5: "if there
  // are more requests than can be accommodated in the procedure array, the
  // remaining requests continue to wait").
  for (std::size_t i = 0; i < e.slots.size(); ++i) {
    if (e.slots[i].state == SlotState::kFree) {
      e.slots[i].state = SlotState::kAttached;
      trace(e, rec.id, i, CallPhase::kAttached);
      e.slots[i].call = std::move(rec);
      e.slots[i].mgr_results.clear();
      e.slots[i].rest_results.clear();
      e.slots[i].body_error = nullptr;
      e.attached.push_back(e.slots, i);
      update_pending_locked(e);
      return;
    }
  }
  e.overflow.push_back(std::move(rec));
  update_pending_locked(e);
}

void Object::release_slot_locked(std::size_t entry_idx, std::size_t slot_idx) {
  EntryCore& e = core(entry_idx);
  Slot& s = e.slots[slot_idx];
  s.state = SlotState::kFree;
  s.call.reset();
  s.mgr_results.clear();
  s.rest_results.clear();
  s.body_error = nullptr;
  if (!e.overflow.empty()) {
    CallRecord next = std::move(e.overflow.front());
    e.overflow.pop_front();
    s.state = SlotState::kAttached;
    trace(e, next.id, slot_idx, CallPhase::kAttached);
    s.call = std::move(next);
    e.attached.push_back(e.slots, slot_idx);
  }
  update_pending_locked(e);
  // No wakeup: release_slot_locked only runs from manager primitives, and
  // the manager is the only mgr_wake_ waiter — it cannot be asleep while
  // executing its own finish.
}

namespace {

/// Fails the call if the wrapping task is destroyed without having run
/// (executor refused or dropped it during shutdown). CallState's
/// first-completion-wins makes the failure a no-op after a normal finish.
/// Held via shared_ptr so std::function copies cannot fire it early.
class FailOnDrop {
 public:
  FailOnDrop(std::shared_ptr<CallState> state, const std::string& obj_name)
      : state_(std::move(state)), obj_name_(obj_name) {}
  ~FailOnDrop() {
    state_->fail(ErrorCode::kObjectStopped,
                 "object " + obj_name_ + " stopped before the body could run");
  }
  FailOnDrop(const FailOnDrop&) = delete;
  FailOnDrop& operator=(const FailOnDrop&) = delete;

 private:
  std::shared_ptr<CallState> state_;
  std::string obj_name_;
};

}  // namespace

sched::BatchItem Object::make_unintercepted_task(std::size_t entry_idx,
                                                 CallRecord rec) {
  auto state = std::move(rec.state);
  auto guard = std::make_shared<FailOnDrop>(state, name_);
  return sched::BatchItem{
      sched::kUnboundTask,
      [this, entry_idx, id = rec.id, params = std::move(rec.params), state,
       guard]() mutable {
        EntryCore& ec = core(entry_idx);
        BodyCtx ctx(this, ec.decl.name, kNoSlot, std::move(params));
        ValueList out;
        try {
          out = ec.body(ctx);
          if (out.size() != ec.decl.results) {
            raise(ErrorCode::kArityMismatch,
                  ec.decl.name + " body returned " +
                      std::to_string(out.size()) + " results, declared " +
                      std::to_string(ec.decl.results));
          }
        } catch (...) {
          trace(ec, id, kNoSlot, CallPhase::kFailed);
          state->fail(std::current_exception());
          return;
        }
        trace(ec, id, kNoSlot, CallPhase::kFinished);
        state->complete(std::move(out));
      }};
}

void Object::submit_body(std::size_t entry_idx, std::size_t slot_idx,
                         ValueList full_params) {
  EntryCore& e = core(entry_idx);
  const std::size_t key = e.slots[slot_idx].global_key;
  const bool ok = executor_->submit(
      key, [this, entry_idx, slot_idx, params = std::move(full_params)]() mutable {
        EntryCore& ec = core(entry_idx);
        BodyCtx ctx(this, ec.decl.name, slot_idx, std::move(params));
        ValueList out;
        std::exception_ptr err;
        try {
          out = ec.body(ctx);
          const std::size_t want = ec.decl.results + ec.impl.hidden_results;
          if (out.size() != want) {
            raise(ErrorCode::kArityMismatch,
                  ec.decl.name + " body returned " +
                      std::to_string(out.size()) + " results, expected " +
                      std::to_string(want) +
                      " (visible + hidden)");
          }
        } catch (...) {
          err = std::current_exception();
        }

        {
          std::scoped_lock lock(mu_);
          Slot& s = ec.slots[slot_idx];
          if (s.state != SlotState::kRunning) {
            // Object stopped and reset the slot while the body ran; the
            // caller has already been failed.
            return;
          }
          if (err) {
            s.body_error = err;
          } else {
            // Split [visible..., hidden...]: the manager's await sees the
            // intercepted visible prefix plus all hidden results; the rest
            // goes straight to the caller at finish. `out` is dead after
            // the split, so move every element instead of copying.
            const auto icept =
                out.begin() + static_cast<std::ptrdiff_t>(ec.icept_results);
            const auto visible =
                out.begin() + static_cast<std::ptrdiff_t>(ec.decl.results);
            s.mgr_results.reserve(ec.icept_results + ec.impl.hidden_results);
            s.mgr_results.assign(std::make_move_iterator(out.begin()),
                                 std::make_move_iterator(icept));
            s.mgr_results.insert(s.mgr_results.end(),
                                 std::make_move_iterator(visible),
                                 std::make_move_iterator(out.end()));
            s.rest_results.assign(std::make_move_iterator(icept),
                                  std::make_move_iterator(visible));
          }
          s.state = SlotState::kReady;
          trace(ec, s.call->id, slot_idx, CallPhase::kReady);
          ec.ready.push_back(ec.slots, slot_idx);
        }
        // Body completions come from executor threads; wake the manager's
        // await/select (two atomic ops when it is not sleeping).
        mgr_wake_.signal();
      });
  if (!ok) {
    // Executor already shut down; stop() will fail the caller.
    ALPS_LOG_DEBUG("object %s: start after shutdown dropped", name_.c_str());
  }
}

ObjectStats Object::stats() const {
  ObjectStats out;
  Object* self = const_cast<Object*>(this);
  std::scoped_lock lock(mu_);
  // Fold any undrained arrivals into the snapshot so counts are current.
  if (started_.load(std::memory_order_acquire)) self->drain_intake_locked();
  out.entries.reserve(entries_.size());
  for (const auto& ep : entries_) {
    const EntryCore& e = *ep;
    out.entries.push_back(
        EntryStats{e.decl.name, e.calls.load(std::memory_order_relaxed),
                   e.accepts, e.starts, e.finishes, e.combines,
                   e.pending.load(std::memory_order_relaxed) +
                       e.in_intake.load(std::memory_order_relaxed)});
  }
  if (executor_) {
    out.threads_created = executor_->threads_created();
    out.threads_alive = executor_->threads_alive();
  }
  return out;
}

void Object::notify_external_event() {
  // The generation bump discards every cached guard evaluation: "wake and
  // re-evaluate the guards" is this call's documented contract, and callers
  // use it to announce arbitrary state changes the kernel cannot see.
  // Sources with their own generation counter (channels, the slot queues)
  // use the cheaper wake_manager() instead, so the delta machinery keeps
  // its caches across their events.
  guard_inval_gen_.fetch_add(1, std::memory_order_release);
  mgr_wake_.signal();
}

std::exception_ptr Object::manager_error() const {
  std::scoped_lock lock(mu_);
  return manager_error_;
}

}  // namespace alps
