#include "core/select.h"

#include <algorithm>
#include <limits>

#include "core/error.h"
#include "core/object.h"

namespace alps {

namespace {

/// Heap slot value for the single pseudo-candidate of receive/when guards
/// (their cache lives at SlotCache index 0).
constexpr std::uint32_t kNoCacheSlot = 0xffffffffu;

/// The caching default, safe-side: closure-bearing guards re-evaluate on
/// every pass unless the author vouches for purity with `.cacheable()` —
/// a `when`/`pri` reading mutable state (the common `count < N` pattern)
/// must keep working without any annotation. Closure-less guards have a
/// state-independent verdict and always cache. `.always_reeval()` wins
/// over everything.
template <typename Guard>
bool effective_reeval(const Guard& g) {
  return g.reeval || ((g.when_fn || g.pri_fn) && !g.cache);
}

}  // namespace

Select::Select() = default;
Select::~Select() = default;

Select& Select::on(AcceptGuard g) {
  GuardRec rec;
  rec.kind = Kind::kAccept;
  rec.entry = g.entry;
  rec.when_v = std::move(g.when_fn);
  rec.pri_v = std::move(g.pri_fn);
  rec.on_accept = std::move(g.then_fn);
  rec.always_reeval = effective_reeval(g);
  rec.compat_gate = g.compat_gate;
  guards_.push_back(std::move(rec));
  return *this;
}

Select& Select::on(AwaitGuard g) {
  GuardRec rec;
  rec.kind = Kind::kAwait;
  rec.entry = g.entry;
  rec.when_v = std::move(g.when_fn);
  rec.pri_v = std::move(g.pri_fn);
  rec.on_await = std::move(g.then_fn);
  rec.always_reeval = effective_reeval(g);
  guards_.push_back(std::move(rec));
  return *this;
}

Select& Select::on(ReceiveGuard g) {
  GuardRec rec;
  rec.kind = Kind::kReceive;
  rec.channel = std::move(g.channel);
  rec.when_v = std::move(g.when_fn);
  rec.pri_v = std::move(g.pri_fn);
  rec.on_receive = std::move(g.then_fn);
  rec.always_reeval = effective_reeval(g);
  guards_.push_back(std::move(rec));
  return *this;
}

Select& Select::on(WhenGuard g) {
  GuardRec rec;
  rec.kind = Kind::kWhen;
  rec.when_b = std::move(g.cond);
  rec.pri_b = std::move(g.pri_fn);
  rec.on_when = std::move(g.then_fn);
  rec.always_reeval = true;  // reads arbitrary state by construction
  guards_.push_back(std::move(rec));
  return *this;
}

Select& Select::use_naive_polling(bool enable) {
  naive_polling_ = enable;
  return *this;
}

namespace {

/// RAII registration of a wake-up observer on every channel guard: the
/// observer signals the object's waiter-counted manager event, making
/// channel receive guards event-driven (and nearly free when the manager
/// is not actually parked in select). The observer only *wakes* — it does
/// not bump the guard invalidation epoch, because a channel carries its own
/// front generation which the selector re-checks on every pass; flushing
/// every accept/await cache on each message would defeat the delta engine
/// for channel-heavy managers.
class ChannelObservers {
 public:
  ChannelObservers() = default;
  ~ChannelObservers() { clear(); }

  void add(ChannelRef channel, std::function<void()> wake);
  void clear() {
    for (auto& [chan, token] : regs_) chan->remove_observer(token);
    regs_.clear();
  }
  bool empty() const { return regs_.empty(); }

 private:
  std::vector<std::pair<ChannelRef, ChannelCore::ObserverToken>> regs_;
};

}  // namespace

void ChannelObservers::add(ChannelRef channel, std::function<void()> wake) {
  auto token = channel->add_observer(std::move(wake));
  regs_.emplace_back(std::move(channel), token);
}

// ---------------------------------------------------------------------------
// Incremental engine
// ---------------------------------------------------------------------------

bool Select::index_before(const IndexEntry& a, const IndexEntry& b) {
  if (a.pri != b.pri) return a.pri < b.pri;
  return a.seq < b.seq;
}

void Select::push_entry(std::size_t gi, std::uint32_t slot, SlotCache& c,
                        std::int64_t pri) {
  if (!c.in_index) ++live_count_;
  // If a live entry existed (pri changed), it turns to garbage here: c.seq
  // moves on and lazy deletion discards the old key at pop or compaction.
  c.seq = next_seq_++;
  c.pri = pri;
  c.eligible = true;
  c.in_index = true;
  index_.push_back(IndexEntry{pri, c.seq,
                              static_cast<std::uint32_t>(gi), slot});
  std::push_heap(index_.begin(), index_.end(),
                 [](const IndexEntry& a, const IndexEntry& b) {
                   return index_before(b, a);
                 });
}

Select::SlotCache& Select::cache_of(const IndexEntry& e) {
  return state_[e.guard].slots[e.slot == kNoCacheSlot ? 0 : e.slot];
}

bool Select::entry_live(const IndexEntry& e) const {
  const GuardState& st = state_[e.guard];
  const SlotCache& c = st.slots[e.slot == kNoCacheSlot ? 0 : e.slot];
  return c.in_index && c.seq == e.seq;
}

bool Select::validate_top(Object* obj, const IndexEntry& e) const {
  const GuardRec& g = guards_[e.guard];
  switch (g.kind) {
    case Kind::kAccept:
    case Kind::kAwait: {
      // The cache can outlive the kernel event that retires a slot when the
      // guard last synced via full rescan (rescans visit current members
      // only); the kernel state is the ground truth at commit time.
      const Object::EntryCore& ec = obj->core(g.entry.index());
      const Object::Slot& s = ec.slots[e.slot];
      const auto want = g.kind == Kind::kAccept ? Object::SlotState::kAttached
                                                : Object::SlotState::kReady;
      const SlotCache& c = state_[e.guard].slots[e.slot];
      return s.state == want && s.call && s.call->id == c.key;
    }
    case Kind::kReceive:
    case Kind::kWhen:
      // Receive commits revalidate against the channel (take_front_if);
      // when-guards were re-evaluated in this very pass.
      return true;
  }
  return false;
}

void Select::consider_slot(std::size_t gi, Object* obj, std::size_t slot_idx,
                          bool force) {
  GuardRec& g = guards_[gi];
  GuardState& st = state_[gi];
  Object::EntryCore& e = obj->core(g.entry.index());
  const Object::Slot& s = e.slots[slot_idx];
  SlotCache& c = st.slots[slot_idx];
  const std::uint64_t call_id = s.call->id;

  if (!force && c.key == call_id) {
    // Cached evaluation of the same call's values: closures are pure in
    // their argument (the cacheable contract), so the verdict stands.
    // Re-insert only if the live entry was consumed out from under a still-
    // eligible candidate (e.g. a slot removed and re-attached with the same
    // call within one replay window — the removal retired the fresh entry).
    if (c.eligible && !c.in_index) {
      push_entry(gi, static_cast<std::uint32_t>(slot_idx), c, c.pri);
    }
    return;
  }

  bool eligible = false;
  std::int64_t pri = 0;
  if (g.kind == Kind::kAccept) {
    // View of the intercepted parameter prefix (scratch buffer: capacity is
    // reused across evaluations, no per-candidate allocation steady-state;
    // element copies are O(1) payload-refcount bumps, DESIGN.md §4.9).
    scratch_view_.assign(s.call->params.begin(),
                         s.call->params.begin() +
                             static_cast<std::ptrdiff_t>(e.icept_params));
    eligible = !g.when_v || g.when_v(scratch_view_);
    if (eligible) pri = g.pri_v ? g.pri_v(scratch_view_) : 0;
  } else {
    eligible = !g.when_v || g.when_v(s.mgr_results);
    if (eligible) pri = g.pri_v ? g.pri_v(s.mgr_results) : 0;
  }

  c.key = call_id;
  if (!eligible) {
    if (c.in_index) --live_count_;
    c.eligible = false;
    c.in_index = false;
    return;
  }
  if (c.in_index && c.eligible && c.pri == pri) {
    // Continuously eligible with unchanged pri: keep the entry and its seq,
    // preserving the candidate's place among equal-pri peers.
    return;
  }
  push_entry(gi, static_cast<std::uint32_t>(slot_idx), c, pri);
}

void Select::update_mono_cache(std::size_t gi, std::uint64_t key,
                               bool eligible, std::int64_t pri) {
  SlotCache& c = state_[gi].slots[0];
  c.key = key;
  if (!eligible) {
    if (c.in_index) --live_count_;
    c.eligible = false;
    c.in_index = false;
    return;
  }
  if (c.in_index && c.eligible && c.pri == pri) return;  // keep seq
  push_entry(gi, kNoCacheSlot, c, pri);
}

void Select::sync_guard(Object* obj, std::size_t gi, bool invalidated) {
  GuardRec& g = guards_[gi];
  GuardState& st = state_[gi];
  switch (g.kind) {
    case Kind::kAccept:
    case Kind::kAwait: {
      Object::EntryCore& e = obj->core(g.entry.index());
      Object::SlotQueue& q =
          g.kind == Kind::kAccept ? e.attached : e.ready;
      if (st.slots.size() < e.slots.size()) st.slots.resize(e.slots.size());
      if (g.kind == Kind::kAccept && g.compat_gate) {
        // Group occupancy as a cached guard dimension: the gate verdict is
        // keyed on the object's compat generation; unchanged gen => the
        // cached verdict stands with no recompute.
        if (!e.compat_participant) {
          raise(ErrorCode::kProtocolViolation,
                "compatible() accept guard on entry " + e.decl.name +
                    " without compatibility annotations");
        }
        const std::uint64_t cg = obj->compat_gen_;
        bool open = st.gate_open;
        if (!st.primed || st.compat_gen != cg || invalidated) {
          open = obj->compat_gate_open_locked(g.entry.index());
          st.compat_gen = cg;
        }
        if (!open) {
          if (st.gate_open || !st.primed) {
            // Transition open->closed (or first sync while closed): retire
            // this guard's live heap entries once. The cached per-call
            // verdicts stay, so the reopen rescan is a cheap re-add.
            for (SlotCache& c : st.slots) {
              if (c.in_index) {
                --live_count_;
                c.in_index = false;
              }
            }
          }
          st.gate_open = false;
          // Skip the journal while closed; the reopen path rescans members.
          st.src_gen = q.log_gen;
          st.primed = true;
          return;
        }
        if (!st.gate_open) {
          // Reopened: deltas were skipped while closed — full member rescan.
          st.gate_open = true;
          const bool rescan_force = g.always_reeval || invalidated;
          for (std::size_t i = q.front(); i != kNoSlot;
               i = e.slots[i].q_next) {
            consider_slot(gi, obj, i, rescan_force);
          }
          st.src_gen = q.log_gen;
          st.primed = true;
          return;
        }
        // Gate open and was open: fall through to the normal delta path.
      }
      const bool force = g.always_reeval || !st.primed || invalidated;
      if (!force) {
        if (st.src_gen == q.log_gen) return;  // source unchanged: all cached
        const std::uint64_t behind = q.log_gen - st.src_gen;
        if (behind <= Object::SlotQueue::kWindow) {
          // Replay exactly the membership deltas since the last sync.
          for (std::uint64_t p = st.src_gen; p != q.log_gen; ++p) {
            const Object::SlotDelta& d =
                q.log[p % Object::SlotQueue::kWindow];
            SlotCache& c = st.slots[d.slot];
            if (!d.added) {
              // Retire the live index entry only; keep the cached verdict.
              // `eligible` records the evaluation's outcome, not queue
              // membership — clearing it here would make a same-call re-add
              // later in this window hit the cache fast path with
              // eligible=false and never re-enter the index, leaving the
              // slot invisible until an unrelated external event (an
              // add/remove/add window occurs when the manager mixes select
              // with direct accept/await on the same entry).
              if (c.in_index) --live_count_;
              c.in_index = false;
              continue;
            }
            // The slot may have left the list again later in the window;
            // only evaluate content that is currently live for this guard.
            const auto want = g.kind == Kind::kAccept
                                  ? Object::SlotState::kAttached
                                  : Object::SlotState::kReady;
            if (e.slots[d.slot].state == want) {
              consider_slot(gi, obj, d.slot, /*force=*/false);
            }
          }
          st.src_gen = q.log_gen;
          st.primed = true;
          return;
        }
      }
      // Too far behind (or forced): full rescan of the current members.
      // Departed slots' stale entries are caught by validate_top at pop.
      for (std::size_t i = q.front(); i != kNoSlot; i = e.slots[i].q_next) {
        consider_slot(gi, obj, i, force);
      }
      st.src_gen = q.log_gen;
      st.primed = true;
      return;
    }
    case Kind::kReceive: {
      if (st.slots.empty()) st.slots.resize(1);
      const std::uint64_t fg = g.channel->front_gen();
      const bool force = g.always_reeval || !st.primed || invalidated;
      if (!force && st.src_gen == fg) {
        // Same front message; re-insert if the entry was consumed by a
        // commit that raced away.
        SlotCache& c = st.slots[0];
        if (c.eligible && !c.in_index) push_entry(gi, kNoCacheSlot, c, c.pri);
        return;
      }
      bool eligible = false;
      std::int64_t pri = 0;
      g.channel->peek_front([&](const ValueList& msg) {
        if (g.when_v && !g.when_v(msg)) return;
        eligible = true;
        pri = g.pri_v ? g.pri_v(msg) : 0;
      });
      update_mono_cache(gi, fg, eligible, pri);
      st.src_gen = fg;
      st.primed = true;
      return;
    }
    case Kind::kWhen: {
      if (st.slots.empty()) st.slots.resize(1);
      const bool eligible = g.when_b && g.when_b();
      const std::int64_t pri = (eligible && g.pri_b) ? g.pri_b() : 0;
      update_mono_cache(gi, 0, eligible, pri);
      st.primed = true;
      return;
    }
  }
}

void Select::compact_index() {
  // Lazy deletion leaves garbage keys in the heap; squeeze them out once
  // they dominate (amortized — live_count_ makes the trigger O(1)).
  if (index_.size() <= 64 || index_.size() <= 2 * live_count_) return;
  std::size_t w = 0;
  for (std::size_t r = 0; r < index_.size(); ++r) {
    if (entry_live(index_[r])) index_[w++] = index_[r];
  }
  index_.resize(w);
  std::make_heap(index_.begin(), index_.end(),
                 [](const IndexEntry& a, const IndexEntry& b) {
                   return index_before(b, a);
                 });
}

std::string Select::describe_guard(const GuardRec& g, Object* obj) {
  std::string desc;
  switch (g.kind) {
    case Kind::kAccept:
      desc = "accept " + obj->core(g.entry.index()).decl.name;
      break;
    case Kind::kAwait:
      desc = "await " + obj->core(g.entry.index()).decl.name;
      break;
    case Kind::kReceive:
      desc = "receive <channel>";
      break;
    case Kind::kWhen:
      desc = "when <cond>";
      break;
  }
  if (g.when_v) desc += " when(...)";
  if (g.pri_v || g.pri_b) desc += " pri(...)";
  if (g.compat_gate) desc += " compatible()";
  return desc;
}

Select::Fired Select::select_impl(Manager& m) {
  if (naive_polling_) return select_impl_naive(m);
  Object* obj = m.obj_;
  ChannelObservers observers;
  bool observers_registered = false;

  bool publish_guards = false;
  if (state_.size() != guards_.size()) {
    // First selection (or guards added since): start cold.
    state_.assign(guards_.size(), GuardState{});
    index_.clear();
    live_count_ = 0;
    publish_guards = true;
  }
  bool any_waitable = false;
  for (const auto& g : guards_) {
    if (g.kind != Kind::kWhen) any_waitable = true;
  }

  Object::ActivityScope activity(*obj, Object::kActSelectWait);
  for (;;) {
    // Epoch ticket taken before the kernel lock: any event signalled after
    // this point (call intake, body completion, channel send, external
    // invalidation, stop) makes the tail wait return immediately.
    support::EventCount::Ticket ticket(obj->mgr_wake_);
    bool need_observers = false;
    {
      std::unique_lock lock(obj->mu_);
      if (obj->stop_source_.stop_requested()) {
        raise(ErrorCode::kObjectStopped,
              "object " + obj->name() + " stopping");
      }
      obj->check_manager_abort();
      if (publish_guards) {
        // Snapshot the guard set BY VALUE into the object so the watchdog's
        // stall report can cite it after this Select is long gone.
        obj->guard_snapshot_.clear();
        obj->guard_snapshot_.reserve(guards_.size());
        for (const auto& g : guards_) {
          obj->guard_snapshot_.push_back(describe_guard(g, obj));
        }
        publish_guards = false;
      }
      obj->drain_intake_locked();

      // Loaded after the ticket: an invalidation bumped later signals the
      // event and the tail wait returns for a re-sync next pass.
      const std::uint64_t inval = obj->guard_inval_gen();
      const bool invalidated = inval != seen_inval_gen_;
      for (std::size_t gi = 0; gi < guards_.size(); ++gi) {
        sync_guard(obj, gi, invalidated);
      }
      seen_inval_gen_ = inval;
      compact_index();

      // Pick-best: pop until a live, kernel-confirmed entry surfaces.
      while (!index_.empty()) {
        std::pop_heap(index_.begin(), index_.end(),
                      [](const IndexEntry& a, const IndexEntry& b) {
                        return index_before(b, a);
                      });
        const IndexEntry top = index_.back();
        index_.pop_back();
        if (!entry_live(top)) continue;  // lazily deleted
        SlotCache& c = cache_of(top);
        c.in_index = false;  // consumed (or retired just below)
        --live_count_;
        if (!validate_top(obj, top)) {
          c.eligible = false;
          continue;
        }

        GuardRec& g = guards_[top.guard];
        Fired fired;
        fired.guard_idx = top.guard;
        switch (g.kind) {
          case Kind::kAccept: {
            Object::EntryCore& e = obj->core(g.entry.index());
            Object::Slot& s = e.slots[top.slot];
            e.attached.remove(e.slots, top.slot);
            s.state = Object::SlotState::kAccepted;
            ++e.accepts;
            obj->update_pending_locked(e);
            obj->trace(e, s.call->id, top.slot, CallPhase::kAccepted);
            // The only journal event since this guard's sync is our own
            // removal; absorb it so the next pass replays nothing.
            state_[top.guard].src_gen = e.attached.log_gen;
            fired.accepted.entry = g.entry.index();
            fired.accepted.slot = top.slot;
            fired.accepted.params.assign(
                s.call->params.begin(),
                s.call->params.begin() +
                    static_cast<std::ptrdiff_t>(e.icept_params));
            return fired;
          }
          case Kind::kAwait: {
            Object::EntryCore& e = obj->core(g.entry.index());
            Object::Slot& s = e.slots[top.slot];
            e.ready.remove(e.slots, top.slot);
            s.state = Object::SlotState::kAwaited;
            state_[top.guard].src_gen = e.ready.log_gen;
            fired.awaited.entry = g.entry.index();
            fired.awaited.slot = top.slot;
            fired.awaited.results = std::move(s.mgr_results);
            fired.awaited.failed = (s.body_error != nullptr);
            fired.awaited.abandoned = s.abandoned;
            fired.awaited.error = s.body_error;
            return fired;
          }
          case Kind::kReceive: {
            // Commit must revalidate: another receiver may have consumed
            // the message between the cached peek and now (channels are
            // point-to-point by convention, not enforcement).
            auto msg = g.channel->take_front_if([&](const ValueList& front) {
              return !g.when_v || g.when_v(front);
            });
            // Raced away: the front generation moved, so the guard re-syncs
            // next pass; meanwhile fall through to the next-best candidate.
            if (!msg) continue;
            fired.message = std::move(*msg);
            return fired;
          }
          case Kind::kWhen:
            return fired;
        }
      }

      if (!any_waitable) {
        raise(ErrorCode::kNoEligibleGuard,
              "select on object " + obj->name() +
                  ": no eligible guard and no event source to wait on");
      }

      if (!observers_registered) need_observers = true;
    }  // kernel lock released

    if (need_observers) {
      // Register channel wake-ups, then re-evaluate once: a message that
      // arrived before registration must not be missed. (Registration
      // bumps the channel's observer count, so sends from here on signal
      // mgr_wake_; the fresh ticket on the next iteration covers them.)
      for (auto& g : guards_) {
        if (g.kind == Kind::kReceive) {
          observers.add(g.channel, [obj] { obj->wake_manager(); });
        }
      }
      observers_registered = true;
      continue;
    }

    ticket.wait();
  }
}

// ---------------------------------------------------------------------------
// Naive strawman (experiment E9, and the differential-test baseline):
// rescan every guard and re-run every closure on every wakeup.
// ---------------------------------------------------------------------------

Select::Fired Select::select_impl_naive(Manager& m) {
  Object* obj = m.obj_;
  ChannelObservers observers;
  bool observers_registered = false;

  Object::ActivityScope activity(*obj, Object::kActSelectWait);
  for (;;) {
    support::EventCount::Ticket ticket(obj->mgr_wake_);
    bool need_observers = false;
    {
      std::unique_lock lock(obj->mu_);
      if (obj->stop_source_.stop_requested()) {
        raise(ErrorCode::kObjectStopped,
              "object " + obj->name() + " stopping");
      }
      obj->check_manager_abort();
      obj->drain_intake_locked();

      scratch_candidates_.clear();
      bool any_waitable = false;
      for (std::size_t gi = 0; gi < guards_.size(); ++gi) {
        GuardRec& g = guards_[gi];
        switch (g.kind) {
          case Kind::kAccept:
          case Kind::kAwait: {
            any_waitable = true;
            Object::EntryCore& e = obj->core(g.entry.index());
            if (g.kind == Kind::kAccept && g.compat_gate) {
              if (!e.compat_participant) {
                raise(ErrorCode::kProtocolViolation,
                      "compatible() accept guard on entry " + e.decl.name +
                          " without compatibility annotations");
              }
              // Naive parity: recompute the gate on every pass (the
              // incremental engine caches it keyed on compat_gen_).
              if (!obj->compat_gate_open_locked(g.entry.index())) break;
            }
            const auto want = g.kind == Kind::kAccept
                                  ? Object::SlotState::kAttached
                                  : Object::SlotState::kReady;
            // Deliberately wasteful O(N) scan over the whole procedure
            // array (experiment E9's strawman).
            for (std::size_t i = 0; i < e.slots.size(); ++i) {
              const Object::Slot& s = e.slots[i];
              if (s.state != want) continue;
              if (g.kind == Kind::kAccept) {
                scratch_view_.assign(
                    s.call->params.begin(),
                    s.call->params.begin() +
                        static_cast<std::ptrdiff_t>(e.icept_params));
                if (g.when_v && !g.when_v(scratch_view_)) continue;
                const std::int64_t pri =
                    g.pri_v ? g.pri_v(scratch_view_) : 0;
                scratch_candidates_.push_back(NaiveCandidate{gi, i, pri});
              } else {
                if (g.when_v && !g.when_v(s.mgr_results)) continue;
                const std::int64_t pri =
                    g.pri_v ? g.pri_v(s.mgr_results) : 0;
                scratch_candidates_.push_back(NaiveCandidate{gi, i, pri});
              }
            }
            break;
          }
          case Kind::kReceive: {
            any_waitable = true;
            bool eligible = false;
            std::int64_t pri = 0;
            g.channel->peek_front([&](const ValueList& msg) {
              if (g.when_v && !g.when_v(msg)) return;
              eligible = true;
              pri = g.pri_v ? g.pri_v(msg) : 0;
            });
            if (eligible) {
              scratch_candidates_.push_back(NaiveCandidate{gi, kNoSlot, pri});
            }
            break;
          }
          case Kind::kWhen: {
            if (g.when_b && g.when_b()) {
              const std::int64_t pri = g.pri_b ? g.pri_b() : 0;
              scratch_candidates_.push_back(NaiveCandidate{gi, kNoSlot, pri});
            }
            break;
          }
        }
      }

      if (!scratch_candidates_.empty()) {
        // Smallest pri wins (paper: "among the guarded commands that are
        // eligible for selection, one with the smallest pri value will be
        // selected"); ties rotate for fairness across guards.
        std::int64_t best = std::numeric_limits<std::int64_t>::max();
        for (const auto& c : scratch_candidates_) best = std::min(best, c.pri);
        scratch_tied_.clear();
        for (std::size_t i = 0; i < scratch_candidates_.size(); ++i) {
          if (scratch_candidates_[i].pri == best) scratch_tied_.push_back(i);
        }
        const NaiveCandidate chosen =
            scratch_candidates_[scratch_tied_[rotation_++ %
                                              scratch_tied_.size()]];
        GuardRec& g = guards_[chosen.guard_idx];

        Fired fired;
        fired.guard_idx = chosen.guard_idx;
        switch (g.kind) {
          case Kind::kAccept: {
            Object::EntryCore& e = obj->core(g.entry.index());
            Object::Slot& s = e.slots[chosen.slot];
            e.attached.remove(e.slots, chosen.slot);
            s.state = Object::SlotState::kAccepted;
            ++e.accepts;
            obj->update_pending_locked(e);
            obj->trace(e, s.call->id, chosen.slot, CallPhase::kAccepted);
            fired.accepted.entry = g.entry.index();
            fired.accepted.slot = chosen.slot;
            fired.accepted.params.assign(
                s.call->params.begin(),
                s.call->params.begin() +
                    static_cast<std::ptrdiff_t>(e.icept_params));
            return fired;
          }
          case Kind::kAwait: {
            Object::EntryCore& e = obj->core(g.entry.index());
            Object::Slot& s = e.slots[chosen.slot];
            e.ready.remove(e.slots, chosen.slot);
            s.state = Object::SlotState::kAwaited;
            fired.awaited.entry = g.entry.index();
            fired.awaited.slot = chosen.slot;
            fired.awaited.results = std::move(s.mgr_results);
            fired.awaited.failed = (s.body_error != nullptr);
            fired.awaited.abandoned = s.abandoned;
            fired.awaited.error = s.body_error;
            return fired;
          }
          case Kind::kReceive: {
            auto msg = g.channel->take_front_if([&](const ValueList& front) {
              return !g.when_v || g.when_v(front);
            });
            if (!msg) continue;  // raced away; re-evaluate from scratch
            fired.message = std::move(*msg);
            return fired;
          }
          case Kind::kWhen:
            return fired;
        }
      }

      if (!any_waitable) {
        raise(ErrorCode::kNoEligibleGuard,
              "select on object " + obj->name() +
                  ": no eligible guard and no event source to wait on");
      }

      if (!observers_registered) need_observers = true;
    }  // kernel lock released

    if (need_observers) {
      for (auto& g : guards_) {
        if (g.kind == Kind::kReceive) {
          observers.add(g.channel, [obj] { obj->wake_manager(); });
        }
      }
      observers_registered = true;
      continue;
    }

    ticket.wait();
  }
}

std::size_t Select::select(Manager& m) {
  m.assert_manager_thread("select");
  if (guards_.empty()) {
    raise(ErrorCode::kProtocolViolation, "select with no guards");
  }
  Fired fired = select_impl(m);
  // A fired guard is manager progress for the watchdog, whatever its kind.
  m.obj_->note_progress();
  GuardRec& g = guards_[fired.guard_idx];
  // Handlers run outside the kernel lock and may freely use the manager
  // primitives (the paper's `G => S` statement sequence).
  switch (g.kind) {
    case Kind::kAccept:
      if (g.on_accept) g.on_accept(std::move(fired.accepted));
      break;
    case Kind::kAwait:
      if (g.on_await) g.on_await(std::move(fired.awaited));
      break;
    case Kind::kReceive:
      if (g.on_receive) g.on_receive(std::move(fired.message));
      break;
    case Kind::kWhen:
      if (g.on_when) g.on_when();
      break;
  }
  return fired.guard_idx;
}

void Select::loop(Manager& m) {
  try {
    for (;;) {
      select(m);
    }
  } catch (const Error& e) {
    if (e.code() != ErrorCode::kObjectStopped) throw;
    // Normal termination: the loop runs until the object stops (the paper
    // uses no distributed-termination convention).
  }
}

}  // namespace alps
