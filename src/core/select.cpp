#include "core/select.h"

#include <algorithm>
#include <limits>

#include "core/error.h"
#include "core/object.h"

namespace alps {

Select::Select() = default;
Select::~Select() = default;

Select& Select::on(AcceptGuard g) {
  GuardRec rec;
  rec.kind = Kind::kAccept;
  rec.entry = g.entry;
  rec.when_v = std::move(g.when_fn);
  rec.pri_v = std::move(g.pri_fn);
  rec.on_accept = std::move(g.then_fn);
  guards_.push_back(std::move(rec));
  return *this;
}

Select& Select::on(AwaitGuard g) {
  GuardRec rec;
  rec.kind = Kind::kAwait;
  rec.entry = g.entry;
  rec.when_v = std::move(g.when_fn);
  rec.pri_v = std::move(g.pri_fn);
  rec.on_await = std::move(g.then_fn);
  guards_.push_back(std::move(rec));
  return *this;
}

Select& Select::on(ReceiveGuard g) {
  GuardRec rec;
  rec.kind = Kind::kReceive;
  rec.channel = std::move(g.channel);
  rec.when_v = std::move(g.when_fn);
  rec.pri_v = std::move(g.pri_fn);
  rec.on_receive = std::move(g.then_fn);
  guards_.push_back(std::move(rec));
  return *this;
}

Select& Select::on(WhenGuard g) {
  GuardRec rec;
  rec.kind = Kind::kWhen;
  rec.when_b = std::move(g.cond);
  rec.pri_b = std::move(g.pri_fn);
  rec.on_when = std::move(g.then_fn);
  guards_.push_back(std::move(rec));
  return *this;
}

Select& Select::use_naive_polling(bool enable) {
  naive_polling_ = enable;
  return *this;
}

namespace {

/// RAII registration of a wake-up observer on every channel guard: the
/// observer signals the object's waiter-counted manager event, making
/// channel receive guards event-driven (and nearly free when the manager
/// is not actually parked in select).
class ChannelObservers {
 public:
  ChannelObservers() = default;
  ~ChannelObservers() { clear(); }

  void add(ChannelRef channel, Object* obj);
  void clear() {
    for (auto& [chan, token] : regs_) chan->remove_observer(token);
    regs_.clear();
  }
  bool empty() const { return regs_.empty(); }

 private:
  std::vector<std::pair<ChannelRef, ChannelCore::ObserverToken>> regs_;
};

}  // namespace

void ChannelObservers::add(ChannelRef channel, Object* obj) {
  auto token = channel->add_observer([obj] { obj->notify_external_event(); });
  regs_.emplace_back(std::move(channel), token);
}

Select::Fired Select::select_impl(Manager& m) {
  Object* obj = m.obj_;
  ChannelObservers observers;
  bool observers_registered = false;

  struct Candidate {
    std::size_t guard_idx = 0;
    std::size_t slot = kNoSlot;
    std::int64_t pri = 0;
  };
  std::vector<Candidate> candidates;

  for (;;) {
    // Epoch ticket taken before the kernel lock: any event signalled after
    // this point (call intake, body completion, channel send, stop) makes
    // the tail wait return immediately instead of sleeping.
    support::EventCount::Ticket ticket(obj->mgr_wake_);
    bool need_observers = false;
    {
    std::unique_lock lock(obj->mu_);
    if (obj->stop_source_.stop_requested()) {
      raise(ErrorCode::kObjectStopped, "object " + obj->name() + " stopping");
    }
    obj->drain_intake_locked();

    candidates.clear();
    bool any_waitable = false;
    for (std::size_t gi = 0; gi < guards_.size(); ++gi) {
      GuardRec& g = guards_[gi];
      switch (g.kind) {
        case Kind::kAccept: {
          any_waitable = true;
          Object::EntryCore& e = obj->core(g.entry.index());
          auto consider = [&](std::size_t slot_idx) {
            const Object::Slot& s = e.slots[slot_idx];
            // View of the intercepted parameter prefix.
            ValueList view(s.call->params.begin(),
                           s.call->params.begin() +
                               static_cast<std::ptrdiff_t>(e.icept_params));
            if (g.when_v && !g.when_v(view)) return;
            const std::int64_t pri = g.pri_v ? g.pri_v(view) : 0;
            candidates.push_back(Candidate{gi, slot_idx, pri});
          };
          if (naive_polling_) {
            // Deliberately wasteful O(N) scan over the whole procedure
            // array (experiment E9's strawman).
            for (std::size_t i = 0; i < e.slots.size(); ++i) {
              if (e.slots[i].state == Object::SlotState::kAttached) {
                consider(i);
              }
            }
          } else {
            for (std::size_t slot_idx : e.attached) consider(slot_idx);
          }
          break;
        }
        case Kind::kAwait: {
          any_waitable = true;
          Object::EntryCore& e = obj->core(g.entry.index());
          auto consider = [&](std::size_t slot_idx) {
            const Object::Slot& s = e.slots[slot_idx];
            if (g.when_v && !g.when_v(s.mgr_results)) return;
            const std::int64_t pri = g.pri_v ? g.pri_v(s.mgr_results) : 0;
            candidates.push_back(Candidate{gi, slot_idx, pri});
          };
          if (naive_polling_) {
            for (std::size_t i = 0; i < e.slots.size(); ++i) {
              if (e.slots[i].state == Object::SlotState::kReady) consider(i);
            }
          } else {
            for (std::size_t slot_idx : e.ready) consider(slot_idx);
          }
          break;
        }
        case Kind::kReceive: {
          any_waitable = true;
          bool eligible = false;
          std::int64_t pri = 0;
          g.channel->peek_front([&](const ValueList& msg) {
            if (g.when_v && !g.when_v(msg)) return;
            eligible = true;
            pri = g.pri_v ? g.pri_v(msg) : 0;
          });
          if (eligible) candidates.push_back(Candidate{gi, kNoSlot, pri});
          break;
        }
        case Kind::kWhen: {
          if (g.when_b && g.when_b()) {
            const std::int64_t pri = g.pri_b ? g.pri_b() : 0;
            candidates.push_back(Candidate{gi, kNoSlot, pri});
          }
          break;
        }
      }
    }

    if (!candidates.empty()) {
      // Smallest pri wins (paper: "among the guarded commands that are
      // eligible for selection, one with the smallest pri value will be
      // selected"); ties rotate for fairness across guards.
      std::int64_t best = std::numeric_limits<std::int64_t>::max();
      for (const auto& c : candidates) best = std::min(best, c.pri);
      std::vector<std::size_t> tied;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].pri == best) tied.push_back(i);
      }
      const Candidate chosen = candidates[tied[rotation_++ % tied.size()]];
      GuardRec& g = guards_[chosen.guard_idx];

      Fired fired;
      fired.guard_idx = chosen.guard_idx;
      switch (g.kind) {
        case Kind::kAccept: {
          Object::EntryCore& e = obj->core(g.entry.index());
          Object::Slot& s = e.slots[chosen.slot];
          auto it = std::find(e.attached.begin(), e.attached.end(), chosen.slot);
          e.attached.erase(it);
          s.state = Object::SlotState::kAccepted;
          ++e.accepts;
          obj->update_pending_locked(e);
          obj->trace(e, s.call->id, chosen.slot, CallPhase::kAccepted);
          fired.accepted.entry = g.entry.index();
          fired.accepted.slot = chosen.slot;
          fired.accepted.params.assign(
              s.call->params.begin(),
              s.call->params.begin() +
                  static_cast<std::ptrdiff_t>(e.icept_params));
          return fired;
        }
        case Kind::kAwait: {
          Object::EntryCore& e = obj->core(g.entry.index());
          Object::Slot& s = e.slots[chosen.slot];
          auto it = std::find(e.ready.begin(), e.ready.end(), chosen.slot);
          e.ready.erase(it);
          s.state = Object::SlotState::kAwaited;
          fired.awaited.entry = g.entry.index();
          fired.awaited.slot = chosen.slot;
          fired.awaited.results = std::move(s.mgr_results);
          fired.awaited.failed = (s.body_error != nullptr);
          return fired;
        }
        case Kind::kReceive: {
          // Commit must revalidate: in principle another receiver could have
          // consumed the message between peek and now (channels are
          // point-to-point by convention, not enforcement).
          auto msg = g.channel->take_front_if([&](const ValueList& front) {
            return !g.when_v || g.when_v(front);
          });
          if (!msg) continue;  // raced away; re-evaluate from scratch
          fired.message = std::move(*msg);
          return fired;
        }
        case Kind::kWhen:
          return fired;
      }
    }

    if (!any_waitable) {
      raise(ErrorCode::kNoEligibleGuard,
            "select on object " + obj->name() +
                ": no eligible guard and no event source to wait on");
    }

    if (!observers_registered) need_observers = true;
    }  // kernel lock released

    if (need_observers) {
      // Register channel wake-ups, then re-evaluate once: a message that
      // arrived before registration must not be missed. (Registration
      // bumps the channel's observer count, so sends from here on signal
      // mgr_wake_; the fresh ticket on the next iteration covers them.)
      for (auto& g : guards_) {
        if (g.kind == Kind::kReceive) observers.add(g.channel, obj);
      }
      observers_registered = true;
      continue;
    }

    ticket.wait();
  }
}

std::size_t Select::select(Manager& m) {
  m.assert_manager_thread("select");
  if (guards_.empty()) {
    raise(ErrorCode::kProtocolViolation, "select with no guards");
  }
  Fired fired = select_impl(m);
  GuardRec& g = guards_[fired.guard_idx];
  // Handlers run outside the kernel lock and may freely use the manager
  // primitives (the paper's `G => S` statement sequence).
  switch (g.kind) {
    case Kind::kAccept:
      if (g.on_accept) g.on_accept(std::move(fired.accepted));
      break;
    case Kind::kAwait:
      if (g.on_await) g.on_await(std::move(fired.awaited));
      break;
    case Kind::kReceive:
      if (g.on_receive) g.on_receive(std::move(fired.message));
      break;
    case Kind::kWhen:
      if (g.on_when) g.on_when();
      break;
  }
  return fired.guard_idx;
}

void Select::loop(Manager& m) {
  try {
    for (;;) {
      select(m);
    }
  } catch (const Error& e) {
    if (e.code() != ErrorCode::kObjectStopped) throw;
    // Normal termination: the loop runs until the object stops (the paper
    // uses no distributed-termination convention).
  }
}

}  // namespace alps
