// Call tracing and per-entry latency decomposition.
//
// §2.3: the manager "provides a facility for pre- and post-processing of
// entry calls which can be used not only to implement scheduling but also to
// monitor the object". This module is the kernel-side half of that story: an
// optional tracer observes every lifecycle transition of every call, and
// TraceCollector turns the transitions into the decomposition operators care
// about — time-to-attach (array contention), time-to-accept (manager
// scheduling delay), service time, and time-to-finish (manager endorsement
// delay).
//
//   TraceCollector collector;
//   object.set_tracer(&collector);
//   ... workload ...
//   auto report = collector.report("Read");
//   report.accept_wait.percentile(0.99);
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/stats.h"

namespace alps {

enum class CallPhase : std::uint8_t {
  kArrived = 0,   ///< invocation reached the object
  kAttached = 1,  ///< occupies a hidden-array slot
  kAccepted = 2,  ///< manager executed accept
  kStarted = 3,   ///< body launched (start)
  kReady = 4,     ///< body returned; ready to terminate
  kFinished = 5,  ///< manager executed finish; caller completed
  kFailed = 6,    ///< completed with an error (any stage)
  kCombined = 7,  ///< answered by combining (no body)
  /// start_compatible hit an incompatible in-flight group: the call is
  /// parked kernel-side (multiactive scheduling, DESIGN.md §4.8). Always
  /// followed by kStarted when the conflict drains — or a terminal kFailed.
  kDeferred = 8,
};

const char* to_string(CallPhase phase);

struct TraceEvent {
  std::string entry;
  std::uint64_t call_id = 0;
  std::size_t slot = static_cast<std::size_t>(-1);
  CallPhase phase = CallPhase::kArrived;
  /// On kStarted events from the compat path: in-flight multiactive bodies
  /// including this one (>= 2 means the start realized intra-object
  /// parallelism). 0 on every other event.
  std::size_t concurrency = 0;
  std::chrono::steady_clock::time_point at;
};

/// Watchdog diagnostic: a snapshot of a stalled object, emitted through
/// Tracer::on_stall when the manager has made no progress past the stall
/// threshold while calls are pending. All strings are copied by value — the
/// report stays valid after the object (or its current Select) is gone.
struct StallReport {
  std::string object;
  /// What the manager thread was last seen doing: "user-code",
  /// "accept-wait", "await-wait", "select-wait", or "down".
  const char* manager_activity = "user-code";
  std::chrono::milliseconds stalled_for{0};
  bool escalated = false;  ///< watchdog aborted the manager for this stall

  struct EntryRow {
    std::string name;
    std::size_t pending = 0;   ///< attached + overflow + in intake (#P)
    std::size_t attached = 0;  ///< occupying a hidden-array slot, unaccepted
    std::size_t accepted = 0;
    std::size_t running = 0;
    std::size_t ready = 0;
    std::size_t awaited = 0;
    std::size_t deferred = 0;  ///< parked by the compat scheduler
  };
  std::vector<EntryRow> entries;

  /// Guard descriptions of the manager's most recent select (empty if the
  /// manager never reached a select).
  std::vector<std::string> guards;

  std::string summary() const;
};

/// Interface the kernel calls on every transition. Implementations must be
/// thread-safe and fast; they run on callers' threads, the manager thread
/// and worker threads, sometimes under the object's kernel lock — a tracer
/// must never call back into kernel operations.
class Tracer {
 public:
  virtual ~Tracer() = default;
  virtual void on_event(const TraceEvent& event) = 0;

  /// Watchdog stall diagnostic; called at most once per stall episode, from
  /// the object's supervisor thread, outside the kernel lock. Default no-op
  /// so existing tracers are unaffected.
  virtual void on_stall(const StallReport& report) { (void)report; }
};

/// Aggregating tracer: per-entry counts and latency histograms for each
/// lifecycle leg.
class TraceCollector final : public Tracer {
 public:
  struct EntryReport {
    std::uint64_t arrived = 0;
    std::uint64_t finished = 0;
    std::uint64_t failed = 0;
    std::uint64_t combined = 0;
    /// Terminal events whose call_id had no pending arrival (e.g. the tracer
    /// was attached mid-call, or the call failed before kArrived). Counted —
    /// never silently dropped — but without latency samples, since there is
    /// no arrival timestamp to measure from.
    std::uint64_t unmatched = 0;
    /// Pending arrivals discarded by flush_pending() (calls abandoned
    /// without a terminal event, e.g. object torn down mid-call).
    std::uint64_t abandoned = 0;
    /// Arrivals still awaiting their terminal event at snapshot time.
    /// Reconciliation invariant for any quiescent or live snapshot:
    ///   arrived + unmatched == finished + failed + combined
    ///                          + still_pending + abandoned
    /// The multiactive counters below are covered by the same identity:
    /// kDeferred and concurrency-annotated kStarted are non-terminal
    /// waypoints of calls already counted in `arrived`, so
    ///   deferred <= arrived + unmatched   and every deferred call still
    /// reaches exactly one terminal event (tests cross-check `deferred` and
    /// `concurrent_starts` against the kernel's EntryStats counters).
    std::uint64_t still_pending = 0;
    /// Calls parked by the compat scheduler (kDeferred events).
    std::uint64_t deferred = 0;
    /// Starts that overlapped >=1 other in-flight multiactive body
    /// (kStarted events with concurrency >= 2).
    std::uint64_t concurrent_starts = 0;
    support::Histogram attach_wait;   ///< arrive → attach
    support::Histogram accept_wait;   ///< attach → accept
    support::Histogram start_delay;   ///< accept → start
    support::Histogram service_time;  ///< start → ready
    support::Histogram finish_delay;  ///< ready → finish
    support::Histogram total_latency; ///< arrive → finish/fail/combine
    support::Histogram defer_wait;    ///< deferred → started (compat stall)
  };

  void on_event(const TraceEvent& event) override;

  /// Snapshot of one entry's aggregates (default-empty if never seen).
  EntryReport report(const std::string& entry) const;

  std::vector<std::string> entries() const;

  /// Human-readable multi-line dump of all entries. Built under a single
  /// lock acquisition, so the counters of different entries are a consistent
  /// snapshot (no torn reads between per-entry locks).
  std::string summary() const;

  /// Discards all pending (non-terminated) call timestamps, folding them
  /// into each entry's `abandoned` count. Call after tearing down traced
  /// objects so abandoned calls do not linger as still_pending forever.
  /// Returns the number of calls flushed.
  std::size_t flush_pending();

  void reset();

 private:
  struct Pending {
    std::chrono::steady_clock::time_point arrived, attached, accepted, started,
        ready, deferred;
  };

  struct EntryState {
    EntryReport report;
    std::map<std::uint64_t, Pending> pending;  // call_id → timestamps
  };

  mutable std::mutex mu_;
  std::map<std::string, EntryState> entries_;
};

/// Recording tracer: keeps the raw event list (tests, debugging).
class TraceRecorder final : public Tracer {
 public:
  void on_event(const TraceEvent& event) override {
    std::scoped_lock lock(mu_);
    events_.push_back(event);
  }

  std::vector<TraceEvent> events() const {
    std::scoped_lock lock(mu_);
    return events_;
  }

  void clear() {
    std::scoped_lock lock(mu_);
    events_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

}  // namespace alps
