#include "core/value.h"

#include <cstdio>
#include <functional>

#include "core/error.h"
#include "support/stats.h"

namespace alps {

const std::string& StringPayload::str() const {
  std::call_once(once_, [this] {
    if (str_ != nullptr) return;  // string-backed from construction
    // Frame-backed: the one deliberate copy, on first as_string() — decode
    // itself stayed zero-copy (bytes_referenced); this materialization is
    // what bytes_copied now counts for aliased strings.
    str_ = std::make_shared<const std::string>(
        reinterpret_cast<const char*>(bytes_.data()), bytes_.size());
    support::data_plane().bytes_copied.add(bytes_.size());
  });
  return *str_;
}

Value Value::aliased_string(Buffer bytes) {
  Value v;
  v.v_ = std::make_shared<const StringPayload>(std::move(bytes));
  return v;
}

const char* to_string(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNil: return "nil";
    case ValueKind::kBool: return "bool";
    case ValueKind::kInt: return "int";
    case ValueKind::kReal: return "real";
    case ValueKind::kString: return "string";
    case ValueKind::kBlob: return "blob";
    case ValueKind::kList: return "list";
    case ValueKind::kChannel: return "channel";
  }
  return "?";
}

namespace {
[[noreturn]] void kind_error(ValueKind want, ValueKind got) {
  raise(ErrorCode::kTypeMismatch, std::string("expected ") + to_string(want) +
                                      ", got " + to_string(got));
}
}  // namespace

bool Value::as_bool() const {
  if (auto* p = std::get_if<bool>(&v_)) return *p;
  kind_error(ValueKind::kBool, kind());
}

std::int64_t Value::as_int() const {
  if (auto* p = std::get_if<std::int64_t>(&v_)) return *p;
  kind_error(ValueKind::kInt, kind());
}

double Value::as_real() const {
  if (auto* p = std::get_if<double>(&v_)) return *p;
  if (auto* p = std::get_if<std::int64_t>(&v_)) {
    return static_cast<double>(*p);
  }
  kind_error(ValueKind::kReal, kind());
}

const std::string& Value::as_string() const {
  if (auto* p = std::get_if<std::shared_ptr<const StringPayload>>(&v_)) {
    return (*p)->str();
  }
  kind_error(ValueKind::kString, kind());
}

std::string_view Value::string_view() const {
  if (auto* p = std::get_if<std::shared_ptr<const StringPayload>>(&v_)) {
    return (*p)->view();
  }
  kind_error(ValueKind::kString, kind());
}

Buffer Value::string_bytes() const {
  if (auto* p = std::get_if<std::shared_ptr<const StringPayload>>(&v_)) {
    return (*p)->bytes();
  }
  kind_error(ValueKind::kString, kind());
}

const Buffer& Value::as_blob() const {
  if (auto* p = std::get_if<Buffer>(&v_)) return *p;
  kind_error(ValueKind::kBlob, kind());
}

std::shared_ptr<const std::string> Value::shared_string() const {
  if (auto* p = std::get_if<std::shared_ptr<const StringPayload>>(&v_)) {
    return (*p)->shared();
  }
  return nullptr;
}

const ValueList& Value::as_list() const {
  if (auto* p = std::get_if<ValueList>(&v_)) return *p;
  kind_error(ValueKind::kList, kind());
}

ValueList& Value::as_list() {
  if (auto* p = std::get_if<ValueList>(&v_)) return *p;
  kind_error(ValueKind::kList, kind());
}

const ChannelRef& Value::as_channel() const {
  if (auto* p = std::get_if<ChannelRef>(&v_)) return *p;
  kind_error(ValueKind::kChannel, kind());
}

bool Value::operator==(const Value& other) const {
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case ValueKind::kNil: return true;
    case ValueKind::kBool: return std::get<bool>(v_) == std::get<bool>(other.v_);
    case ValueKind::kInt:
      return std::get<std::int64_t>(v_) == std::get<std::int64_t>(other.v_);
    case ValueKind::kReal:
      return std::get<double>(v_) == std::get<double>(other.v_);
    case ValueKind::kString: return string_view() == other.string_view();
    case ValueKind::kBlob:
      return std::get<Buffer>(v_) == std::get<Buffer>(other.v_);
    case ValueKind::kList:
      return std::get<ValueList>(v_) == std::get<ValueList>(other.v_);
    case ValueKind::kChannel:
      return std::get<ChannelRef>(v_) == std::get<ChannelRef>(other.v_);
  }
  return false;
}

std::string Value::to_string() const {
  char buf[64];
  switch (kind()) {
    case ValueKind::kNil: return "nil";
    case ValueKind::kBool: return std::get<bool>(v_) ? "true" : "false";
    case ValueKind::kInt:
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(std::get<std::int64_t>(v_)));
      return buf;
    case ValueKind::kReal:
      std::snprintf(buf, sizeof buf, "%g", std::get<double>(v_));
      return buf;
    case ValueKind::kString:
      return "\"" + std::string(string_view()) + "\"";
    case ValueKind::kBlob:
      std::snprintf(buf, sizeof buf, "<blob:%zu>",
                    std::get<Buffer>(v_).size());
      return buf;
    case ValueKind::kList: return alps::to_string(std::get<ValueList>(v_));
    case ValueKind::kChannel:
      std::snprintf(buf, sizeof buf, "<chan@%p>",
                    static_cast<const void*>(std::get<ChannelRef>(v_).get()));
      return buf;
  }
  return "?";
}

std::size_t Value::hash() const {
  const std::size_t tag = static_cast<std::size_t>(kind()) * 0x9e3779b97f4a7c15ull;
  auto mix = [tag](std::size_t h) { return tag ^ (h + 0x9e3779b9 + (tag << 6)); };
  switch (kind()) {
    case ValueKind::kNil: return mix(0);
    case ValueKind::kBool: return mix(std::get<bool>(v_) ? 1 : 0);
    case ValueKind::kInt:
      return mix(std::hash<std::int64_t>{}(std::get<std::int64_t>(v_)));
    case ValueKind::kReal:
      return mix(std::hash<double>{}(std::get<double>(v_)));
    case ValueKind::kString:
      // std::hash<string_view> matches std::hash<string> on equal content.
      return mix(std::hash<std::string_view>{}(string_view()));
    case ValueKind::kBlob: {
      std::size_t h = 1469598103934665603ull;
      for (auto b : std::get<Buffer>(v_)) h = (h ^ b) * 1099511628211ull;
      return mix(h);
    }
    case ValueKind::kList: {
      std::size_t h = 0;
      for (const auto& v : std::get<ValueList>(v_)) {
        h = h * 31 + v.hash();
      }
      return mix(h);
    }
    case ValueKind::kChannel:
      return mix(std::hash<const void*>{}(std::get<ChannelRef>(v_).get()));
  }
  return 0;
}

std::string to_string(const ValueList& list) {
  std::string out = "[";
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i) out += ", ";
    out += list[i].to_string();
  }
  out += "]";
  return out;
}

}  // namespace alps
