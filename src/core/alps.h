// Umbrella header for the ALPS runtime library.
//
// Quick tour (see README.md for the full story):
//
//   alps::Object          an object: shared data + entry procedures (§2.2)
//   Object::define_entry  the definition part users see
//   Object::implement     the implementation part (hidden arrays, §2.5)
//   Object::set_manager   the manager process + intercepts clause (§2.3)
//   alps::Manager         accept / start / await / finish / execute,
//                         combining (§2.7), hidden params/results (§2.8)
//   alps::Select          nondeterministic select & loop with acceptance
//                         conditions and run-time priorities (§2.4)
//   alps::make_channel    asynchronous point-to-point channels (§2.1.2)
//   alps::par / par_for   structured parallel execution (§2.1.1)
//   alps::typed::*        statically typed façade over the kernel
#pragma once

#include "core/call.h"
#include "core/channel.h"
#include "core/entry.h"
#include "core/error.h"
#include "core/manager.h"
#include "core/object.h"
#include "core/par.h"
#include "core/select.h"
#include "core/typed.h"
#include "core/value.h"
