// alps::Value — the dynamically typed value system of the ALPS kernel.
//
// The paper's kernel was written in C and "can be used directly from other
// languages like C" (§4); parameters and results flow through it as untyped
// lists, which is also what makes the paper's "initial subsequence of the
// parameter list" interception semantics (§2.6) natural to express. This
// reproduction keeps that shape: the kernel moves ValueLists, and a typed
// C++ façade (core/typed.h) provides compile-time convenience on top.
//
// A Value is one of: nil, bool, int (64-bit), real (double), string, blob,
// list (vector<Value>), or a channel reference (§2.1.2 allows channels to be
// passed as procedure parameters and message values).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace alps {

class ChannelCore;
using ChannelRef = std::shared_ptr<ChannelCore>;

class Value;
using ValueList = std::vector<Value>;
using Blob = std::vector<std::uint8_t>;

enum class ValueKind : std::uint8_t {
  kNil = 0,
  kBool = 1,
  kInt = 2,
  kReal = 3,
  kString = 4,
  kBlob = 5,
  kList = 6,
  kChannel = 7,
};

const char* to_string(ValueKind kind);

class Value {
 public:
  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : v_(b) {}
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}
  Value(unsigned i) : v_(static_cast<std::int64_t>(i)) {}
  Value(long i) : v_(static_cast<std::int64_t>(i)) {}
  Value(long long i) : v_(static_cast<std::int64_t>(i)) {}
  Value(unsigned long i) : v_(static_cast<std::int64_t>(i)) {}
  Value(unsigned long long i) : v_(static_cast<std::int64_t>(i)) {}
  Value(double d) : v_(d) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Blob b) : v_(std::move(b)) {}
  Value(ValueList l) : v_(std::move(l)) {}
  Value(ChannelRef c) : v_(std::move(c)) {}

  ValueKind kind() const { return static_cast<ValueKind>(v_.index()); }

  bool is_nil() const { return kind() == ValueKind::kNil; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_real() const { return kind() == ValueKind::kReal; }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_blob() const { return kind() == ValueKind::kBlob; }
  bool is_list() const { return kind() == ValueKind::kList; }
  bool is_channel() const { return kind() == ValueKind::kChannel; }

  // Checked accessors; throw Error(kTypeMismatch) on kind mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  /// Accepts kInt or kReal (ints widen).
  double as_real() const;
  const std::string& as_string() const;
  const Blob& as_blob() const;
  const ValueList& as_list() const;
  ValueList& as_list();
  const ChannelRef& as_channel() const;

  /// Structural equality; channels compare by identity.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Debug rendering, e.g. `["abc", 42, <chan#3>]`.
  std::string to_string() const;

  std::size_t hash() const;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string, Blob,
               ValueList, ChannelRef>
      v_;
};

/// Convenience builder: vals(1, "x", true) -> ValueList.
template <class... Ts>
ValueList vals(Ts&&... ts) {
  ValueList out;
  out.reserve(sizeof...(Ts));
  (out.emplace_back(std::forward<Ts>(ts)), ...);
  return out;
}

std::string to_string(const ValueList& list);

}  // namespace alps
