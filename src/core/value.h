// alps::Value — the dynamically typed value system of the ALPS kernel.
//
// The paper's kernel was written in C and "can be used directly from other
// languages like C" (§4); parameters and results flow through it as untyped
// lists, which is also what makes the paper's "initial subsequence of the
// parameter list" interception semantics (§2.6) natural to express. This
// reproduction keeps that shape: the kernel moves ValueLists, and a typed
// C++ façade (core/typed.h) provides compile-time convenience on top.
//
// A Value is one of: nil, bool, int (64-bit), real (double), string, blob,
// list (vector<Value>), or a channel reference (§2.1.2 allows channels to be
// passed as procedure parameters and message values).
//
// Payload sharing (DESIGN.md §4.9): string and blob payloads are stored
// behind refcounted immutable storage (StringPayload / Buffer), so copying a
// Value — and therefore a ValueList — costs O(participants), not O(bytes).
// A string Value may even be a zero-copy window into a received frame
// (Value::aliased_string): string_view()/string_bytes() never copy, and
// as_string() still returns a const std::string& by materializing the
// std::string form once, on first use. There are no mutating string/blob
// accessors, so sharing is invisible to kernel and application code. The one
// mutable accessor, as_list()&, edits the list spine held inline in this
// Value; shared payloads referenced by its elements stay immutable.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/buffer.h"

namespace alps {

class ChannelCore;
using ChannelRef = std::shared_ptr<ChannelCore>;

class Value;
using ValueList = std::vector<Value>;

enum class ValueKind : std::uint8_t {
  kNil = 0,
  kBool = 1,
  kInt = 2,
  kReal = 3,
  kString = 4,
  kBlob = 5,
  kList = 6,
  kChannel = 7,
};

const char* to_string(ValueKind kind);

/// Shared storage behind a string Value. Two forms, one interface:
///   * string-backed — constructed from a std::string; `bytes()` is a
///     zero-copy window over the shared string.
///   * frame-backed — constructed from a Buffer slice of a received frame
///     (decode aliasing, DESIGN.md §4.9); `str()` materializes the
///     std::string form once, on first use (counted in bytes_copied).
/// Always held behind a shared_ptr; materialization is call_once-guarded so
/// concurrent as_string() on shared Values is safe.
class StringPayload {
 public:
  explicit StringPayload(std::string s)
      : str_(std::make_shared<const std::string>(std::move(s))),
        bytes_(Buffer::from_shared(str_)) {}
  explicit StringPayload(std::shared_ptr<const std::string> s)
      : str_(s ? std::move(s) : std::make_shared<const std::string>()),
        bytes_(Buffer::from_shared(str_)) {}
  explicit StringPayload(Buffer frame_bytes) : bytes_(std::move(frame_bytes)) {}

  /// The payload bytes, either form, no materialization.
  std::string_view view() const {
    return {reinterpret_cast<const char*>(bytes_.data()), bytes_.size()};
  }
  /// The refcounted storage window (re-encode references this, copy-free).
  const Buffer& bytes() const { return bytes_; }

  /// The std::string form; frame-backed payloads copy once, here.
  const std::string& str() const;
  std::shared_ptr<const std::string> shared() const {
    str();
    return str_;
  }

 private:
  mutable std::shared_ptr<const std::string> str_;  // null until materialized
  Buffer bytes_;
  mutable std::once_flag once_;
};

class Value {
 public:
  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : v_(b) {}
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}
  Value(unsigned i) : v_(static_cast<std::int64_t>(i)) {}
  Value(long i) : v_(static_cast<std::int64_t>(i)) {}
  Value(long long i) : v_(static_cast<std::int64_t>(i)) {}
  Value(unsigned long i) : v_(static_cast<std::int64_t>(i)) {}
  Value(unsigned long long i) : v_(static_cast<std::int64_t>(i)) {}
  Value(double d) : v_(d) {}
  Value(const char* s)
      : v_(std::make_shared<const StringPayload>(std::string(s))) {}
  Value(std::string s)
      : v_(std::make_shared<const StringPayload>(std::move(s))) {}
  /// Shares an already-shared string's storage (a null pointer becomes the
  /// empty string — string Values always hold storage).
  Value(std::shared_ptr<const std::string> s)
      : v_(std::make_shared<const StringPayload>(std::move(s))) {}
  Value(Blob b) : v_(Buffer::adopt(std::move(b))) {}
  /// Blob value sharing the Buffer's storage (zero-copy).
  Value(Buffer b) : v_(std::move(b)) {}
  Value(ValueList l) : v_(std::move(l)) {}
  Value(ChannelRef c) : v_(std::move(c)) {}

  /// A string Value aliasing `bytes` (typically a slice of a received
  /// frame) without copying. as_string() materializes on demand; the view
  /// accessors never do.
  static Value aliased_string(Buffer bytes);

  ValueKind kind() const { return static_cast<ValueKind>(v_.index()); }

  bool is_nil() const { return kind() == ValueKind::kNil; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_real() const { return kind() == ValueKind::kReal; }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_blob() const { return kind() == ValueKind::kBlob; }
  bool is_list() const { return kind() == ValueKind::kList; }
  bool is_channel() const { return kind() == ValueKind::kChannel; }

  // Checked accessors; throw Error(kTypeMismatch) on kind mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  /// Accepts kInt or kReal (ints widen).
  double as_real() const;
  const std::string& as_string() const;
  /// The blob payload as a shared immutable slice; Buffer::to_blob()
  /// materializes an independent std::vector copy when one is needed.
  const Buffer& as_blob() const;
  const ValueList& as_list() const;
  ValueList& as_list();
  const ChannelRef& as_channel() const;

  /// The string payload's bytes without materializing a std::string —
  /// frame-aliased strings stay zero-copy. Throws on kind mismatch.
  std::string_view string_view() const;

  /// The string payload's refcounted storage window — lets the codec
  /// reference strings on the wire instead of copying them (both forms).
  /// Throws on kind mismatch.
  Buffer string_bytes() const;

  /// The string payload's shared std::string form (null when not a string);
  /// frame-aliased strings materialize once here.
  std::shared_ptr<const std::string> shared_string() const;

  /// Structural equality; channels compare by identity.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Debug rendering, e.g. `["abc", 42, <chan#3>]`.
  std::string to_string() const;

  std::size_t hash() const;

 private:
  // Alternative order mirrors ValueKind — kind() is the variant index.
  std::variant<std::monostate, bool, std::int64_t, double,
               std::shared_ptr<const StringPayload>, Buffer, ValueList,
               ChannelRef>
      v_;
};

/// Convenience builder: vals(1, "x", true) -> ValueList.
template <class... Ts>
ValueList vals(Ts&&... ts) {
  ValueList out;
  out.reserve(sizeof...(Ts));
  (out.emplace_back(std::forward<Ts>(ts)), ...);
  return out;
}

std::string to_string(const ValueList& list);

}  // namespace alps
