// The `par` statement (paper §2.1.1): structured parallel execution that
// terminates only when all branches terminate.
//
//   par({[&]{ P(); }, [&]{ Q(); }, [&]{ R(); }});        // par P, Q and R
//   par_for(m, n, [&](int i){ P(i); });                   // par i = m to n
//
// If branches throw, the first exception (by branch order) is rethrown after
// every branch has finished — `par` never leaks running threads (CP.23:
// think of a joining thread as a scoped container).
#pragma once

#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace alps {

inline void par(const std::vector<std::function<void()>>& branches) {
  std::vector<std::exception_ptr> errors(branches.size());
  {
    std::vector<std::jthread> threads;
    threads.reserve(branches.size());
    for (std::size_t i = 0; i < branches.size(); ++i) {
      threads.emplace_back([&, i] {
        try {
          branches[i]();
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
  }  // joins all
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

/// par i = m to n do F(i) end par — inclusive bounds, like the paper.
template <class F>
void par_for(long long m, long long n, F f) {
  if (n < m) return;
  std::vector<std::function<void()>> branches;
  branches.reserve(static_cast<std::size_t>(n - m + 1));
  for (long long i = m; i <= n; ++i) {
    branches.push_back([i, &f] { f(i); });
  }
  par(branches);
}

}  // namespace alps
