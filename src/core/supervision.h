// Supervision policies and watchdog configuration for objects.
//
// The paper makes the manager the sole owner of an object's synchronization
// and scheduling — which also makes it the object's single point of failure.
// This header defines what the kernel does when that single point fails
// (SupervisionPolicy) and how it notices when the manager has silently
// stopped making progress (WatchdogOptions). Both ride on ObjectOptions.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

namespace alps {

/// What the kernel does when the manager thread exits with an error (an
/// uncaught exception from user manager code, or a watchdog abort).
enum class SupervisionMode : std::uint8_t {
  /// Record manager_error() and log; pending callers keep waiting and are
  /// failed with kObjectStopped at stop(). This is the pre-supervision
  /// behavior and the default.
  kFailFast = 0,
  /// Take the object down: every pending caller and every subsequent call
  /// fails immediately with a typed Error(kObjectDown) whose message carries
  /// the original manager failure. In-flight entry bodies run to completion
  /// but their results are discarded.
  kQuarantine = 1,
  /// Restart the manager with bounded exponential backoff. Accepted-but-not-
  /// started calls are re-queued for the new incarnation (replay_pending),
  /// started bodies are failed and abandoned (side effects cannot be
  /// replayed), and attached/overflow calls simply wait for the new manager.
  /// When the restart budget is exhausted the object is quarantined.
  kRestart = 2,
};

inline const char* to_string(SupervisionMode m) {
  switch (m) {
    case SupervisionMode::kFailFast: return "fail-fast";
    case SupervisionMode::kQuarantine: return "quarantine";
    case SupervisionMode::kRestart: return "restart";
  }
  return "?";
}

struct SupervisionPolicy {
  SupervisionMode mode = SupervisionMode::kFailFast;

  /// kRestart: total restarts allowed over the object's lifetime; the
  /// (max_restarts+1)-th manager failure quarantines the object.
  int max_restarts = 3;
  /// kRestart: delay before the first restart; doubles (backoff_multiplier)
  /// per consecutive restart up to max_backoff.
  std::chrono::milliseconds initial_backoff{1};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{1000};

  /// kRestart: if true (default) calls the failed incarnation had accepted
  /// but not started are re-queued (re-attached) for the new manager; if
  /// false they are failed with kObjectDown like started ones.
  bool replay_pending = true;

  /// kRestart: invoked on the supervisor thread after the old manager has
  /// been joined and pending calls reconciled, before the new incarnation
  /// starts. Use it to reset shared object state the dead manager may have
  /// left inconsistent. Runs outside all kernel locks.
  std::function<void()> on_restart = nullptr;
};

/// Kernel watchdog: detects a manager that stops making progress while work
/// is pending (wedged in user code, stuck accept/await/select with eligible
/// work it never reaches, deadlocked on external state).
struct WatchdogOptions {
  bool enabled = false;
  /// A stall is declared when calls are pending and the manager's progress
  /// counter has not moved for at least this long.
  std::chrono::milliseconds stall_threshold{1000};
  /// How often the supervisor samples the progress counter; <=0 derives
  /// stall_threshold/4 (min 1ms).
  std::chrono::milliseconds poll_interval{0};
  /// If true, a detected stall aborts the manager (it observes a typed
  /// Error(kTimeout) at its next kernel primitive) and the supervision
  /// policy takes over: restart or quarantine. Under kFailFast escalation
  /// still quarantines — an escalation that changed nothing would be a
  /// silent no-op. If false the watchdog only reports (Tracer::on_stall +
  /// error log), once per stall episode.
  bool escalate = false;
};

}  // namespace alps
