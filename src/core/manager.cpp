#include "core/manager.h"

#include <algorithm>

#include "core/error.h"
#include "core/object.h"

namespace alps {

void Manager::check_stop() const {
  if (obj_->stop_source_.stop_requested()) {
    raise(ErrorCode::kObjectStopped, "object " + obj_->name() + " stopping");
  }
  // A watchdog escalation unwinds the manager here with a typed error; the
  // supervision policy (restart/quarantine) takes over from its catch.
  obj_->check_manager_abort();
}

void Manager::assert_manager_thread(const char* op) const {
  // The manager is a single CSP-like process; its primitives are not
  // thread-safe against each other by design, so misuse is caught early.
  if (obj_->manager_thread_id_.load(std::memory_order_acquire) !=
      std::this_thread::get_id()) {
    raise(ErrorCode::kProtocolViolation,
          std::string(op) + " called off the manager thread of object " +
              obj_->name());
  }
}

bool Manager::stop_requested() const {
  return obj_->stop_source_.stop_requested();
}

std::stop_token Manager::stop_token() const {
  return obj_->stop_source_.get_token();
}

std::size_t Manager::pending(EntryRef entry) const {
  return obj_->pending(entry);
}

Accepted Manager::accept(EntryRef entry) {
  assert_manager_thread("accept");
  Object::EntryCore& e = obj_->core_checked(entry, "accept");
  if (!e.intercepted) {
    raise(ErrorCode::kProtocolViolation,
          "accept on non-intercepted entry " + e.decl.name);
  }
  // Ticket-before-check: the ticket snapshots the wake epoch before we
  // inspect kernel state, so a dispatch that lands between our drain and
  // the wait bumps the epoch and the wait returns immediately.
  Object::ActivityScope activity(*obj_, Object::kActAcceptWait);
  for (;;) {
    support::EventCount::Ticket ticket(obj_->mgr_wake_);
    {
      std::scoped_lock lock(obj_->mu_);
      obj_->drain_intake_locked();
      check_stop();
      if (!e.attached.empty()) {
        const std::size_t slot_idx = e.attached.pop_front(e.slots);
        Object::Slot& s = e.slots[slot_idx];
        s.state = Object::SlotState::kAccepted;
        ++e.accepts;
        obj_->update_pending_locked(e);
        obj_->trace(e, s.call->id, slot_idx, CallPhase::kAccepted);
        obj_->note_progress();
        Accepted a;
        a.entry = entry.index();
        a.slot = slot_idx;
        // Intercepted-prefix copy: O(icept_params) refcount bumps — string
        // and blob payloads are shared, not duplicated (DESIGN.md §4.9).
        a.params.assign(s.call->params.begin(),
                        s.call->params.begin() +
                            static_cast<std::ptrdiff_t>(e.icept_params));
        return a;
      }
    }
    ticket.wait();
  }
}

std::optional<Accepted> Manager::try_accept(EntryRef entry) {
  assert_manager_thread("try_accept");
  Object::EntryCore& e = obj_->core_checked(entry, "try_accept");
  std::scoped_lock lock(obj_->mu_);
  obj_->drain_intake_locked();
  check_stop();
  if (e.attached.empty()) return std::nullopt;
  const std::size_t slot_idx = e.attached.pop_front(e.slots);
  Object::Slot& s = e.slots[slot_idx];
  s.state = Object::SlotState::kAccepted;
  ++e.accepts;
  obj_->update_pending_locked(e);
  obj_->trace(e, s.call->id, slot_idx, CallPhase::kAccepted);
  obj_->note_progress();
  Accepted a;
  a.entry = entry.index();
  a.slot = slot_idx;
  a.params.assign(s.call->params.begin(),
                  s.call->params.begin() +
                      static_cast<std::ptrdiff_t>(e.icept_params));
  return a;
}

void Manager::start(const Accepted& a, ValueList hidden_params) {
  // Hot path: the manager re-supplies the intercepted prefix unchanged, so
  // the body's parameter list is the caller's own list moved wholesale out
  // of the record — no per-call copy of the prefix (start_with pays that
  // only when it actually substitutes). hidden_params rides by value and is
  // moved, never copied.
  assert_manager_thread("start");
  ValueList full;
  const std::size_t entry_idx = a.entry;
  const std::size_t slot_idx = a.slot;
  {
    std::scoped_lock lock(obj_->mu_);
    Object::EntryCore& e = obj_->core(entry_idx);
    Object::Slot& s = e.slots[slot_idx];
    if (s.state != Object::SlotState::kAccepted) {
      raise(ErrorCode::kProtocolViolation,
            "start on " + e.decl.name + "[" + std::to_string(slot_idx) +
                "] which is not in the Accepted state");
    }
    if (s.abandoned) {
      // The caller was failed (deadline/cancel) between accept and start:
      // never launch the body (see start_with).
      s.state = Object::SlotState::kReady;
      obj_->note_progress();
      e.ready.push_back(e.slots, slot_idx);
      return;
    }
    if (hidden_params.size() != e.impl.hidden_params) {
      raise(ErrorCode::kArityMismatch,
            "start " + e.decl.name + ": expects " +
                std::to_string(e.impl.hidden_params) +
                " hidden parameter(s), got " +
                std::to_string(hidden_params.size()));
    }
    full = std::move(s.call->params);
    s.call->params.clear();
    full.reserve(full.size() + hidden_params.size());
    full.insert(full.end(), std::make_move_iterator(hidden_params.begin()),
                std::make_move_iterator(hidden_params.end()));
    s.state = Object::SlotState::kRunning;
    ++e.starts;
    obj_->trace(e, s.call->id, slot_idx, CallPhase::kStarted);
    obj_->note_progress();
  }
  obj_->submit_body(entry_idx, slot_idx, std::move(full));
}

void Manager::start_compatible(const Accepted& a) {
  // Multiactive dispatch (DESIGN.md §4.8): launch the accepted call if it is
  // compatible with every in-flight group, otherwise park it kernel-side —
  // the kernel launches it in arrival order when the conflict drains, and
  // completes the caller directly when the body returns (no await/finish).
  assert_manager_thread("start_compatible");
  std::vector<sched::BatchItem> launch;
  {
    std::scoped_lock lock(obj_->mu_);
    Object::EntryCore& e = obj_->core(a.entry);
    Object::Slot& s = e.slots[a.slot];
    if (s.state != Object::SlotState::kAccepted) {
      raise(ErrorCode::kProtocolViolation,
            "start_compatible on " + e.decl.name + "[" +
                std::to_string(a.slot) +
                "] which is not in the Accepted state");
    }
    if (!e.compat_participant) {
      raise(ErrorCode::kProtocolViolation,
            "start_compatible on entry " + e.decl.name +
                " without compatibility annotations (use compatible_with/"
                "serial_group on the EntryDecl)");
    }
    if (e.impl.hidden_params > 0 || e.impl.hidden_results > 0) {
      raise(ErrorCode::kProtocolViolation,
            "start_compatible on entry " + e.decl.name +
                ": hidden params/results need the await/finish protocol and "
                "are not supported on the compat path");
    }
    if (s.abandoned) {
      // Caller already failed (deadline/cancel between accept and start):
      // reclaim immediately — no body, no deferral.
      ++e.finishes;
      obj_->release_slot_locked(a.entry, a.slot);
      obj_->note_progress();
      return;
    }
    // The compat path never substitutes the intercepted prefix: the body's
    // parameter list is the caller's own, moved out of the record.
    ValueList full = std::move(s.call->params);
    s.call->params.clear();
    if (obj_->compat_admissible_locked(a.entry)) {
      obj_->ma_mark_running_locked(a.entry, a.slot);
      launch.push_back(obj_->make_body_task(a.entry, a.slot, std::move(full)));
    } else {
      s.state = Object::SlotState::kDeferred;
      s.multiactive = true;
      s.deferred_params = std::move(full);
      ++e.ma_conflicts;
      if (e.ma_deferred == 0) ++obj_->compat_gen_;
      ++e.ma_deferred;
      obj_->ma_queue_.emplace_back(a.entry, a.slot);
      obj_->trace(e, s.call->id, a.slot, CallPhase::kDeferred);
    }
    obj_->note_progress();
  }
  if (!launch.empty()) obj_->executor_->submit_batch(std::move(launch));
}

std::size_t Manager::start_compatible_pending(EntryRef entry) {
  // Batched accept+start_compatible: under ONE lock acquisition, accept and
  // launch attached calls of `entry` while the compat gate stays open (the
  // gate closes when an incompatible group is in flight or an older
  // incompatible call is waiting its turn). One executor wakeup for the
  // whole batch — this is the multiactive fast path.
  assert_manager_thread("start_compatible_pending");
  Object::EntryCore& e = obj_->core_checked(entry, "start_compatible_pending");
  if (!e.intercepted) {
    raise(ErrorCode::kProtocolViolation,
          "start_compatible_pending on non-intercepted entry " + e.decl.name);
  }
  std::vector<sched::BatchItem> launch;
  std::size_t n = 0;
  {
    std::scoped_lock lock(obj_->mu_);
    obj_->drain_intake_locked();
    check_stop();
    if (!e.compat_participant) {
      raise(ErrorCode::kProtocolViolation,
            "start_compatible_pending on entry " + e.decl.name +
                " without compatibility annotations");
    }
    if (e.impl.hidden_params > 0 || e.impl.hidden_results > 0) {
      raise(ErrorCode::kProtocolViolation,
            "start_compatible_pending on entry " + e.decl.name +
                ": hidden params/results are not supported on the compat "
                "path");
    }
    const std::size_t idx = entry.index();
    while (!e.attached.empty() && obj_->compat_gate_open_locked(idx)) {
      const std::size_t slot_idx = e.attached.pop_front(e.slots);
      Object::Slot& s = e.slots[slot_idx];
      s.state = Object::SlotState::kAccepted;
      ++e.accepts;
      obj_->update_pending_locked(e);
      obj_->trace(e, s.call->id, slot_idx, CallPhase::kAccepted);
      ValueList full = std::move(s.call->params);
      s.call->params.clear();
      obj_->ma_mark_running_locked(idx, slot_idx);
      launch.push_back(obj_->make_body_task(idx, slot_idx, std::move(full)));
      ++n;
    }
    if (n > 0) obj_->note_progress();
  }
  if (!launch.empty()) obj_->executor_->submit_batch(std::move(launch));
  return n;
}

void Manager::start_with(const Accepted& a, ValueList iparams,
                         ValueList hidden_params) {
  assert_manager_thread("start");
  ValueList full;
  std::size_t entry_idx = a.entry;
  std::size_t slot_idx = a.slot;
  {
    std::scoped_lock lock(obj_->mu_);
    Object::EntryCore& e = obj_->core(entry_idx);
    Object::Slot& s = e.slots[slot_idx];
    if (s.state != Object::SlotState::kAccepted) {
      raise(ErrorCode::kProtocolViolation,
            "start on " + e.decl.name + "[" + std::to_string(slot_idx) +
                "] which is not in the Accepted state");
    }
    if (s.abandoned) {
      // The caller was failed (deadline/cancel) between accept and start:
      // never launch the body. The slot goes straight to Ready carrying the
      // typed error, so the manager's await/finish protocol runs unchanged
      // and reclaims it.
      s.state = Object::SlotState::kReady;
      obj_->note_progress();
      e.ready.push_back(e.slots, slot_idx);
      return;
    }
    if (iparams.size() != e.icept_params) {
      raise(ErrorCode::kArityMismatch,
            "start " + e.decl.name + ": manager must supply the " +
                std::to_string(e.icept_params) +
                " intercepted parameter(s), got " +
                std::to_string(iparams.size()));
    }
    if (hidden_params.size() != e.impl.hidden_params) {
      raise(ErrorCode::kArityMismatch,
            "start " + e.decl.name + ": expects " +
                std::to_string(e.impl.hidden_params) +
                " hidden parameter(s), got " +
                std::to_string(hidden_params.size()));
    }
    // Body parameter list = manager-supplied intercepted prefix, the
    // caller's remaining parameters, then the hidden parameters. The
    // caller's tail is moved out of the record — the kernel never reads the
    // parameters again after start.
    full = std::move(iparams);
    full.reserve(full.size() + (s.call->params.size() - e.icept_params) +
                 hidden_params.size());
    full.insert(full.end(),
                std::make_move_iterator(
                    s.call->params.begin() +
                    static_cast<std::ptrdiff_t>(e.icept_params)),
                std::make_move_iterator(s.call->params.end()));
    full.insert(full.end(), std::make_move_iterator(hidden_params.begin()),
                std::make_move_iterator(hidden_params.end()));
    s.state = Object::SlotState::kRunning;
    ++e.starts;
    obj_->trace(e, s.call->id, slot_idx, CallPhase::kStarted);
    obj_->note_progress();
  }
  obj_->submit_body(entry_idx, slot_idx, std::move(full));
}

Awaited Manager::await(EntryRef entry) {
  assert_manager_thread("await");
  Object::EntryCore& e = obj_->core_checked(entry, "await");
  Object::ActivityScope activity(*obj_, Object::kActAwaitWait);
  for (;;) {
    support::EventCount::Ticket ticket(obj_->mgr_wake_);
    {
      std::scoped_lock lock(obj_->mu_);
      obj_->drain_intake_locked();
      check_stop();
      if (!e.ready.empty()) {
        const std::size_t slot_idx = e.ready.pop_front(e.slots);
        Object::Slot& s = e.slots[slot_idx];
        s.state = Object::SlotState::kAwaited;
        obj_->note_progress();
        Awaited w;
        w.entry = entry.index();
        w.slot = slot_idx;
        w.results = std::move(s.mgr_results);
        w.failed = (s.body_error != nullptr);
        w.abandoned = s.abandoned;
        w.error = s.body_error;
        return w;
      }
    }
    ticket.wait();
  }
}

Awaited Manager::await(const Accepted& a) {
  assert_manager_thread("await");
  Object::ActivityScope activity(*obj_, Object::kActAwaitWait);
  for (;;) {
    support::EventCount::Ticket ticket(obj_->mgr_wake_);
    {
      std::scoped_lock lock(obj_->mu_);
      Object::EntryCore& e = obj_->core(a.entry);
      Object::Slot& s = e.slots[a.slot];
      if (s.state != Object::SlotState::kRunning &&
          s.state != Object::SlotState::kReady) {
        raise(ErrorCode::kProtocolViolation,
              "await on " + e.decl.name + "[" + std::to_string(a.slot) +
                  "] which was not started");
      }
      check_stop();
      if (s.state == Object::SlotState::kReady) {
        e.ready.remove(e.slots, a.slot);
        s.state = Object::SlotState::kAwaited;
        obj_->note_progress();
        Awaited w;
        w.entry = a.entry;
        w.slot = a.slot;
        w.results = std::move(s.mgr_results);
        w.failed = (s.body_error != nullptr);
        w.abandoned = s.abandoned;
        w.error = s.body_error;
        return w;
      }
    }
    ticket.wait();
  }
}

std::optional<Awaited> Manager::try_await(EntryRef entry) {
  assert_manager_thread("try_await");
  Object::EntryCore& e = obj_->core_checked(entry, "try_await");
  std::scoped_lock lock(obj_->mu_);
  obj_->drain_intake_locked();
  check_stop();
  if (e.ready.empty()) return std::nullopt;
  const std::size_t slot_idx = e.ready.pop_front(e.slots);
  Object::Slot& s = e.slots[slot_idx];
  s.state = Object::SlotState::kAwaited;
  obj_->note_progress();
  Awaited w;
  w.entry = entry.index();
  w.slot = slot_idx;
  w.results = std::move(s.mgr_results);
  w.failed = (s.body_error != nullptr);
  w.abandoned = s.abandoned;
  w.error = s.body_error;
  return w;
}

void Manager::finish(const Awaited& w) {
  Object::EntryCore& e = obj_->core(w.entry);
  ValueList echo(w.results.begin(),
                 w.results.begin() +
                     static_cast<std::ptrdiff_t>(std::min(
                         e.icept_results, w.results.size())));
  finish_with(w, std::move(echo));
}

void Manager::finish_with(const Awaited& w, ValueList iresults) {
  assert_manager_thread("finish");
  std::shared_ptr<CallState> caller;
  ValueList final_results;
  std::exception_ptr err;
  {
    std::scoped_lock lock(obj_->mu_);
    Object::EntryCore& e = obj_->core(w.entry);
    Object::Slot& s = e.slots[w.slot];
    if (s.state != Object::SlotState::kAwaited) {
      raise(ErrorCode::kProtocolViolation,
            "finish on " + e.decl.name + "[" + std::to_string(w.slot) +
                "] which was not awaited");
    }
    if (!s.body_error && iresults.size() != e.icept_results) {
      raise(ErrorCode::kArityMismatch,
            "finish " + e.decl.name + ": manager must supply the " +
                std::to_string(e.icept_results) +
                " intercepted result(s), got " +
                std::to_string(iresults.size()));
    }
    caller = s.call->state;
    // Move, not copy: the slot's reference to the exception object transfers
    // through `err` into the caller's CallState below, so the final release
    // of a failing body's exception lands on a caller-synchronized thread
    // (see the matching move in submit_body).
    err = std::move(s.body_error);
    if (!err) {
      final_results = std::move(iresults);
      final_results.reserve(final_results.size() + s.rest_results.size());
      final_results.insert(final_results.end(),
                           std::make_move_iterator(s.rest_results.begin()),
                           std::make_move_iterator(s.rest_results.end()));
    }
    ++e.finishes;
    obj_->trace(e, s.call->id, w.slot,
                err ? CallPhase::kFailed : CallPhase::kFinished);
    obj_->release_slot_locked(w.entry, w.slot);
    obj_->note_progress();
  }
  // No wakeup: the only mgr_wake_ waiter is the manager thread, which is
  // the thread executing this primitive. Re-attachment done by
  // release_slot_locked is observed by the manager's own next wait loop.
  // Complete outside the kernel lock (the caller-side callback may run
  // arbitrary code, e.g. sending an RPC response frame).
  if (err) {
    caller->fail(std::move(err));
  } else {
    caller->complete(std::move(final_results));
  }
}

void Manager::combine_finish(const Accepted& a, ValueList all_results) {
  assert_manager_thread("combine_finish");
  std::shared_ptr<CallState> caller;
  {
    std::scoped_lock lock(obj_->mu_);
    Object::EntryCore& e = obj_->core(a.entry);
    Object::Slot& s = e.slots[a.slot];
    if (s.state != Object::SlotState::kAccepted) {
      raise(ErrorCode::kProtocolViolation,
            "combine_finish on " + e.decl.name + "[" + std::to_string(a.slot) +
                "] which is not in the Accepted state");
    }
    // §2.7: "the manager is responsible to receive all invocation
    // parameters in the accept primitive [and] to generate all the results
    // that the caller expects".
    if (e.icept_params != e.decl.params) {
      raise(ErrorCode::kProtocolViolation,
            "combine_finish " + e.decl.name +
                ": intercepts clause must cover all parameters");
    }
    if (all_results.size() != e.decl.results) {
      raise(ErrorCode::kArityMismatch,
            "combine_finish " + e.decl.name + ": expects " +
                std::to_string(e.decl.results) + " results, got " +
                std::to_string(all_results.size()));
    }
    caller = s.call->state;
    ++e.combines;
    ++e.finishes;
    obj_->trace(e, s.call->id, a.slot, CallPhase::kCombined);
    obj_->release_slot_locked(a.entry, a.slot);
    obj_->note_progress();
  }
  caller->complete(std::move(all_results));
}

void Manager::fail(const Accepted& a, const std::string& why) {
  assert_manager_thread("fail");
  std::shared_ptr<CallState> caller;
  {
    std::scoped_lock lock(obj_->mu_);
    Object::EntryCore& e = obj_->core(a.entry);
    Object::Slot& s = e.slots[a.slot];
    if (s.state != Object::SlotState::kAccepted) {
      raise(ErrorCode::kProtocolViolation,
            "fail on a call that is not in the Accepted state");
    }
    caller = s.call->state;
    ++e.finishes;
    obj_->trace(e, s.call->id, a.slot, CallPhase::kFailed);
    obj_->release_slot_locked(a.entry, a.slot);
    obj_->note_progress();
  }
  caller->fail(ErrorCode::kBodyFailed, why);
}

void Manager::fail(const Awaited& w, const std::string& why) {
  assert_manager_thread("fail");
  std::shared_ptr<CallState> caller;
  {
    std::scoped_lock lock(obj_->mu_);
    Object::EntryCore& e = obj_->core(w.entry);
    Object::Slot& s = e.slots[w.slot];
    if (s.state != Object::SlotState::kAwaited) {
      raise(ErrorCode::kProtocolViolation,
            "fail on a call that is not in the Awaited state");
    }
    caller = s.call->state;
    ++e.finishes;
    obj_->trace(e, s.call->id, w.slot, CallPhase::kFailed);
    obj_->release_slot_locked(w.entry, w.slot);
    obj_->note_progress();
  }
  caller->fail(ErrorCode::kBodyFailed, why);
}

Awaited Manager::execute(const Accepted& a, ValueList hidden_params) {
  start(a, std::move(hidden_params));
  Awaited w = await(a);
  finish(w);
  return w;
}

}  // namespace alps
