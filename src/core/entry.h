// Entry-procedure declarations: the definition/implementation split (§2.2),
// hidden procedure arrays (§2.5), the intercepts clause with parameter and
// result subsequences (§2.3, §2.6), and hidden parameters/results (§2.8).
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "core/call.h"
#include "core/value.h"

namespace alps {

class Object;
class BodyCtx;

/// No-slot marker (non-intercepted entries never occupy an array slot).
inline constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

/// The *definition part* of an entry procedure: what users of the object see.
/// `params`/`results` are the visible arities (the kernel is dynamically
/// typed; the typed façade in core/typed.h layers static types over this).
struct EntryDecl {
  std::string name;
  std::size_t params = 0;
  std::size_t results = 0;
  /// Local procedures (§2.3 "intercept even local procedures") are declared
  /// with exported=false: they are callable from bodies of the same object
  /// but not from outside.
  bool exported = true;
  /// Compatibility annotations (multiactive scheduling, DESIGN.md §4.8).
  /// Entries named here may execute concurrently with this one when the
  /// manager dispatches through Manager::start_compatible (or a
  /// compat-gated accept guard). Compatibility is symmetric: listing B on A
  /// also makes A compatible with B. List the entry's own name to let calls
  /// of this entry overlap each other (e.g. readers). An annotated entry
  /// *participates* in compatibility scheduling; within the participant
  /// set, any pair not listed conflicts and is serialized in arrival
  /// order. Unannotated entries are untouched and keep the fully-serial
  /// manager protocol.
  std::vector<std::string> compatible{};
  /// True once any compatibility annotation was applied (serial_group()
  /// sets it with an empty list: participate, conflict with everyone).
  bool compat_annotated = false;

  EntryDecl&& compatible_with(std::initializer_list<const char*> names) && {
    for (const char* n : names) compatible.emplace_back(n);
    compat_annotated = true;
    return std::move(*this);
  }
  /// Participates in compatibility scheduling but conflicts with every
  /// participant (including itself): calls run one at a time, ordered
  /// against compatible groups by arrival. The annotation for writers.
  EntryDecl&& serial_group() && {
    compat_annotated = true;
    return std::move(*this);
  }
};

/// The *implementation part*: the hidden procedure array size N (§2.5) and
/// any hidden parameters/results (§2.8), all invisible to users.
struct ImplDecl {
  std::size_t array = 1;
  std::size_t hidden_params = 0;
  std::size_t hidden_results = 0;
};

/// The body of an entry procedure. It receives the full parameter list
/// (visible params, then hidden params supplied by the manager at `start`)
/// and returns the full result list (visible results, then hidden results
/// that only the manager sees at `await`).
using BodyFn = std::function<ValueList(BodyCtx&)>;

/// Opaque handle to an entry of a specific object.
class EntryRef {
 public:
  EntryRef() = default;

  bool valid() const { return obj_ != nullptr; }
  std::size_t index() const { return idx_; }
  Object* object() const { return obj_; }

  bool operator==(const EntryRef& o) const {
    return obj_ == o.obj_ && idx_ == o.idx_;
  }

 private:
  friend class Object;
  EntryRef(Object* obj, std::size_t idx) : obj_(obj), idx_(idx) {}

  Object* obj_ = nullptr;
  std::size_t idx_ = 0;
};

/// One element of the manager's intercepts clause:
/// `intercepts P(params; results)` — the manager receives the first
/// `n_params` invocation parameters at accept (and re-supplies them at
/// start), and the first `n_results` results at await (and re-supplies them
/// at finish). Build with intercept(e).params(k).results(m).
struct InterceptClause {
  EntryRef entry;
  std::size_t n_params = 0;
  std::size_t n_results = 0;

  InterceptClause&& params(std::size_t k) && {
    n_params = k;
    return std::move(*this);
  }
  InterceptClause&& results(std::size_t m) && {
    n_results = m;
    return std::move(*this);
  }
};

inline InterceptClause intercept(EntryRef e) { return InterceptClause{e, 0, 0}; }

/// Execution context handed to a BodyFn.
class BodyCtx {
 public:
  /// Full parameter list: visible params followed by hidden params.
  const ValueList& params() const { return params_; }
  const Value& param(std::size_t i) const { return params_.at(i); }
  std::size_t num_params() const { return params_.size(); }

  /// Which element of the hidden procedure array this call is attached to
  /// (kNoSlot for non-intercepted entries).
  std::size_t slot() const { return slot_; }

  const std::string& entry_name() const { return entry_name_; }

  Object& object() const { return *obj_; }

  /// Invokes a procedure of the *same* object from inside a body; local
  /// (non-exported) procedures are allowed, and if the target is intercepted
  /// the call goes through the manager like any other (§2.3: managers can
  /// control entry procedures even after starting them by intercepting the
  /// local procedures they call).
  CallHandle call_sibling(EntryRef target, ValueList params) const;

 private:
  friend class Object;
  BodyCtx(Object* obj, std::string entry_name, std::size_t slot,
          ValueList params)
      : obj_(obj),
        entry_name_(std::move(entry_name)),
        slot_(slot),
        params_(std::move(params)) {}

  Object* obj_;
  std::string entry_name_;
  std::size_t slot_;
  ValueList params_;
};

}  // namespace alps
