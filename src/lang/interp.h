// Tree-walking interpreter: instantiates parsed ALPS programs as kernel
// objects and runs their procedure bodies and manager processes.
//
// Mapping onto the kernel:
//   object X implements ... proc P[N](v; hidden) ...  →  alps::Object with
//       EntryDecl (visible arity from the definition part) and ImplDecl
//       (array size N; params/results beyond the definition arity become
//       hidden params/results, §2.8);
//   manager intercepts P(types; types); ... loop ... →  a ManagerFn whose
//       loop/select statements build alps::Select guards; acceptance
//       conditions and pri expressions evaluate with the tentatively
//       received values bound (§2.4); finish on an accepted-but-not-started
//       call maps to combining (§2.7);
//   shared data (var ...) lives in a mutex-guarded frame — the language
//       itself leaves races to the manager's discipline, but the
//       interpreter's own memory stays well-defined regardless.
//
//   lang::Machine machine(source);
//   machine.call("Buffer", "Deposit", vals("hello"));
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/alps.h"
#include "lang/ast.h"

namespace alps::lang {

class Machine {
 public:
  /// Parses, instantiates and starts every object in `source`.
  explicit Machine(const std::string& source);
  explicit Machine(Program program);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Blocking entry call: `X.P(args)`.
  ValueList call(const std::string& object, const std::string& entry,
                 ValueList args = {});

  CallHandle async_call(const std::string& object, const std::string& entry,
                        ValueList args = {});

  /// The underlying kernel object (to host it on a net::Node, attach a
  /// tracer before first call is not possible — tracers must be set before
  /// start — but stats and pending counts are available).
  Object& object(const std::string& name);

  std::vector<std::string> objects() const;

  /// Stops every object (also run by the destructor).
  void stop();

  /// Object types (the paper's §2.2 "future version" feature, implemented):
  /// treats the named implemented object as a type and creates a further,
  /// fully independent instance — its own shared data, manager process and
  /// procedure-array processes — under `instance_name`.
  Object& create_instance(const std::string& type_name,
                          const std::string& instance_name);

 private:
  struct ObjectRuntime;
  void instantiate_impl(const ObjectImpl& impl_ast, const ObjectDef* def,
                        const std::string& instance_name);

  std::unique_ptr<Program> prog_;
  std::unordered_map<std::string, const ObjectDef*> defs_;
  std::vector<std::unique_ptr<ObjectRuntime>> runtimes_;
};

}  // namespace alps::lang
