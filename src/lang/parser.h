// Recursive-descent parser for the ALPS surface-language subset (see ast.h
// for the grammar). Throws LangError with line/column on syntax errors.
#pragma once

#include <string>

#include "lang/ast.h"
#include "lang/token.h"

namespace alps::lang {

/// Parses a whole program (object definitions + implementations).
Program parse_program(const std::string& source);

}  // namespace alps::lang
