// Abstract syntax for the ALPS surface-language subset.
//
// The grammar mirrors the paper's notation:
//
//   program      = { object-def | object-impl }
//   object-def   = "object" NAME "defines" { proc-decl ";" } "end" NAME ";"
//   proc-decl    = "proc" NAME [ "(" type {"," type} ")" ]
//                    [ "returns" "(" type {"," type} ")" ]
//   object-impl  = "object" NAME "implements" { var-decl | proc-body | manager }
//                    [ "begin" stmts ]  "end" NAME ";"
//   proc-body    = "proc" NAME [ "[" INT "]" ]          -- hidden array size
//                    [ "(" param {";" param} ")" ] [ "returns" "(" ... ")" ]
//                    ";" "begin" stmts "end" NAME? ";"
//       (params beyond the definition's arity are the hidden ones, §2.8)
//   manager      = "manager" "intercepts" icept {"," icept} ";"
//                    { var-decl } "begin" stmts "end" ";"
//   icept        = NAME [ "(" [types] [";" [types]] ")" ]   -- §2.6 prefixes
//   stmt         = assign | if | while | loop | select | return
//                | "accept" NAME "[" BINDER "]" [ "(" binders ")" ]
//                | "start" NAME "[" expr "]" [ "(" exprs ")" ]    -- hidden params
//                | "await" NAME "[" expr-or-binder "]" [ "(" binders ")" ]
//                | "finish" NAME "[" expr "]" [ "(" exprs ")" ]
//                | "execute" NAME "[" expr "]" [ "(" exprs ")" ]
//   guard        = ("accept"|"await") NAME "[" BINDER "]" [ "(" binders ")" ]
//                    [ "when" expr ] [ "pri" expr ]
//                | "when" expr
//   expr         = Pascal-style with and/or/not, comparisons, + - * / mod,
//                  "#" NAME (pending count), literals, names
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace alps::lang {

// ---- expressions ----

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNeq, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnOp { kNeg, kNot };

struct Expr {
  enum class Kind {
    kIntLit,
    kRealLit,
    kStringLit,
    kBoolLit,
    kName,      // variable / parameter / binder reference
    kIndex,     // array element: Name[expr]
    kPending,   // #P
    kBinary,
    kUnary,
  };
  Kind kind;
  std::int64_t int_val = 0;
  double real_val = 0.0;
  bool bool_val = false;
  std::string name;  // kName: variable; kPending: entry name; kStringLit: text
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  ExprPtr lhs, rhs;  // kBinary; kUnary uses lhs; kIndex: lhs = index
  std::size_t line = 0;
};

// ---- statements ----

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

/// A manager primitive's target: entry name plus the slot expression (for
/// accept the slot token is a fresh binder instead).
struct PrimTarget {
  std::string entry;
  std::string slot_binder;  // accept/await-guard: name bound to the slot
  ExprPtr slot_expr;        // start/finish/execute/direct-await: slot value
};

struct Guard {
  enum class Kind { kAccept, kAwait, kWhen, kReceive };
  Kind kind = Kind::kWhen;
  PrimTarget target;                  // kAccept/kAwait
  std::string channel;                // kReceive: channel variable name
  std::vector<std::string> binders;   // received params/results/message
  ExprPtr when;                       // acceptance condition (optional)
  ExprPtr pri;                        // run-time priority (optional)
  StmtList body;                      // the `=> S` part
};

struct Stmt {
  enum class Kind {
    kAssign,
    kIf,
    kWhile,
    kLoop,      // nondeterministic loop with guards
    kSelect,    // one nondeterministic selection
    kReturn,
    kAccept,    // direct (non-guard) accept
    kSend,      // send C(exprs) — asynchronous (§2.1.2)
    kReceive,   // receive C(binders) — blocking
    kStart,
    kAwait,     // direct await of a specific slot
    kFinish,
    kExecute,
  };
  Kind kind;
  // kAssign (assign_index non-null for `Name[expr] := value`)
  std::string assign_name;
  ExprPtr assign_index;
  ExprPtr assign_value;
  // kIf: arms are (condition, body) pairs; else_body may be empty
  std::vector<std::pair<ExprPtr, StmtList>> if_arms;
  StmtList else_body;
  // kWhile
  ExprPtr while_cond;
  StmtList while_body;
  // kLoop / kSelect
  std::vector<Guard> guards;
  // kReturn
  std::vector<ExprPtr> return_values;
  // manager primitives / channel statements
  std::string channel;  // kSend/kReceive: channel variable name
  PrimTarget target;
  std::vector<std::string> binders;  // accept/await received values
  std::vector<ExprPtr> args;         // start: hidden params; finish: iresults;
                                     // execute: hidden params
  std::size_t line = 0;
};

// ---- declarations ----

enum class TypeName { kInt, kBool, kReal, kString, kChan };

struct ProcDecl {
  std::string name;
  std::vector<TypeName> params;
  std::vector<TypeName> results;
};

struct ObjectDef {
  std::string name;
  std::vector<ProcDecl> procs;
};

struct Param {
  std::string name;
  TypeName type = TypeName::kInt;
};

struct VarDecl {
  std::string name;
  TypeName type = TypeName::kInt;
  std::size_t array = 0;  ///< 0 = scalar; N = `array N of type`
  std::size_t line = 0;
};

struct ProcBody {
  std::string name;
  std::size_t array = 1;  // hidden procedure array size (§2.5)
  std::vector<Param> params;   // includes hidden params at the tail (§2.8)
  std::vector<Param> results;  // includes hidden results at the tail
  std::vector<VarDecl> locals;
  StmtList body;
};

struct InterceptDecl {
  std::string entry;
  std::size_t n_params = 0;   // §2.6 parameter prefix
  std::size_t n_results = 0;  // §2.6 result prefix
};

struct ManagerDecl {
  std::vector<InterceptDecl> intercepts;
  std::vector<VarDecl> locals;
  StmtList body;
};

struct ObjectImpl {
  std::string name;
  std::vector<VarDecl> shared;  // the shared data part
  std::vector<ProcBody> procs;
  std::unique_ptr<ManagerDecl> manager;  // optional
  StmtList init;                         // optional initialization code
};

struct Program {
  std::vector<ObjectDef> defs;
  std::vector<ObjectImpl> impls;
};

}  // namespace alps::lang
