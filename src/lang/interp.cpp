#include "lang/interp.h"

#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "lang/parser.h"
#include "lang/token.h"

namespace alps::lang {

namespace {

[[noreturn]] void rt_error(const std::string& what, std::size_t line = 0) {
  throw LangError("runtime error: " + what, line, 0);
}

// ---------------------------------------------------------------------------
// Environments
// ---------------------------------------------------------------------------

/// One lexical frame. The shared-data frame of an object carries a mutex so
/// concurrently executing bodies cannot tear the interpreter's own state.
struct Frame {
  std::map<std::string, Value> vars;
  std::mutex* lock = nullptr;  // non-null for the shared frame

  bool has(const std::string& name) const { return vars.count(name) > 0; }
};

/// A scope chain, innermost first.
class Env {
 public:
  void push(Frame* frame) { frames_.push_back(frame); }

  Value get(const std::string& name, std::size_t line) const {
    for (Frame* f : frames_) {
      if (f->lock) {
        std::scoped_lock lock(*f->lock);
        auto it = f->vars.find(name);
        if (it != f->vars.end()) return it->second;
      } else {
        auto it = f->vars.find(name);
        if (it != f->vars.end()) return it->second;
      }
    }
    rt_error("undefined variable '" + name + "'", line);
  }

  void set(const std::string& name, Value v, std::size_t line) {
    for (Frame* f : frames_) {
      if (f->lock) {
        std::scoped_lock lock(*f->lock);
        auto it = f->vars.find(name);
        if (it != f->vars.end()) {
          it->second = std::move(v);
          return;
        }
      } else {
        auto it = f->vars.find(name);
        if (it != f->vars.end()) {
          it->second = std::move(v);
          return;
        }
      }
    }
    rt_error("assignment to undeclared variable '" + name + "'", line);
  }

  /// Mutates one element of an array variable in place.
  void set_index(const std::string& name, std::size_t index, Value v,
                 std::size_t line) {
    auto assign_at = [&](Value& arr) {
      if (!arr.is_list()) {
        rt_error("'" + name + "' is not an array", line);
      }
      ValueList& list = arr.as_list();
      if (index >= list.size()) {
        rt_error("index " + std::to_string(index) + " out of bounds for '" +
                     name + "' (size " + std::to_string(list.size()) + ")",
                 line);
      }
      list[index] = std::move(v);
    };
    for (Frame* f : frames_) {
      if (f->lock) {
        std::scoped_lock lock(*f->lock);
        auto it = f->vars.find(name);
        if (it != f->vars.end()) {
          assign_at(it->second);
          return;
        }
      } else {
        auto it = f->vars.find(name);
        if (it != f->vars.end()) {
          assign_at(it->second);
          return;
        }
      }
    }
    rt_error("assignment to undeclared array '" + name + "'", line);
  }

 private:
  std::vector<Frame*> frames_;
};

Value default_value(TypeName type) {
  switch (type) {
    case TypeName::kInt: return Value(0);
    case TypeName::kBool: return Value(false);
    case TypeName::kReal: return Value(0.0);
    case TypeName::kString: return Value(std::string());
    case TypeName::kChan: return Value(make_channel());
  }
  return Value();
}

Value default_value(const VarDecl& decl) {
  if (decl.array == 0) return default_value(decl.type);
  ValueList list(decl.array, default_value(decl.type));
  return Value(std::move(list));
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

bool truthy(const Value& v, std::size_t line) {
  if (v.is_bool()) return v.as_bool();
  rt_error("condition is not a bool, got " + v.to_string(), line);
}

Value eval(const Expr& e, const Env& env, Object* obj);

Value eval_binary(const Expr& e, const Env& env, Object* obj) {
  // Short-circuit boolean operators first.
  if (e.bin_op == BinOp::kAnd) {
    if (!truthy(eval(*e.lhs, env, obj), e.line)) return Value(false);
    return Value(truthy(eval(*e.rhs, env, obj), e.line));
  }
  if (e.bin_op == BinOp::kOr) {
    if (truthy(eval(*e.lhs, env, obj), e.line)) return Value(true);
    return Value(truthy(eval(*e.rhs, env, obj), e.line));
  }

  const Value a = eval(*e.lhs, env, obj);
  const Value b = eval(*e.rhs, env, obj);
  const bool both_int = a.is_int() && b.is_int();
  const bool numeric = (a.is_int() || a.is_real()) && (b.is_int() || b.is_real());

  switch (e.bin_op) {
    case BinOp::kAdd:
      if (both_int) return Value(a.as_int() + b.as_int());
      if (numeric) return Value(a.as_real() + b.as_real());
      if (a.is_string() && b.is_string()) return Value(a.as_string() + b.as_string());
      break;
    case BinOp::kSub:
      if (both_int) return Value(a.as_int() - b.as_int());
      if (numeric) return Value(a.as_real() - b.as_real());
      break;
    case BinOp::kMul:
      if (both_int) return Value(a.as_int() * b.as_int());
      if (numeric) return Value(a.as_real() * b.as_real());
      break;
    case BinOp::kDiv:
      if (both_int) {
        if (b.as_int() == 0) rt_error("division by zero", e.line);
        return Value(a.as_int() / b.as_int());
      }
      if (numeric) return Value(a.as_real() / b.as_real());
      break;
    case BinOp::kMod:
      if (both_int) {
        if (b.as_int() == 0) rt_error("mod by zero", e.line);
        return Value(a.as_int() % b.as_int());
      }
      break;
    case BinOp::kEq: return Value(a == b);
    case BinOp::kNeq: return Value(!(a == b));
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      int cmp;
      if (numeric) {
        const double x = a.as_real(), y = b.as_real();
        cmp = x < y ? -1 : (x > y ? 1 : 0);
      } else if (a.is_string() && b.is_string()) {
        cmp = a.as_string().compare(b.as_string());
      } else {
        rt_error("incomparable operands " + a.to_string() + " and " +
                     b.to_string(),
                 e.line);
      }
      switch (e.bin_op) {
        case BinOp::kLt: return Value(cmp < 0);
        case BinOp::kLe: return Value(cmp <= 0);
        case BinOp::kGt: return Value(cmp > 0);
        default: return Value(cmp >= 0);
      }
    }
    default: break;
  }
  rt_error("bad operand types " + a.to_string() + " / " + b.to_string(), e.line);
}

Value eval(const Expr& e, const Env& env, Object* obj) {
  switch (e.kind) {
    case Expr::Kind::kIntLit: return Value(e.int_val);
    case Expr::Kind::kRealLit: return Value(e.real_val);
    case Expr::Kind::kStringLit: return Value(e.name);
    case Expr::Kind::kBoolLit: return Value(e.bool_val);
    case Expr::Kind::kName: return env.get(e.name, e.line);
    case Expr::Kind::kIndex: {
      const Value arr = env.get(e.name, e.line);
      if (!arr.is_list()) rt_error("'" + e.name + "' is not an array", e.line);
      const auto idx =
          static_cast<std::size_t>(eval(*e.lhs, env, obj).as_int());
      const ValueList& list = arr.as_list();
      if (idx >= list.size()) {
        rt_error("index " + std::to_string(idx) + " out of bounds for '" +
                     e.name + "'",
                 e.line);
      }
      return list[idx];
    }
    case Expr::Kind::kPending: {
      if (!obj) rt_error("#" + e.name + " outside an object context", e.line);
      return Value(static_cast<std::int64_t>(obj->pending(obj->entry(e.name))));
    }
    case Expr::Kind::kUnary: {
      const Value v = eval(*e.lhs, env, obj);
      if (e.un_op == UnOp::kNeg) {
        if (v.is_int()) return Value(-v.as_int());
        if (v.is_real()) return Value(-v.as_real());
        rt_error("cannot negate " + v.to_string(), e.line);
      }
      return Value(!truthy(v, e.line));
    }
    case Expr::Kind::kBinary: return eval_binary(e, env, obj);
  }
  rt_error("unreachable expression kind", e.line);
}

// ---------------------------------------------------------------------------
// Statement execution
// ---------------------------------------------------------------------------

/// Non-error control-flow escape for `return (values)`.
struct ReturnSignal {
  ValueList values;
};

/// Per-manager interpreter state: which call handle each (entry, slot) pair
/// holds, plus each entry's most recent handle for the bare `start P` form.
struct ManagerState {
  Manager* mgr = nullptr;
  Object* obj = nullptr;
  std::map<std::pair<std::size_t, std::size_t>, Accepted> accepted;
  std::map<std::pair<std::size_t, std::size_t>, Awaited> awaited;
  std::map<std::size_t, std::size_t> last_slot;  // entry → most recent slot
  /// entry → (intercepted-param count, hidden-param count); used to split a
  /// `start P[i](args)` argument list the way the paper's examples read:
  /// `start Search[i](Word)` re-supplies the intercepted parameter while
  /// `start Deposit[i](Free[FreeIn])` passes a hidden one.
  std::map<std::size_t, std::pair<std::size_t, std::size_t>> start_arity;
};

class BodyExec;  // fwd

void exec_stmts(const StmtList& stmts, Env& env, Frame& frame, Object* obj,
                ManagerState* ms);

std::size_t resolve_slot(const PrimTarget& target, Env& env, Object* obj,
                         ManagerState& ms, std::size_t entry_idx,
                         std::size_t line) {
  if (target.slot_expr) {
    return static_cast<std::size_t>(
        eval(*target.slot_expr, env, obj).as_int());
  }
  auto it = ms.last_slot.find(entry_idx);
  if (it == ms.last_slot.end()) {
    rt_error("no current call for entry " + target.entry, line);
  }
  return it->second;
}

void do_finish(ManagerState& ms, std::size_t entry_idx, std::size_t slot,
               const std::vector<ExprPtr>& args, Env& env, Object* obj,
               std::size_t line) {
  const auto key = std::make_pair(entry_idx, slot);
  if (auto it = ms.awaited.find(key); it != ms.awaited.end()) {
    Awaited w = std::move(it->second);
    ms.awaited.erase(it);
    if (args.empty()) {
      ms.mgr->finish(w);  // echo intercepted results
    } else {
      ValueList iresults;
      for (const auto& a : args) iresults.push_back(eval(*a, env, obj));
      ms.mgr->finish_with(w, std::move(iresults));
    }
    return;
  }
  if (auto it = ms.accepted.find(key); it != ms.accepted.end()) {
    // finish after accept without start = combining (§2.7).
    Accepted a = std::move(it->second);
    ms.accepted.erase(it);
    ValueList results;
    for (const auto& arg : args) results.push_back(eval(*arg, env, obj));
    ms.mgr->combine_finish(a, std::move(results));
    return;
  }
  rt_error("finish on a call that is neither accepted nor awaited", line);
}

void exec_manager_prim(const Stmt& stmt, Env& env, Frame& frame, Object* obj,
                       ManagerState& ms) {
  const std::size_t entry_idx = obj->entry(stmt.target.entry).index();
  switch (stmt.kind) {
    case Stmt::Kind::kAccept: {
      Accepted a = ms.mgr->accept(obj->entry(stmt.target.entry));
      if (!stmt.target.slot_binder.empty()) {
        frame.vars[stmt.target.slot_binder] =
            Value(static_cast<std::int64_t>(a.slot));
      }
      for (std::size_t i = 0; i < stmt.binders.size(); ++i) {
        if (i >= a.params.size()) {
          rt_error("accept binds more values than intercepted", stmt.line);
        }
        frame.vars[stmt.binders[i]] = a.params[i];
      }
      ms.last_slot[entry_idx] = a.slot;
      ms.accepted[{entry_idx, a.slot}] = std::move(a);
      return;
    }
    case Stmt::Kind::kStart: {
      const std::size_t slot =
          resolve_slot(stmt.target, env, obj, ms, entry_idx, stmt.line);
      auto it = ms.accepted.find({entry_idx, slot});
      if (it == ms.accepted.end()) {
        rt_error("start on a call that was not accepted", stmt.line);
      }
      ValueList args;
      for (const auto& a : stmt.args) args.push_back(eval(*a, env, obj));
      const auto [n_icept, n_hidden] = ms.start_arity[entry_idx];
      if (args.size() == n_hidden) {
        // Hidden params only; intercepted prefix echoed automatically.
        ms.mgr->start(it->second, std::move(args));
      } else if (args.size() == n_icept + n_hidden) {
        ValueList iparams(std::make_move_iterator(args.begin()),
                          std::make_move_iterator(args.begin() +
                                                  static_cast<std::ptrdiff_t>(n_icept)));
        ValueList hidden(std::make_move_iterator(args.begin() +
                                                 static_cast<std::ptrdiff_t>(n_icept)),
                         std::make_move_iterator(args.end()));
        ms.mgr->start_with(it->second, std::move(iparams), std::move(hidden));
      } else {
        rt_error("start " + stmt.target.entry + ": expected " +
                     std::to_string(n_hidden) + " (hidden) or " +
                     std::to_string(n_icept + n_hidden) +
                     " (intercepted+hidden) arguments, got " +
                     std::to_string(args.size()),
                 stmt.line);
      }
      return;
    }
    case Stmt::Kind::kAwait: {
      const std::size_t slot =
          resolve_slot(stmt.target, env, obj, ms, entry_idx, stmt.line);
      auto it = ms.accepted.find({entry_idx, slot});
      if (it == ms.accepted.end()) {
        rt_error("await on a call that was not accepted here", stmt.line);
      }
      Awaited w = ms.mgr->await(it->second);
      ms.accepted.erase(it);
      for (std::size_t i = 0; i < stmt.binders.size(); ++i) {
        if (i >= w.results.size()) {
          rt_error("await binds more values than received", stmt.line);
        }
        frame.vars[stmt.binders[i]] = w.results[i];
      }
      ms.awaited[{entry_idx, slot}] = std::move(w);
      return;
    }
    case Stmt::Kind::kFinish: {
      const std::size_t slot =
          resolve_slot(stmt.target, env, obj, ms, entry_idx, stmt.line);
      do_finish(ms, entry_idx, slot, stmt.args, env, obj, stmt.line);
      return;
    }
    case Stmt::Kind::kExecute: {
      const std::size_t slot =
          resolve_slot(stmt.target, env, obj, ms, entry_idx, stmt.line);
      auto it = ms.accepted.find({entry_idx, slot});
      if (it == ms.accepted.end()) {
        rt_error("execute on a call that was not accepted", stmt.line);
      }
      ValueList hidden;
      for (const auto& a : stmt.args) hidden.push_back(eval(*a, env, obj));
      Accepted a = std::move(it->second);
      ms.accepted.erase(it);
      ms.mgr->execute(a, std::move(hidden));
      return;
    }
    default:
      rt_error("manager primitive outside a manager", stmt.line);
  }
}

void exec_guarded(const Stmt& stmt, Env& env, Frame& frame, Object* obj,
                  ManagerState& ms) {
  // Build an alps::Select whose guards evaluate the interpreted conditions
  // with the tentatively received values bound to the binder names.
  Select sel;
  for (const Guard& g : stmt.guards) {
    // Shared by when/pri/handler closures of one guard.
    auto bind_values = [&env, &g, obj](const ValueList& values) {
      // A fresh frame layered over the manager env for the binders.
      Frame temp;
      for (std::size_t i = 0; i < g.binders.size() && i < values.size(); ++i) {
        temp.vars[g.binders[i]] = values[i];
      }
      return temp;
    };
    switch (g.kind) {
      case Guard::Kind::kAccept: {
        EntryRef entry = obj->entry(g.target.entry);
        const std::size_t entry_idx = entry.index();
        AcceptGuard ag = accept_guard(entry);
        if (g.when) {
          const Expr* raw = g.when.get();
          ag = std::move(ag).when([raw, &env, obj, bind_values](const ValueList& v) {
            Frame temp = bind_values(v);
            Env chain = env;
            chain.push(&temp);
            return truthy(eval(*raw, chain, obj), raw->line);
          });
        }
        if (g.pri) {
          const Expr* raw = g.pri.get();
          ag = std::move(ag).pri([raw, &env, obj, bind_values](const ValueList& v) {
            Frame temp = bind_values(v);
            Env chain = env;
            chain.push(&temp);
            return eval(*raw, chain, obj).as_int();
          });
        }
        // Interpreted conditions read the live manager environment (any
        // variable may change between selections): never cache them.
        if (g.when || g.pri) ag = std::move(ag).always_reeval();
        const Guard* guard = &g;
        ag = std::move(ag).then([guard, &env, &frame, obj, &ms,
                                 entry_idx](Accepted a) {
          if (!guard->target.slot_binder.empty()) {
            frame.vars[guard->target.slot_binder] =
                Value(static_cast<std::int64_t>(a.slot));
          }
          for (std::size_t i = 0;
               i < guard->binders.size() && i < a.params.size(); ++i) {
            frame.vars[guard->binders[i]] = a.params[i];
          }
          ms.last_slot[entry_idx] = a.slot;
          ms.accepted[{entry_idx, a.slot}] = std::move(a);
          exec_stmts(guard->body, env, frame, obj, &ms);
        });
        sel.on(std::move(ag));
        break;
      }
      case Guard::Kind::kAwait: {
        EntryRef entry = obj->entry(g.target.entry);
        const std::size_t entry_idx = entry.index();
        AwaitGuard wg = await_guard(entry);
        if (g.when) {
          const Expr* raw = g.when.get();
          wg = std::move(wg).when([raw, &env, obj, bind_values](const ValueList& v) {
            Frame temp = bind_values(v);
            Env chain = env;
            chain.push(&temp);
            return truthy(eval(*raw, chain, obj), raw->line);
          });
        }
        if (g.pri) {
          const Expr* raw = g.pri.get();
          wg = std::move(wg).pri([raw, &env, obj, bind_values](const ValueList& v) {
            Frame temp = bind_values(v);
            Env chain = env;
            chain.push(&temp);
            return eval(*raw, chain, obj).as_int();
          });
        }
        if (g.when || g.pri) wg = std::move(wg).always_reeval();
        const Guard* guard = &g;
        wg = std::move(wg).then([guard, &env, &frame, obj, &ms,
                                 entry_idx](Awaited w) {
          if (!guard->target.slot_binder.empty()) {
            frame.vars[guard->target.slot_binder] =
                Value(static_cast<std::int64_t>(w.slot));
          }
          for (std::size_t i = 0;
               i < guard->binders.size() && i < w.results.size(); ++i) {
            frame.vars[guard->binders[i]] = w.results[i];
          }
          // Drop any stale accepted handle for this slot (it was started).
          ms.accepted.erase({entry_idx, w.slot});
          ms.last_slot[entry_idx] = w.slot;
          ms.awaited[{entry_idx, w.slot}] = std::move(w);
          exec_stmts(guard->body, env, frame, obj, &ms);
        });
        sel.on(std::move(wg));
        break;
      }
      case Guard::Kind::kReceive: {
        const Value chan_v = env.get(g.channel, stmt.line);
        if (!chan_v.is_channel()) {
          rt_error("'" + g.channel + "' is not a channel", stmt.line);
        }
        ReceiveGuard rg = receive_guard(chan_v.as_channel());
        if (g.when) {
          const Expr* raw = g.when.get();
          rg = std::move(rg).when([raw, &env, obj, bind_values](const ValueList& v) {
            Frame temp = bind_values(v);
            Env chain = env;
            chain.push(&temp);
            return truthy(eval(*raw, chain, obj), raw->line);
          });
        }
        if (g.pri) {
          const Expr* raw = g.pri.get();
          rg = std::move(rg).pri([raw, &env, obj, bind_values](const ValueList& v) {
            Frame temp = bind_values(v);
            Env chain = env;
            chain.push(&temp);
            return eval(*raw, chain, obj).as_int();
          });
        }
        if (g.when || g.pri) rg = std::move(rg).always_reeval();
        const Guard* guard = &g;
        rg = std::move(rg).then([guard, &env, &frame, obj, &ms](ValueList msg) {
          for (std::size_t i = 0;
               i < guard->binders.size() && i < msg.size(); ++i) {
            frame.vars[guard->binders[i]] = msg[i];
          }
          exec_stmts(guard->body, env, frame, obj, &ms);
        });
        sel.on(std::move(rg));
        break;
      }
      case Guard::Kind::kWhen: {
        const Expr* raw = g.when.get();
        if (!raw) rt_error("when-guard without condition", stmt.line);
        WhenGuard whg = when_guard([raw, &env, obj] {
          return truthy(eval(*raw, env, obj), raw->line);
        });
        const Guard* guard = &g;
        whg = std::move(whg).then([guard, &env, &frame, obj, &ms] {
          exec_stmts(guard->body, env, frame, obj, &ms);
        });
        sel.on(std::move(whg));
        break;
      }
    }
  }
  if (stmt.kind == Stmt::Kind::kLoop) {
    sel.loop(*ms.mgr);
  } else {
    sel.select(*ms.mgr);
  }
}

void exec_stmts(const StmtList& stmts, Env& env, Frame& frame, Object* obj,
                ManagerState* ms) {
  for (const StmtPtr& sp : stmts) {
    const Stmt& stmt = *sp;
    switch (stmt.kind) {
      case Stmt::Kind::kAssign:
        if (stmt.assign_index) {
          const auto idx = static_cast<std::size_t>(
              eval(*stmt.assign_index, env, obj).as_int());
          env.set_index(stmt.assign_name, idx,
                        eval(*stmt.assign_value, env, obj), stmt.line);
        } else {
          env.set(stmt.assign_name, eval(*stmt.assign_value, env, obj),
                  stmt.line);
        }
        break;
      case Stmt::Kind::kIf: {
        bool taken = false;
        for (const auto& [cond, body] : stmt.if_arms) {
          if (truthy(eval(*cond, env, obj), stmt.line)) {
            exec_stmts(body, env, frame, obj, ms);
            taken = true;
            break;
          }
        }
        if (!taken) exec_stmts(stmt.else_body, env, frame, obj, ms);
        break;
      }
      case Stmt::Kind::kWhile:
        while (truthy(eval(*stmt.while_cond, env, obj), stmt.line)) {
          exec_stmts(stmt.while_body, env, frame, obj, ms);
        }
        break;
      case Stmt::Kind::kReturn: {
        ReturnSignal sig;
        for (const auto& e : stmt.return_values) {
          sig.values.push_back(eval(*e, env, obj));
        }
        throw sig;
      }
      case Stmt::Kind::kLoop:
      case Stmt::Kind::kSelect:
        if (!ms) rt_error("loop/select outside a manager", stmt.line);
        exec_guarded(stmt, env, frame, obj, *ms);
        break;
      case Stmt::Kind::kSend: {
        const Value chan = env.get(stmt.channel, stmt.line);
        if (!chan.is_channel()) {
          rt_error("'" + stmt.channel + "' is not a channel", stmt.line);
        }
        ValueList message;
        for (const auto& a : stmt.args) message.push_back(eval(*a, env, obj));
        chan.as_channel()->send(std::move(message));  // asynchronous (2.1.2)
        break;
      }
      case Stmt::Kind::kReceive: {
        const Value chan = env.get(stmt.channel, stmt.line);
        if (!chan.is_channel()) {
          rt_error("'" + stmt.channel + "' is not a channel", stmt.line);
        }
        ValueList message = chan.as_channel()->receive();  // blocking
        for (std::size_t i = 0; i < stmt.binders.size(); ++i) {
          if (i >= message.size()) {
            rt_error("receive binds more values than the message carries",
                     stmt.line);
          }
          frame.vars[stmt.binders[i]] = message[i];
        }
        break;
      }
      case Stmt::Kind::kAccept:
      case Stmt::Kind::kStart:
      case Stmt::Kind::kAwait:
      case Stmt::Kind::kFinish:
      case Stmt::Kind::kExecute:
        if (!ms) rt_error("manager primitive outside a manager", stmt.line);
        exec_manager_prim(stmt, env, frame, obj, *ms);
        break;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

struct Machine::ObjectRuntime {
  std::string name;
  std::unique_ptr<Object> object;
  Frame shared;
  std::mutex shared_lock;
  std::unordered_map<std::string, EntryRef> entries;
  // AST references into the Machine-owned Program (the "object type").
  const ObjectImpl* impl = nullptr;
  const ObjectDef* def = nullptr;
};

Machine::Machine(const std::string& source) : Machine(parse_program(source)) {}

Machine::Machine(Program program)
    : prog_(std::make_unique<Program>(std::move(program))) {
  // Index definitions by name once.
  for (const auto& def : prog_->defs) defs_[def.name] = &def;
  for (const ObjectImpl& impl : prog_->impls) {
    auto it = defs_.find(impl.name);
    instantiate_impl(impl, it == defs_.end() ? nullptr : it->second, impl.name);
  }
}

Object& Machine::create_instance(const std::string& type_name,
                                 const std::string& instance_name) {
  // §2.2 "future version" feature: an implemented object acts as an object
  // type; each create_instance materializes an independent instance with its
  // own shared data, manager process and procedure-array processes.
  for (const auto& rt : runtimes_) {
    if (rt->name == instance_name) {
      rt_error("an object named '" + instance_name + "' already exists");
    }
  }
  for (const ObjectImpl& impl : prog_->impls) {
    if (impl.name == type_name) {
      auto it = defs_.find(type_name);
      instantiate_impl(impl, it == defs_.end() ? nullptr : it->second,
                       instance_name);
      return *runtimes_.back()->object;
    }
  }
  rt_error("no object type '" + type_name + "' in the program");
}

Machine::~Machine() { stop(); }

void Machine::stop() {
  for (auto& rt : runtimes_) {
    if (rt->object) rt->object->stop();
  }
}

Object& Machine::object(const std::string& name) {
  for (auto& rt : runtimes_) {
    if (rt->name == name) return *rt->object;
  }
  rt_error("no such object '" + name + "'");
}

std::vector<std::string> Machine::objects() const {
  std::vector<std::string> out;
  out.reserve(runtimes_.size());
  for (const auto& rt : runtimes_) out.push_back(rt->name);
  return out;
}

ValueList Machine::call(const std::string& obj, const std::string& entry,
                        ValueList args) {
  return async_call(obj, entry, std::move(args)).get();
}

CallHandle Machine::async_call(const std::string& obj, const std::string& entry,
                               ValueList args) {
  Object& o = object(obj);
  return o.async_call(o.entry(entry), std::move(args));
}

void Machine::instantiate_impl(const ObjectImpl& impl_ast,
                               const ObjectDef* def,
                               const std::string& instance_name) {
  {
    auto rt = std::make_unique<ObjectRuntime>();
    rt->name = instance_name;
    rt->shared.lock = &rt->shared_lock;
    rt->def = def;
    rt->impl = &impl_ast;

    rt->object = std::make_unique<Object>(rt->name);
    Object* obj = rt->object.get();

    // Shared data.
    for (const VarDecl& v : rt->impl->shared) {
      rt->shared.vars[v.name] = default_value(v);
    }

    // Entries: visible arity from the definition part; anything beyond it in
    // the implementation's parameter/result lists is hidden (§2.8).
    for (const ProcBody& proc : rt->impl->procs) {
      const ProcDecl* decl = nullptr;
      if (def) {
        for (const auto& d : def->procs) {
          if (d.name == proc.name) decl = &d;
        }
      }
      const std::size_t visible_params =
          decl ? decl->params.size() : proc.params.size();
      const std::size_t visible_results =
          decl ? decl->results.size() : proc.results.size();
      if (proc.params.size() < visible_params ||
          proc.results.size() < visible_results) {
        rt_error("implementation of " + proc.name +
                 " has fewer parameters/results than its definition");
      }
      // With a definition part, only the procedures it declares are
      // exported; an object written without one exports everything.
      const bool exported = (def == nullptr) || (decl != nullptr);
      EntryRef entry = obj->define_entry(
          EntryDecl{proc.name, visible_params, visible_results, exported});
      rt->entries.emplace(proc.name, entry);

      ImplDecl impl_decl{proc.array, proc.params.size() - visible_params,
                         proc.results.size() - visible_results};

      ObjectRuntime* rtp = rt.get();
      const ProcBody* procp = &proc;  // stable: impl moved into rt already
      obj->implement(entry, impl_decl, [rtp, procp](BodyCtx& ctx) -> ValueList {
        Frame locals;
        for (std::size_t i = 0; i < procp->params.size(); ++i) {
          const std::string& pname = procp->params[i].name.empty()
                                         ? "$p" + std::to_string(i)
                                         : procp->params[i].name;
          locals.vars[pname] = ctx.param(i);
        }
        for (const VarDecl& v : procp->locals) {
          locals.vars[v.name] = default_value(v);
        }
        Env env;
        env.push(&locals);
        env.push(&rtp->shared);
        try {
          exec_stmts(procp->body, env, locals, rtp->object.get(), nullptr);
        } catch (ReturnSignal& sig) {
          return std::move(sig.values);
        }
        // Falling off the end returns no results.
        return {};
      });
    }

    // Manager.
    if (rt->impl->manager) {
      ObjectRuntime* rtp = rt.get();
      const ManagerDecl* mgr_decl = rt->impl->manager.get();
      std::vector<InterceptClause> clauses;
      for (const InterceptDecl& icept : mgr_decl->intercepts) {
        auto it = rt->entries.find(icept.entry);
        if (it == rt->entries.end()) {
          rt_error("intercepts unknown procedure " + icept.entry);
        }
        InterceptClause clause{it->second, icept.n_params, icept.n_results};
        clauses.push_back(clause);
      }
      // Per-entry (intercepted, hidden) parameter counts for `start` args.
      std::map<std::size_t, std::pair<std::size_t, std::size_t>> start_arity;
      for (const ProcBody& proc : rt->impl->procs) {
        const std::size_t entry_idx = rt->entries.at(proc.name).index();
        std::size_t visible = proc.params.size();
        if (def) {
          for (const auto& d : def->procs) {
            if (d.name == proc.name) visible = d.params.size();
          }
        }
        std::size_t icept = 0;
        for (const InterceptClause& c : clauses) {
          if (c.entry.index() == entry_idx) icept = c.n_params;
        }
        start_arity[entry_idx] = {icept, proc.params.size() - visible};
      }

      obj->set_manager(clauses, [rtp, mgr_decl, start_arity](Manager& m) {
        Frame locals;
        for (const VarDecl& v : mgr_decl->locals) {
          locals.vars[v.name] = default_value(v);
        }
        Env env;
        env.push(&locals);
        env.push(&rtp->shared);
        ManagerState ms;
        ms.mgr = &m;
        ms.obj = rtp->object.get();
        ms.start_arity = start_arity;
        exec_stmts(mgr_decl->body, env, locals, rtp->object.get(), &ms);
      });
    }

    // Initialization code runs before the object opens for business (§2.2).
    if (!rt->impl->init.empty()) {
      Frame locals;
      Env env;
      env.push(&locals);
      env.push(&rt->shared);
      exec_stmts(rt->impl->init, env, locals, rt->object.get(), nullptr);
    }

    rt->object->start();
    runtimes_.push_back(std::move(rt));
  }
}

}  // namespace alps::lang
