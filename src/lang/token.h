// Token stream for the ALPS surface language (the paper's Pascal-like
// notation, §2). The interpreter subset covers everything the paper's
// example programs use: object definition/implementation parts, procedure
// (array) declarations with hidden parameters/results, shared data, the
// manager with its intercepts clause, loop/select with accept/await/when
// guards, acceptance conditions, pri clauses, the four manager primitives
// plus execute, and the #P pending-count operator.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace alps::lang {

enum class Tok : std::uint8_t {
  // literals & identifiers
  kIdent,
  kIntLit,
  kRealLit,
  kStringLit,
  kTrue,
  kFalse,
  // keywords
  kObject,
  kDefines,
  kImplements,
  kEnd,
  kProc,
  kReturns,
  kVar,
  kManager,
  kIntercepts,
  kBegin,
  kLoop,
  kSelect,
  kAccept,
  kAwait,
  kStart,
  kFinish,
  kExecute,
  kWhen,
  kPri,
  kOr,       // guard separator in loop/select
  kIf,
  kThen,
  kElse,
  kElsif,
  kWhile,
  kDo,
  kReturn,
  // NOTE: `or` is one token (kOr). It is both the boolean operator and the
  // guard separator of loop/select; in a guard condition a top-level boolean
  // `or` must be parenthesized, exactly as the paper's own examples do
  // ("(#Write = 0 or WriterLast) and ReadCount < ReadMax").
  kAnd,
  kNot,
  kMod,
  kArray,
  kOf,
  kChanType,
  kSend,
  kReceive,
  kIntType,
  kBoolType,
  kRealType,
  kStringType,
  // punctuation & operators
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kSemi,
  kColon,
  kAssign,   // :=
  kArrow,    // =>
  kEq,       // =
  kNeq,      // <>
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kHash,     // #P pending count
  kDot,
  kEof,
};

const char* to_string(Tok tok);

struct Token {
  Tok kind = Tok::kEof;
  std::string text;       // identifier / literal spelling
  std::int64_t int_val = 0;
  double real_val = 0.0;
  std::size_t line = 1;
  std::size_t col = 1;
};

class LangError : public std::runtime_error {
 public:
  LangError(const std::string& what, std::size_t line, std::size_t col)
      : std::runtime_error(what + " (line " + std::to_string(line) + ", col " +
                           std::to_string(col) + ")"),
        line_(line),
        col_(col) {}

  std::size_t line() const { return line_; }
  std::size_t col() const { return col_; }

 private:
  std::size_t line_, col_;
};

/// Tokenizes ALPS source. `--` and `{ ... }` are comments (the paper uses
/// `{ ... }` braces for prose comments in its listings).
std::vector<Token> lex(const std::string& source);

}  // namespace alps::lang
