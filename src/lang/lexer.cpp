#include "lang/token.h"

#include <cctype>
#include <unordered_map>

namespace alps::lang {

const char* to_string(Tok tok) {
  switch (tok) {
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kRealLit: return "real literal";
    case Tok::kStringLit: return "string literal";
    case Tok::kTrue: return "'true'";
    case Tok::kFalse: return "'false'";
    case Tok::kObject: return "'object'";
    case Tok::kDefines: return "'defines'";
    case Tok::kImplements: return "'implements'";
    case Tok::kEnd: return "'end'";
    case Tok::kProc: return "'proc'";
    case Tok::kReturns: return "'returns'";
    case Tok::kVar: return "'var'";
    case Tok::kManager: return "'manager'";
    case Tok::kIntercepts: return "'intercepts'";
    case Tok::kBegin: return "'begin'";
    case Tok::kLoop: return "'loop'";
    case Tok::kSelect: return "'select'";
    case Tok::kAccept: return "'accept'";
    case Tok::kAwait: return "'await'";
    case Tok::kStart: return "'start'";
    case Tok::kFinish: return "'finish'";
    case Tok::kExecute: return "'execute'";
    case Tok::kWhen: return "'when'";
    case Tok::kPri: return "'pri'";
    case Tok::kOr: return "'or'";
    case Tok::kIf: return "'if'";
    case Tok::kThen: return "'then'";
    case Tok::kElse: return "'else'";
    case Tok::kElsif: return "'elsif'";
    case Tok::kWhile: return "'while'";
    case Tok::kDo: return "'do'";
    case Tok::kReturn: return "'return'";
    case Tok::kAnd: return "'and'";
    case Tok::kNot: return "'not'";
    case Tok::kMod: return "'mod'";
    case Tok::kArray: return "'array'";
    case Tok::kChanType: return "'chan'";
    case Tok::kSend: return "'send'";
    case Tok::kReceive: return "'receive'";
    case Tok::kOf: return "'of'";
    case Tok::kIntType: return "'int'";
    case Tok::kBoolType: return "'bool'";
    case Tok::kRealType: return "'real'";
    case Tok::kStringType: return "'string'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kComma: return "','";
    case Tok::kSemi: return "';'";
    case Tok::kColon: return "':'";
    case Tok::kAssign: return "':='";
    case Tok::kArrow: return "'=>'";
    case Tok::kEq: return "'='";
    case Tok::kNeq: return "'<>'";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kHash: return "'#'";
    case Tok::kDot: return "'.'";
    case Tok::kEof: return "end of input";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kMap = {
      {"object", Tok::kObject},     {"defines", Tok::kDefines},
      {"implements", Tok::kImplements}, {"end", Tok::kEnd},
      {"proc", Tok::kProc},         {"returns", Tok::kReturns},
      {"var", Tok::kVar},           {"manager", Tok::kManager},
      {"intercepts", Tok::kIntercepts}, {"begin", Tok::kBegin},
      {"loop", Tok::kLoop},         {"select", Tok::kSelect},
      {"accept", Tok::kAccept},     {"await", Tok::kAwait},
      {"start", Tok::kStart},       {"finish", Tok::kFinish},
      {"execute", Tok::kExecute},   {"when", Tok::kWhen},
      {"pri", Tok::kPri},           {"or", Tok::kOr},
      {"if", Tok::kIf},             {"then", Tok::kThen},
      {"else", Tok::kElse},         {"elsif", Tok::kElsif},
      {"while", Tok::kWhile},       {"do", Tok::kDo},
      {"return", Tok::kReturn},     {"and", Tok::kAnd},
      {"not", Tok::kNot},           {"mod", Tok::kMod},
      {"array", Tok::kArray},        {"of", Tok::kOf},
      {"chan", Tok::kChanType},     {"send", Tok::kSend},
      {"receive", Tok::kReceive},
      {"int", Tok::kIntType},       {"bool", Tok::kBoolType},
      {"real", Tok::kRealType},     {"string", Tok::kStringType},
      {"true", Tok::kTrue},         {"false", Tok::kFalse},
  };
  return kMap;
}

}  // namespace

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  std::size_t i = 0, line = 1, col = 1;

  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto peek = [&](std::size_t off = 0) -> char {
    return i + off < src.size() ? src[i + off] : '\0';
  };
  auto push = [&](Tok kind, std::string text, std::size_t tline,
                  std::size_t tcol) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tline;
    t.col = tcol;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = peek();
    const std::size_t tline = line, tcol = col;
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    // Comments: `--` to end of line, `{ ... }` block (paper listing style).
    if (c == '-' && peek(1) == '-') {
      while (i < src.size() && peek() != '\n') advance();
      continue;
    }
    if (c == '{') {
      while (i < src.size() && peek() != '}') advance();
      if (i >= src.size()) throw LangError("unterminated { comment", tline, tcol);
      advance();  // consume '}'
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
        word.push_back(peek());
        advance();
      }
      std::string lowered = word;
      for (auto& ch : lowered) {
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      }
      auto it = keywords().find(lowered);
      if (it != keywords().end()) {
        push(it->second, word, tline, tcol);
      } else {
        push(Tok::kIdent, word, tline, tcol);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      bool real = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        num.push_back(peek());
        advance();
      }
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        real = true;
        num.push_back('.');
        advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          num.push_back(peek());
          advance();
        }
      }
      Token t;
      t.text = num;
      t.line = tline;
      t.col = tcol;
      if (real) {
        t.kind = Tok::kRealLit;
        t.real_val = std::stod(num);
      } else {
        t.kind = Tok::kIntLit;
        t.int_val = std::stoll(num);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      advance();
      std::string text;
      while (i < src.size() && peek() != '"') {
        if (peek() == '\\' && (peek(1) == '"' || peek(1) == '\\')) advance();
        text.push_back(peek());
        advance();
      }
      if (i >= src.size()) throw LangError("unterminated string", tline, tcol);
      advance();  // closing quote
      Token t;
      t.kind = Tok::kStringLit;
      t.text = std::move(text);
      t.line = tline;
      t.col = tcol;
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '(': push(Tok::kLParen, "(", tline, tcol); advance(); continue;
      case ')': push(Tok::kRParen, ")", tline, tcol); advance(); continue;
      case '[': push(Tok::kLBracket, "[", tline, tcol); advance(); continue;
      case ']': push(Tok::kRBracket, "]", tline, tcol); advance(); continue;
      case ',': push(Tok::kComma, ",", tline, tcol); advance(); continue;
      case ';': push(Tok::kSemi, ";", tline, tcol); advance(); continue;
      case '#': push(Tok::kHash, "#", tline, tcol); advance(); continue;
      case '.': push(Tok::kDot, ".", tline, tcol); advance(); continue;
      case '+': push(Tok::kPlus, "+", tline, tcol); advance(); continue;
      case '-': push(Tok::kMinus, "-", tline, tcol); advance(); continue;
      case '*': push(Tok::kStar, "*", tline, tcol); advance(); continue;
      case '/': push(Tok::kSlash, "/", tline, tcol); advance(); continue;
      case ':':
        if (peek(1) == '=') {
          push(Tok::kAssign, ":=", tline, tcol);
          advance(2);
        } else {
          push(Tok::kColon, ":", tline, tcol);
          advance();
        }
        continue;
      case '=':
        if (peek(1) == '>') {
          push(Tok::kArrow, "=>", tline, tcol);
          advance(2);
        } else {
          push(Tok::kEq, "=", tline, tcol);
          advance();
        }
        continue;
      case '<':
        if (peek(1) == '>') {
          push(Tok::kNeq, "<>", tline, tcol);
          advance(2);
        } else if (peek(1) == '=') {
          push(Tok::kLe, "<=", tline, tcol);
          advance(2);
        } else {
          push(Tok::kLt, "<", tline, tcol);
          advance();
        }
        continue;
      case '>':
        if (peek(1) == '=') {
          push(Tok::kGe, ">=", tline, tcol);
          advance(2);
        } else {
          push(Tok::kGt, ">", tline, tcol);
          advance();
        }
        continue;
      default:
        throw LangError(std::string("unexpected character '") + c + "'", tline,
                        tcol);
    }
  }
  Token eof;
  eof.kind = Tok::kEof;
  eof.line = line;
  eof.col = col;
  out.push_back(std::move(eof));
  return out;
}

}  // namespace alps::lang
