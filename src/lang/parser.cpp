#include "lang/parser.h"

namespace alps::lang {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& source) : tokens_(lex(source)) {}

  Program parse() {
    Program prog;
    while (!at(Tok::kEof)) {
      expect(Tok::kObject, "expected 'object'");
      const std::string name = expect_ident("object name");
      if (at(Tok::kDefines)) {
        advance();
        prog.defs.push_back(parse_defines(name));
      } else if (at(Tok::kImplements)) {
        advance();
        prog.impls.push_back(parse_implements(name));
      } else {
        fail("expected 'defines' or 'implements'");
      }
    }
    return prog;
  }

 private:
  // ---- token helpers ----

  const Token& cur() const { return tokens_[pos_]; }
  const Token& peek(std::size_t off = 1) const {
    return tokens_[std::min(pos_ + off, tokens_.size() - 1)];
  }
  bool at(Tok kind) const { return cur().kind == kind; }
  void advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  [[noreturn]] void fail(const std::string& what) const {
    throw LangError(what + ", found " + std::string(to_string(cur().kind)),
                    cur().line, cur().col);
  }
  Token expect(Tok kind, const char* what) {
    if (!at(kind)) fail(what);
    Token t = cur();
    advance();
    return t;
  }
  std::string expect_ident(const char* what) {
    return expect(Tok::kIdent, what).text;
  }
  bool accept_tok(Tok kind) {
    if (!at(kind)) return false;
    advance();
    return true;
  }

  // ---- types ----

  bool at_type() const {
    return at(Tok::kIntType) || at(Tok::kBoolType) || at(Tok::kRealType) ||
           at(Tok::kStringType) || at(Tok::kChanType);
  }

  TypeName parse_type() {
    if (accept_tok(Tok::kIntType)) return TypeName::kInt;
    if (accept_tok(Tok::kBoolType)) return TypeName::kBool;
    if (accept_tok(Tok::kRealType)) return TypeName::kReal;
    if (accept_tok(Tok::kStringType)) return TypeName::kString;
    if (accept_tok(Tok::kChanType)) return TypeName::kChan;
    fail("expected a type (int, bool, real, string, chan)");
  }

  // ---- definition part ----

  ObjectDef parse_defines(const std::string& name) {
    ObjectDef def;
    def.name = name;
    while (at(Tok::kProc)) {
      advance();
      ProcDecl decl;
      decl.name = expect_ident("procedure name");
      if (accept_tok(Tok::kLParen)) {
        if (!at(Tok::kRParen)) {
          decl.params.push_back(parse_type());
          while (accept_tok(Tok::kComma)) decl.params.push_back(parse_type());
        }
        expect(Tok::kRParen, "expected ')'");
      }
      if (accept_tok(Tok::kReturns)) {
        expect(Tok::kLParen, "expected '(' after returns");
        if (!at(Tok::kRParen)) {
          decl.results.push_back(parse_type());
          while (accept_tok(Tok::kComma)) decl.results.push_back(parse_type());
        }
        expect(Tok::kRParen, "expected ')'");
      }
      accept_tok(Tok::kSemi);
      def.procs.push_back(std::move(decl));
    }
    expect(Tok::kEnd, "expected 'end'");
    close_named_end(name);
    return def;
  }

  // ---- implementation part ----

  ObjectImpl parse_implements(const std::string& name) {
    ObjectImpl impl;
    impl.name = name;
    for (;;) {
      if (at(Tok::kVar)) {
        parse_var_section(impl.shared);
      } else if (at(Tok::kProc)) {
        impl.procs.push_back(parse_proc_body());
      } else if (at(Tok::kManager)) {
        if (impl.manager) fail("duplicate manager");
        impl.manager = std::make_unique<ManagerDecl>(parse_manager());
      } else if (at(Tok::kBegin)) {
        advance();
        impl.init = parse_stmts();
        break;
      } else {
        break;
      }
    }
    expect(Tok::kEnd, "expected 'end'");
    close_named_end(name);
    return impl;
  }

  void close_named_end(const std::string& name) {
    if (at(Tok::kIdent)) {
      if (cur().text != name) {
        fail("'end " + cur().text + "' does not match 'object " + name + "'");
      }
      advance();
    }
    accept_tok(Tok::kSemi);
  }

  void parse_var_section(std::vector<VarDecl>& out) {
    expect(Tok::kVar, "expected 'var'");
    for (;;) {
      std::vector<std::string> names;
      names.push_back(expect_ident("variable name"));
      while (accept_tok(Tok::kComma)) names.push_back(expect_ident("variable name"));
      expect(Tok::kColon, "expected ':' in variable declaration");
      std::size_t array = 0;
      if (accept_tok(Tok::kArray)) {
        const Token n = expect(Tok::kIntLit, "expected array size");
        if (n.int_val < 1) fail("array size must be >= 1");
        array = static_cast<std::size_t>(n.int_val);
        expect(Tok::kOf, "expected 'of' in array type");
      }
      const TypeName type = parse_type();
      expect(Tok::kSemi, "expected ';' after variable declaration");
      for (auto& n : names) {
        VarDecl d;
        d.name = n;
        d.type = type;
        d.array = array;
        d.line = cur().line;
        out.push_back(std::move(d));
      }
      // Pascal style: further declarations may follow without 'var'.
      if (!(at(Tok::kIdent) &&
            (peek().kind == Tok::kColon || peek().kind == Tok::kComma))) {
        break;
      }
    }
  }

  std::vector<Param> parse_param_list() {
    // Either named params "a, b: int; c: string" or bare type lists.
    std::vector<Param> out;
    for (;;) {
      if (at_type()) {
        Param p;
        p.type = parse_type();
        out.push_back(std::move(p));
      } else {
        std::vector<std::string> names;
        names.push_back(expect_ident("parameter name"));
        while (accept_tok(Tok::kComma)) names.push_back(expect_ident("parameter name"));
        expect(Tok::kColon, "expected ':' in parameter");
        const TypeName type = parse_type();
        for (auto& n : names) {
          Param p;
          p.name = n;
          p.type = type;
          out.push_back(std::move(p));
        }
      }
      if (!accept_tok(Tok::kSemi) && !accept_tok(Tok::kComma)) break;
      if (at(Tok::kRParen)) break;
    }
    return out;
  }

  ProcBody parse_proc_body() {
    expect(Tok::kProc, "expected 'proc'");
    ProcBody body;
    body.name = expect_ident("procedure name");
    if (accept_tok(Tok::kLBracket)) {
      // Hidden array size: proc Search[8](...)   (also accepts 1..8 style).
      Token first = expect(Tok::kIntLit, "expected array size");
      std::int64_t n = first.int_val;
      if (accept_tok(Tok::kDot)) {  // "1..8"
        expect(Tok::kDot, "expected '..'");
        n = expect(Tok::kIntLit, "expected array upper bound").int_val;
      }
      if (n < 1) fail("array size must be >= 1");
      body.array = static_cast<std::size_t>(n);
      expect(Tok::kRBracket, "expected ']'");
    }
    if (accept_tok(Tok::kLParen)) {
      if (!at(Tok::kRParen)) body.params = parse_param_list();
      expect(Tok::kRParen, "expected ')'");
    }
    if (accept_tok(Tok::kReturns)) {
      expect(Tok::kLParen, "expected '(' after returns");
      if (!at(Tok::kRParen)) body.results = parse_param_list();
      expect(Tok::kRParen, "expected ')'");
    }
    accept_tok(Tok::kSemi);
    if (at(Tok::kVar)) parse_var_section(body.locals);
    expect(Tok::kBegin, "expected 'begin'");
    body.body = parse_stmts();
    expect(Tok::kEnd, "expected 'end'");
    if (at(Tok::kIdent)) {
      if (cur().text != body.name) {
        fail("'end " + cur().text + "' does not match proc " + body.name);
      }
      advance();
    }
    accept_tok(Tok::kSemi);
    return body;
  }

  ManagerDecl parse_manager() {
    expect(Tok::kManager, "expected 'manager'");
    ManagerDecl mgr;
    expect(Tok::kIntercepts, "expected 'intercepts'");
    for (;;) {
      InterceptDecl icept;
      icept.entry = expect_ident("intercepted procedure name");
      if (accept_tok(Tok::kLParen)) {
        // "(types ; types)" — §2.6 parameter/result prefixes by arity.
        while (at_type()) {
          parse_type();
          ++icept.n_params;
          if (!accept_tok(Tok::kComma)) break;
        }
        if (accept_tok(Tok::kSemi)) {
          while (at_type()) {
            parse_type();
            ++icept.n_results;
            if (!accept_tok(Tok::kComma)) break;
          }
        }
        expect(Tok::kRParen, "expected ')'");
      }
      mgr.intercepts.push_back(std::move(icept));
      if (!accept_tok(Tok::kComma)) break;
    }
    expect(Tok::kSemi, "expected ';' after intercepts clause");
    if (at(Tok::kVar)) parse_var_section(mgr.locals);
    expect(Tok::kBegin, "expected 'begin' of manager body");
    mgr.body = parse_stmts();
    expect(Tok::kEnd, "expected 'end' of manager body");
    accept_tok(Tok::kSemi);
    return mgr;
  }

  // ---- statements ----

  bool at_stmt_terminator() const {
    return at(Tok::kEnd) || at(Tok::kElse) || at(Tok::kElsif) || at(Tok::kOr) ||
           at(Tok::kEof);
  }

  StmtList parse_stmts() {
    StmtList out;
    while (!at_stmt_terminator()) {
      out.push_back(parse_stmt());
      accept_tok(Tok::kSemi);
    }
    return out;
  }

  StmtPtr parse_stmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = cur().line;
    switch (cur().kind) {
      case Tok::kIf: return parse_if();
      case Tok::kWhile: return parse_while();
      case Tok::kLoop: return parse_loop_or_select(Stmt::Kind::kLoop, Tok::kLoop);
      case Tok::kSelect:
        return parse_loop_or_select(Stmt::Kind::kSelect, Tok::kSelect);
      case Tok::kReturn: {
        advance();
        stmt->kind = Stmt::Kind::kReturn;
        if (accept_tok(Tok::kLParen)) {
          if (!at(Tok::kRParen)) {
            stmt->return_values.push_back(parse_expr());
            while (accept_tok(Tok::kComma)) {
              stmt->return_values.push_back(parse_expr());
            }
          }
          expect(Tok::kRParen, "expected ')'");
        }
        return stmt;
      }
      case Tok::kAccept: {
        advance();
        stmt->kind = Stmt::Kind::kAccept;
        stmt->target = parse_binder_target();
        stmt->binders = parse_binder_list();
        return stmt;
      }
      case Tok::kSend: {
        advance();
        stmt->kind = Stmt::Kind::kSend;
        stmt->channel = expect_ident("channel name");
        if (accept_tok(Tok::kLParen)) {
          if (!at(Tok::kRParen)) {
            stmt->args.push_back(parse_expr());
            while (accept_tok(Tok::kComma)) stmt->args.push_back(parse_expr());
          }
          expect(Tok::kRParen, "expected ')'");
        }
        return stmt;
      }
      case Tok::kReceive: {
        advance();
        stmt->kind = Stmt::Kind::kReceive;
        stmt->channel = expect_ident("channel name");
        stmt->binders = parse_binder_list();
        return stmt;
      }
      case Tok::kAwait: {
        advance();
        stmt->kind = Stmt::Kind::kAwait;
        stmt->target = parse_expr_target();
        stmt->binders = parse_binder_list();
        return stmt;
      }
      case Tok::kStart:
      case Tok::kFinish:
      case Tok::kExecute: {
        const Tok op = cur().kind;
        advance();
        stmt->kind = op == Tok::kStart     ? Stmt::Kind::kStart
                     : op == Tok::kFinish  ? Stmt::Kind::kFinish
                                           : Stmt::Kind::kExecute;
        stmt->target = parse_expr_target();
        if (accept_tok(Tok::kLParen)) {
          if (!at(Tok::kRParen)) {
            stmt->args.push_back(parse_expr());
            while (accept_tok(Tok::kComma)) stmt->args.push_back(parse_expr());
          }
          expect(Tok::kRParen, "expected ')'");
        }
        return stmt;
      }
      case Tok::kIdent: {
        // assignment: NAME := expr   or   NAME [ expr ] := expr
        stmt->kind = Stmt::Kind::kAssign;
        stmt->assign_name = cur().text;
        advance();
        if (accept_tok(Tok::kLBracket)) {
          stmt->assign_index = parse_expr();
          expect(Tok::kRBracket, "expected ']'");
        }
        expect(Tok::kAssign, "expected ':=' in assignment");
        stmt->assign_value = parse_expr();
        return stmt;
      }
      default:
        fail("expected a statement");
    }
  }

  /// `P[i]` where i is a fresh binder name, or bare `P` (slot implied).
  PrimTarget parse_binder_target() {
    PrimTarget target;
    target.entry = expect_ident("procedure name");
    if (accept_tok(Tok::kLBracket)) {
      target.slot_binder = expect_ident("slot binder");
      expect(Tok::kRBracket, "expected ']'");
    }
    return target;
  }

  /// `P[expr]` or bare `P` (slot implied: the entry's current call).
  PrimTarget parse_expr_target() {
    PrimTarget target;
    target.entry = expect_ident("procedure name");
    if (accept_tok(Tok::kLBracket)) {
      target.slot_expr = parse_expr();
      expect(Tok::kRBracket, "expected ']'");
    }
    return target;
  }

  std::vector<std::string> parse_binder_list() {
    std::vector<std::string> out;
    if (accept_tok(Tok::kLParen)) {
      if (!at(Tok::kRParen)) {
        out.push_back(expect_ident("binder name"));
        while (accept_tok(Tok::kComma)) out.push_back(expect_ident("binder name"));
      }
      expect(Tok::kRParen, "expected ')'");
    }
    return out;
  }

  StmtPtr parse_if() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kIf;
    stmt->line = cur().line;
    expect(Tok::kIf, "expected 'if'");
    for (;;) {
      ExprPtr cond = parse_expr();
      expect(Tok::kThen, "expected 'then'");
      StmtList body = parse_stmts();
      stmt->if_arms.emplace_back(std::move(cond), std::move(body));
      if (accept_tok(Tok::kElsif)) continue;
      if (accept_tok(Tok::kElse)) {
        stmt->else_body = parse_stmts();
      }
      break;
    }
    expect(Tok::kEnd, "expected 'end if'");
    expect(Tok::kIf, "expected 'end if'");
    return stmt;
  }

  StmtPtr parse_while() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kWhile;
    stmt->line = cur().line;
    expect(Tok::kWhile, "expected 'while'");
    stmt->while_cond = parse_expr();
    expect(Tok::kDo, "expected 'do'");
    stmt->while_body = parse_stmts();
    expect(Tok::kEnd, "expected 'end while'");
    expect(Tok::kWhile, "expected 'end while'");
    return stmt;
  }

  StmtPtr parse_loop_or_select(Stmt::Kind kind, Tok closer) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = kind;
    stmt->line = cur().line;
    advance();  // consume loop/select
    stmt->guards.push_back(parse_guard());
    while (accept_tok(Tok::kOr)) stmt->guards.push_back(parse_guard());
    expect(Tok::kEnd, "expected 'end'");
    if (!accept_tok(closer)) {
      fail(kind == Stmt::Kind::kLoop ? "expected 'end loop'"
                                     : "expected 'end select'");
    }
    return stmt;
  }

  Guard parse_guard() {
    Guard guard;
    if (accept_tok(Tok::kAccept)) {
      guard.kind = Guard::Kind::kAccept;
      guard.target = parse_binder_target();
      guard.binders = parse_binder_list();
    } else if (accept_tok(Tok::kAwait)) {
      guard.kind = Guard::Kind::kAwait;
      guard.target = parse_binder_target();
      guard.binders = parse_binder_list();
    } else if (accept_tok(Tok::kReceive)) {
      guard.kind = Guard::Kind::kReceive;
      guard.channel = expect_ident("channel name");
      guard.binders = parse_binder_list();
    } else if (at(Tok::kWhen)) {
      guard.kind = Guard::Kind::kWhen;
    } else {
      fail("expected 'accept', 'await', 'receive' or 'when' guard");
    }
    if (accept_tok(Tok::kWhen)) {
      in_guard_cond_ = true;
      guard.when = parse_expr();
      in_guard_cond_ = false;
    }
    if (accept_tok(Tok::kPri)) {
      in_guard_cond_ = true;
      guard.pri = parse_expr();
      in_guard_cond_ = false;
    }
    expect(Tok::kArrow, "expected '=>' after guard");
    guard.body = parse_stmts();
    return guard;
  }

  // ---- expressions ----

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    // In a guard condition, a top-level `or` is the guard separator; boolean
    // `or` must be parenthesized there (as the paper's examples do).
    while (at(Tok::kOr) && !(in_guard_cond_ && paren_depth_ == 0)) {
      advance();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->bin_op = BinOp::kOr;
      node->lhs = std::move(lhs);
      node->rhs = parse_and();
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_cmp();
    while (accept_tok(Tok::kAnd)) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->bin_op = BinOp::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = parse_cmp();
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_add();
    BinOp op;
    switch (cur().kind) {
      case Tok::kEq: op = BinOp::kEq; break;
      case Tok::kNeq: op = BinOp::kNeq; break;
      case Tok::kLt: op = BinOp::kLt; break;
      case Tok::kLe: op = BinOp::kLe; break;
      case Tok::kGt: op = BinOp::kGt; break;
      case Tok::kGe: op = BinOp::kGe; break;
      default: return lhs;
    }
    advance();
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kBinary;
    node->bin_op = op;
    node->lhs = std::move(lhs);
    node->rhs = parse_add();
    return node;
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    for (;;) {
      BinOp op;
      if (at(Tok::kPlus)) {
        op = BinOp::kAdd;
      } else if (at(Tok::kMinus)) {
        op = BinOp::kSub;
      } else {
        return lhs;
      }
      advance();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->bin_op = op;
      node->lhs = std::move(lhs);
      node->rhs = parse_mul();
      lhs = std::move(node);
    }
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary();
    for (;;) {
      BinOp op;
      if (at(Tok::kStar)) {
        op = BinOp::kMul;
      } else if (at(Tok::kSlash)) {
        op = BinOp::kDiv;
      } else if (at(Tok::kMod)) {
        op = BinOp::kMod;
      } else {
        return lhs;
      }
      advance();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->bin_op = op;
      node->lhs = std::move(lhs);
      node->rhs = parse_unary();
      lhs = std::move(node);
    }
  }

  ExprPtr parse_unary() {
    if (accept_tok(Tok::kMinus)) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kUnary;
      node->un_op = UnOp::kNeg;
      node->lhs = parse_unary();
      return node;
    }
    if (accept_tok(Tok::kNot)) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kUnary;
      node->un_op = UnOp::kNot;
      node->lhs = parse_unary();
      return node;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    auto node = std::make_unique<Expr>();
    node->line = cur().line;
    switch (cur().kind) {
      case Tok::kIntLit:
        node->kind = Expr::Kind::kIntLit;
        node->int_val = cur().int_val;
        advance();
        return node;
      case Tok::kRealLit:
        node->kind = Expr::Kind::kRealLit;
        node->real_val = cur().real_val;
        advance();
        return node;
      case Tok::kStringLit:
        node->kind = Expr::Kind::kStringLit;
        node->name = cur().text;
        advance();
        return node;
      case Tok::kTrue:
        node->kind = Expr::Kind::kBoolLit;
        node->bool_val = true;
        advance();
        return node;
      case Tok::kFalse:
        node->kind = Expr::Kind::kBoolLit;
        node->bool_val = false;
        advance();
        return node;
      case Tok::kHash:
        advance();
        node->kind = Expr::Kind::kPending;
        node->name = expect_ident("entry name after '#'");
        return node;
      case Tok::kIdent:
        node->kind = Expr::Kind::kName;
        node->name = cur().text;
        advance();
        if (accept_tok(Tok::kLBracket)) {
          node->kind = Expr::Kind::kIndex;
          node->lhs = parse_expr();
          expect(Tok::kRBracket, "expected ']'");
        }
        return node;
      case Tok::kLParen: {
        advance();
        ++paren_depth_;
        ExprPtr inner = parse_expr();
        --paren_depth_;
        expect(Tok::kRParen, "expected ')'");
        return inner;
      }
      default:
        fail("expected an expression");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  bool in_guard_cond_ = false;
  int paren_depth_ = 0;
};

}  // namespace

Program parse_program(const std::string& source) {
  return Parser(source).parse();
}

}  // namespace alps::lang
