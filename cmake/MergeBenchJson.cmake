# Merges per-bench google-benchmark JSON files into one report.
#
# Usage:  cmake -DBENCH_DIR=<dir-with-*.json> -DOUT=<merged.json> \
#               -P cmake/MergeBenchJson.cmake
#
# Each input file is one suite (named after the file); its "benchmarks"
# entries are tagged with a "suite" member and concatenated. The "context"
# block (host, CPU, build type) is taken from the first file.
cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

if(NOT DEFINED BENCH_DIR OR NOT DEFINED OUT)
  message(FATAL_ERROR "MergeBenchJson: pass -DBENCH_DIR=... and -DOUT=...")
endif()

file(GLOB inputs "${BENCH_DIR}/*.json")
list(SORT inputs)
if(inputs STREQUAL "")
  message(FATAL_ERROR "MergeBenchJson: no .json files under ${BENCH_DIR}")
endif()

set(context "")
set(entries "")
set(first TRUE)

foreach(input IN LISTS inputs)
  get_filename_component(suite "${input}" NAME_WE)
  file(READ "${input}" doc)
  if(first)
    string(JSON context GET "${doc}" context)
    set(first FALSE)
  endif()
  string(JSON n LENGTH "${doc}" benchmarks)
  if(n GREATER 0)
    math(EXPR last "${n} - 1")
    foreach(i RANGE 0 ${last})
      string(JSON item GET "${doc}" benchmarks ${i})
      string(JSON item SET "${item}" suite "\"${suite}\"")
      if(NOT entries STREQUAL "")
        string(APPEND entries ",\n")
      endif()
      string(APPEND entries "${item}")
    endforeach()
  endif()
endforeach()

file(WRITE "${OUT}"
     "{\n\"context\": ${context},\n\"benchmarks\": [\n${entries}\n]\n}\n")
message(STATUS "MergeBenchJson: wrote ${OUT}")
