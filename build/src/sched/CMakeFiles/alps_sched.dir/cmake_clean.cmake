file(REMOVE_RECURSE
  "CMakeFiles/alps_sched.dir/executor.cpp.o"
  "CMakeFiles/alps_sched.dir/executor.cpp.o.d"
  "libalps_sched.a"
  "libalps_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alps_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
