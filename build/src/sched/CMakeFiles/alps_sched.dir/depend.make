# Empty dependencies file for alps_sched.
# This may be replaced when dependencies are built.
