file(REMOVE_RECURSE
  "libalps_sched.a"
)
