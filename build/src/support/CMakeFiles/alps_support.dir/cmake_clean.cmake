file(REMOVE_RECURSE
  "CMakeFiles/alps_support.dir/log.cpp.o"
  "CMakeFiles/alps_support.dir/log.cpp.o.d"
  "CMakeFiles/alps_support.dir/rng.cpp.o"
  "CMakeFiles/alps_support.dir/rng.cpp.o.d"
  "CMakeFiles/alps_support.dir/stats.cpp.o"
  "CMakeFiles/alps_support.dir/stats.cpp.o.d"
  "CMakeFiles/alps_support.dir/thread_util.cpp.o"
  "CMakeFiles/alps_support.dir/thread_util.cpp.o.d"
  "libalps_support.a"
  "libalps_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alps_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
