file(REMOVE_RECURSE
  "libalps_support.a"
)
