# Empty dependencies file for alps_support.
# This may be replaced when dependencies are built.
