# Empty compiler generated dependencies file for alps_baselines.
# This may be replaced when dependencies are built.
