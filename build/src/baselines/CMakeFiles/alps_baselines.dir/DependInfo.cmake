
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/monitor.cpp" "src/baselines/CMakeFiles/alps_baselines.dir/monitor.cpp.o" "gcc" "src/baselines/CMakeFiles/alps_baselines.dir/monitor.cpp.o.d"
  "/root/repo/src/baselines/pathexpr.cpp" "src/baselines/CMakeFiles/alps_baselines.dir/pathexpr.cpp.o" "gcc" "src/baselines/CMakeFiles/alps_baselines.dir/pathexpr.cpp.o.d"
  "/root/repo/src/baselines/rendezvous.cpp" "src/baselines/CMakeFiles/alps_baselines.dir/rendezvous.cpp.o" "gcc" "src/baselines/CMakeFiles/alps_baselines.dir/rendezvous.cpp.o.d"
  "/root/repo/src/baselines/rw_locks.cpp" "src/baselines/CMakeFiles/alps_baselines.dir/rw_locks.cpp.o" "gcc" "src/baselines/CMakeFiles/alps_baselines.dir/rw_locks.cpp.o.d"
  "/root/repo/src/baselines/serializer.cpp" "src/baselines/CMakeFiles/alps_baselines.dir/serializer.cpp.o" "gcc" "src/baselines/CMakeFiles/alps_baselines.dir/serializer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/alps_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
